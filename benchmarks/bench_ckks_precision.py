"""CKKS precision across multiplicative levels.

§5.6 relies on CKKS reaching the same iteration depth as BFV with smaller
parameters; the hidden cost is approximate arithmetic — every level loses a
little precision (rescale rounding + encoder FFT error).  This benchmark
measures bits of precision after each chained multiplication, verifying
that the degradation is graceful (bounded per level) and that client-aided
refreshes fully restore precision — another quiet benefit of the
client-aided model.
"""

import math

import numpy as np
import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.hecore.ckks import CkksContext
from repro.hecore.params import SchemeType, small_test_parameters


def _precision_study():
    params = small_test_parameters(
        SchemeType.CKKS, poly_degree=1024,
        data_bits=(30, 24, 24, 24, 24, 24))
    ctx = CkksContext(params, seed=77)
    rng = np.random.default_rng(1)
    x = rng.uniform(0.6, 1.2, 16)       # magnitudes near 1: no decay masking
    m = rng.uniform(0.8, 1.25, 16)

    truth = x.copy()
    ct = ctx.encrypt(x)
    pt_levels = []
    rows = []
    levels = len(params.data_base) - 1
    for level in range(1, levels + 1):
        pt = ctx.encode(m, base=ct.level_base)
        ct = ctx.rescale(ctx.multiply_plain(ct, pt))
        truth = truth * m
        got = np.real(ctx.decrypt(ct))[:16]
        err = float(np.max(np.abs(got - truth)))
        bits = -math.log2(err / max(np.max(np.abs(truth)), 1e-12))
        rows.append({"level": level, "max_err": err, "precision_bits": bits})
    # Client-aided refresh: decrypt, re-encrypt fresh.
    refreshed = ctx.encrypt(np.real(ctx.decrypt(ct))[:16])
    err_fresh = float(np.max(np.abs(np.real(ctx.decrypt(refreshed))[:16] - truth)))
    return rows, err_fresh, truth


def test_ckks_precision_degrades_gracefully(benchmark):
    rows, err_fresh, truth = run_once(benchmark, _precision_study)

    table = [(r["level"], f"{r['max_err']:.2e}", f"{r['precision_bits']:.1f}")
             for r in rows]
    write_report("ckks_precision", format_table(
        ["Level", "Max abs error", "Precision (bits)"], table) + [
        "",
        f"after client refresh: max error {err_fresh:.2e} "
        f"(fresh-encryption precision restored)",
    ])

    # Precision stays usable through every level at these parameters...
    for r in rows:
        assert r["precision_bits"] > 10, r
    # ...degrades monotonically-ish (allow 2-bit jitter)...
    for a, b in zip(rows, rows[1:]):
        assert b["precision_bits"] <= a["precision_bits"] + 2
    # ...and loses only a bounded number of bits per level.
    total_loss = rows[0]["precision_bits"] - rows[-1]["precision_bits"]
    assert total_loss / max(1, len(rows) - 1) < 6

    # The client-aided refresh restores fresh-encryption precision.
    fresh_bits = -math.log2(err_fresh / np.max(np.abs(truth)))
    assert fresh_bits >= rows[-1]["precision_bits"] - 1
