"""Chaos soak — the offload runtime's resilience contract, under load.

Tier-1 runs one short seeded soak (tests/test_chaos.py); this gate runs the
*long* version: several independent seeds, a harsher fault plan, and more
requests per session, auditing the same end-state invariants each time:

* exactly-once handler execution (server-side invocation counters equal the
  number of logical requests, under drops, duplicates, and reconnects);
* per-session transfer-ledger totals byte-identical to a fault-free oracle
  run (retries and resumes are transport artifacts the analytical cost
  model never sees);
* sessions resume after disconnects without re-uploading evaluation keys;
* zero leaked pending futures, worker tasks, or server sessions.

Unlike the throughput gates there is no tolerance: any violated invariant
in any seed is a hard failure.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.runtime import DEFAULT_PLAN, FaultPlan, run_chaos_soak

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_chaos_soak.json"

#: A harsher link than the tier-1 default: twice the drop rate and a
#: disconnect every ~20 frames on average.
HARSH_PLAN = FaultPlan(
    drop_p=0.18, delay_p=0.20, delay_range_s=(0.001, 0.015),
    corrupt_p=0.03, truncate_p=0.03, disconnect_p=0.05,
)

SCENARIOS = [
    ("default-2026", 2026, DEFAULT_PLAN),
    ("default-31337", 31337, DEFAULT_PLAN),
    ("harsh-424242", 424242, HARSH_PLAN),
]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any soak scenario violates an invariant")
    parser.add_argument("--sessions", type=int, default=8,
                        help="concurrent sessions per scenario")
    parser.add_argument("--requests", type=int, default=6,
                        help="logical requests per session")
    parser.add_argument("--output", type=Path, default=RESULTS_PATH,
                        help="JSON output path")
    args = parser.parse_args(argv)

    failures = []
    scenarios = {}
    for name, seed, plan in SCENARIOS:
        report = run_chaos_soak(n_sessions=args.sessions,
                                n_requests=args.requests,
                                seed=seed, plan=plan)
        print(report.render())
        print()
        scenarios[name] = report.as_dict()
        failures.extend(f"{name}: {f}" for f in report.failures)

    out = {
        "sessions": args.sessions,
        "requests_per_session": args.requests,
        "scenarios": scenarios,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check and failures:
        for line in failures:
            print(f"INVARIANT VIOLATED: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
