"""Table 4 — noise budgets: initial, post-rotate, post-permute.

Measures real invariant-noise budgets on the functional BFV scheme for the
six parameter rows of Table 4 (N in {8192, 4096}, three plaintext-modulus
widths each).  A windowed rotation is performed two ways:

* rotational redundancy — a single ciphertext rotation (Figure 4B);
* arbitrary masked permutation — two rotations + two masking multiplies
  (Figure 4A).

The paper's shape: rotation costs a couple of bits; the masked permutation
costs on the order of ``log2(t)`` bits, and at (4096, t=2^20) it exhausts
the budget entirely.  Absolute budgets follow ``log2 q − 2 log2 t − c``.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.experiments.noise_budgets import (
    TABLE4_PUBLISHED,
    TABLE4_ROWS,
    table4_noise_budgets,
)
from repro.hecore.bfv import BfvContext
from repro.hecore.params import EncryptionParameters, SchemeType


def test_table4_noise_budgets(benchmark):
    measured = run_once(benchmark, table4_noise_budgets)

    rows = []
    for (n, t), (init, rot, perm) in measured.items():
        pub = TABLE4_PUBLISHED[(n, t)]
        rows.append((n, t, init, rot, perm,
                     f"{pub[0]}/{pub[1]}/{pub[2]}"))
    write_report("table4_noise", format_table(
        ["N", "log2 t", "Initial", "Post-Rotate", "Post-Permute",
         "Published (I/R/P)"], rows))

    for (n, t), (init, rot, perm) in measured.items():
        logical = next(b for nn, tt, b in TABLE4_ROWS if (nn, tt) == (n, t))
        data_bits = sum(logical[:-1])
        # Initial budget tracks log2(q_data) - 2*log2(t) - c; the constant
        # differs a few bits from SEAL's exact noise bound.
        assert abs(init - (data_bits - 2 * t - 7)) <= 14, (n, t, init)
        # Rotational redundancy: noise synonymous with a single rotation.
        assert 0 <= init - rot <= 6, (n, t)
        # Masked permutation burns ~log2(t) bits (two masking multiplies).
        assert rot - perm >= t - 6, (n, t)
        # Ordering matches every published row.
        assert init >= rot > perm

    # The budget slope in t is -2 bits per plaintext bit, as in Table 4:
    # e.g. published 68 -> 52 for t: 20 -> 28 at N=8192.
    slope_8192 = measured[(8192, 20)][0] - measured[(8192, 28)][0]
    slope_4096 = measured[(4096, 16)][0] - measured[(4096, 20)][0]
    assert abs(slope_8192 - 16) <= 6
    assert abs(slope_4096 - 8) <= 6

    # The tightest row (4096, t=20) is (nearly) exhausted, as published.
    assert measured[(4096, 20)][2] <= 6


def test_budget_depletion_makes_undecryptable(benchmark):
    """"Exhausting the noise budget renders data undecryptable" (§2.1)."""
    params = EncryptionParameters.create(
        SchemeType.BFV, 4096, (36, 36, 37), plain_bits=20)
    ctx = BfvContext(params, seed=99)
    values = np.arange(1, 9, dtype=np.int64)
    ct = run_once(benchmark, ctx.encrypt, values)
    pt = ctx.encode(np.full(8, 3, dtype=np.int64))
    while ctx.noise_budget(ct) > 0:
        ct = ctx.multiply_plain(ct, pt)
    corrupted = ctx.decrypt(ct)
    # With zero budget the decryption no longer matches the true product.
    assert not np.array_equal(corrupted[:8] % ctx.params.plain_modulus,
                              values)
