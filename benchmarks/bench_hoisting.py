"""Hoisted-rotation speedups: fused kernels vs the naive per-rotation path.

Engineering telemetry for the Halevi-Shoup hoisting engine
(:mod:`repro.hecore.hoisting`): every rotation of one ciphertext shares a
single key-switch digit decomposition, and the fused kernels additionally
share the inverse transforms and the special-prime rescale across a whole
rotation span.  Two micro-benchmarks quantify what the hot paths gain:

* ``rotate_and_sum_8`` — the 8-slot rotate-and-sum reduction of the distance
  kernels, hoisted flat span vs the log-tree of naive rotations;
* ``dnn_matvec`` — the Figure 15 style fully-connected diagonal matvec,
  fused rotate-weighted-sum vs the rotate/multiply/add chain.

Both run BFV at N=4096 and assert decrypt-level equality between the two
implementations before timing anything.  ``--check`` exits non-zero when a
fused kernel falls below its minimum required speedup (2x for the
rotate-and-sum span, 1.5x for the matvec) or regresses more than 20%
against the previous recorded run.  Results go to
``benchmarks/results/BENCH_hoisting.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.linalg import EncryptedMatVec, rotate_and_sum_steps
from repro.hecore.bfv import BfvContext
from repro.hecore.params import SchemeType, small_test_parameters

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_hoisting.json"

#: Acceptance floors from the hoisting issue: the fused kernels must beat the
#: naive per-rotation implementations by at least this much at N=4096.
MIN_SPEEDUP = {
    "rotate_and_sum_8": 2.0,
    "dnn_matvec": 1.5,
}

REGRESSION_TOLERANCE = 0.20

SUM_WIDTH = 8
MATVEC_DIM = 32


def _best_of_pair(naive_fn, hoisted_fn, reps, rounds=6):
    """Seconds-per-op for both implementations, interleaving their timing
    windows so background load drift hits each side equally, and taking the
    fastest window per side."""
    naive_fn()  # warm caches / NTT plans / encoded plaintexts
    hoisted_fn()
    bests = [float("inf"), float("inf")]
    for _ in range(rounds):
        for i, fn in enumerate((naive_fn, hoisted_fn)):
            start = time.perf_counter()
            for _ in range(reps):
                fn()
            bests[i] = min(bests[i], (time.perf_counter() - start) / reps)
    return tuple(bests)


def _make_context():
    params = small_test_parameters(SchemeType.BFV, poly_degree=4096,
                                   plain_bits=16, data_bits=(30, 30))
    return BfvContext(params, seed=b"bench-hoisting")


def _measure_rotate_and_sum(ctx):
    """Hoisted flat span vs a log tree of naive rotations (width 8)."""
    width = SUM_WIDTH
    ctx.make_galois_keys(rotate_and_sum_steps(width))
    msg = np.arange(ctx.params.poly_degree // 2, dtype=np.int64) % 251
    ct = ctx.encrypt(ctx.encode(msg))

    def naive():
        out = ct
        step = width // 2
        while step >= 1:
            out = ctx.add(out, ctx.rotate_rows(out, step))
            step //= 2
        return out

    def hoisted():
        return ctx.rotate_and_sum(ct, width)

    assert np.array_equal(ctx.decrypt(naive()), ctx.decrypt(hoisted())), \
        "fused rotate_and_sum disagrees with the log tree"
    return _best_of_pair(naive, hoisted, 4)


def _measure_dnn_matvec(ctx):
    """Fused diagonal matvec vs the rotate/multiply/add chain (Figure 15
    style fully-connected layer, every diagonal non-zero)."""
    rng = np.random.default_rng(7)
    matrix = rng.integers(1, 16, size=(MATVEC_DIM, MATVEC_DIM))
    mv = EncryptedMatVec(ctx, matrix)
    ctx.make_galois_keys(mv.required_rotation_steps())
    vec = rng.integers(0, 64, size=MATVEC_DIM)
    ct = ctx.encrypt(ctx.encode(mv.pack_input(vec).astype(np.int64)))
    masks = mv._diagonal_masks()
    encoded = [(j, ctx.encode(mask.astype(np.int64))) for j, mask in masks]

    def naive():
        acc = None
        for j, pt in encoded:
            shifted = ctx.rotate_rows(ct, j) if j else ct
            term = ctx.multiply_plain(shifted, pt)
            acc = term if acc is None else ctx.add(acc, term)
        return acc

    def hoisted():
        return ctx.rotate_weighted_sum(ct, encoded)

    reference = mv.reference(vec) % ctx.params.plain_modulus
    for impl in (naive, hoisted):
        got = mv.unpack_output(np.asarray(ctx.decrypt(impl())))
        assert np.array_equal(got % ctx.params.plain_modulus, reference), \
            f"{impl.__name__} matvec produced wrong values"
    return _best_of_pair(naive, hoisted, 2)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if a fused kernel misses its minimum speedup or "
        "regresses >20%% vs the previous recorded run",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS_PATH, help="JSON output path"
    )
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    ctx = _make_context()
    measurements = {
        "rotate_and_sum_8": _measure_rotate_and_sum(ctx),
        "dnn_matvec": _measure_dnn_matvec(ctx),
    }

    report = {
        "poly_degree": ctx.params.poly_degree,
        "data_moduli": [int(p) for p in ctx.params.data_base.moduli],
        "tolerance": REGRESSION_TOLERANCE,
        "kernels": {},
    }
    failures = []
    for name, (naive_s, hoisted_s) in measurements.items():
        speedup = naive_s / hoisted_s
        report["kernels"][name] = {
            "naive_ms": round(1e3 * naive_s, 3),
            "hoisted_ms": round(1e3 * hoisted_s, 3),
            "speedup": round(speedup, 3),
            "min_speedup": MIN_SPEEDUP[name],
        }
        print(f"  {name:18s} naive {1e3 * naive_s:9.2f} ms   "
              f"hoisted {1e3 * hoisted_s:9.2f} ms   {speedup:5.2f}x "
              f"(floor {MIN_SPEEDUP[name]:.1f}x)")
        if speedup < MIN_SPEEDUP[name]:
            failures.append(
                f"{name}: {speedup:.2f}x is below the required "
                f"{MIN_SPEEDUP[name]:.1f}x speedup"
            )
        if previous is not None:
            prev = previous.get("kernels", {}).get(name)
            if prev is not None:
                reference = prev["speedup"]
                if speedup < reference * (1.0 - REGRESSION_TOLERANCE):
                    failures.append(
                        f"{name}: {speedup:.2f}x is more than "
                        f"{REGRESSION_TOLERANCE:.0%} below the previous run "
                        f"({reference:.2f}x)"
                    )

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check and failures:
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
