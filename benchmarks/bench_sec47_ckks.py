"""§4.7 — CKKS support on the BFV datapath.

The BFV hardware covers 95% of CKKS encode+encrypt and 56% of decode+
decrypt; the complex-conjugate remainder stays in software.  Published:
encode+encrypt 310 ms -> 18 ms (~18x), decode+decrypt 37 ms -> 16 ms
(~2.3x) on the IMX6 baseline at parameter set C.
"""

import pytest

from _report import write_report
from conftest import run_once

from repro.accel.ckks_support import (
    CKKS_DECRYPT_COVERAGE,
    CKKS_ENCRYPT_COVERAGE,
    CkksAcceleration,
)
from repro.platforms.client_device import Imx6SoftwareClient


def test_sec47_ckks_acceleration(benchmark):
    accel = CkksAcceleration()
    enc = run_once(benchmark, accel.encrypt_encode_time)
    dec = accel.decrypt_decode_time()
    client = Imx6SoftwareClient()
    sw_enc = client.ckks_encrypt_time(8192, 3)
    sw_dec = client.ckks_decrypt_time(8192, 3)

    write_report("sec47_ckks", [
        f"coverage: encrypt {CKKS_ENCRYPT_COVERAGE:.0%}, "
        f"decrypt {CKKS_DECRYPT_COVERAGE:.0%}",
        f"encode+encrypt: {sw_enc * 1e3:.0f} ms -> {enc * 1e3:.1f} ms "
        f"({sw_enc / enc:.1f}x; published 310 -> 18, ~18x)",
        f"decode+decrypt: {sw_dec * 1e3:.0f} ms -> {dec * 1e3:.1f} ms "
        f"({sw_dec / dec:.2f}x; published 37 -> 16, ~2.3x)",
    ])

    assert enc == pytest.approx(18e-3, rel=0.05)
    assert dec == pytest.approx(16e-3, rel=0.05)
    assert sw_enc / enc == pytest.approx(18, rel=0.1)
    assert sw_dec / dec == pytest.approx(2.3, rel=0.1)
    # Decryption's un-accelerated 44% bounds its speedup (Amdahl).
    assert sw_dec / dec < 1 / (1 - CKKS_DECRYPT_COVERAGE)
