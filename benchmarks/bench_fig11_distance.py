"""Figure 11 — tradeoffs across the five distance-kernel packings.

For representative (dimensions, points) pairs, runs each Figure 9 packing
variant functionally (counting real HE operations and ciphertexts) and
costs them with the platform models: server time, client time, and
communication.

Published shape (§5.4): stacked variants give high ciphertext utilization;
the *collapsed point-major* kernel is the client-optimized choice — it
minimizes client time and communication by spending extra masking
multiplies on the server.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.core.distance import KERNEL_VARIANTS, DistanceProblem
from repro.core.protocol import ClientCostModel
from repro.hecore.params import PARAMETER_SET_C
from repro.platforms.server import XeonServer

CASES = [(4, 32), (16, 16), (32, 8)]     # (dims, points)


def _evaluate(ckks_small):
    """Run every variant on every case; cost ops at parameter set C rates."""
    ctx = ckks_small
    server = XeonServer()
    client = ClientCostModel.software(PARAMETER_SET_C)
    ct_bytes = PARAMETER_SET_C.ciphertext_bytes()
    n8, k8 = PARAMETER_SET_C.poly_degree, PARAMETER_SET_C.logical_data_residues
    results = {}
    rng = np.random.default_rng(0)
    for dims, n_points in CASES:
        points = rng.uniform(-1, 1, (n_points, dims))
        query = rng.uniform(-1, 1, dims)
        for name, cls in KERNEL_VARIANTS.items():
            kernel = cls(ctx, DistanceProblem(n_points=n_points, dims=dims))
            ctx.make_galois_keys(kernel.required_rotation_steps())
            point_cts = kernel.encrypt_points(points)
            query_vecs = kernel.pack_query(query)
            query_cts = [ctx.encrypt(v) for v in query_vecs]
            before = dict(ctx.counts)
            out_cts = kernel.compute(point_cts, query_cts)
            delta = {op: ctx.counts[op] - before.get(op, 0) for op in ctx.counts}
            # Sanity: distances must be right before we cost anything.
            got = kernel.decode([np.real(ctx.decrypt(ct)) for ct in out_cts])
            assert np.allclose(got, kernel.reference(points, query), atol=0.1), name
            results[(dims, n_points, name)] = {
                "up_cts": len(query_cts),
                "down_cts": len(out_cts),
                "server_s": server.time_for_counts(delta, n8, k8),
                "client_s": (len(query_cts) * client.encrypt_s
                             + len(out_cts) * client.decrypt_s),
                "comm_b": (len(query_cts) + len(out_cts)) * ct_bytes,
            }
    return results


def test_fig11_distance_tradeoffs(benchmark, ckks_small):
    results = run_once(benchmark, _evaluate, ckks_small)

    rows = [
        (f"{d}x{n}", name, r["up_cts"], r["down_cts"],
         f"{r['server_s'] * 1e3:.1f} ms", f"{r['client_s'] * 1e3:.0f} ms",
         f"{r['comm_b'] / 1e6:.2f} MB")
        for (d, n, name), r in results.items()
    ]
    write_report("fig11_distance", format_table(
        ["dims x pts", "Variant", "Up", "Down", "Server", "Client", "Comm"],
        rows))

    for dims, n_points in CASES:
        by_name = {name: results[(dims, n_points, name)]
                   for name in KERNEL_VARIANTS}
        collapsed = by_name["collapsed"]
        stacked = by_name["stacked-point"]
        point_major = by_name["point-major"]

        # Collapsed: minimal client cost and communication in every case.
        for name, r in by_name.items():
            assert collapsed["comm_b"] <= r["comm_b"], (dims, n_points, name)
            assert collapsed["client_s"] <= r["client_s"], (dims, n_points, name)
        # ... bought with extra server work vs its stacked sibling.
        assert collapsed["server_s"] > stacked["server_s"]
        # Point-major sends one output ciphertext per point: worst comm for
        # many points.
        if n_points > 4:
            assert point_major["down_cts"] == n_points
            assert point_major["comm_b"] > collapsed["comm_b"]
