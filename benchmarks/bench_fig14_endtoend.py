"""Figure 14 — end-to-end client time & energy over Bluetooth vs local.

A full CHOCO-TACO reference implementation: accelerated client crypto plus
ciphertext transfers over a 10 mW / 22 Mbps Bluetooth link, compared to
local TFLite inference.

Published shape (§5.7): communication dominates end-to-end time (a ~24x
average time overhead vs local compute), but energy is competitive — VGG16
sees up to a 37% end-to-end energy saving over local inference.
"""

import math

import pytest

from _report import write_json, format_table, write_report
from conftest import run_once

from repro.experiments import end_to_end_study


def test_fig14_end_to_end(benchmark):
    data = run_once(benchmark, end_to_end_study)

    rows = [
        (name,
         f"{d['compute_s'] * 1e3:.1f}", f"{d['comm_s'] * 1e3:.0f}",
         f"{d['total_s'] * 1e3:.0f}", f"{d['local_s'] * 1e3:.1f}",
         f"{d['energy_j'] * 1e3:.2f}", f"{d['local_j'] * 1e3:.2f}",
         f"{d['local_j'] / d['energy_j']:.2f}x")
        for name, d in data.items()
    ]
    write_json("fig14_endtoend", data)
    write_report("fig14_endtoend", format_table(
        ["Network", "TACO ms", "Radio ms", "Total ms", "Local ms",
         "CHOCO mJ", "Local mJ", "Energy adv"], rows))

    overheads = []
    for name, d in data.items():
        # Communication dominates end-to-end time on Bluetooth.
        assert d["comm_s"] > d["compute_s"], name
        overheads.append(d["total_s"] / d["local_s"])

    mean_overhead = math.exp(sum(math.log(o) for o in overheads) / len(overheads))
    write_report("fig14_summary", [
        f"time overhead vs local (geomean): {mean_overhead:.1f}x "
        f"(published avg: 24x)",
        f"VGG16 energy: CHOCO {data['VGG16']['energy_j'] * 1e3:.2f} mJ vs "
        f"local {data['VGG16']['local_j'] * 1e3:.2f} mJ "
        f"(published: up to 37% saving)",
    ])

    # Published: ~24x average time overhead on Bluetooth.
    assert mean_overhead > 3
    # Energy: the largest network saves energy by offloading (VGG: 37%).
    assert data["VGG16"]["energy_j"] < data["VGG16"]["local_j"]
    # The tiniest network does not (battery math favors local there).
    assert data["LeNetSm"]["energy_j"] > data["LeNetSm"]["local_j"]
