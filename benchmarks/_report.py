"""Shared reporting for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it prints
the same rows/series the paper reports and also writes them under
``benchmarks/results/`` so runs leave an inspectable record.  Absolute
numbers come from this repository's simulators (see DESIGN.md's
substitution table); the asserted properties are the paper's qualitative
shapes — who wins, by roughly what factor, where crossovers fall.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, lines: Iterable[str]) -> str:
    """Print a report block and persist it to benchmarks/results/<name>.txt."""
    text = "\n".join(lines)
    block = f"\n===== {name} =====\n{text}\n"
    print(block)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> list:
    """Fixed-width table rows (headers first) for write_report."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    out = []
    for i, row in enumerate(cells):
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            out.append("  ".join("-" * w for w in widths))
    return out


def write_json(name: str, data) -> None:
    """Persist machine-readable experiment data next to the text report."""
    import json

    def default(obj):
        if hasattr(obj, "as_dict"):
            return obj.as_dict()
        if hasattr(obj, "__dict__"):
            return obj.__dict__
        return str(obj)

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(data, indent=2, default=default) + "\n")


def ascii_scatter(xs, ys, width: int = 64, height: int = 18,
                  logx: bool = False, logy: bool = False,
                  marks=None, xlabel: str = "x", ylabel: str = "y") -> list:
    """Render an ASCII scatter plot (for figure-style benchmark reports).

    *marks* optionally supplies a one-character marker per point.
    """
    import math

    def tx(v, log):
        return math.log10(v) if log else v

    pts = [(tx(x, logx), tx(y, logy)) for x, y in zip(xs, ys)]
    if not pts:
        return ["(no points)"]
    x_lo = min(p[0] for p in pts)
    x_hi = max(p[0] for p in pts)
    y_lo = min(p[1] for p in pts)
    y_hi = max(p[1] for p in pts)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for i, (px, py) in enumerate(pts):
        col = int((px - x_lo) / x_span * (width - 1))
        row = (height - 1) - int((py - y_lo) / y_span * (height - 1))
        mark = marks[i] if marks else "*"
        grid[row][col] = mark
    lines = [f"{ylabel}  (top={ys and max(ys):.3g}, bottom={min(ys):.3g}"
             f"{', log' if logy else ''})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f"  {xlabel}: {min(xs):.3g} .. {max(xs):.3g}"
                 f"{' (log)' if logx else ''}")
    return lines


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
