"""Benchmark-suite fixtures."""

import sys
import pathlib

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.hecore.bfv import BfvContext
from repro.hecore.ckks import CkksContext
from repro.hecore.params import SchemeType, small_test_parameters


@pytest.fixture(scope="session")
def bfv_small():
    """A fast BFV context for timing HE primitives."""
    params = small_test_parameters(SchemeType.BFV, poly_degree=2048,
                                   plain_bits=18, data_bits=(30, 30))
    ctx = BfvContext(params, seed=11)
    ctx.make_galois_keys([1])
    return ctx


@pytest.fixture(scope="session")
def ckks_small():
    params = small_test_parameters(SchemeType.CKKS, poly_degree=1024,
                                   data_bits=(30, 24, 24))
    return CkksContext(params, seed=12)


def run_once(benchmark, fn, *args, **kwargs):
    """Time *fn* exactly once (for heavyweight table generators)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
