"""Figure 15 — computation vs communication for convolution layers.

Microbenchmark study (§5.8): synthetic convolution layers sweeping image
size (2..32 by powers of two), channel count (32..512 by powers of two) and
filter size (1 or 3), plotting per-layer MACs against the communication
needed to move that layer's inputs/outputs — plus the real layers of VGG16
and SqueezeNet.

Published shape: energy-favorable workloads maximize MACs per MB.  Larger
filters add MACs (and classification power) at zero extra communication;
layers like SqueezeNet's sit low on the MACs-per-MB axis, VGG's sit high.
"""

import pytest

from _report import ascii_scatter, format_table, write_report
from conftest import run_once

from repro.experiments import conv_microbenchmark, network_layer_points
from repro.nn.models import squeezenet_cifar10, vgg16_cifar10


def test_fig15_macs_vs_communication(benchmark):
    points = run_once(benchmark, conv_microbenchmark)

    rows = [
        (p["label"], f"{p['macs'] / 1e6:.2f}", f"{p['comm'] / 1e6:.2f}",
         f"{p['macs'] / p['comm']:.0f}")
        for p in sorted(points, key=lambda p: p["macs"])[:: max(1, len(points) // 20)]
    ]
    write_report("fig15_micro", format_table(
        ["Layer", "MACs e6", "Comm MB", "MACs/B"], rows))

    by_key = {(p["channels"], p["image"], p["kernel"]): p for p in points}
    for (c, i, k), p in by_key.items():
        if k == 1 and (c, i, 3) in by_key:
            bigger = by_key[(c, i, 3)]
            # Larger filters: ~9x the MACs...
            assert bigger["macs"] == 9 * p["macs"]
            # ...at (nearly) no additional communication: the span grows only
            # when the redundancy margin crosses a power-of-two boundary.
            assert bigger["comm"] <= 2 * p["comm"]

    # MACs per byte spans orders of magnitude across layer shapes.
    ratios = [p["macs"] / p["comm"] for p in points]
    assert max(ratios) / min(ratios) > 50

    write_report("fig15_scatter", ascii_scatter(
        [p["macs"] / 1e6 for p in points],
        [p["comm"] / 1e6 for p in points],
        marks=["1" if p["kernel"] == 1 else "3" for p in points],
        logx=True, logy=True,
        xlabel="MACs (millions)", ylabel="communication (MB)",
    ))


def test_fig15_vgg_vs_squeezenet(benchmark):
    vgg_layers, sqz_layers = run_once(benchmark, lambda: (
        network_layer_points(vgg16_cifar10()),
        network_layer_points(squeezenet_cifar10()),
    ))
    vgg_ratio = sum(m for m, _ in vgg_layers) / sum(c for _, c in vgg_layers)
    sqz_ratio = sum(m for m, _ in sqz_layers) / sum(c for _, c in sqz_layers)
    write_report("fig15_networks", [
        f"VGG16 conv layers:      {vgg_ratio:.0f} MACs per comm byte",
        f"SqueezeNet conv layers: {sqz_ratio:.0f} MACs per comm byte",
        "published shape: VGG-like layers maximize MACs/MB (energy win); "
        "SqueezeNet-like layers break even or lose",
    ])
    # The §5.8 conclusion: VGG does more work per byte moved.
    assert vgg_ratio > 2 * sqz_ratio
