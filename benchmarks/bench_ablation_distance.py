"""Ablation — distance-kernel choice as the database scales.

Figure 11 fixes a few (dims, points) cases; this ablation sweeps the point
count to locate where each packing's costs come from.  The collapsed
kernel's client advantage over point-major grows linearly with the point
count (one downloaded ciphertext instead of n), while its extra server work
grows with the points packed per ciphertext.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.core.distance import (
    CollapsedPointMajorKernel,
    DistanceProblem,
    PointMajorKernel,
    StackedPointMajorKernel,
)


def _sweep(ckks_small):
    ctx = ckks_small
    rng = np.random.default_rng(4)
    out = []
    for n_points in (4, 8, 16, 32):
        problem = DistanceProblem(n_points=n_points, dims=4)
        points = rng.uniform(-1, 1, (n_points, 4))
        query = rng.uniform(-1, 1, 4)
        row = {"n": n_points}
        for cls in (PointMajorKernel, StackedPointMajorKernel,
                    CollapsedPointMajorKernel):
            kernel = cls(ctx, problem)
            ctx.make_galois_keys(kernel.required_rotation_steps())
            before = dict(ctx.counts)
            outs = kernel.compute(kernel.encrypt_points(points),
                                  kernel.encrypt_query(query))
            delta = {op: ctx.counts[op] - before.get(op, 0)
                     for op in ctx.counts}
            got = kernel.decode([np.real(ctx.decrypt(ct)) for ct in outs])
            assert np.allclose(got, kernel.reference(points, query),
                               atol=0.1), (cls.name, n_points)
            row[cls.name] = {
                "down": len(outs),
                "server_mults": delta.get("multiply_plain", 0),
                "server_rots": delta.get("rotate", 0),
            }
        out.append(row)
    return out


def test_ablation_distance_scaling(benchmark, ckks_small):
    sweep = run_once(benchmark, _sweep, ckks_small)

    rows = []
    for row in sweep:
        for name in ("point-major", "stacked-point", "collapsed"):
            d = row[name]
            rows.append((row["n"], name, d["down"], d["server_mults"],
                         d["server_rots"]))
    write_report("ablation_distance", format_table(
        ["Points", "Variant", "Output cts", "Server mults", "Server rots"],
        rows))

    for row in sweep:
        pm, st, col = (row["point-major"], row["stacked-point"],
                       row["collapsed"])
        # Point-major's downloads grow with n; collapsed stays at 1.
        assert pm["down"] == row["n"]
        assert col["down"] == 1
        # The collapse pass costs extra masking multiplies over stacking...
        assert col["server_mults"] > st["server_mults"]
    # ...and that premium grows with the points per ciphertext.
    premiums = [r["collapsed"]["server_mults"] - r["stacked-point"]["server_mults"]
                for r in sweep]
    assert premiums == sorted(premiums)
    assert premiums[-1] > premiums[0]
