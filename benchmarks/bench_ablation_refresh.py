"""Ablation — PageRank refresh frequency vs total client cost.

Figure 13 measures communication; this ablation adds client compute.  The
client pays one encryption and one decryption per refresh, but deeper
encrypted segments force larger parameters whose per-operation costs are
higher (software scales with N log N * k).  With CHOCO-TACO the crypto cost
shrinks ~2 orders of magnitude and the radio dominates, so the
communication-optimal schedule is also the end-to-end-optimal one.
"""

import math

import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.apps.pagerank import sweep_schedules
from repro.hecore.params import SchemeType
from repro.platforms.client_device import Imx6SoftwareClient
from repro.platforms.radio import BluetoothLink

TOTAL, NODES = 24, 64


def _study():
    client = Imx6SoftwareClient()
    radio = BluetoothLink()
    points = sweep_schedules(TOTAL, NODES, SchemeType.CKKS)
    rows = []
    for p in sorted(points, key=lambda x: x.segment):
        segments = TOTAL // p.segment
        n, k = p.choice.poly_degree, p.choice.residue_count
        sw_crypto = segments * (client.ckks_encrypt_time(n, k)
                                + client.ckks_decrypt_time(n, k))
        # CHOCO-TACO crypto: ~18 ms enc / 16 ms dec at set C, scaled by N.
        hw_crypto = segments * (18e-3 + 16e-3) * (n / 8192)
        comm = radio.transfer_time(p.communication_bytes)
        rows.append({
            "segment": p.segment, "params": f"N={n},k={k}",
            "comm_mb": p.communication_bytes / 1e6,
            "sw_total": sw_crypto + comm,
            "hw_total": hw_crypto + comm,
            "comm_s": comm,
        })
    return rows


def test_ablation_refresh_frequency(benchmark):
    rows = run_once(benchmark, _study)

    table = [(r["segment"], r["params"], f"{r['comm_mb']:.2f}",
              f"{r['sw_total']:.2f}", f"{r['hw_total']:.2f}")
             for r in rows]
    write_report("ablation_refresh", format_table(
        ["Segment", "Params", "Comm MB", "SW client s", "TACO client s"],
        table))

    by_segment = {r["segment"]: r for r in rows}
    best_comm = min(rows, key=lambda r: r["comm_mb"])
    best_hw = min(rows, key=lambda r: r["hw_total"])
    # With TACO, the end-to-end optimum follows the communication optimum
    # (crypto is off the critical path; communication ties are broken
    # toward fewer refreshes).
    assert best_hw["comm_mb"] <= best_comm["comm_mb"] * 1.01
    # Radio dominates TACO-accelerated end-to-end time everywhere.
    for r in rows:
        assert r["comm_s"] / r["hw_total"] > 0.5, r["segment"]
    # Per-iteration refresh is not optimal: some batching helps.
    assert best_comm["segment"] > 1
