"""Table 5 — the evaluated neural networks.

Regenerates every Table 5 column from this repository's model zoo and
protocol plan: layer census, MAC count, model sizes (float and 4-bit), and
per-inference communication — side by side with the published values.
Accuracy columns are published reference values (the evaluation never
consumes accuracy at runtime; see DESIGN.md).
"""

import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.experiments import table5_rows
from repro.nn.models import TABLE5_REFERENCE


def test_table5_networks(benchmark):
    table = run_once(benchmark, table5_rows)

    rows = []
    for name, d in table.items():
        ref = TABLE5_REFERENCE[name]
        c = d["census"]
        rows.append((
            name,
            f"{c['conv']}/{c['fc']}/{c['act']}/{c['pool']}",
            f"{d['macs_e6']:.2f} ({ref['macs_e6']})",
            "/".join(str(a) for a in ref["acc"]),
            f"{d['float_mb']:.2f} ({ref['size_mb'][0]})",
            f"{d['fourbit_mb']:.2f} ({ref['size_mb'][1]})",
            f"{d['comm_mb']:.2f} ({ref['comm_mb']})",
            d["params"],
        ))
    write_report("table5_networks", format_table(
        ["Network", "Cnv/FC/Act/Pl", "MACs e6 (pub)", "% Acc (pub)",
         "Float MB (pub)", "4b MB (pub)", "Comm MB (pub)", "Params"], rows))

    for name, d in table.items():
        ref = TABLE5_REFERENCE[name]
        assert d["census"] == ref["layers"], name
        assert abs(d["macs_e6"] - ref["macs_e6"]) / ref["macs_e6"] < 0.03, name
        assert ref["comm_mb"] / 2 < d["comm_mb"] < ref["comm_mb"] * 2, name

    # Communication ordering follows network scale.
    comm = {k: v["comm_mb"] for k, v in table.items()}
    assert comm["LeNetSm"] < comm["LeNetLg"] < comm["SqzNet"] < comm["VGG16"]
