"""IR scheduler speedups: scheduled programs vs the hand-wired direct paths.

Gate for the ciphertext-program IR and its fusing scheduler
(:mod:`repro.core.ir`).  Two measurements, both BFV at N=4096:

* ``fig15_matvec`` — the Figure 15 style fully-connected diagonal matvec.
  Scheduler-on (traced IR, weighted-sum fusion, cached plaintext NTT
  tables, batch-encoded constants) against the current hand-wired path
  (``use_scheduler=False``: per-call encodes + one-shot
  ``rotate_weighted_sum``).  Must win by at least 1.2x.
* ``dnn_slice`` — a 2-layer dnn slice (3x3 conv then BSGS
  fully-connected), scheduler-on vs scheduler-off, exactness asserted at
  decrypt level.  The scheduler must win by at least 1.1x, and its
  NTT-residency pass must demonstrably fire (``ntt_elided`` > 0 across
  repeated calls).

``--check`` exits non-zero on a missed floor, a missing residency signal,
or a >20% regression against the previous recorded run.  Results go to
``benchmarks/results/BENCH_ir.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.linalg import BsgsMatVec, Conv2dSpec, EncryptedConv2d, EncryptedMatVec
from repro.hecore.bfv import BfvContext
from repro.hecore.params import SchemeType, small_test_parameters

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_ir.json"

#: Scheduler-on must beat the hand-wired matvec path by 1.2x (issue floor);
#: the dnn slice floor is set well under the ~1.7x typically measured.
MIN_SPEEDUP = {
    "fig15_matvec": 1.2,
    "dnn_slice": 1.1,
}

REGRESSION_TOLERANCE = 0.20

MATVEC_DIM = 32
CONV_SPEC = dict(in_channels=1, out_channels=2, height=8, width=8,
                 kernel_size=3)
FC_SHAPE = (16, 32)


def _best_of_pair(direct_fn, scheduled_fn, reps, rounds=6):
    """Seconds-per-op for both implementations, interleaving their timing
    windows so background load drift hits each side equally, and taking the
    fastest window per side."""
    direct_fn()  # warm caches / NTT plans / traced schedules
    scheduled_fn()
    bests = [float("inf"), float("inf")]
    for _ in range(rounds):
        for i, fn in enumerate((direct_fn, scheduled_fn)):
            start = time.perf_counter()
            for _ in range(reps):
                fn()
            bests[i] = min(bests[i], (time.perf_counter() - start) / reps)
    return tuple(bests)


def _make_context():
    params = small_test_parameters(SchemeType.BFV, poly_degree=4096,
                                   plain_bits=16, data_bits=(30, 30))
    return BfvContext(params, seed=b"bench-ir")


def _measure_fig15_matvec(ctx):
    """Scheduled diagonal matvec vs the hand-wired fused path."""
    rng = np.random.default_rng(7)
    matrix = rng.integers(1, 16, size=(MATVEC_DIM, MATVEC_DIM))
    scheduled_mv = EncryptedMatVec(ctx, matrix)
    direct_mv = EncryptedMatVec(ctx, matrix, use_scheduler=False)
    ctx.make_galois_keys(scheduled_mv.required_rotation_steps())
    vec = rng.integers(0, 64, size=MATVEC_DIM)
    ct = ctx.encrypt(ctx.encode(scheduled_mv.pack_input(vec).astype(np.int64)))

    t = ctx.params.plain_modulus
    reference = scheduled_mv.reference(vec) % t
    for mv in (scheduled_mv, direct_mv):
        got = mv.unpack_output(np.asarray(ctx.decrypt(mv(ct))))
        assert np.array_equal(got % t, reference), \
            "scheduled matvec produced wrong values"

    report = scheduled_mv.schedule_report()
    assert report.weighted_sum_spans == 1, \
        "scheduler failed to fuse the diagonal add-tree into one span"
    assert report.batched_consts == MATVEC_DIM, \
        "scheduler failed to batch-encode the diagonal constants"

    return _best_of_pair(lambda: direct_mv(ct), lambda: scheduled_mv(ct), 2)


def _measure_dnn_slice(ctx):
    """2-layer dnn slice (conv then BSGS fc), scheduled vs direct."""
    rng = np.random.default_rng(11)
    spec = Conv2dSpec(**CONV_SPEC)
    weights = rng.integers(-3, 4, (spec.out_channels, spec.in_channels,
                                   spec.kernel_size, spec.kernel_size))
    fc_matrix = rng.integers(-3, 4, FC_SHAPE)

    scheduled_conv = EncryptedConv2d(ctx, spec, weights)
    direct_conv = EncryptedConv2d(ctx, spec, weights, use_scheduler=False)
    scheduled_fc = BsgsMatVec(ctx, fc_matrix)
    direct_fc = BsgsMatVec(ctx, fc_matrix, use_scheduler=False)
    ctx.make_galois_keys(scheduled_conv.required_rotation_steps()
                         | scheduled_fc.required_rotation_steps())

    image = rng.integers(0, 4, (spec.in_channels, spec.height, spec.width))
    packed = scheduled_conv.packing.pack(
        [image[c].ravel() for c in range(spec.in_channels)])
    conv_ct = ctx.encrypt(packed.astype(np.int64))
    fc_vec = rng.integers(0, 8, FC_SHAPE[1])
    fc_ct = ctx.encrypt(scheduled_fc.pack_input(fc_vec).astype(np.int64))

    # Exactness: the scheduled slice decrypts identically to the direct one.
    for a, b in ((scheduled_conv, direct_conv), (scheduled_fc, direct_fc)):
        got = np.asarray(ctx.decrypt(a(conv_ct if a is scheduled_conv
                                       else fc_ct)))
        want = np.asarray(ctx.decrypt(b(conv_ct if a is scheduled_conv
                                        else fc_ct)))
        assert np.array_equal(got, want), \
            "scheduled dnn slice diverged from the direct path"

    # Residency telemetry: repeated scheduled calls must elide NTT pairs.
    before = ctx.counts.get("ntt_elided", 0)
    scheduled_conv(conv_ct)
    scheduled_fc(fc_ct)
    elided = ctx.counts.get("ntt_elided", 0) - before
    assert elided > 0, "NTT-residency pass did not fire on the dnn slice"

    def direct():
        direct_conv(conv_ct)
        direct_fc(fc_ct)

    def scheduled():
        scheduled_conv(conv_ct)
        scheduled_fc(fc_ct)

    return _best_of_pair(direct, scheduled, 2) + (elided,)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if the scheduler misses its floors or regresses "
        ">20%% vs the previous recorded run",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS_PATH, help="JSON output path"
    )
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    ctx = _make_context()
    matvec = _measure_fig15_matvec(ctx)
    slice_direct, slice_sched, elided = _measure_dnn_slice(ctx)
    measurements = {
        "fig15_matvec": matvec,
        "dnn_slice": (slice_direct, slice_sched),
    }

    report = {
        "poly_degree": ctx.params.poly_degree,
        "data_moduli": [int(p) for p in ctx.params.data_base.moduli],
        "tolerance": REGRESSION_TOLERANCE,
        "ntt_elided_per_slice": int(elided),
        "kernels": {},
    }
    failures = []
    for name, (direct_s, sched_s) in measurements.items():
        speedup = direct_s / sched_s
        report["kernels"][name] = {
            "direct_ms": round(1e3 * direct_s, 3),
            "scheduled_ms": round(1e3 * sched_s, 3),
            "speedup": round(speedup, 3),
            "min_speedup": MIN_SPEEDUP[name],
        }
        print(f"  {name:14s} direct {1e3 * direct_s:9.2f} ms   "
              f"scheduled {1e3 * sched_s:9.2f} ms   {speedup:5.2f}x "
              f"(floor {MIN_SPEEDUP[name]:.1f}x)")
        if speedup < MIN_SPEEDUP[name]:
            failures.append(
                f"{name}: {speedup:.2f}x is below the required "
                f"{MIN_SPEEDUP[name]:.1f}x speedup"
            )
        if previous is not None:
            prev = previous.get("kernels", {}).get(name)
            if prev is not None:
                reference = prev["speedup"]
                if speedup < reference * (1.0 - REGRESSION_TOLERANCE):
                    failures.append(
                        f"{name}: {speedup:.2f}x is more than "
                        f"{REGRESSION_TOLERANCE:.0%} below the previous run "
                        f"({reference:.2f}x)"
                    )
    print(f"  ntt pairs elided per scheduled dnn slice: {elided}")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check and failures:
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
