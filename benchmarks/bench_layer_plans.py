"""Per-layer protocol plans for every Table 5 network.

Not a single paper figure — the connective tissue behind several: the
round-by-round schedule (uploads, downloads, server rotations, MACs) that
Table 5's communication, Figure 12's client times, and Figure 15's
per-layer points are all integrals of.  Writing the full plans into the
results directory makes every aggregate auditable.
"""

import pytest

from _report import write_report
from conftest import run_once

from repro.apps.dnn import ClientAidedDnnPlan
from repro.nn.models import NETWORK_BUILDERS


def test_layer_plans(benchmark):
    plans = run_once(benchmark, lambda: {
        name: ClientAidedDnnPlan(build())
        for name, build in NETWORK_BUILDERS.items()
    })

    lines = []
    for name, plan in plans.items():
        lines.append(plan.describe())
        lines.append("")
    write_report("layer_plans", lines)

    for name, plan in plans.items():
        # Round accounting must tie out with the aggregates.
        assert sum(r.up_cts for r in plan.rounds) == plan.encrypt_ops
        assert sum(r.down_cts for r in plan.rounds) == plan.decrypt_ops
        assert sum(r.macs for r in plan.rounds) == pytest.approx(
            plan.network.total_macs(), rel=0.01)
        # Every round moves at least one ciphertext each way.
        for rnd in plan.rounds:
            assert rnd.up_cts >= 1 and rnd.down_cts >= 1

    # The round counts follow network depth.
    assert len(plans["VGG16"].rounds) > len(plans["SqzNet"].rounds) \
        > len(plans["LeNetSm"].rounds)
