"""Table 1 — HE operation complexity and noise growth.

Times every Table 1 operation on the functional BFV scheme, checks the
complexity ordering (adds are cheap and linear; multiplies and rotations
carry NTT/key-switching costs), and verifies the noise-growth classes
(add: small, plain multiply: moderate, ciphertext multiply: large,
rotate: small).
"""

import time

import numpy as np
import pytest

from _report import format_table, write_report
from conftest import run_once


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_table1_operation_costs_and_noise(benchmark, bfv_small):
    ctx = bfv_small
    t = ctx.params.plain_modulus
    rng = np.random.default_rng(0)
    values = rng.integers(0, t, ctx.params.poly_degree, dtype=np.int64)
    pt = ctx.encode(values)
    ct = ctx.encrypt(values)
    ct2 = ctx.encrypt(np.roll(values, 3))
    ctx.relin_keys()

    def measure():
        return {
            "Encrypt": _time(lambda: ctx.encrypt(pt)),
            "Decrypt": _time(lambda: ctx.decrypt(ct)),
            "Plaintext Add": _time(lambda: ctx.add_plain(ct, pt)),
            "Ciphertext Add": _time(lambda: ctx.add(ct, ct2)),
            "Plaintext Multiply": _time(lambda: ctx.multiply_plain(ct, pt)),
            "Ciphertext Multiply": _time(lambda: ctx.multiply(ct, ct2), repeats=1),
            "Ciphertext Rotate": _time(lambda: ctx.rotate_rows(ct, 1)),
        }

    times = run_once(benchmark, measure)

    fresh = ctx.noise_budget(ct)
    budgets = {
        "Plaintext Add": ctx.noise_budget(ctx.add_plain(ct, pt)),
        "Ciphertext Add": ctx.noise_budget(ctx.add(ct, ct2)),
        "Plaintext Multiply": ctx.noise_budget(ctx.multiply_plain(ct, pt)),
        "Ciphertext Multiply": ctx.noise_budget(ctx.multiply(ct, ct2)),
        "Ciphertext Rotate": ctx.noise_budget(ctx.rotate_rows(ct, 1)),
    }
    growth = {op: fresh - b for op, b in budgets.items()}

    rows = [
        (op, f"{times[op] * 1e3:.3f} ms",
         growth.get(op, "N/A") if op in growth else "N/A")
        for op in times
    ]
    write_report("table1_ops", format_table(
        ["Operation", "Time", "Noise growth (bits)"], rows))

    # Complexity ordering: adds are O(N*r), everything else carries NTTs.
    assert times["Ciphertext Add"] < times["Plaintext Multiply"]
    assert times["Plaintext Add"] < times["Plaintext Multiply"]
    assert times["Plaintext Multiply"] < times["Ciphertext Multiply"]
    # Noise classes: small / moderate / large (Table 1's last column).
    assert growth["Ciphertext Add"] <= 2
    assert growth["Ciphertext Rotate"] <= 4
    assert growth["Plaintext Add"] <= 2
    assert growth["Plaintext Multiply"] > growth["Ciphertext Add"]
    assert growth["Ciphertext Multiply"] >= growth["Plaintext Multiply"]


def test_encrypt_scaling_with_n(benchmark):
    """Encrypt is O(N log N x r): doubling N at least doubles the time."""
    from repro.hecore.bfv import BfvContext
    from repro.hecore.params import SchemeType, small_test_parameters

    def build_and_time():
        out = {}
        for n in (1024, 2048, 4096):
            params = small_test_parameters(SchemeType.BFV, poly_degree=n,
                                           plain_bits=16, data_bits=(30, 30))
            ctx = BfvContext(params, seed=n)
            pt = ctx.encode([1, 2, 3])
            out[n] = _time(lambda: ctx.encrypt(pt))
        return out

    times = run_once(benchmark, build_and_time)
    write_report("table1_encrypt_scaling", [
        f"N={n}: {t * 1e3:.2f} ms" for n, t in times.items()
    ])
    assert times[4096] > times[1024]
