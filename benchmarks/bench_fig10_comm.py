"""Figure 10 — communication vs prior privacy-preserving DNN protocols.

Single-image inference communication for CHOCO's LeNet-Large (MNIST) and
SqueezeNet (CIFAR-10) — measured from this repository's protocol plan —
against the published totals of the prior protocols.  Published shape:
improvements from 14x (LoLa) up to 2948x, ~90x vs Gazelle on CIFAR-10.
"""

import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.baselines.mpc import (
    derived_delphi_class_comm_mb,
    derived_gazelle_class_comm_mb,
)
from repro.baselines.protocols import protocols_for
from repro.experiments import figure10_comparison
from repro.nn.models import NETWORK_BUILDERS


def test_fig10_communication(benchmark):
    data = run_once(benchmark, figure10_comparison)

    rows = []
    for (net, dataset), (choco_mb, ratios) in data.items():
        for proto in protocols_for(dataset):
            rows.append((dataset, proto.name, proto.technology,
                         f"{proto.comm_mb:.1f}",
                         f"{choco_mb:.2f} ({net})",
                         f"{ratios[proto.name]:.0f}x"))
    write_report("fig10_comm", format_table(
        ["Dataset", "Protocol", "Tech", "Prior MB", "CHOCO MB",
         "Improvement"], rows))

    all_ratios = []
    for (_, dataset), (_, ratios) in data.items():
        all_ratios.extend(ratios.values())
        for name, r in ratios.items():
            # Orders of magnitude against every protocol.
            assert r > 10, (dataset, name, r)

    # Published range: 14x .. 2948x (ours shifts slightly because CHOCO's
    # communication here is our measured plan, not the published column).
    assert min(all_ratios) > 8
    assert max(all_ratios) > 1000

    # Gazelle/CIFAR is the closest comparable: tens of x, not thousands.
    _, (sqz_mb, cifar_ratios) = next(
        item for item in data.items() if item[0][1] == "CIFAR-10")
    assert 30 < cifar_ratios["Gazelle"] < 200

    # Cross-check: the garbled-circuit model *derives* the hybrid baselines'
    # magnitudes from first principles (activations x share bits x labels).
    sqz = NETWORK_BUILDERS["SqzNet"]()
    derived_gazelle = derived_gazelle_class_comm_mb(sqz)
    derived_delphi = derived_delphi_class_comm_mb(sqz)
    write_report("fig10_derived", [
        f"Gazelle-class (derived GC model): {derived_gazelle:8.0f} MB "
        f"(published 1236)",
        f"Delphi-class  (derived GC model): {derived_delphi:8.0f} MB "
        f"(published 40690)",
        f"CHOCO (measured, this repo):      {sqz_mb:8.1f} MB",
    ])
    assert derived_gazelle / sqz_mb > 10
    assert derived_delphi > derived_gazelle
