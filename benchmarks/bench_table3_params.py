"""Table 3 — CHOCO's HE parameter selections and ciphertext sizes.

Regenerates the exact Table 3 rows (label, scheme, N, log2 q, {k}, log2 t,
serialized size) and asserts the published sizes: 262,144 B for sets A and
C, 131,072 B for set B — plus the §5.3 claim that CHOCO halves the
ciphertext against SEAL's default at N=8192.
"""

import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.hecore.params import (
    EncryptionParameters,
    PARAMETER_SET_A,
    PARAMETER_SET_B,
    PARAMETER_SET_C,
    SchemeType,
    seal_default_parameters,
)


def test_table3_parameter_sets(benchmark):
    sets = run_once(benchmark, lambda: [
        PARAMETER_SET_A, PARAMETER_SET_B, PARAMETER_SET_C
    ])
    rows = []
    for p in sets:
        rows.append((
            p.label, p.scheme.value.upper(), p.poly_degree, p.total_coeff_bits,
            list(p.logical_coeff_bits), p.plain_bits or "N/A",
            p.ciphertext_bytes(),
        ))
    write_report("table3_params", format_table(
        ["Label", "Scheme", "N", "log2 q", "{k}", "log2 t", "Size (Bytes)"], rows))

    assert PARAMETER_SET_A.ciphertext_bytes() == 262144
    assert PARAMETER_SET_B.ciphertext_bytes() == 131072
    assert PARAMETER_SET_C.ciphertext_bytes() == 262144
    # All chosen for at least 128-bit security (construction-enforced).
    assert PARAMETER_SET_A.total_coeff_bits == 175
    assert PARAMETER_SET_B.total_coeff_bits == 109
    assert PARAMETER_SET_C.total_coeff_bits == 180


def test_choco_halves_seal_default_ciphertext(benchmark):
    """§5.3: 50% size reduction vs SEAL's default at N=8192."""
    default = run_once(benchmark, seal_default_parameters, 8192)
    assert (PARAMETER_SET_A.ciphertext_bytes()
            == default.ciphertext_bytes() // 2)
    write_report("table3_vs_default", [
        f"SEAL default (N=8192, k={default.logical_residue_count}): "
        f"{default.ciphertext_bytes()} B",
        f"CHOCO set A  (N=8192, k={PARAMETER_SET_A.logical_residue_count}): "
        f"{PARAMETER_SET_A.ciphertext_bytes()} B",
    ])


def test_parameter_creation_speed(benchmark):
    """Parameter instantiation (prime search included) stays interactive."""
    params = benchmark(
        EncryptionParameters.create,
        SchemeType.BFV, 4096, (36, 36, 37), 18,
    )
    assert params.ciphertext_bytes() == 131072
