"""HE primitive throughput across polynomial degrees.

Not a paper figure — engineering telemetry for this library: steady-state
timings of the hot primitives so performance regressions surface in the
benchmark history.  Uses pytest-benchmark's statistics (multiple rounds)
rather than one-shot timing.

Run directly (``python benchmarks/bench_he_throughput.py``) it measures the
stacked-kernel hot path (forward/inverse NTT, dyadic multiply, key switch,
rotate, BFV ciphertext multiply) at the seed parameter sets and writes
``benchmarks/results/BENCH_he_kernels.json`` with the pre-refactor baseline,
current throughput, and speedup per op.  ``--check`` exits non-zero if any op
regresses more than 20% against the previous recorded run (or, on a first
run, against the pre-refactor baseline).
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.hecore.bfv import BfvContext
from repro.hecore.ckks import CkksContext
from repro.hecore.params import SchemeType, small_test_parameters


@pytest.fixture(scope="module", params=[1024, 4096])
def bfv_ctx(request):
    n = request.param
    params = small_test_parameters(SchemeType.BFV, poly_degree=n,
                                   plain_bits=16, data_bits=(30, 30))
    ctx = BfvContext(params, seed=n)
    ctx.make_galois_keys([1])
    return ctx


@pytest.fixture(scope="module")
def bfv_ct(bfv_ctx):
    return bfv_ctx.encrypt(np.arange(64, dtype=np.int64))


def test_throughput_encrypt(benchmark, bfv_ctx):
    pt = bfv_ctx.encode([1, 2, 3])
    benchmark(bfv_ctx.encrypt, pt)


def test_throughput_decrypt(benchmark, bfv_ctx, bfv_ct):
    benchmark(bfv_ctx.decrypt, bfv_ct)


def test_throughput_add(benchmark, bfv_ctx, bfv_ct):
    benchmark(bfv_ctx.add, bfv_ct, bfv_ct)


def test_throughput_multiply_plain(benchmark, bfv_ctx, bfv_ct):
    pt = bfv_ctx.encode(np.arange(bfv_ctx.params.poly_degree, dtype=np.int64)
                        % bfv_ctx.params.plain_modulus)
    benchmark(bfv_ctx.multiply_plain, bfv_ct, pt)


def test_throughput_rotate(benchmark, bfv_ctx, bfv_ct):
    benchmark(bfv_ctx.rotate_rows, bfv_ct, 1)


def test_throughput_ckks_multiply(benchmark, ckks_small):
    ct = ckks_small.encrypt(np.linspace(0, 1, 16))
    ckks_small.relin_keys()
    benchmark(ckks_small.multiply, ct, ct)


def test_throughput_ntt(benchmark):
    from repro.hecore import ntt
    from repro.hecore.primes import generate_ntt_primes

    n = 8192
    p = generate_ntt_primes(29, 1, n)[0]
    plan = ntt.get_plan(n, p)
    data = np.random.default_rng(0).integers(0, p, n, dtype=np.int64)
    benchmark(plan.forward, data)


# ---------------------------------------------------------------------------
# Standalone kernel-throughput report (BENCH_he_kernels.json)
# ---------------------------------------------------------------------------

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_he_kernels.json"

#: Throughput (ops/sec, best-of-5 rounds) of the pre-stacked-kernel hecore on
#: the reference container, recorded immediately before the NttStackPlan
#: refactor landed.  These stay fixed so every later run reports its speedup
#: against the same pre-refactor floor.
PRE_REFACTOR_BASELINE = {
    "B": {
        "ntt_forward": 396.14,
        "ntt_inverse": 375.81,
        "dyadic_multiply": 11856.6,
        "key_switch": 43.00,
        "rotate": 43.07,
        "bfv_multiply": 4.523,
    },
    "A": {
        "ntt_forward": 146.32,
        "ntt_inverse": 149.67,
        "dyadic_multiply": 5443.6,
        "key_switch": 14.47,
        "rotate": 13.32,
        "bfv_multiply": 1.379,
    },
}

REGRESSION_TOLERANCE = 0.20

#: Cross-run comparisons measure absolute throughput on a shared host, where
#: back-to-back runs routinely swing ~30% with background load; the fixed
#: pre-refactor floors above are the hard gate, and the previous-run check
#: only catches order-of-magnitude slips.
CROSS_RUN_TOLERANCE = 0.40


def _best_of(fn, reps, rounds=5):
    """Ops/sec from the fastest of *rounds* timing windows.

    Best-of (not mean) because the benchmark host is shared: the minimum over
    several windows is the least noise-contaminated estimate of the kernel's
    actual cost.
    """
    fn()  # warm caches / plan construction outside the timed region
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return 1.0 / best


def _measure_set(params):
    """Throughput of each hot kernel at one BFV parameter set."""
    from repro.hecore import ntt
    from repro.hecore.bfv import BfvContext
    from repro.hecore.keys import switch_key

    n = params.poly_degree
    base = params.data_base
    plan = ntt.get_stack_plan(n, base.moduli)
    rng = np.random.default_rng(0)
    stack = np.stack([rng.integers(0, p, n, dtype=np.int64) for p in base.moduli])
    evals = plan.forward(stack)

    ctx = BfvContext(params, seed=b"bench-kernels")
    ctx.make_galois_keys([1])
    relin = ctx.relin_keys()
    ct1 = ctx.encrypt(list(range(16)))
    ct2 = ctx.encrypt(list(range(1, 17)))
    from repro.hecore.polyring import RnsPoly

    target = RnsPoly(base, n, stack.copy(), is_ntt=False)

    scale = 4096 // n if n < 4096 else 1
    results = {}
    results["ntt_forward"] = _best_of(lambda: plan.forward(stack), 100 * scale)
    results["ntt_inverse"] = _best_of(lambda: plan.inverse(evals), 100 * scale)
    results["dyadic_multiply"] = _best_of(
        lambda: plan.dyadic_multiply(evals, evals), 400 * scale
    )
    results["key_switch"] = _best_of(
        lambda: switch_key(target, relin, params), 8, rounds=4
    )
    results["rotate"] = _best_of(lambda: ctx.rotate_rows(ct1, 1), 8, rounds=4)
    results["bfv_multiply"] = _best_of(lambda: ctx.multiply(ct1, ct2), 3, rounds=4)
    return results


def main(argv=None):
    from repro.hecore.params import PARAMETER_SET_A, PARAMETER_SET_B

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if any op regresses >20%% vs the previous run "
        "(first run: vs the pre-refactor baseline)",
    )
    parser.add_argument(
        "--sets",
        default="B,A",
        help="comma-separated parameter sets to measure (default: B,A)",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS_PATH, help="JSON output path"
    )
    args = parser.parse_args(argv)

    presets = {"A": PARAMETER_SET_A, "B": PARAMETER_SET_B}
    names = [s.strip().upper() for s in args.sets.split(",") if s.strip()]
    if not names:
        parser.error("--sets must name at least one parameter set (A, B)")
    unknown = [n for n in names if n not in presets]
    if unknown:
        parser.error(
            f"unknown parameter set(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(presets))}"
        )
    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    report = {"tolerance": REGRESSION_TOLERANCE, "sets": {}}
    failures = []
    for name in names:
        params = presets[name]
        print(f"set {name} (N={params.poly_degree}, "
              f"k={len(params.data_base)} data residues)")
        current = _measure_set(params)
        baseline = PRE_REFACTOR_BASELINE[name]
        ops = {}
        for op, rate in current.items():
            speedup = rate / baseline[op]
            ops[op] = {
                "baseline_ops_per_sec": baseline[op],
                "current_ops_per_sec": round(rate, 3),
                "speedup": round(speedup, 3),
            }
            print(f"  {op:16s} {rate:10.2f}/s   baseline {baseline[op]:10.2f}/s"
                  f"   {speedup:5.2f}x")
            reference = baseline[op]
            source = "pre-refactor baseline"
            tolerance = REGRESSION_TOLERANCE
            if previous is not None:
                prev_op = (
                    previous.get("sets", {}).get(name, {}).get("ops", {}).get(op)
                )
                if prev_op is not None:
                    reference = prev_op["current_ops_per_sec"]
                    source = "previous run"
                    tolerance = CROSS_RUN_TOLERANCE
            if rate < reference * (1.0 - tolerance):
                failures.append(
                    f"set {name} {op}: {rate:.2f}/s is more than "
                    f"{tolerance:.0%} below the {source} "
                    f"({reference:.2f}/s)"
                )
        report["sets"][name] = {
            "poly_degree": params.poly_degree,
            "data_moduli": [int(p) for p in params.data_base.moduli],
            "ops": ops,
        }

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check and failures:
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
