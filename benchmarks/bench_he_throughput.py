"""HE primitive throughput across polynomial degrees.

Not a paper figure — engineering telemetry for this library: steady-state
timings of the hot primitives so performance regressions surface in the
benchmark history.  Uses pytest-benchmark's statistics (multiple rounds)
rather than one-shot timing.
"""

import numpy as np
import pytest

from repro.hecore.bfv import BfvContext
from repro.hecore.ckks import CkksContext
from repro.hecore.params import SchemeType, small_test_parameters


@pytest.fixture(scope="module", params=[1024, 4096])
def bfv_ctx(request):
    n = request.param
    params = small_test_parameters(SchemeType.BFV, poly_degree=n,
                                   plain_bits=16, data_bits=(30, 30))
    ctx = BfvContext(params, seed=n)
    ctx.make_galois_keys([1])
    return ctx


@pytest.fixture(scope="module")
def bfv_ct(bfv_ctx):
    return bfv_ctx.encrypt(np.arange(64, dtype=np.int64))


def test_throughput_encrypt(benchmark, bfv_ctx):
    pt = bfv_ctx.encode([1, 2, 3])
    benchmark(bfv_ctx.encrypt, pt)


def test_throughput_decrypt(benchmark, bfv_ctx, bfv_ct):
    benchmark(bfv_ctx.decrypt, bfv_ct)


def test_throughput_add(benchmark, bfv_ctx, bfv_ct):
    benchmark(bfv_ctx.add, bfv_ct, bfv_ct)


def test_throughput_multiply_plain(benchmark, bfv_ctx, bfv_ct):
    pt = bfv_ctx.encode(np.arange(bfv_ctx.params.poly_degree, dtype=np.int64)
                        % bfv_ctx.params.plain_modulus)
    benchmark(bfv_ctx.multiply_plain, bfv_ct, pt)


def test_throughput_rotate(benchmark, bfv_ctx, bfv_ct):
    benchmark(bfv_ctx.rotate_rows, bfv_ct, 1)


def test_throughput_ckks_multiply(benchmark, ckks_small):
    ct = ckks_small.encrypt(np.linspace(0, 1, 16))
    ckks_small.relin_keys()
    benchmark(ckks_small.multiply, ct, ct)


def test_throughput_ntt(benchmark):
    from repro.hecore import ntt
    from repro.hecore.primes import generate_ntt_primes

    n = 8192
    p = generate_ntt_primes(29, 1, n)[0]
    plan = ntt.get_plan(n, p)
    data = np.random.default_rng(0).integers(0, p, n, dtype=np.int64)
    benchmark(plan.forward, data)
