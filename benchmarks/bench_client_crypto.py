"""Batched client-crypto throughput: stacked kernels vs looped single-shot.

Engineering telemetry for the batched client-crypto engine
(:func:`repro.hecore.bfv.BfvContext.encrypt_many` /
:func:`~repro.hecore.bfv.BfvContext.decrypt_many`): M ciphertexts share one
``(M, N)`` sampler draw, one stacked forward/inverse NTT over the
``(M*k, N)`` residue block, and one vectorized RNS scale-and-round, instead
of M independent passes.  Two kernels, each at N=2048 and N=4096:

* ``encrypt`` — ``encrypt_many`` of M=16 packed vectors vs a loop of
  single-shot ``encrypt`` calls;
* ``decrypt`` — ``decrypt_many`` (vectorized CRT scaling with float
  correction) vs a loop of the exact big-integer decrypt path it replaced
  (``compose`` + per-coefficient ``scale_and_round``).  The N=4096 context
  uses three 30-bit data limbs so the baseline pays the real multi-limb
  big-integer cost.

Both assert value-level equality between the implementations before timing
anything.  ``--check`` exits non-zero when a batched kernel falls below its
minimum required speedup (3x for decrypt at N=4096, per the batching issue)
or regresses more than 20% against the previous recorded run.  Results go
to ``benchmarks/results/BENCH_client_crypto.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.hecore.bfv import BfvContext
from repro.hecore.params import SchemeType, small_test_parameters

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_client_crypto.json"

#: Acceptance floors from the batching issue: the 3x decrypt floor at
#: N=4096 (three data limbs, bigint baseline) is the hard criterion.  The
#: N=2048 decrypt floor is lower because its two-limb modulus keeps even
#: the baseline compose vectorized; the encrypt floors only guard against
#: the batch path degrading below looped speed — encrypt is NTT-bound, so
#: batching buys amortized Python/sampling overhead, not kernel time.
MIN_SPEEDUP = {
    "encrypt_n2048": 0.9,
    "encrypt_n4096": 0.9,
    "decrypt_n2048": 1.8,
    "decrypt_n4096": 3.0,
}

REGRESSION_TOLERANCE = 0.20

BATCH = 16


def _best_of_pair(looped_fn, batched_fn, reps, rounds=6):
    """Seconds-per-op for both implementations, interleaving their timing
    windows so background load drift hits each side equally, and taking the
    fastest window per side."""
    looped_fn()  # warm caches / NTT plans / restricted secret keys
    batched_fn()
    bests = [float("inf"), float("inf")]
    for _ in range(rounds):
        for i, fn in enumerate((looped_fn, batched_fn)):
            start = time.perf_counter()
            for _ in range(reps):
                fn()
            bests[i] = min(bests[i], (time.perf_counter() - start) / reps)
    return tuple(bests)


def _make_context(degree):
    # N=4096 runs three data limbs (q ~ 90 bits): past the 62-bit envelope
    # of the vectorized int64 compose, so the looped baseline pays the
    # genuine per-coefficient big-integer CRT the RNS path replaces — the
    # regime the 3x floor is calibrated against.  N=2048 keeps the two-limb
    # set (q ~ 60 bits) where even the baseline compose is vectorized.
    data_bits = (30, 30, 30) if degree >= 4096 else (30, 30)
    params = small_test_parameters(SchemeType.BFV, poly_degree=degree,
                                   plain_bits=16, data_bits=data_bits)
    return BfvContext(params, seed=b"bench-client-crypto")


def _measure_encrypt(ctx):
    """One stacked encrypt of BATCH vectors vs BATCH single-shot encrypts."""
    rng = np.random.default_rng(3)
    t = ctx.params.plain_modulus
    vals = [rng.integers(0, t, size=ctx.params.poly_degree)
            for _ in range(BATCH)]
    plaintexts = [ctx.encode(v) for v in vals]  # time the crypto, not encode

    def looped():
        return [ctx.encrypt(pt) for pt in plaintexts]

    def batched():
        return ctx.encrypt_many(plaintexts)

    for ct, v in zip(batched(), vals):
        assert np.array_equal(ctx.decrypt(ct), np.mod(v, t)), \
            "batched encrypt round-trip produced wrong values"
    return _best_of_pair(looped, batched, 1)


def _measure_decrypt(ctx):
    """Stacked RNS decrypt of BATCH ciphertexts vs the looped exact
    big-integer path it replaced."""
    rng = np.random.default_rng(4)
    t = ctx.params.plain_modulus
    vals = [rng.integers(0, t, size=ctx.params.poly_degree)
            for _ in range(BATCH)]
    cts = ctx.encrypt_many(vals)

    def looped_bigint():
        return [ctx._decrypt_bigint(ct) for ct in cts]

    def batched():
        return ctx.decrypt_many(cts)

    for fast, exact in zip(batched(), looped_bigint()):
        assert np.array_equal(fast, exact), \
            "vectorized RNS decrypt disagrees with the bigint path"
    # More interleaved windows than the encrypt pair: the decrypt floor is
    # the hard acceptance gate, so give each side enough windows that one
    # scheduler hiccup cannot decide the ratio.
    return _best_of_pair(looped_bigint, batched, 1, rounds=12)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if a batched kernel misses its minimum speedup "
        "or regresses >20%% vs the previous recorded run",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS_PATH, help="JSON output path"
    )
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    measurements = {}
    degrees = {}
    for degree in (2048, 4096):
        ctx = _make_context(degree)
        measurements[f"encrypt_n{degree}"] = _measure_encrypt(ctx)
        measurements[f"decrypt_n{degree}"] = _measure_decrypt(ctx)
        degrees[degree] = [int(p) for p in ctx.params.data_base.moduli]

    report = {
        "batch": BATCH,
        "data_moduli": {str(n): mods for n, mods in degrees.items()},
        "tolerance": REGRESSION_TOLERANCE,
        "kernels": {},
    }
    failures = []
    for name, (looped_s, batched_s) in measurements.items():
        speedup = looped_s / batched_s
        report["kernels"][name] = {
            "looped_ms": round(1e3 * looped_s, 3),
            "batched_ms": round(1e3 * batched_s, 3),
            "speedup": round(speedup, 3),
            "min_speedup": MIN_SPEEDUP[name],
        }
        print(f"  {name:16s} looped {1e3 * looped_s:9.2f} ms   "
              f"batched {1e3 * batched_s:9.2f} ms   {speedup:5.2f}x "
              f"(floor {MIN_SPEEDUP[name]:.1f}x)")
        if speedup < MIN_SPEEDUP[name]:
            failures.append(
                f"{name}: {speedup:.2f}x is below the required "
                f"{MIN_SPEEDUP[name]:.1f}x speedup"
            )
        if previous is not None:
            prev = previous.get("kernels", {}).get(name)
            if prev is not None:
                reference = prev["speedup"]
                if speedup < reference * (1.0 - REGRESSION_TOLERANCE):
                    failures.append(
                        f"{name}: {speedup:.2f}x is more than "
                        f"{REGRESSION_TOLERANCE:.0%} below the previous run "
                        f"({reference:.2f}x)"
                    )

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check and failures:
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
