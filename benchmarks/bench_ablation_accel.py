"""Ablation — which accelerator module's parallelism buys the most time.

Starting from the Figure 6 operating point, halves and doubles each
module's processing elements in isolation and measures encryption latency.
The NTT/INTT butterflies dominate the pipeline, so their parallelism is the
most valuable — the reason prior NTT-only accelerators (HEAX, FPGAs) help
at all, and why CHOCO-TACO still replicates *every* stage (the remaining
40% otherwise bounds the speedup, Figure 2).
"""

from dataclasses import replace

import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.accel.design import AcceleratorModel, CHOCO_TACO_CONFIG

MODULES = ("prng_lanes", "ntt_pes", "intt_pes", "dyadic_pes", "add_pes",
           "modswitch_pes", "encode_pes")


def _sensitivity():
    base = AcceleratorModel(CHOCO_TACO_CONFIG, 8192, 3).encrypt_cost().time_s
    out = {}
    for module in MODULES:
        current = getattr(CHOCO_TACO_CONFIG, module)
        halved = replace(CHOCO_TACO_CONFIG, **{module: max(1, current // 2)})
        doubled = replace(CHOCO_TACO_CONFIG, **{module: current * 2})
        out[module] = {
            "half": AcceleratorModel(halved, 8192, 3).encrypt_cost().time_s / base,
            "double": AcceleratorModel(doubled, 8192, 3).encrypt_cost().time_s / base,
        }
    return base, out


def test_ablation_module_sensitivity(benchmark):
    base, sens = run_once(benchmark, _sensitivity)

    rows = [(m, f"{v['half']:.3f}x", f"{v['double']:.3f}x")
            for m, v in sens.items()]
    write_report("ablation_accel_modules", format_table(
        ["Module (PEs halved/doubled)", "Halved time", "Doubled time"], rows))

    # Halving any module never speeds things up; doubling never slows down.
    for m, v in sens.items():
        assert v["half"] >= 0.999, m
        assert v["double"] <= 1.001, m

    # Butterfly parallelism (NTT + INTT) is the biggest single lever.
    slowdowns = {m: v["half"] for m, v in sens.items()}
    butterfly_hit = max(slowdowns["ntt_pes"], slowdowns["intt_pes"])
    for m in ("dyadic_pes", "add_pes", "modswitch_pes"):
        assert butterfly_hit >= slowdowns[m], m

    # But no single module is the whole story: even doubling the butterflies
    # leaves most of the latency (the comprehensive-acceleration argument).
    assert sens["intt_pes"]["double"] > 0.75
