"""Level-aware planner speedups: planned programs vs planner-off schedules.

Gate for the level planner (:mod:`repro.core.levelplan`) riding on the
ciphertext-program IR.  Both measurements compare the SAME scheduled
program compiled with and without the planner, so the delta isolates
modulus-chain trimming (every other pass — fusion, batching, residency —
runs on both sides).  BFV at N=4096 with a six-limb data chain:

* ``fig15_matvec_chain`` — four diagonal-matvec layers traced as one
  program.  The planner prices each layer's remaining noise spend with
  :class:`repro.hecore.noise.NoiseEstimator` and mod-switches limbs away
  the moment no consumer needs them, so successive layers run on 6, 5, 4,
  and 3 residues instead of six everywhere.  Must win by at least 1.2x,
  with ``limb_drops > 0`` telemetry in both the context counters and a
  :class:`~repro.core.protocol.CostLedger`, and a smaller result
  ciphertext on the wire.
* ``dnn_slice`` — a Table-5 style slice: convolution program joined to a
  fully-connected program through an explicit ``recrypt_boundary``
  (:func:`repro.core.ir.concat_programs`).  The planner replans the
  post-boundary segment onto a trimmed entry chain.  Planner-on must beat
  planner-off, exactness asserted at decrypt level.

``--check`` exits non-zero on a missed floor, missing telemetry, a
non-shrinking wire format, or a >20% regression against the previous
recorded run.  Results go to ``benchmarks/results/BENCH_level_planner.json``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.ir import compile_ir, concat_programs, trace_program
from repro.core.linalg import BsgsMatVec, Conv2dSpec, EncryptedConv2d
from repro.core.protocol import ClientAidedSession
from repro.hecore.bfv import BfvContext
from repro.hecore.params import SchemeType, small_test_parameters

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_level_planner.json"

#: The planner must beat the planner-off schedule of the same program by
#: these factors (the matvec-chain floor is the issue's acceptance bar).
MIN_SPEEDUP = {
    "fig15_matvec_chain": 1.2,
    "dnn_slice": 1.25,
}

REGRESSION_TOLERANCE = 0.20

CHAIN_DIM = 16
CHAIN_LAYERS = 4
CONV_SPEC = dict(in_channels=1, out_channels=2, height=8, width=8,
                 kernel_size=3)
FC_SHAPE = (16, 32)


def _best_of_pair(off_fn, on_fn, reps, rounds=4):
    """Seconds-per-op for both compilations, interleaving their timing
    windows so load drift hits each side equally; fastest window wins."""
    off_fn()   # warm caches / NTT plans / encoded constants
    on_fn()
    bests = [float("inf"), float("inf")]
    for _ in range(rounds):
        for i, fn in enumerate((off_fn, on_fn)):
            start = time.perf_counter()
            for _ in range(reps):
                fn()
            bests[i] = min(bests[i], (time.perf_counter() - start) / reps)
    return tuple(bests)


def _make_context():
    params = small_test_parameters(SchemeType.BFV, poly_degree=4096,
                                   plain_bits=16,
                                   data_bits=(30, 30, 30, 30, 30, 30))
    return BfvContext(params, seed=b"bench-level-planner")


def _trace_chain(ctx, mats):
    """CHAIN_LAYERS diagonal matvecs traced as one ciphertext program."""
    slots = ctx.params.poly_degree

    def chain(tc, x):
        for m in mats:
            acc = None
            for d in range(CHAIN_DIM):
                diag = np.array([m[r, (r + d) % CHAIN_DIM]
                                 for r in range(CHAIN_DIM)])
                tiled = np.tile(diag, slots // CHAIN_DIM)
                term = tc.multiply_plain(tc.rotate(x, d), tc.encode(tiled))
                acc = term if acc is None else tc.add(acc, term)
            x = acc
        return x

    return trace_program(ctx.params, chain, ["x"])


def _measure_matvec_chain(ctx):
    """The fig15-style matvec chain, planner-on vs planner-off."""
    rng = np.random.default_rng(7)
    mats = [rng.integers(0, 7, size=(CHAIN_DIM, CHAIN_DIM))
            for _ in range(CHAIN_LAYERS)]
    program = _trace_chain(ctx, mats)
    sched_off = compile_ir(program, ctx.params.scheme)
    sched_on = compile_ir(program, ctx.params.scheme, params=ctx.params)
    ctx.make_galois_keys(sched_on.rotation_steps()
                         | sched_off.rotation_steps())

    plan = sched_on.report.level_plan
    assert plan is not None and plan.limb_drops > 0, \
        "the level planner inserted no limb drops on the matvec chain"

    t = ctx.params.plain_modulus
    vec = rng.integers(0, 7, size=CHAIN_DIM)
    ct = ctx.encrypt(np.tile(vec, ctx.params.poly_degree // CHAIN_DIM))
    expected = vec.copy()
    for m in mats:
        expected = (m @ expected) % t

    r_off = sched_off.run(ctx, {"x": ct})["out0"]
    before = {k: ctx.counts.get(k, 0) for k in ("limb_drops", "limbs_live")}
    r_on = sched_on.run(ctx, {"x": ct})["out0"]
    drops = ctx.counts.get("limb_drops", 0) - before["limb_drops"]
    live = ctx.counts.get("limbs_live", 0) - before["limbs_live"]
    assert drops > 0, "no planned limb drop executed at runtime"
    assert live > 0, "limbs-live telemetry did not accumulate"
    for r in (r_off, r_on):
        got = np.asarray(ctx.decrypt(r))[:CHAIN_DIM] % t
        assert np.array_equal(got, expected), \
            "matvec chain decrypted to the wrong values"

    bytes_off, bytes_on = r_off.size_bytes(), r_on.size_bytes()
    assert bytes_on < bytes_off, \
        "the planned chain did not shrink the result ciphertext"

    # CostLedger visibility: the same planned program metered through a
    # client-aided session must surface the planner counters.
    session = ClientAidedSession(ctx)
    session.server_compute(sched_on.run, ctx, {"x": ct})
    assert session.ledger.limb_drops > 0, \
        "limb_drops did not reach the CostLedger"
    assert session.ledger.limbs_live > 0, \
        "limbs_live did not reach the CostLedger"

    off_s, on_s = _best_of_pair(lambda: sched_off.run(ctx, {"x": ct}),
                                lambda: sched_on.run(ctx, {"x": ct}), 1)
    return off_s, on_s, drops, bytes_off, bytes_on


def _measure_dnn_slice(ctx):
    """Conv -> recrypt_boundary -> fc slice, planner-on vs planner-off."""
    rng = np.random.default_rng(11)
    spec = Conv2dSpec(**CONV_SPEC)
    weights = rng.integers(-3, 4, (spec.out_channels, spec.in_channels,
                                   spec.kernel_size, spec.kernel_size))
    fc_matrix = rng.integers(-3, 4, FC_SHAPE)
    conv = EncryptedConv2d(ctx, spec, weights, use_scheduler=False)
    fc = BsgsMatVec(ctx, fc_matrix, use_scheduler=False)

    conv_prog = trace_program(ctx.params,
                              lambda tr, x: conv._direct(tr, x, None), ["x"])
    fc_prog = trace_program(ctx.params,
                            lambda tr, x: fc._direct(tr, x, None), ["out0"])
    slice_prog = concat_programs(conv_prog, fc_prog, boundary="recrypt")

    sched_off = compile_ir(slice_prog, ctx.params.scheme)
    sched_on = compile_ir(slice_prog, ctx.params.scheme, params=ctx.params)
    ctx.make_galois_keys(sched_on.rotation_steps()
                         | sched_off.rotation_steps())

    plan = sched_on.report.level_plan
    assert plan is not None and plan.limb_drops > 0, \
        "the level planner inserted no limb drops on the dnn slice"
    assert plan.segments, "the recrypt boundary produced no segment plan"

    image = rng.integers(0, 4, (spec.in_channels, spec.height, spec.width))
    packed = conv.packing.pack([image[c].ravel()
                                for c in range(spec.in_channels)])
    ct = ctx.encrypt(packed.astype(np.int64))

    out_off = sched_off.run(ctx, {"x": ct})["out0"]
    out_on = sched_on.run(ctx, {"x": ct})["out0"]
    got_off = np.asarray(ctx.decrypt(out_off))
    got_on = np.asarray(ctx.decrypt(out_on))
    t = ctx.params.plain_modulus
    assert np.array_equal(got_off % t, got_on % t), \
        "the planned dnn slice diverged from the planner-off schedule"

    replans = plan.replans
    off_s, on_s = _best_of_pair(lambda: sched_off.run(ctx, {"x": ct}),
                                lambda: sched_on.run(ctx, {"x": ct}), 1)
    return off_s, on_s, replans


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if the planner misses its floors or regresses "
        ">20%% vs the previous recorded run",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS_PATH, help="JSON output path"
    )
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    ctx = _make_context()
    chain_off, chain_on, drops, bytes_off, bytes_on = \
        _measure_matvec_chain(ctx)
    slice_off, slice_on, replans = _measure_dnn_slice(ctx)
    measurements = {
        "fig15_matvec_chain": (chain_off, chain_on),
        "dnn_slice": (slice_off, slice_on),
    }

    report = {
        "poly_degree": ctx.params.poly_degree,
        "data_moduli": [int(p) for p in ctx.params.data_base.moduli],
        "tolerance": REGRESSION_TOLERANCE,
        "limb_drops_per_chain": int(drops),
        "segment_replans": int(replans),
        "result_bytes_planner_off": int(bytes_off),
        "result_bytes_planner_on": int(bytes_on),
        "wire_reduction": round(bytes_off / bytes_on, 3),
        "kernels": {},
    }
    failures = []
    for name, (off_s, on_s) in measurements.items():
        speedup = off_s / on_s
        report["kernels"][name] = {
            "planner_off_ms": round(1e3 * off_s, 3),
            "planner_on_ms": round(1e3 * on_s, 3),
            "speedup": round(speedup, 3),
            "min_speedup": MIN_SPEEDUP[name],
        }
        print(f"  {name:18s} off {1e3 * off_s:9.2f} ms   "
              f"on {1e3 * on_s:9.2f} ms   {speedup:5.2f}x "
              f"(floor {MIN_SPEEDUP[name]:.2f}x)")
        if speedup < MIN_SPEEDUP[name]:
            failures.append(
                f"{name}: {speedup:.2f}x is below the required "
                f"{MIN_SPEEDUP[name]:.2f}x speedup"
            )
        if previous is not None:
            prev = previous.get("kernels", {}).get(name)
            if prev is not None:
                reference = prev["speedup"]
                if speedup < reference * (1.0 - REGRESSION_TOLERANCE):
                    failures.append(
                        f"{name}: {speedup:.2f}x is more than "
                        f"{REGRESSION_TOLERANCE:.0%} below the previous run "
                        f"({reference:.2f}x)"
                    )
    print(f"  limb drops per planned chain: {drops}; "
          f"segment replans on the dnn slice: {replans}")
    print(f"  result ciphertext: {bytes_off} B -> {bytes_on} B "
          f"({bytes_off / bytes_on:.2f}x smaller)")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check and failures:
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
