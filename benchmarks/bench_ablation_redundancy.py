"""Ablation — rotational redundancy (§3.3).

Two measurements of the paper's headline algorithmic claim:

1. **Parameter impact** (analytic): on the DNN workload profile, removing
   masked permutations lets the parameter search drop an entire RNS residue
   — "half of this improvement ... comes from rotational redundancy alone".
2. **Noise impact** (functional HE): windowed rotations via redundancy
   retain the budget of a bare rotation, while the masked implementation
   burns ~log2(t) bits per permutation; chained permutations exhaust the
   budget quickly.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.core.packing import RedundantPacking, windowed_rotation_redundant
from repro.core.paramsearch import WorkloadProfile, residue_savings_from_redundancy
from repro.core.permute import windowed_rotation_masked
from repro.hecore.bfv import BfvContext
from repro.hecore.params import SchemeType, small_test_parameters

DNN_PROFILE = WorkloadProfile(
    value_bits=4, fan_in=800, rotations=25, masked_permutations=2,
    plain_mult_depth=1, min_slots=2048,
)


def test_ablation_parameter_savings(benchmark):
    baseline, choco = run_once(
        benchmark, residue_savings_from_redundancy, DNN_PROFILE)
    write_report("ablation_redundancy_params", [
        f"with masked permutations: {baseline.describe()}",
        f"with rotational redundancy: {choco.describe()}",
        f"residues saved: {baseline.data_residues - choco.data_residues}",
        f"ciphertext shrink: "
        f"{baseline.ciphertext_bytes / choco.ciphertext_bytes:.2f}x",
    ])
    # The §3.3 claim: an entire RNS residue disappears.
    assert baseline.data_residues - choco.data_residues >= 1
    assert choco.ciphertext_bytes < baseline.ciphertext_bytes


def test_ablation_chained_rotation_noise(benchmark):
    """Chain windowed rotations both ways and watch the budgets diverge."""
    params = small_test_parameters(SchemeType.BFV, poly_degree=1024,
                                   plain_bits=16, data_bits=(30, 30, 30))
    ctx = BfvContext(params, seed=31)
    window, rot = 8, 2
    packing = RedundantPacking(window=window, redundancy=4, count=1)
    offset = packing.layout.window_offset(0)
    ctx.make_galois_keys([rot, -(window - rot)])
    values = np.arange(1, window + 1)

    def chain():
        redundant = ctx.encrypt(packing.pack([values]).astype(np.int64))
        masked = redundant.copy()
        budgets = [(ctx.noise_budget(redundant), ctx.noise_budget(masked))]
        for _ in range(3):
            redundant = windowed_rotation_redundant(ctx, redundant, rot,
                                                    packing.layout)
            masked = windowed_rotation_masked(ctx, masked, rot, offset, window)
            budgets.append((ctx.noise_budget(redundant), ctx.noise_budget(masked)))
        return budgets

    budgets = run_once(benchmark, chain)
    rows = [(i, r, m) for i, (r, m) in enumerate(budgets)]
    write_report("ablation_redundancy_noise", format_table(
        ["Permutations", "Redundancy budget", "Masked budget"], rows))

    # Redundancy: noise stays essentially flat (only rotations).
    assert budgets[0][0] - budgets[3][0] <= 8
    # Masked permutations: rapid depletion (~log2 t per step), and the gap
    # widens with every chained permutation.
    gaps = [r - m for r, m in budgets]
    assert all(gaps[i] < gaps[i + 1] for i in range(3))
    assert budgets[3][0] - budgets[3][1] >= 30


def test_ablation_redundancy_costs_slots_not_security(benchmark):
    """The tradeoff: redundancy lowers packing density; it never touches the
    ciphertext's security (packing happens before encryption, §3.3)."""
    def densities():
        out = {}
        for redundancy in (0, 2, 4, 8):
            packing = RedundantPacking(window=16, redundancy=redundancy, count=4)
            out[redundancy] = packing.layout.density
        return out

    density = run_once(benchmark, densities)
    write_report("ablation_redundancy_density", [
        f"redundancy {r}: density {d:.2f}" for r, d in density.items()
    ])
    assert density[0] == 1.0
    assert all(density[a] >= density[b]
               for a, b in zip((0, 2, 4), (2, 4, 8)))
