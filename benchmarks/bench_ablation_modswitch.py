"""Ablation — server-side modulus switching as download compression.

An optimization CHOCO's structure invites: results the client is about to
decrypt don't need headroom, so the server can modulus-switch them down
before transmission.  At parameter set A (two logical data residues) this
halves every download.  This ablation verifies the trick functionally at
set B and prices its impact on the DNN plans.

The catch — and why the paper's pipeline doesn't rely on it — is that the
switched ciphertext must still hold the layer result's noise, so it only
applies to *final* per-round outputs, and the upload direction (fresh,
full-budget ciphertexts) cannot use it.  Seed-compressed symmetric uploads
(`hecore.serialize`) cover that direction instead.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.apps.dnn import ClientAidedDnnPlan
from repro.hecore.bfv import BfvContext
from repro.hecore.params import PARAMETER_SET_B
from repro.nn.models import NETWORK_BUILDERS


def _functional_check():
    """Run a realistic server round at set B and switch before download."""
    ctx = BfvContext(PARAMETER_SET_B, seed=17)
    t = PARAMETER_SET_B.plain_modulus
    rng = np.random.default_rng(3)
    x = rng.integers(0, 8, 512, dtype=np.int64)      # 3-bit activations
    w = rng.integers(-8, 8, PARAMETER_SET_B.poly_degree, dtype=np.int64)
    ct = ctx.multiply_plain(ctx.encrypt(x), ctx.encode(w))
    budget_full = ctx.noise_budget(ct)
    full_bytes = ct.size_bytes()
    switched = ctx.mod_switch_down(ct)
    ok = np.array_equal(
        ctx.decrypt(switched)[:512],
        (x.astype(object) * w[:512].astype(object)) % t)
    return {
        "budget_full": budget_full,
        "budget_switched": ctx.noise_budget(switched),
        "full_bytes": full_bytes,
        "switched_bytes": switched.size_bytes(),
        "decrypts": ok,
    }


def test_ablation_modswitch_download_compression(benchmark):
    result = run_once(benchmark, _functional_check)

    rows = []
    for name, build in NETWORK_BUILDERS.items():
        plan = ClientAidedDnnPlan(build())
        ct = plan.params.ciphertext_bytes()
        baseline = plan.communication_bytes()
        # Downloads shrink by the dropped residue's share (1/2 at k-1 = 2).
        saved = plan.decrypt_ops * ct // 2
        rows.append((name, f"{baseline / 1e6:.2f}",
                     f"{(baseline - saved) / 1e6:.2f}",
                     f"{100 * saved / baseline:.0f}%"))
    write_report("ablation_modswitch", format_table(
        ["Network", "Comm MB", "With switched downloads", "Saved"], rows) + [
        "",
        f"functional check at set B: post-round budget "
        f"{result['budget_full']} -> {result['budget_switched']} bits, "
        f"download {result['full_bytes']} -> {result['switched_bytes']} B, "
        f"decrypts correctly: {result['decrypts']}",
    ])

    assert result["decrypts"]
    assert result["budget_switched"] > 0
    # Our computational base carries 3 word-sized limbs where SEAL's set B
    # carries 2 logical residues (DESIGN.md), so one switch sheds 1/3 of the
    # bytes here; on the logical wire (58-bit residues) it sheds 1/2.
    limbs = len(PARAMETER_SET_B.data_base)
    expected = result["full_bytes"] * (limbs - 1) // limbs
    assert abs(result["switched_bytes"] - expected) <= 8
    # Downloads dominate the DNN plans, so the saving is substantial.
    plan = ClientAidedDnnPlan(NETWORK_BUILDERS["VGG16"]())
    saved_fraction = (plan.decrypt_ops / 2) / (plan.encrypt_ops + plan.decrypt_ops)
    assert saved_fraction > 0.25