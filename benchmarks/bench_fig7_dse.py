"""Figure 7 — accelerator design-space exploration.

Sweeps 32,000 CHOCO-TACO configurations (the paper sweeps 31,340) across
per-module parallelism, evaluating power, area, energy, and encryption time
for each; reports the Pareto frontier and the §4.4 operating point (power
<= 200 mW, smallest design within 1% of optimal time).

Published operating point: 19.3 mm^2, 0.1228 mJ, 0.66 ms.
"""

import pytest

from _report import ascii_scatter, format_table, write_report
from conftest import run_once

from repro.accel.design import AcceleratorModel, CHOCO_TACO_CONFIG
from repro.accel.dse import (
    POWER_LIMIT_W,
    explore_design_space,
    pareto_frontier,
    select_operating_point,
)


def test_fig7_design_space(benchmark):
    points = run_once(benchmark, explore_design_space)
    assert 30000 <= len(points) <= 33000

    powers = [p.power_w for p in points]
    areas = [p.area_mm2 for p in points]
    times = [p.time_s for p in points]
    selected = select_operating_point(points)

    # Pareto frontier on a thinned subset (full O(n^2) is unnecessary here).
    sample = sorted(points, key=lambda p: p.time_s)[:: max(1, len(points) // 400)]
    frontier = pareto_frontier(sample)

    write_report("fig7_dse", [
        f"configurations swept: {len(points)} (paper: 31,340)",
        f"power range:  {min(powers) * 1e3:8.1f} .. {max(powers) * 1e3:8.1f} mW",
        f"area  range:  {min(areas):8.2f} .. {max(areas):8.2f} mm^2",
        f"time  range:  {min(times) * 1e3:8.3f} .. {max(times) * 1e3:8.3f} ms",
        f"pareto points (sampled): {len(frontier)}",
        "",
        f"operating point (power<=200mW, time within 1%, min area):",
        f"  config: {selected.config.as_dict()}",
        f"  time {selected.time_s * 1e3:.3f} ms | energy "
        f"{selected.energy_j * 1e3:.4f} mJ | area {selected.area_mm2:.1f} mm^2 "
        f"| power {selected.power_w * 1e3:.0f} mW",
        "",
        "published: 0.66 ms | 0.1228 mJ | 19.3 mm^2 | <=200 mW",
    ])

    # The Figure 7 cloud: power vs time, with the operating point marked.
    cloud = points[:: max(1, len(points) // 900)] + [selected]
    marks = ["." for _ in cloud[:-1]] + ["O"]
    write_report("fig7_scatter", ascii_scatter(
        [p.time_s * 1e3 for p in cloud],
        [p.power_w * 1e3 for p in cloud],
        marks=marks, logx=True,
        xlabel="encryption time (ms)", ylabel="power (mW)",
    ))

    # Marked variation across the space (the Figure 7 cloud).  Area varies
    # less than power: the full-polynomial working buffers are a fixed floor.
    assert max(powers) / min(powers) > 3
    assert max(areas) / min(areas) > 2
    # The selected point sits at the published corner of the space.
    assert selected.power_w <= POWER_LIMIT_W
    assert 0.4e-3 < selected.time_s < 0.9e-3
    assert 14 < selected.area_mm2 < 25
    assert 0.08e-3 < selected.energy_j < 0.16e-3


def test_fig6_configuration_is_near_selected(benchmark):
    """The Figure 6 flagship lands on/near the §4.4 operating point."""
    model = run_once(benchmark, AcceleratorModel, CHOCO_TACO_CONFIG, 8192, 3)
    cost = model.encrypt_cost()
    assert cost.time_s == pytest.approx(0.66e-3, rel=0.02)
    assert model.area_mm2 == pytest.approx(19.3, rel=0.02)
    assert cost.energy_j == pytest.approx(0.1228e-3, rel=0.02)
