"""Tier-2 performance gate: run every benchmark's ``--check`` mode.

Runs each benchmark as a subprocess with the repo's ``src`` on PYTHONPATH,
streams its output, and exits non-zero if ANY gate reports a regression —
the single entry point CI (and humans) use to validate the perf posture of
a change:

* ``bench_he_throughput`` — stacked NTT / key-switch / multiply kernels
  against the pre-refactor floors;
* ``bench_wire_format`` — CHOCO wire-format sizes and (de)serialization
  throughput;
* ``bench_hoisting`` — fused hoisted-rotation kernels against the naive
  per-rotation paths;
* ``bench_client_crypto`` — batched encrypt/decrypt engine against looped
  single-shot calls (including the 3x RNS-decrypt floor over the bigint
  baseline at N=4096);
* ``bench_chaos_soak`` — the runtime's resilience invariants (exactly-once
  execution, ledger parity, leak-free shutdown) under long randomized
  fault schedules;
* ``bench_fleet`` — sharded multi-worker serving: aggregate KNN COMPUTE
  throughput through the router against a core-aware floor, plus the
  fleet chaos soak (worker kill, failover, exactly-once, ledger parity).
  Runs in ``--quick`` mode here to keep the tier within budget.

A per-gate wall-clock summary prints at the end, so a gate quietly eating
the tier's time budget is visible before it becomes a problem.

Usage::

    python benchmarks/check_all.py            # run all gates
    python benchmarks/check_all.py hoisting   # run a subset by substring
"""

import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).parent

#: (script, extra arguments beyond --check)
GATES = [
    ("bench_he_throughput.py", []),
    ("bench_wire_format.py", []),
    ("bench_hoisting.py", []),
    ("bench_client_crypto.py", []),
    ("bench_chaos_soak.py", []),
    ("bench_fleet.py", ["--quick"]),
]


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    selected = [
        (gate, extra) for gate, extra in GATES
        if not argv or any(pattern in gate for pattern in argv)
    ]
    if not selected:
        names = [gate for gate, _ in GATES]
        print(f"no gate matches {argv!r}; available: {names}",
              file=sys.stderr)
        return 2

    env = dict(os.environ)
    src = str(BENCH_DIR.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failed = []
    timings = []
    for gate, extra in selected:
        print(f"=== {gate} ===", flush=True)
        started = time.monotonic()
        result = subprocess.run(
            [sys.executable, str(BENCH_DIR / gate), "--check", *extra],
            env=env,
        )
        elapsed = time.monotonic() - started
        timings.append((gate, elapsed, result.returncode == 0))
        if result.returncode != 0:
            failed.append(gate)
        print(flush=True)

    total = sum(elapsed for _, elapsed, _ in timings)
    print("gate timing summary:")
    for gate, elapsed, ok in timings:
        print(f"  {'PASS' if ok else 'FAIL'}  {elapsed:7.2f}s  {gate}")
    print(f"        {total:7.2f}s  total")

    if failed:
        print(f"FAILED gates: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"all {len(selected)} gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
