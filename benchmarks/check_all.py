"""Tier-2 performance gate: run every benchmark's ``--check`` mode.

Runs each benchmark as a subprocess with the repo's ``src`` on PYTHONPATH,
streams its output, and exits non-zero if ANY gate reports a regression —
the single entry point CI (and humans) use to validate the perf posture of
a change:

* ``bench_he_throughput`` — stacked NTT / key-switch / multiply kernels
  against the pre-refactor floors;
* ``bench_wire_format`` — CHOCO wire-format sizes and (de)serialization
  throughput;
* ``bench_hoisting`` — fused hoisted-rotation kernels against the naive
  per-rotation paths;
* ``bench_client_crypto`` — batched encrypt/decrypt engine against looped
  single-shot calls (including the 3x RNS-decrypt floor over the bigint
  baseline at N=4096);
* ``bench_chaos_soak`` — the runtime's resilience invariants (exactly-once
  execution, ledger parity, leak-free shutdown) under long randomized
  fault schedules;
* ``bench_fleet`` — sharded multi-worker serving: aggregate KNN COMPUTE
  throughput through the router against a core-aware floor, plus the
  fleet chaos soak (worker kill, failover, exactly-once, ledger parity).
  Runs in ``--quick`` mode here to keep the tier within budget;
* ``bench_ir`` — the ciphertext-program IR scheduler against the
  hand-wired kernel paths (fig15 matvec and a 2-layer dnn slice), plus
  the NTT-residency telemetry signal;
* ``bench_level_planner`` — the level-aware parameter planner against the
  planner-off scheduled paths (fig15 matvec chain and a Table-5 dnn
  slice with a recrypt boundary), plus limb-drop telemetry and wire-byte
  reductions.

A per-gate wall-clock summary prints at the end, so a gate quietly eating
the tier's time budget is visible before it becomes a problem.  The same
summary is written as JSON (``benchmarks/results/check_all_summary.json``
by default) so tooling can consume gate outcomes without scraping stdout.

Usage::

    python benchmarks/check_all.py                 # run all gates
    python benchmarks/check_all.py hoisting        # run a subset by substring
    python benchmarks/check_all.py --only bench_ir # run one gate by exact name
    python benchmarks/check_all.py --only he_kernels,ir,wire_format  # aliases
"""

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).parent
SUMMARY_PATH = BENCH_DIR / "results" / "check_all_summary.json"

#: (script, extra arguments beyond --check)
GATES = [
    ("bench_he_throughput.py", []),
    ("bench_wire_format.py", []),
    ("bench_hoisting.py", []),
    ("bench_client_crypto.py", []),
    ("bench_chaos_soak.py", []),
    ("bench_fleet.py", ["--quick"]),
    ("bench_ir.py", []),
    ("bench_level_planner.py", []),
]

#: Short gate aliases accepted by ``--only`` alongside the script names.
ALIASES = {
    "he_kernels": "bench_he_throughput.py",
    "wire_format": "bench_wire_format.py",
    "hoisting": "bench_hoisting.py",
    "client_crypto": "bench_client_crypto.py",
    "chaos_soak": "bench_chaos_soak.py",
    "fleet": "bench_fleet.py",
    "ir": "bench_ir.py",
    "level_planner": "bench_level_planner.py",
}


def _select(patterns, only):
    """Resolve the gate subset: ``--only`` exact names, else substrings.

    ``--only`` accepts script names (``bench_ir.py``), stems (``bench_ir``),
    short aliases (``ir``, ``he_kernels``), and comma-separated lists
    (``--only he_kernels,ir,wire_format``).  Unknown names are an error
    listing everything known — never a silent zero-gate run.
    """
    if only:
        by_script = {gate: (gate, extra) for gate, extra in GATES}
        names = dict(by_script)
        names.update({gate[: -len(".py")]: (gate, extra)
                      for gate, extra in GATES})
        names.update({alias: by_script[script]
                      for alias, script in ALIASES.items()
                      if script in by_script})
        wanted = [name.strip() for entry in only
                  for name in entry.split(",") if name.strip()]
        missing = [name for name in wanted if name not in names]
        if missing:
            return None, missing
        return [names[name] for name in wanted], []
    selected = [
        (gate, extra) for gate, extra in GATES
        if not patterns or any(pattern in gate for pattern in patterns)
    ]
    return (selected or None), patterns


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="run every benchmark gate in --check mode")
    parser.add_argument(
        "patterns", nargs="*",
        help="run only gates whose script name contains any of these")
    parser.add_argument(
        "--only", action="append", default=[], metavar="GATE",
        help="run exactly this gate (script name, .py optional); repeatable")
    parser.add_argument(
        "--summary", type=Path, default=SUMMARY_PATH,
        help="where to write the machine-readable JSON summary")
    args = parser.parse_args(argv)

    selected, bad = _select(args.patterns, args.only)
    if selected is None:
        names = [gate for gate, _ in GATES] + sorted(ALIASES)
        print(f"no gate matches {bad!r}; available: {names}",
              file=sys.stderr)
        return 2

    env = dict(os.environ)
    src = str(BENCH_DIR.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failed = []
    timings = []
    for gate, extra in selected:
        print(f"=== {gate} ===", flush=True)
        started = time.monotonic()
        result = subprocess.run(
            [sys.executable, str(BENCH_DIR / gate), "--check", *extra],
            env=env,
        )
        elapsed = time.monotonic() - started
        timings.append((gate, elapsed, result.returncode == 0))
        if result.returncode != 0:
            failed.append(gate)
        print(flush=True)

    total = sum(elapsed for _, elapsed, _ in timings)
    print("gate timing summary:")
    for gate, elapsed, ok in timings:
        print(f"  {'PASS' if ok else 'FAIL'}  {elapsed:7.2f}s  {gate}")
    print(f"        {total:7.2f}s  total")

    summary = {
        "ok": not failed,
        "total_seconds": round(total, 3),
        "gates": [
            {"gate": gate, "seconds": round(elapsed, 3), "ok": ok}
            for gate, elapsed, ok in timings
        ],
    }
    args.summary.parent.mkdir(parents=True, exist_ok=True)
    args.summary.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.summary}")

    if failed:
        print(f"FAILED gates: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"all {len(selected)} gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
