"""Ablation — special primes in key switching.

This repository substitutes SEAL's single ~60-bit key-switching prime with
a *product of two* word-sized special primes (DESIGN.md).  This ablation
verifies the substitution is load-bearing: with only one word-sized special
prime, the key-switch noise (digits scaled by 1/P) stops being negligible
and rotations visibly eat the budget; with two, rotation noise matches the
paper's "small" classification.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.hecore.bfv import BfvContext
from repro.hecore.params import EncryptionParameters, SchemeType


ROTATIONS = 24


def _rotation_noise(special_prime_count: int) -> tuple:
    params = EncryptionParameters.create(
        SchemeType.BFV, 1024, (30, 30, 30, 30), plain_bits=14,
        enforce_security=False, special_prime_count=special_prime_count,
    )
    ctx = BfvContext(params, seed=77)
    ctx.make_galois_keys([1])
    # Encrypt zero so the fresh noise is pure sampling error and the
    # key-switch contribution of each rotation is visible.
    ct = ctx.encrypt(np.zeros(8, dtype=np.int64))
    before = ctx.noise_budget(ct)
    for _ in range(ROTATIONS):
        ct = ctx.rotate_rows(ct, 1)
    out = ctx.decrypt(ct)
    correct = bool(np.all(out == 0))
    return before, ctx.noise_budget(ct), correct


def test_ablation_special_prime_count(benchmark):
    results = run_once(benchmark, lambda: {
        1: _rotation_noise(1),
        2: _rotation_noise(2),
    })
    rows = [
        (count, before, after, before - after, ok)
        for count, (before, after, ok) in results.items()
    ]
    write_report("ablation_keyswitch", format_table(
        ["Special primes", "Fresh budget", f"After {ROTATIONS} rotations",
         "Bits burned", "Decrypts"], rows))

    one_drop = results[1][0] - results[1][1]
    two_drop = results[2][0] - results[2][1]
    # Both stay decryptable at these parameters...
    assert results[2][2]
    # ...but a single word-sized special prime burns strictly more budget:
    # digits are ~30-bit while P is only ~30-bit, so digit/P noise survives.
    assert two_drop <= 6          # "small" noise growth, per Table 1
    assert one_drop >= two_drop + 3
