"""Figure 12 — active client compute time for DNN inference.

Extends Figure 2 with CHOCO's software optimizations and CHOCO-TACO's full
acceleration.  Bars per network: SEAL baseline (server-optimized algorithms,
default parameters), CHOCO software (rotational redundancy + minimized
parameters), best-case HEAX / FPGA assistance on top of CHOCO, CHOCO-TACO,
and the TFLite-local bound.

Published shape: CHOCO-sw beats the SEAL baseline ~1.7x on average;
CHOCO-TACO beats CHOCO-sw ~121x on average (417x encrypt / 125x decrypt
mix); assisted software remains ~14.5x slower than local inference; with
CHOCO-TACO, active client compute becomes ~2.2x *faster* than local.
"""

import math

import pytest

from _report import write_json, format_table, write_report
from conftest import run_once

from repro.experiments import client_time_characterization


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_fig12_client_time(benchmark):
    data = run_once(benchmark, client_time_characterization)

    columns = ["seal_baseline", "choco_sw", "choco_heax", "choco_fpga",
               "choco_taco", "local"]
    rows = [
        (name, *(f"{d[c] * 1e3:.1f}" for c in columns))
        for name, d in data.items()
    ]
    write_json("fig12_client_time", data)
    write_report("fig12_client_time", format_table(
        ["Network (ms)", "SEAL base", "CHOCO sw", "+HEAX", "+FPGA",
         "+TACO", "TFLite"], rows))

    sw_gain = _geomean([d["seal_baseline"] / d["choco_sw"] for d in data.values()])
    taco_gain = _geomean([d["choco_sw"] / d["choco_taco"] for d in data.values()])
    local_vs_taco = _geomean([d["local"] / d["choco_taco"] for d in data.values()])
    assisted_vs_local = _geomean([d["choco_heax"] / d["local"] for d in data.values()])

    write_report("fig12_summary", [
        f"CHOCO-sw vs SEAL baseline (geomean): {sw_gain:.2f}x (published avg 1.7x)",
        f"TACO vs CHOCO-sw (geomean): {taco_gain:.0f}x (published avg 121x)",
        f"TACO vs local (geomean): {local_vs_taco:.2f}x faster (published avg 2.2x)",
        f"HEAX-assisted vs local: {assisted_vs_local:.1f}x slower (published 14.5x)",
    ])

    for name, d in data.items():
        # Bar ordering within each network.
        assert d["choco_taco"] < d["choco_heax"] < d["choco_sw"], name
        assert d["choco_sw"] <= d["seal_baseline"] * 1.001, name

    # Aggregate shapes.
    assert 1.2 < sw_gain < 4          # published 1.7x
    assert 60 < taco_gain < 250       # published ~121x
    assert assisted_vs_local > 3      # published 14.5x: assisted still loses
    # With TACO, client compute is competitive with (here: faster than) local.
    assert local_vs_taco > 1.0        # published 2.2x
