"""Figure 2 — characterization of active client compute time.

For single-image inference on each of the four DNNs, breaks client compute
into HE (encrypt + decrypt) versus application work (activations and
quantization) under: the SEAL software baseline, best-case HEAX assistance,
best-case encryption-FPGA assistance, and the local TFLite bound.

Published shape: >99% of client compute is HE; even with NTT/poly-multiply
hardware, client-aided crypto remains an order of magnitude slower than
computing the whole network locally (14.5x on average in the paper).
"""

import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.experiments import seal_baseline_breakdown


def test_fig2_client_compute_breakdown(benchmark):
    data = run_once(benchmark, seal_baseline_breakdown)

    rows = [
        (name,
         f"{d['software']:.3f}", f"{d['heax']:.3f}", f"{d['fpga']:.3f}",
         f"{d['app'] * 1e3:.3f} ms", f"{d['local'] * 1e3:.1f} ms",
         f"{100 * d['crypto_sw'] / d['software']:.2f}%")
        for name, d in data.items()
    ]
    write_report("fig2_breakdown", format_table(
        ["Network", "SEAL sw (s)", "+HEAX (s)", "+FPGA (s)",
         "App ops", "TFLite local", "HE share"], rows))

    ratios = []
    for name, d in data.items():
        # >99% of client compute is HE operations, not application work.
        assert d["crypto_sw"] / d["software"] > 0.99, name
        # Partial hardware helps but is bounded by Amdahl.
        assert d["heax"] < d["software"]
        assert d["software"] / d["heax"] < 1 / (1 - 0.60) + 0.1
        # Even assisted, client-aided crypto loses to local compute.
        assert d["heax"] > d["local"], name
        ratios.append(d["heax"] / d["local"])

    # Paper: 14.5x slower than TFLite on average even with HEAX support.
    mean_ratio = sum(ratios) / len(ratios)
    assert mean_ratio > 5
    write_report("fig2_summary", [
        f"HEAX-assisted / local, mean across networks: {mean_ratio:.1f}x "
        f"(published: 14.5x)"
    ])
