"""Ablation — the §4.4 operating-point rule against alternatives.

The paper limits power to 200 mW and picks the smallest design within 1% of
the optimal time.  This ablation contrasts that rule with two others on the
same swept space: minimum-energy-per-encryption and minimum-area-feasible —
quantifying what each objective trades away.
"""

import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.accel.dse import (
    POWER_LIMIT_W,
    explore_design_space,
    select_operating_point,
)

GRID = {
    "prng_lanes": (1, 2, 4, 8),
    "ntt_pes": (1, 2, 4, 8, 16),
    "intt_pes": (2, 8, 16),
    "dyadic_pes": (2, 4, 8),
    "add_pes": (4, 8),
    "modswitch_pes": (4, 8),
    "encode_pes": (4, 8),
}


def _select_all():
    points = explore_design_space(GRID)
    feasible = [p for p in points if p.power_w <= POWER_LIMIT_W]
    return {
        "paper_rule": select_operating_point(points),
        "min_energy": min(feasible, key=lambda p: p.energy_j),
        "min_area": min(feasible, key=lambda p: p.area_mm2),
        "min_time": min(feasible, key=lambda p: p.time_s),
    }


def test_ablation_selection_rules(benchmark):
    picks = run_once(benchmark, _select_all)

    rows = [
        (rule, f"{p.time_s * 1e3:.3f}", f"{p.energy_j * 1e3:.4f}",
         f"{p.area_mm2:.1f}", f"{p.power_w * 1e3:.0f}")
        for rule, p in picks.items()
    ]
    write_report("ablation_dse_rule", format_table(
        ["Rule", "Time ms", "Energy mJ", "Area mm^2", "Power mW"], rows))

    paper = picks["paper_rule"]
    # The paper's rule is time-near-optimal by construction...
    assert paper.time_s <= picks["min_time"].time_s * 1.01
    # ...and (here) also lands within ~15% of the best achievable energy —
    # time and energy are nearly aligned when power is capped (§4.4 notes
    # the chosen design is within 1% of optimal time *and energy*).
    assert paper.energy_j <= picks["min_energy"].energy_j * 1.15
    # The tiny-area pick pays heavily in latency: area is the wrong
    # single-objective for a client on the critical path.
    assert picks["min_area"].time_s > 2 * paper.time_s
