"""Fleet serving gate: sharded workers vs a single process, plus chaos.

Two legs, both against a real :class:`~repro.runtime.fleet.FleetServer`
(router + worker processes + per-worker eval pools) over loopback TCP:

* **throughput** — N concurrent KNN sessions classify through the router;
  aggregate COMPUTE throughput with ``--workers`` sharded workers must
  beat the 1-worker fleet by a core-aware floor.  On a multi-core host
  the target is the issue's 2.5x at 4 workers; on the 1-2 core CI boxes
  the floor drops to "don't collapse" territory, because four processes
  on one core can only add IPC overhead.
* **chaos** — the fleet soak kills a worker mid-traffic and audits
  exactly-once execution, byte-identical ledger parity across failover,
  and supervision (every kill produced a restart, failover was
  exercised).  The soak's machine-readable report lands in the JSON
  output verbatim.

Usage::

    python benchmarks/bench_fleet.py --check            # full gate
    python benchmarks/bench_fleet.py --check --quick    # tier-2 budget
"""

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.hecore.ckks import CkksContext
from repro.hecore.params import SchemeType, small_test_parameters
from repro.apps.knn import KnnOffloadService, RemoteKnn
from repro.runtime import OffloadClient
from repro.runtime.chaos import fleet_chaos_soak
from repro.runtime.fleet import FleetServer

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_fleet.json"

KNN_INSTALLER = "repro.apps.knn:KnnOffloadService.install_pooled"

#: Aggregate-throughput floor (sharded / single-worker) by usable cores.
#: Process sharding cannot beat the GIL it escapes when there is only one
#: core to escape to; the floors below assert "scales where it can, does
#: not collapse where it can't".
CORE_FLOORS = {1: 0.45, 2: 1.1, 3: 1.8}
DEFAULT_FLOOR = 2.5


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def knn_params():
    return small_test_parameters(SchemeType.CKKS, poly_degree=1024,
                                 data_bits=(30, 30, 30))


async def _knn_session(params, host, port, seed, n_queries,
                       points, labels, rng) -> int:
    """One client session: provision a KNN store, then classify."""
    ctx = CkksContext(params, seed=seed)
    client = await OffloadClient(params, host, port,
                                 request_timeout=30.0).connect()
    try:
        knn = RemoteKnn(client, ctx, k=3, variant="collapsed")
        await knn.add_points(points, labels)
        done = 0
        for q in range(n_queries):
            query = points[rng.integers(len(points))] + rng.normal(
                0.0, 0.05, size=points.shape[1])
            await knn.classify(query)
            done += 1
        return done
    finally:
        await client.close()


async def measure_fleet(params, n_workers, n_sessions, n_queries,
                        eval_workers=1) -> dict:
    """Aggregate KNN COMPUTE throughput through an n-worker fleet."""
    fleet = FleetServer(
        params, n_workers,
        pooled_installers=(KNN_INSTALLER,),
        eval_workers=eval_workers,
        concurrency=2)
    host, port = await fleet.start()
    rng = np.random.default_rng(7)
    points = rng.normal(0.0, 1.0, size=(8, 4))
    labels = (np.arange(8) % 3).tolist()
    try:
        # Untimed warmup: provisioning paths, eval-pool key shipping.
        await _knn_session(params, host, port, 1000, 1, points, labels,
                           np.random.default_rng(11))
        started = time.perf_counter()
        counts = await asyncio.gather(*(
            _knn_session(params, host, port, 2000 + i, n_queries,
                         points, labels, np.random.default_rng(100 + i))
            for i in range(n_sessions)))
        elapsed = time.perf_counter() - started
        snapshot = await fleet.refresh_metrics()
    finally:
        await fleet.stop()
    total = sum(counts)
    return {
        "n_workers": n_workers,
        "eval_workers": eval_workers,
        "n_sessions": n_sessions,
        "queries": total,
        "elapsed_s": round(elapsed, 4),
        "queries_per_s": round(total / elapsed, 3),
        "sessions_routed": snapshot["sessions_routed"],
        "per_worker": [
            {"worker": w.get("worker"),
             "handler_invocations": w.get("metrics", {}).get(
                 "handler_invocations", 0)}
            for w in snapshot["per_worker"]],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero below the floor or on a "
                             "violated soak invariant")
    parser.add_argument("--quick", action="store_true",
                        help="smaller leg sizes for the tier-2 budget")
    parser.add_argument("--workers", type=int, default=4,
                        help="sharded fleet size (baseline is always 1)")
    parser.add_argument("--sessions", type=int, default=None,
                        help="concurrent client sessions (default 4; "
                             "--quick 3)")
    parser.add_argument("--queries", type=int, default=None,
                        help="classifications per session (default 6; "
                             "--quick 3)")
    parser.add_argument("--output", type=Path, default=RESULTS_PATH,
                        help="JSON output path")
    args = parser.parse_args(argv)

    n_sessions = args.sessions or (3 if args.quick else 4)
    n_queries = args.queries or (3 if args.quick else 6)
    cores = usable_cores()
    floor = CORE_FLOORS.get(cores, DEFAULT_FLOOR)
    params = knn_params()
    failures = []

    print(f"fleet throughput: {n_sessions} session(s) x {n_queries} "
          f"KNN queries, {cores} usable core(s), floor {floor:.2f}x")
    single = asyncio.run(measure_fleet(params, 1, n_sessions, n_queries))
    sharded = asyncio.run(measure_fleet(params, args.workers, n_sessions,
                                        n_queries))
    speedup = sharded["queries_per_s"] / max(single["queries_per_s"], 1e-9)
    for leg in (single, sharded):
        spread = ", ".join(
            f"w{w['worker']}={w['handler_invocations']}"
            for w in leg["per_worker"])
        print(f"  {leg['n_workers']} worker(s): "
              f"{leg['queries_per_s']:.2f} queries/s "
              f"({leg['queries']} in {leg['elapsed_s']:.2f}s; {spread})")
    verdict = "ok" if speedup >= floor else "BELOW FLOOR"
    print(f"  aggregate speedup {speedup:.2f}x (floor {floor:.2f}x at "
          f"{cores} core(s)) [{verdict}]")
    if speedup < floor:
        failures.append(
            f"throughput: {args.workers}-worker fleet at {speedup:.2f}x "
            f"vs single worker, below the {floor:.2f}x floor")

    soak_sessions = 3 if args.quick else 4
    soak_requests = 6 if args.quick else 10
    print(f"fleet chaos soak: {soak_sessions} session(s) x "
          f"{soak_requests} request(s), 1 worker kill")
    report = asyncio.run(fleet_chaos_soak(
        n_workers=2, n_sessions=soak_sessions, n_requests=soak_requests,
        kill_workers=1, seed=2027))
    print(report.render())
    soak = report.as_dict()
    failures.extend(f"soak: {f}" for f in soak["failures"])
    if soak["handler_invocations"] != soak["logical_requests"]:
        failures.append(
            f"soak: {soak['handler_invocations']} handler run(s) for "
            f"{soak['logical_requests']} logical request(s)")

    out = {
        "usable_cores": cores,
        "floor": floor,
        "speedup": round(speedup, 3),
        "single": single,
        "sharded": sharded,
        "soak": soak,
        "failures": failures,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check and failures:
        for line in failures:
            print(f"GATE FAILED: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
