"""Ablation — batching vs packed algorithms (§2.1).

Batching (CryptoNets-class) packs one activation element across a batch of
inputs; packing (Gazelle/LoLa/CHOCO-class) packs full inputs.  The paper's
§2.1 claim: batching "optimizes for throughput ... [is] highly inefficient
for few inputs".  This ablation quantifies the single-image penalty and
the batch size at which batching amortizes.
"""

import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.apps.dnn import ClientAidedDnnPlan
from repro.core.batching import BatchedDnnPlan, crossover_batch_size
from repro.nn.models import NETWORK_BUILDERS


def _study():
    out = {}
    for name in ("LeNetSm", "LeNetLg"):
        net = NETWORK_BUILDERS[name]()
        packed = ClientAidedDnnPlan(net)
        packed_bytes = packed.communication_bytes()
        single = BatchedDnnPlan(net, batch_size=1)
        full = BatchedDnnPlan(net)
        out[name] = {
            "packed_mb": packed_bytes / 1e6,
            "batched_single_mb": single.communication_bytes_per_batch() / 1e6,
            "batched_full_per_image_mb":
                full.communication_bytes_per_image() / 1e6,
            "crossover": crossover_batch_size(net, packed_bytes),
            "batch_capacity": full.batch_size,
        }
    return out


def test_ablation_batching_vs_packing(benchmark):
    data = run_once(benchmark, _study)

    rows = [
        (name, f"{d['packed_mb']:.2f}", f"{d['batched_single_mb']:.0f}",
         f"{d['batched_single_mb'] / d['packed_mb']:.0f}x",
         f"{d['batched_full_per_image_mb']:.2f}",
         d["crossover"] if d["crossover"] > 0 else "never")
        for name, d in data.items()
    ]
    write_report("ablation_batching", format_table(
        ["Network", "Packed MB", "Batched@1 MB", "Single-image penalty",
         "Batched/full MB-img", "Crossover batch"], rows))

    for name, d in data.items():
        # §2.1: batching is catastrophic for single inputs.
        assert d["batched_single_mb"] / d["packed_mb"] > 50, name
        # Amortization only kicks in at large simultaneous batches.
        assert d["crossover"] == -1 or d["crossover"] > 64, name
        # At a full batch, per-image batched comm becomes competitive —
        # the throughput/latency tradeoff is real, not strawman.
        assert (d["batched_full_per_image_mb"] < d["packed_mb"] * 10), name
