"""Figure 8 (and §4.6) — hardware vs software across (N, k).

Compares CHOCO-TACO encryption time and energy against the IMX6 software
baseline across HE parameter settings.  Hardware time scales with N (residue
layers absorb k); software scales with both N and k — so the speedup grows
with k, reaching "up to 1094x time and 648x energy".  The (32768, 16)
software bars are omitted: that parameter set does not fit the client's
memory (§4.5), exactly as in the paper.

The decryption section checks §4.6: ~0.65 ms and a 125x speedup at (8192,3).
"""

import pytest

from _report import write_json, format_table, write_report
from conftest import run_once

from repro.accel.design import AcceleratorModel, CHOCO_TACO_CONFIG
from repro.experiments import decryption_comparison, scaling_study
from repro.platforms.client_device import Imx6SoftwareClient


def test_fig8_encryption_scaling(benchmark):
    rows = run_once(benchmark, scaling_study)

    table = []
    for r in rows:
        if r["sw_time"] is None:
            sw_t, sw_e, sp_t, sp_e = "OOM", "OOM", "-", "-"
        else:
            sw_t = f"{r['sw_time'] * 1e3:.1f} ms"
            sw_e = f"{r['sw_energy'] * 1e3:.2f} mJ"
            sp_t = f"{r['sw_time'] / r['hw_time']:.0f}x"
            sp_e = f"{r['sw_energy'] / r['hw_energy']:.0f}x"
        table.append((f"({r['n']},{r['k']})",
                      f"{r['hw_time'] * 1e3:.3f} ms",
                      f"{r['hw_energy'] * 1e6:.1f} uJ",
                      sw_t, sw_e, sp_t, sp_e))
    write_json("fig8_scaling", rows)
    write_report("fig8_scaling", format_table(
        ["(N,k)", "TACO time", "TACO energy", "SW time", "SW energy",
         "Speedup", "Energy save"], table))

    by_point = {(r["n"], r["k"]): r for r in rows}

    # Published anchor at the CHOCO configuration (8192, 3): 417x / 603x.
    anchor = by_point[(8192, 3)]
    assert anchor["sw_time"] / anchor["hw_time"] == pytest.approx(417, rel=0.05)
    assert anchor["sw_energy"] / anchor["hw_energy"] == pytest.approx(603, rel=0.05)

    # The (32768,16) software baseline is omitted: client memory (§4.5).
    assert by_point[(32768, 16)]["sw_time"] is None

    # Speedup grows with k at fixed N (hardware parallelism across layers).
    sp = {p: r["sw_time"] / r["hw_time"] for p, r in by_point.items()
          if r["sw_time"] is not None}
    assert sp[(8192, 5)] > sp[(8192, 3)]
    assert sp[(4096, 3)] > sp[(4096, 2)]
    # Largest measurable setting approaches the published "up to ~1094x".
    assert sp[(16384, 9)] > 600
    # Hardware time is within ~2.2x across a 4x N range at fixed k.
    assert (by_point[(16384, 9)]["hw_time"]
            / by_point[(4096, 3)]["hw_time"]) < 6


def test_sec46_decryption(benchmark):
    """§4.6: decryption 0.65 ms at (8192,3), 125x over software."""
    result = run_once(benchmark, decryption_comparison)
    write_report("sec46_decryption", [
        f"TACO decrypt: {result['hw_decrypt_s'] * 1e3:.3f} ms (published 0.65 ms)",
        f"speedup vs software: {result['decrypt_speedup']:.0f}x (published 125x)",
    ])
    assert result["hw_decrypt_s"] == pytest.approx(0.65e-3, rel=0.05)
    assert result["decrypt_speedup"] == pytest.approx(125, rel=0.08)
    # Decryption benefits less than encryption (fewer parallel polynomials).
    assert result["encrypt_speedup"] > result["decrypt_speedup"]
