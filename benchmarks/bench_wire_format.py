"""Wire format — actual serialized bytes vs the paper's logical accounting.

Table 3 sizes use the *logical* view: ``(k−1)`` residues of 8-byte words.
This repository's computational limbs are ≤30-bit (DESIGN.md substitution),
so the physical blob of a set-B ciphertext carries 3 word-sized rows where
SEAL would carry 2.  This benchmark serializes real ciphertexts and checks
that (a) the logical accounting matches Table 3 exactly, (b) the physical
blob matches its own formula exactly, and (c) seed compression halves
fresh symmetric uploads on the real wire, not just in the model.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

try:
    from _report import format_table, write_report
    from conftest import run_once
except ImportError:          # standalone `python benchmarks/bench_wire_format.py`
    sys.path.insert(0, str(Path(__file__).parent))
    from _report import format_table, write_report
    from conftest import run_once

from repro.hecore.bfv import BfvContext
from repro.hecore.params import PARAMETER_SET_B
from repro.hecore.serialize import serialize_ciphertext, serialized_size


def test_wire_format_vs_logical_accounting(benchmark):
    ctx = run_once(benchmark, BfvContext, PARAMETER_SET_B, 99)
    values = np.arange(64, dtype=np.int64)
    public_ct = ctx.encrypt(values)
    seeded_ct = ctx.encrypt_symmetric(values)
    switched = ctx.mod_switch_down(public_ct)

    blob_public = serialize_ciphertext(public_ct)
    blob_seeded = serialize_ciphertext(seeded_ct)
    blob_switched = serialize_ciphertext(switched)

    rows = [
        ("public fresh", public_ct.size_bytes(), len(blob_public)),
        ("symmetric seeded", seeded_ct.size_bytes(), len(blob_seeded)),
        ("after mod-switch", switched.size_bytes(), len(blob_switched)),
    ]
    write_report("wire_format", format_table(
        ["Ciphertext", "Logical bytes (paper)", "Physical bytes (this repo)"],
        rows))

    # (a) Logical accounting is exactly Table 3's set-B size.
    assert public_ct.size_bytes() == 131072
    # (b) Physical blob: header + 2 components x limbs x N x 8B.
    limbs = len(PARAMETER_SET_B.data_base)
    body = 2 * limbs * 4096 * 8
    assert len(blob_public) == serialized_size(public_ct)
    assert body < len(blob_public) < body + 128
    # (c) Seed compression ~halves the real wire size.
    assert len(blob_seeded) < 0.55 * len(blob_public)
    # Mod-switching sheds one limb of physical payload (plus its 8-byte
    # modulus entry in the header).
    assert len(blob_public) - len(blob_switched) == 2 * 4096 * 8 + 8


def test_decrypt_after_wire_roundtrip(benchmark):
    from repro.hecore.serialize import deserialize_ciphertext

    ctx = BfvContext(PARAMETER_SET_B, seed=100)
    values = np.arange(128, dtype=np.int64)
    ct = run_once(benchmark, ctx.encrypt_symmetric, values)
    restored = deserialize_ciphertext(serialize_ciphertext(ct),
                                      PARAMETER_SET_B)
    assert np.array_equal(ctx.decrypt(restored)[:128], values)


# ---------------------------------------------------------------------------
# Standalone wire-format report (BENCH_wire_format.json)
# ---------------------------------------------------------------------------

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_wire_format.json"

#: Conservative throughput floors (ops/sec) from the reference container
#: when the runtime wire format first landed — recorded well below the
#: idle-host measurement because these ops are microsecond-scale and the
#: shared host swings ~2x.  Sizes are exact — any byte drift is a protocol
#: break, not a perf regression — so only the throughput entries carry a
#: tolerance.  After the first run, ``--check`` compares against the
#: previous recorded run instead.
WIRE_BASELINE = {
    "serialize_public": 30000.0,
    "serialize_seeded": 50000.0,
    "deserialize_public": 15000.0,
    "serialize_relin": 800.0,
    "deserialize_relin": 8000.0,
}

REGRESSION_TOLERANCE = 0.20

#: Cross-run comparisons measure absolute throughput on a shared host (see
#: bench_he_throughput.CROSS_RUN_TOLERANCE); the recorded baselines are the
#: hard gate and the previous-run check only catches order-of-magnitude slips.
CROSS_RUN_TOLERANCE = 0.40


def _best_of(fn, reps, rounds=5):
    """Ops/sec from the fastest of *rounds* timing windows (see
    bench_he_throughput._best_of for why best-of, not mean)."""
    fn()  # warm caches outside the timed region
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return 1.0 / best


def _expected_sizes(params):
    """The frozen size contract, derived from the parameter set itself.

    Sizes here are exact — any drift means old clients can no longer talk
    to new servers, so ``--check`` fails hard rather than within a
    tolerance.  Layout: 21-byte CHOC header, one u64 per modulus, then
    8-byte coefficient rows (and a 32-byte seed in place of the second
    component for seed-compressed blobs).
    """
    n = params.poly_degree
    limbs = len(params.data_base)
    header = 21 + 8 * limbs
    body = n * 8                     # one component-limb row
    return {
        "public_fresh": header + 2 * limbs * body,
        "symmetric_seeded": header + limbs * body + 32,
        "after_mod_switch": (header - 8) + 2 * (limbs - 1) * body,
    }


def _measure(params):
    from repro.hecore.serialize import (
        deserialize_ciphertext,
        deserialize_relin_key,
        serialize_relin_key,
    )

    ctx = BfvContext(params, seed=b"bench-wire")
    values = np.arange(64, dtype=np.int64)
    public_ct = ctx.encrypt(values)
    seeded_ct = ctx.encrypt_symmetric(values)
    switched = ctx.mod_switch_down(public_ct)
    relin = ctx.relin_keys()

    blob_public = serialize_ciphertext(public_ct)
    blob_relin = serialize_relin_key(relin)

    sizes = {
        "public_fresh": len(blob_public),
        "symmetric_seeded": len(serialize_ciphertext(seeded_ct)),
        "after_mod_switch": len(serialize_ciphertext(switched)),
        "relin_key": len(blob_relin),
        "logical_public": public_ct.size_bytes(),
    }
    rates = {
        "serialize_public": _best_of(
            lambda: serialize_ciphertext(public_ct), 200),
        "serialize_seeded": _best_of(
            lambda: serialize_ciphertext(seeded_ct), 200),
        "deserialize_public": _best_of(
            lambda: deserialize_ciphertext(blob_public, params), 200),
        "serialize_relin": _best_of(
            lambda: serialize_relin_key(relin), 30, rounds=4),
        "deserialize_relin": _best_of(
            lambda: deserialize_relin_key(blob_relin, params), 100, rounds=4),
    }
    return sizes, rates


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any size drift, or if throughput regresses "
        ">20%% vs the previous run (first run: vs the recorded baseline)",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULTS_PATH, help="JSON output path"
    )
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    params = PARAMETER_SET_B
    print(f"set B (N={params.poly_degree}, "
          f"k={len(params.data_base)} data residues)")
    sizes, rates = _measure(params)
    expected = _expected_sizes(params)

    failures = []
    for name, want in expected.items():
        got = sizes[name]
        status = "ok" if got == want else "DRIFT"
        print(f"  size {name:18s} {got:10d} B   expected {want:10d} B   {status}")
        if got != want:
            failures.append(
                f"size {name}: {got} B does not match the frozen wire "
                f"contract ({want} B) — protocol break")

    ops = {}
    for op, rate in rates.items():
        baseline = WIRE_BASELINE[op]
        ops[op] = {
            "baseline_ops_per_sec": baseline,
            "current_ops_per_sec": round(rate, 3),
            "speedup": round(rate / baseline, 3),
        }
        print(f"  {op:20s} {rate:10.2f}/s   baseline {baseline:10.2f}/s"
              f"   {rate / baseline:5.2f}x")
        reference, source = baseline, "recorded baseline"
        tolerance = REGRESSION_TOLERANCE
        if previous is not None:
            prev_op = previous.get("ops", {}).get(op)
            if prev_op is not None:
                reference = prev_op["current_ops_per_sec"]
                source = "previous run"
                tolerance = CROSS_RUN_TOLERANCE
        if rate < reference * (1.0 - tolerance):
            failures.append(
                f"{op}: {rate:.2f}/s is more than "
                f"{tolerance:.0%} below the {source} "
                f"({reference:.2f}/s)")

    report = {
        "tolerance": REGRESSION_TOLERANCE,
        "set": "B",
        "poly_degree": params.poly_degree,
        "sizes_bytes": sizes,
        "expected_sizes_bytes": expected,
        "ops": ops,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check and failures:
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())