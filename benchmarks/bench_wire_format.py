"""Wire format — actual serialized bytes vs the paper's logical accounting.

Table 3 sizes use the *logical* view: ``(k−1)`` residues of 8-byte words.
This repository's computational limbs are ≤30-bit (DESIGN.md substitution),
so the physical blob of a set-B ciphertext carries 3 word-sized rows where
SEAL would carry 2.  This benchmark serializes real ciphertexts and checks
that (a) the logical accounting matches Table 3 exactly, (b) the physical
blob matches its own formula exactly, and (c) seed compression halves
fresh symmetric uploads on the real wire, not just in the model.
"""

import numpy as np
import pytest

from _report import format_table, write_report
from conftest import run_once

from repro.hecore.bfv import BfvContext
from repro.hecore.params import PARAMETER_SET_B
from repro.hecore.serialize import serialize_ciphertext, serialized_size


def test_wire_format_vs_logical_accounting(benchmark):
    ctx = run_once(benchmark, BfvContext, PARAMETER_SET_B, 99)
    values = np.arange(64, dtype=np.int64)
    public_ct = ctx.encrypt(values)
    seeded_ct = ctx.encrypt_symmetric(values)
    switched = ctx.mod_switch_down(public_ct)

    blob_public = serialize_ciphertext(public_ct)
    blob_seeded = serialize_ciphertext(seeded_ct)
    blob_switched = serialize_ciphertext(switched)

    rows = [
        ("public fresh", public_ct.size_bytes(), len(blob_public)),
        ("symmetric seeded", seeded_ct.size_bytes(), len(blob_seeded)),
        ("after mod-switch", switched.size_bytes(), len(blob_switched)),
    ]
    write_report("wire_format", format_table(
        ["Ciphertext", "Logical bytes (paper)", "Physical bytes (this repo)"],
        rows))

    # (a) Logical accounting is exactly Table 3's set-B size.
    assert public_ct.size_bytes() == 131072
    # (b) Physical blob: header + 2 components x limbs x N x 8B.
    limbs = len(PARAMETER_SET_B.data_base)
    body = 2 * limbs * 4096 * 8
    assert len(blob_public) == serialized_size(public_ct)
    assert body < len(blob_public) < body + 128
    # (c) Seed compression ~halves the real wire size.
    assert len(blob_seeded) < 0.55 * len(blob_public)
    # Mod-switching sheds one limb of physical payload (plus its 8-byte
    # modulus entry in the header).
    assert len(blob_public) - len(blob_switched) == 2 * 4096 * 8 + 8


def test_decrypt_after_wire_roundtrip(benchmark):
    from repro.hecore.serialize import deserialize_ciphertext

    ctx = BfvContext(PARAMETER_SET_B, seed=100)
    values = np.arange(128, dtype=np.int64)
    ct = run_once(benchmark, ctx.encrypt_symmetric, values)
    restored = deserialize_ciphertext(serialize_ciphertext(ct),
                                      PARAMETER_SET_B)
    assert np.array_equal(ctx.decrypt(restored)[:128], values)