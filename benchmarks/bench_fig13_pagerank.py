"""Figure 13 — client-aided PageRank: communication vs refresh schedule.

For each total iteration count, every divisor schedule (1 set of 24, 2 sets
of 12, ..., refresh every iteration) is costed: deeper encrypted segments
need larger parameters (no noise refresh), shallower ones communicate more
often with smaller ciphertexts.

Published shape (§5.6): CKKS achieves each segment depth with smaller
parameters than BFV, reducing communication across the board; frequent
communication of small ciphertexts beats continuous encrypted execution;
and every client-optimal combination fits CHOCO-TACO's (N<=8192, k<=3)
envelope.
"""

import pytest

from _report import ascii_scatter, format_table, write_report
from conftest import run_once

from repro.apps.pagerank import sweep_schedules
from repro.hecore.params import SchemeType

TOTALS = (6, 12, 24, 48)
NODES = 64


def _sweep_all():
    out = {}
    for scheme in (SchemeType.BFV, SchemeType.CKKS):
        for total in TOTALS:
            out[(scheme, total)] = sweep_schedules(total, NODES, scheme)
    return out


def test_fig13_pagerank_schedules(benchmark):
    data = run_once(benchmark, _sweep_all)

    rows = []
    for (scheme, total), points in data.items():
        for p in sorted(points, key=lambda x: x.segment):
            rows.append((
                scheme.value.upper(), total, p.segment,
                f"N={p.choice.poly_degree},k={p.choice.residue_count}",
                f"{p.communication_bytes / 1e6:.2f} MB",
                "*" if p.taco_compatible else "",
            ))
    write_report("fig13_pagerank", format_table(
        ["Scheme", "Total iters", "Segment", "Params", "Comm",
         "TACO-ok"], rows))

    # Figure 13's picture for the 24-iteration column, both schemes.
    cloud = (data[(SchemeType.BFV, 24)] + data[(SchemeType.CKKS, 24)])
    write_report("fig13_scatter", ascii_scatter(
        [p.segment for p in cloud],
        [p.communication_bytes / 1e6 for p in cloud],
        marks=["B" if p.scheme is SchemeType.BFV else "C" for p in cloud],
        xlabel="iterations per encrypted segment (24 total)",
        ylabel="total communication (MB)",
    ))

    for total in TOTALS:
        bfv = {p.segment: p for p in data[(SchemeType.BFV, total)]}
        ckks = {p.segment: p for p in data[(SchemeType.CKKS, total)]}

        # CKKS fits every schedule BFV fits, at most the same communication.
        for segment, bp in bfv.items():
            assert segment in ckks
            assert (ckks[segment].communication_bytes
                    <= bp.communication_bytes), (total, segment)

        best = min(ckks.values(),
                   key=lambda p: (p.communication_bytes,
                                  p.choice.residue_count,
                                  p.choice.poly_degree))
        # The client-optimal schedule is client-aided (not one giant
        # encrypted segment) once totals are non-trivial, and it fits the
        # CHOCO-TACO hardware envelope (§5.6).
        if total >= 12:
            assert best.segment < total
            assert best.taco_compatible

        # Deep fully-encrypted segments either do not fit 128-bit-secure
        # parameters at all, or cost more than the best refresh schedule.
        full = ckks.get(total)
        if full is not None and total >= 12:
            assert full.communication_bytes >= best.communication_bytes


def test_fig13_deepest_bfv_segments_infeasible(benchmark):
    """BFV's compounding fixed-point scales exhaust secure parameters on
    deep segments where CKKS (rescaling) still fits."""
    points_bfv = run_once(benchmark, sweep_schedules, 48, NODES, SchemeType.BFV)
    bfv_segments = {p.segment for p in points_bfv}
    ckks_segments = {p.segment for p in
                     sweep_schedules(48, NODES, SchemeType.CKKS)}
    assert bfv_segments <= ckks_segments
    assert len(ckks_segments) > len(bfv_segments)
