"""First-class experiment generators for the paper's tables and figures.

The benchmark harness (``benchmarks/``) asserts shapes and writes reports;
the *computations* live here so library users can regenerate any figure's
data programmatically:

>>> from repro.experiments import client_time_characterization
>>> rows = client_time_characterization()
>>> rows["VGG16"]["choco_taco"]      # seconds of active client compute
"""

from repro.experiments.accelerator import (
    design_space_summary,
    operating_point_report,
)
from repro.experiments.client_time import (
    client_time_characterization,
    seal_baseline_breakdown,
)
from repro.experiments.noise_budgets import (
    measure_noise_budget_row,
    table4_noise_budgets,
)
from repro.experiments.communication import (
    figure10_comparison,
    table5_rows,
)
from repro.experiments.endtoend import end_to_end_study
from repro.experiments.microbench import conv_microbenchmark, network_layer_points
from repro.experiments.scaling import decryption_comparison, scaling_study

__all__ = [
    "design_space_summary",
    "operating_point_report",
    "measure_noise_budget_row",
    "table4_noise_budgets",
    "client_time_characterization",
    "seal_baseline_breakdown",
    "figure10_comparison",
    "table5_rows",
    "end_to_end_study",
    "conv_microbenchmark",
    "network_layer_points",
    "decryption_comparison",
    "scaling_study",
]
