"""Hardware-vs-software scaling across HE parameters (Figure 8, §4.6)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.accel.design import AcceleratorModel, CHOCO_TACO_CONFIG
from repro.platforms.client_device import Imx6SoftwareClient

#: The (N, k) points the Figure 8 sweep covers.
DEFAULT_PARAMETER_POINTS: Tuple[Tuple[int, int], ...] = (
    (2048, 1), (4096, 2), (4096, 3), (8192, 3), (8192, 5),
    (16384, 9), (32768, 16),
)


def scaling_study(points=DEFAULT_PARAMETER_POINTS) -> List[Dict]:
    """Per-(N, k): CHOCO-TACO vs IMX6-software encryption time and energy.

    Software entries are ``None`` when the parameter set does not fit the
    client's memory (§4.5 — the paper omits the (32768, 16) baseline bars).
    """
    client = Imx6SoftwareClient()
    rows = []
    for n, k in points:
        hw = AcceleratorModel(CHOCO_TACO_CONFIG, n, k).encrypt_cost()
        fits = client.can_hold_parameters(n, k)
        sw_time: Optional[float] = client.encrypt_time(n, k) if fits else None
        rows.append({
            "n": n, "k": k,
            "hw_time": hw.time_s, "hw_energy": hw.energy_j,
            "sw_time": sw_time,
            "sw_energy": client.energy(sw_time) if fits else None,
        })
    return rows


def decryption_comparison(n: int = 8192, k: int = 3) -> Dict[str, float]:
    """§4.6: hardware vs software decryption at the CHOCO selection."""
    client = Imx6SoftwareClient()
    model = AcceleratorModel(CHOCO_TACO_CONFIG, n, k)
    dec = model.decrypt_cost()
    enc = model.encrypt_cost()
    return {
        "hw_decrypt_s": dec.time_s,
        "sw_decrypt_s": client.decrypt_time(n, k),
        "decrypt_speedup": client.decrypt_time(n, k) / dec.time_s,
        "encrypt_speedup": client.encrypt_time(n, k) / enc.time_s,
    }
