"""Convolution microbenchmarks: MACs vs communication (Figure 15, §5.8)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apps.dnn import ClientAidedDnnPlan
from repro.hecore.params import PARAMETER_SET_A
from repro.nn.layers import ConvLayer, FireLayer, Network


def conv_microbenchmark(
    images=(2, 4, 8, 16, 32),
    channel_counts=(32, 64, 128, 256, 512),
    kernels=(1, 3),
    slot_budget: int = 512 * 32 * 32,
) -> List[Dict]:
    """Synthetic square conv layers swept over shape (one Figure 15 dot each)."""
    points = []
    for image in images:
        for channels in channel_counts:
            if channels * image * image > slot_budget:
                continue
            for kernel in kernels:
                conv = ConvLayer(channels, channels, kernel, padding="same")
                net = Network(f"micro-c{channels}-i{image}-f{kernel}",
                              (channels, image, image), [conv])
                plan = ClientAidedDnnPlan(net, params=PARAMETER_SET_A)
                points.append({
                    "label": f"c{channels}/i{image}/f{kernel}",
                    "macs": net.total_macs(),
                    "comm": plan.communication_bytes(),
                    "kernel": kernel,
                    "channels": channels,
                    "image": image,
                })
    return points


def network_layer_points(net: Network) -> List[Tuple[int, int]]:
    """(MACs, comm bytes) per convolutional layer of a real network."""
    out = []
    for layer, shape in net.linear_layers():
        convs = []
        if isinstance(layer, ConvLayer):
            convs.append((layer, shape))
        elif isinstance(layer, FireLayer):
            _, h, w = shape
            convs.append((layer.squeeze_conv, shape))
            mid = (layer.squeeze, h, w)
            convs.append((layer.expand1_conv, mid))
            convs.append((layer.expand3_conv, mid))
        for conv, conv_shape in convs:
            sub = Network("one", conv_shape, [conv])
            plan = ClientAidedDnnPlan(sub, params=PARAMETER_SET_A)
            out.append((conv.macs(conv_shape), plan.communication_bytes()))
    return out
