"""Accelerator design-space results as library API (Figure 7, §4.4)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.accel.design import AcceleratorModel, CHOCO_TACO_CONFIG
from repro.accel.dse import (
    DesignPoint,
    explore_design_space,
    pareto_frontier,
    select_operating_point,
)


def design_space_summary(grid=None, poly_degree: int = 8192,
                         residues: int = 3) -> Dict:
    """Sweep, select, and summarize (the Figure 7 result object)."""
    points = explore_design_space(grid, poly_degree, residues)
    selected = select_operating_point(points)
    sample = sorted(points, key=lambda p: p.time_s)[:: max(1, len(points) // 400)]
    return {
        "count": len(points),
        "points": points,
        "selected": selected,
        "pareto_sample": pareto_frontier(sample),
        "time_range_s": (min(p.time_s for p in points),
                         max(p.time_s for p in points)),
        "power_range_w": (min(p.power_w for p in points),
                          max(p.power_w for p in points)),
        "area_range_mm2": (min(p.area_mm2 for p in points),
                           max(p.area_mm2 for p in points)),
    }


def operating_point_report(poly_degree: int = 8192,
                           residues: int = 3) -> Dict[str, float]:
    """The Figure 6 configuration's published-anchor metrics."""
    model = AcceleratorModel(CHOCO_TACO_CONFIG, poly_degree, residues)
    enc = model.encrypt_cost()
    dec = model.decrypt_cost()
    return {
        "encrypt_time_s": enc.time_s,
        "encrypt_energy_j": enc.energy_j,
        "decrypt_time_s": dec.time_s,
        "decrypt_energy_j": dec.energy_j,
        "area_mm2": model.area_mm2,
        "average_power_w": model.average_power_w,
    }
