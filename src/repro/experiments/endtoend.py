"""End-to-end time and energy over Bluetooth (Figure 14, §5.7)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.dnn import ClientAidedDnnPlan
from repro.core.protocol import ClientCostModel
from repro.nn.models import NETWORK_BUILDERS
from repro.platforms.local_inference import TfLiteLocalInference
from repro.platforms.radio import BluetoothLink


def end_to_end_study(radio: Optional[BluetoothLink] = None
                     ) -> Dict[str, Dict[str, float]]:
    """Per network: the full CHOCO-TACO reference implementation vs local.

    ``compute_s`` is accelerated client crypto + activations; ``comm_s`` is
    the radio (bytes plus per-round link latency); energy charges compute
    and radio to the client, with the server free (the point of offload).
    """
    radio = radio or BluetoothLink()
    local = TfLiteLocalInference()
    out: Dict[str, Dict[str, float]] = {}
    for name, build in NETWORK_BUILDERS.items():
        net = build()
        plan = ClientAidedDnnPlan(net)
        taco = ClientCostModel.choco_taco(plan.params)
        led = plan.ledger(taco)
        comm_s = radio.session_time(led.total_bytes, led.rounds)
        out[name] = {
            "compute_s": led.client_compute_s,
            "comm_s": comm_s,
            "total_s": led.client_compute_s + comm_s,
            "energy_j": led.end_to_end_client_energy(radio),
            "local_s": local.inference_time(net.total_macs()),
            "local_j": local.inference_energy(net.total_macs()),
        }
    return out
