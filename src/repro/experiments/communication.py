"""Communication studies: Table 5's Comm. column and Figure 10."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.apps.dnn import ClientAidedDnnPlan
from repro.baselines.protocols import communication_improvements
from repro.nn.models import NETWORK_BUILDERS, TABLE5_REFERENCE


def table5_rows() -> Dict[str, Dict]:
    """Every Table 5 column, measured from this repository's models/plans."""
    rows = {}
    for name, build in NETWORK_BUILDERS.items():
        net = build()
        plan = ClientAidedDnnPlan(net)
        rows[name] = {
            "census": net.layer_census(),
            "macs_e6": net.total_macs() / 1e6,
            "float_mb": net.model_size_bytes(32) / 1e6,
            "fourbit_mb": net.model_size_bytes(8) / 1e6,
            "comm_mb": plan.communication_bytes() / 1e6,
            "offline_key_mb": plan.offline_key_bytes() / 1e6,
            "params": plan.params.label,
            "published": TABLE5_REFERENCE[name],
        }
    return rows


def figure10_comparison() -> Dict[Tuple[str, str], Tuple[float, Dict[str, float]]]:
    """CHOCO's measured communication vs the prior-protocol totals.

    Keys are ``(network, dataset)``; values are ``(choco_mb, {protocol:
    improvement factor})``.
    """
    out = {}
    for net_name, dataset in (("LeNetLg", "MNIST"), ("SqzNet", "CIFAR-10")):
        plan = ClientAidedDnnPlan(NETWORK_BUILDERS[net_name]())
        choco_mb = plan.communication_bytes() / 1e6
        out[(net_name, dataset)] = (
            choco_mb, communication_improvements(choco_mb, dataset)
        )
    return out
