"""Client compute-time characterization (Figures 2 and 12).

Per network, active client compute under each hardware assumption:

* ``seal_baseline`` — server-optimized algorithms, SEAL default parameters;
* ``choco_sw`` — CHOCO's algorithmic optimizations, software crypto;
* ``choco_heax`` / ``choco_fpga`` — best-case partial (NTT-only) assistance;
* ``choco_taco`` — comprehensive CHOCO-TACO acceleration;
* ``local`` — the TFLite on-device bound.

All values in seconds per single-image inference, derived by the paper's
§5.2 methodology (operation counts × per-operation platform cost).
"""

from __future__ import annotations

from typing import Dict

from repro.accel.hwassist import ENCRYPTION_FPGA, HEAX
from repro.apps.dnn import ClientAidedDnnPlan
from repro.baselines.gazelle import server_optimized_plan
from repro.core.protocol import ClientCostModel
from repro.nn.models import NETWORK_BUILDERS
from repro.platforms.local_inference import TfLiteLocalInference


def client_time_characterization() -> Dict[str, Dict[str, float]]:
    """The Figure 12 data: seconds of active client compute per network."""
    local = TfLiteLocalInference()
    out: Dict[str, Dict[str, float]] = {}
    for name, build in NETWORK_BUILDERS.items():
        net = build()
        baseline = server_optimized_plan(net)
        choco = ClientAidedDnnPlan(net)
        out[name] = {
            "seal_baseline": baseline.client_time(
                ClientCostModel.software(baseline.params)),
            "choco_sw": choco.client_time(
                ClientCostModel.software(choco.params)),
            "choco_heax": choco.client_time(
                ClientCostModel.partial_accelerator(choco.params, HEAX)),
            "choco_fpga": choco.client_time(
                ClientCostModel.partial_accelerator(choco.params,
                                                    ENCRYPTION_FPGA)),
            "choco_taco": choco.client_time(
                ClientCostModel.choco_taco(choco.params)),
            "local": local.inference_time(net.total_macs()),
        }
    return out


def seal_baseline_breakdown() -> Dict[str, Dict[str, float]]:
    """The Figure 2 data: the SEAL-baseline client time split into HE versus
    application (activation/quantization) work, plus partial-assist bounds."""
    local = TfLiteLocalInference()
    out: Dict[str, Dict[str, float]] = {}
    for name, build in NETWORK_BUILDERS.items():
        net = build()
        plan = server_optimized_plan(net)
        sw = ClientCostModel.software(plan.params)
        out[name] = {
            "software": plan.client_time(sw),
            "heax": plan.client_time(
                ClientCostModel.partial_accelerator(plan.params, HEAX)),
            "fpga": plan.client_time(
                ClientCostModel.partial_accelerator(plan.params,
                                                    ENCRYPTION_FPGA)),
            "app": plan.client_activation_time(),
            "crypto_sw": plan.client_crypto_time(sw),
            "local": local.inference_time(net.total_macs()),
        }
    return out
