"""Functional noise-budget measurement (Table 4), as library API.

Runs real BFV for each parameter row: encrypt a redundantly packed window,
perform the same windowed rotation via rotational redundancy (one rotation)
and via arbitrary masked permutation (Figure 4A), and measure the three
budgets Table 4 reports.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.packing import RedundantPacking, windowed_rotation_redundant
from repro.core.permute import windowed_rotation_masked
from repro.hecore.bfv import BfvContext
from repro.hecore.params import EncryptionParameters, SchemeType

#: Table 4's parameter rows: (N, log2 t, logical {k}).
TABLE4_ROWS: Tuple[Tuple[int, int, Tuple[int, ...]], ...] = (
    (8192, 20, (58, 58, 59)),
    (8192, 23, (58, 58, 59)),
    (8192, 28, (58, 58, 59)),
    (4096, 16, (36, 36, 37)),
    (4096, 18, (36, 36, 37)),
    (4096, 20, (36, 36, 37)),
)

#: Published budgets: (initial, post-rotate, post-permute) per row.
TABLE4_PUBLISHED: Dict[Tuple[int, int], Tuple[int, int, int]] = {
    (8192, 20): (68, 66, 42),
    (8192, 23): (62, 59, 33),
    (8192, 28): (52, 50, 18),
    (4096, 16): (33, 31, 12),
    (4096, 18): (29, 26, 5),
    (4096, 20): (25, 22, 0),
}

WINDOW, ROTATION = 16, 3


def measure_noise_budget_row(n: int, t_bits: int,
                             logical_bits) -> Tuple[int, int, int]:
    """(initial, post-rotate, post-permute) budgets for one Table 4 row."""
    params = EncryptionParameters.create(
        SchemeType.BFV, n, logical_bits, plain_bits=t_bits,
        label=f"{n}/{t_bits}",
    )
    ctx = BfvContext(params, seed=t_bits * n)
    ctx.make_galois_keys([ROTATION, -(WINDOW - ROTATION)])
    packing = RedundantPacking(window=WINDOW, redundancy=4, count=1)
    values = np.arange(1, WINDOW + 1, dtype=np.int64)
    # Explicit encode-then-encrypt (shared plaintext path; encode cost is
    # charged once rather than double-counted inside encrypt breakdowns).
    ct = ctx.encrypt(ctx.encode(packing.pack([values]).astype(np.int64)))

    initial = ctx.noise_budget(ct)
    rotated = windowed_rotation_redundant(ctx, ct, ROTATION, packing.layout)
    offset = packing.layout.window_offset(0)
    permuted = windowed_rotation_masked(ctx, ct, ROTATION, offset, WINDOW)
    return initial, ctx.noise_budget(rotated), ctx.noise_budget(permuted)


def table4_noise_budgets() -> Dict[Tuple[int, int], Tuple[int, int, int]]:
    """Measured budgets for every published Table 4 row."""
    return {
        (n, t): measure_noise_budget_row(n, t, bits)
        for n, t, bits in TABLE4_ROWS
    }
