"""An EVA-style compiler for CKKS programs (§3.2).

The paper minimizes CKKS parameters through "optimal operation scheduling
via the state-of-the-art EVA HE compiler".  This module reproduces EVA's
essential behavior for the workloads CHOCO runs:

* programs are **expression graphs** over encrypted inputs, plaintext
  constants, ``+ - *``, and rotations;
* the compiler analyzes multiplicative depth and the rotation-step set,
  recommends the smallest parameter selection, and schedules the ops —
  inserting a **rescale** after every multiplication (waterline discipline),
  **relinearization** after ciphertext-ciphertext products, and **level
  alignment** (modulus drops) before binary operations whose operands sit at
  different depths;
* execution normalizes scales after each rescale (rescale primes are chosen
  near the scale, so the relative bias per level is < 0.1%), keeping every
  node at the program's nominal scale.

Example
-------
>>> x = Input("x")
>>> program = EvaProgram({"y": x * x + Constant([1.0])}, slots=4)
>>> compiled = compile_program(program)
>>> compiled.multiplicative_depth
1
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.ir import (IrBuilder, IrProgram, ScheduledProgram,
                           compile_ir, ensure_galois_keys)
from repro.core.paramsearch import ParameterChoice, WorkloadProfile, select_parameters
from repro.hecore.params import SchemeType


class Expr:
    """Base expression node.  Supports operator overloading."""

    def __add__(self, other):
        return Add(self, _coerce(other))

    def __radd__(self, other):
        return Add(_coerce(other), self)

    def __sub__(self, other):
        return Sub(self, _coerce(other))

    def __rsub__(self, other):
        return Sub(_coerce(other), self)

    def __mul__(self, other):
        return Mul(self, _coerce(other))

    def __rmul__(self, other):
        return Mul(_coerce(other), self)

    def __neg__(self):
        return Neg(self)

    def rotate(self, steps: int) -> "Rotate":
        """Rotate the slot vector left by *steps*."""
        return Rotate(self, steps)

    @property
    def children(self) -> Tuple["Expr", ...]:
        return ()


def _coerce(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Scalar(float(value))
    if isinstance(value, (list, tuple, np.ndarray)):
        return Constant(np.asarray(value, dtype=float))
    raise TypeError(f"cannot use {type(value).__name__} in an Eva expression")


@dataclass(frozen=True, eq=False)
class Input(Expr):
    """An encrypted program input."""

    name: str


@dataclass(frozen=True, eq=False)
class Constant(Expr):
    """A plaintext vector constant."""

    values: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "values", np.asarray(self.values, dtype=float))


@dataclass(frozen=True, eq=False)
class Scalar(Expr):
    """A plaintext scalar constant (broadcast over all slots)."""

    value: float


@dataclass(frozen=True, eq=False)
class Add(Expr):
    left: Expr
    right: Expr

    @property
    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class Sub(Expr):
    left: Expr
    right: Expr

    @property
    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class Mul(Expr):
    left: Expr
    right: Expr

    @property
    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class Neg(Expr):
    operand: Expr

    @property
    def children(self):
        return (self.operand,)


@dataclass(frozen=True, eq=False)
class Rotate(Expr):
    """Left-rotate by *steps* slots.

    HE rotations wrap at the ciphertext's full slot width (N/2), not at the
    program's window, so within the window the observable behaviour is a
    shift with zeros entering from the (zero-padded) adjacent slots.
    """

    operand: Expr
    steps: int

    @property
    def children(self):
        return (self.operand,)


@dataclass
class EvaProgram:
    """A named set of output expressions over *slots*-wide vectors."""

    outputs: Dict[str, Expr]
    slots: int
    name: str = "eva-program"

    def __post_init__(self):
        if not self.outputs:
            raise ValueError("a program needs at least one output")
        if self.slots < 1:
            raise ValueError("slots must be positive")


def _is_plain(expr: Expr) -> bool:
    return isinstance(expr, (Constant, Scalar))


class _Analysis:
    """Single pass over the DAG: depth, rotations, op counts."""

    def __init__(self, program: EvaProgram):
        self.depth: Dict[int, int] = {}
        self.rotation_steps: Set[int] = set()
        self.ct_mults = 0
        self.plain_mults = 0
        self.adds = 0
        self.inputs: Set[str] = set()
        self._memo: Dict[int, int] = {}
        for expr in program.outputs.values():
            self._visit(expr)

    def _visit(self, expr: Expr) -> int:
        """Returns the node's multiplicative depth (plaintext nodes: 0)."""
        key = id(expr)
        if key in self._memo:
            return self._memo[key]
        if isinstance(expr, Input):
            self.inputs.add(expr.name)
            d = 0
        elif _is_plain(expr):
            d = 0
        elif isinstance(expr, Mul):
            dl = self._visit(expr.left)
            dr = self._visit(expr.right)
            if _is_plain(expr.left) or _is_plain(expr.right):
                self.plain_mults += 1
            else:
                self.ct_mults += 1
            d = max(dl, dr) + 1
        elif isinstance(expr, (Add, Sub)):
            self.adds += 1
            d = max(self._visit(expr.left), self._visit(expr.right))
        elif isinstance(expr, Neg):
            d = self._visit(expr.operand)
        elif isinstance(expr, Rotate):
            if expr.steps:
                self.rotation_steps.add(expr.steps)
            d = self._visit(expr.operand)
        else:
            raise TypeError(f"unknown expression node {type(expr).__name__}")
        self._memo[key] = d
        return d

    @property
    def max_depth(self) -> int:
        return max(self._memo.values(), default=0)


@dataclass
class CompiledProgram:
    """A scheduled program: analysis results plus an executable plan."""

    program: EvaProgram
    multiplicative_depth: int
    rotation_steps: Set[int]
    ct_mults: int
    plain_mults: int
    adds: int
    input_names: Set[str]
    recommended: ParameterChoice
    _scheduled: Optional[ScheduledProgram] = field(default=None, repr=False)

    # ----------------------------------------------------------- scheduling
    def scheduled(self, params=None) -> ScheduledProgram:
        """The program lowered to ciphertext IR and run through the
        scheduler passes (rotation fusion, level planning when *params*
        are supplied, level-drop sinking, NTT residency).  Cached on
        first call: plaintext encodings and NTT tables survive across
        :meth:`execute` calls."""
        if self._scheduled is None:
            self._scheduled = compile_ir(lower_to_ir(self.program),
                                         SchemeType.CKKS, params=params)
        return self._scheduled

    # ----------------------------------------------------------- execution
    def execute(self, ctx, inputs: Dict[str, object],
                use_scheduler: bool = True,
                use_level_planner: bool = True) -> Dict[str, np.ndarray]:
        """Run the program on a :class:`CkksContext`.

        *inputs* maps input names to plaintext vectors (encrypted here) or
        pre-encrypted ciphertexts.  Returns decrypted output vectors.
        With ``use_scheduler=False`` the original direct executor runs —
        the scheduler-off reference the exactness tests compare against.
        ``use_level_planner=False`` schedules without the level planner
        (the full modulus chain stays live end to end); the flag takes
        effect on the first scheduled call, which caches the program.
        """
        if ctx.params.scheme is not SchemeType.CKKS:
            raise ValueError("Eva programs execute under CKKS")
        missing = self.input_names - set(inputs)
        if missing:
            raise ValueError(f"missing program inputs: {sorted(missing)}")
        planner_params = ctx.params if use_level_planner else None
        if use_scheduler:
            ensure_galois_keys(
                ctx, self.scheduled(planner_params).rotation_steps())
        elif self.rotation_steps:
            ctx.make_galois_keys(self.rotation_steps)
        # Encrypt all plaintext program inputs in one stacked client pass,
        # and decrypt all program outputs in another — the compiler is a
        # natural batch boundary for the client-crypto engine.
        prepared = dict(inputs)
        plain_names = [name for name in sorted(self.input_names)
                       if not hasattr(prepared[name], "components")]
        if plain_names:
            padded = []
            for name in plain_names:
                vec = np.zeros(self.program.slots)
                raw = np.asarray(prepared[name], dtype=float)
                vec[: len(raw)] = raw
                padded.append(vec)
            prepared.update(zip(plain_names, ctx.encrypt_many(padded)))
        if use_scheduler:
            outputs = self.scheduled(planner_params).run(ctx, prepared)
            out_cts = [(name, outputs[name]) for name in self.program.outputs]
        else:
            executor = _Executor(ctx, self.program.slots, prepared)
            out_cts = [(name, executor.evaluate(expr))
                       for name, expr in self.program.outputs.items()]
        decrypted = ctx.decrypt_many([ct for _, ct in out_cts])
        return {name: np.real(vec)[: self.program.slots]
                for (name, _), vec in zip(out_cts, decrypted)}

    def reference(self, inputs: Dict[str, Sequence[float]]) -> Dict[str, np.ndarray]:
        """Plaintext oracle evaluation of the same program."""
        memo: Dict[int, np.ndarray] = {}

        def ev(expr: Expr) -> np.ndarray:
            key = id(expr)
            if key in memo:
                return memo[key]
            if isinstance(expr, Input):
                v = np.zeros(self.program.slots)
                raw = np.asarray(inputs[expr.name], dtype=float)
                v[: len(raw)] = raw
            elif isinstance(expr, Constant):
                v = np.zeros(self.program.slots)
                v[: len(expr.values)] = expr.values
            elif isinstance(expr, Scalar):
                v = np.full(self.program.slots, expr.value)
            elif isinstance(expr, Add):
                v = ev(expr.left) + ev(expr.right)
            elif isinstance(expr, Sub):
                v = ev(expr.left) - ev(expr.right)
            elif isinstance(expr, Mul):
                v = ev(expr.left) * ev(expr.right)
            elif isinstance(expr, Neg):
                v = -ev(expr.operand)
            elif isinstance(expr, Rotate):
                inner = ev(expr.operand)
                v = np.zeros_like(inner)
                s = expr.steps
                if s >= 0:
                    v[: len(inner) - s or None] = inner[s:]
                else:
                    v[-s:] = inner[: len(inner) + s]
            else:
                raise TypeError(type(expr).__name__)
            memo[key] = v
            return v

        return {name: ev(expr) for name, expr in self.program.outputs.items()}


class _Executor:
    """Evaluates a scheduled DAG on a live CKKS context.

    Invariant: every ciphertext node sits at the context's nominal scale;
    multiplications rescale immediately and normalize the tracked scale
    (bias per level < 0.1% with near-scale rescale primes).
    """

    def __init__(self, ctx, slots: int, inputs: Dict[str, object]):
        self.ctx = ctx
        self.slots = slots
        self.inputs = inputs
        self._memo: Dict[int, object] = {}

    # --------------------------------------------------------- level mgmt
    def _align(self, a, b):
        a, b = self.ctx.align(a, b)
        return a, b

    def _rescale_normalized(self, ct):
        out = self.ctx.rescale(ct)
        drift = out.scale / self.ctx.params.scale
        if not 0.5 < drift < 2.0:
            raise RuntimeError("scale drifted out of the normalization range")
        out.scale = self.ctx.params.scale
        return out

    def _plain_vector(self, expr: Expr) -> np.ndarray:
        if isinstance(expr, Constant):
            v = np.zeros(self.slots)
            v[: len(expr.values)] = expr.values
            return v
        if isinstance(expr, Scalar):
            return np.full(self.slots, expr.value)
        raise TypeError("not a plaintext node")

    # ---------------------------------------------------------- evaluation
    def evaluate(self, expr: Expr):
        key = id(expr)
        if key in self._memo:
            return self._memo[key]
        ct = self._evaluate(expr)
        self._memo[key] = ct
        return ct

    def _evaluate(self, expr: Expr):
        ctx = self.ctx
        if isinstance(expr, Input):
            value = self.inputs[expr.name]
            if hasattr(value, "components"):
                return value
            padded = np.zeros(self.slots)
            raw = np.asarray(value, dtype=float)
            padded[: len(raw)] = raw
            return ctx.encrypt(padded)
        if _is_plain(expr):
            raise TypeError("plaintext nodes are consumed by their parents")
        if isinstance(expr, Neg):
            return ctx.negate(self.evaluate(expr.operand))
        if isinstance(expr, Rotate):
            inner = self.evaluate(expr.operand)
            return ctx.rotate(inner, expr.steps) if expr.steps else inner
        if isinstance(expr, (Add, Sub)):
            return self._binary_additive(expr)
        if isinstance(expr, Mul):
            return self._multiply(expr)
        raise TypeError(type(expr).__name__)

    def _binary_additive(self, expr):
        ctx = self.ctx
        op = ctx.add if isinstance(expr, Add) else ctx.sub
        left_plain = _is_plain(expr.left)
        right_plain = _is_plain(expr.right)
        if left_plain and right_plain:
            raise ValueError("fold constant-only expressions before compiling")
        if right_plain or left_plain:
            plain_expr, ct_expr = ((expr.left, expr.right) if left_plain
                                   else (expr.right, expr.left))
            ct = self.evaluate(ct_expr)
            pt = ctx.encode(self._plain_vector(plain_expr), scale=ct.scale,
                            base=ct.level_base)
            if isinstance(expr, Add):
                return ctx.add_plain(ct, pt)
            if left_plain:                     # plain - ct
                return ctx.add_plain(ctx.negate(ct), pt)
            return ctx.add_plain(ct, _negate_plain(pt))   # ct - plain
        a = self.evaluate(expr.left)
        b = self.evaluate(expr.right)
        a, b = self._align(a, b)
        return op(a, b)

    def _multiply(self, expr):
        ctx = self.ctx
        left_plain = _is_plain(expr.left)
        right_plain = _is_plain(expr.right)
        if left_plain and right_plain:
            raise ValueError("fold constant-only expressions before compiling")
        if left_plain or right_plain:
            plain_expr, ct_expr = ((expr.left, expr.right) if left_plain
                                   else (expr.right, expr.left))
            ct = self.evaluate(ct_expr)
            pt = ctx.encode(self._plain_vector(plain_expr), base=ct.level_base)
            return self._rescale_normalized(ctx.multiply_plain(ct, pt))
        a = self.evaluate(expr.left)
        b = self.evaluate(expr.right)
        a, b = self._align(a, b)
        return self._rescale_normalized(ctx.multiply(a, b))


def _negate_plain(pt):
    from repro.hecore.plaintext import CkksPlaintext

    return CkksPlaintext(-pt.poly, pt.scale)


def lower_to_ir(program: EvaProgram) -> IrProgram:
    """Lower an Eva expression DAG to the linear ciphertext IR.

    Mirrors the direct executor's schedule exactly: a normalized rescale
    follows every multiplication, plaintext operands stay attached to the
    consuming node (the IR runner encodes them at the consumer's level and
    scale), and zero-step rotations vanish.  The scheduler passes in
    :mod:`repro.core.ir` then fuse rotations, sink the rescales, and keep
    plain-multiply products NTT-resident.
    """
    builder = IrBuilder(slots=program.slots)
    memo: Dict[int, int] = {}

    def plain_vector(expr: Expr) -> np.ndarray:
        if isinstance(expr, Constant):
            v = np.zeros(program.slots)
            v[: len(expr.values)] = expr.values
            return v
        return np.full(program.slots, expr.value)

    def lower(expr: Expr) -> int:
        key = id(expr)
        if key in memo:
            return memo[key]
        if isinstance(expr, Input):
            nid = builder.input(expr.name)
        elif _is_plain(expr):
            nid = builder.const(plain_vector(expr))
        elif isinstance(expr, Neg):
            nid = builder.neg(lower(expr.operand))
        elif isinstance(expr, Rotate):
            nid = builder.rotate(lower(expr.operand), expr.steps)
        elif isinstance(expr, Add):
            nid = builder.add(lower(expr.left), lower(expr.right))
        elif isinstance(expr, Sub):
            nid = builder.sub(lower(expr.left), lower(expr.right))
        elif isinstance(expr, Mul):
            nid = builder.rescale(builder.mul(lower(expr.left),
                                              lower(expr.right)),
                                  normalize=True)
        else:
            raise TypeError(f"unknown expression node {type(expr).__name__}")
        memo[key] = nid
        return nid

    for name, expr in program.outputs.items():
        builder.output(name, lower(expr))
    return builder.program


def compile_program(program: EvaProgram) -> CompiledProgram:
    """Analyze and schedule *program*, recommending minimal parameters."""
    analysis = _Analysis(program)
    profile = WorkloadProfile(
        value_bits=8,
        fan_in=max(2, program.slots),
        rotations=len(analysis.rotation_steps),
        plain_mult_depth=max(1, analysis.max_depth),
        ct_mult_depth=0,
        min_slots=program.slots,
    )
    recommended = select_parameters(profile, SchemeType.CKKS)
    return CompiledProgram(
        program=program,
        multiplicative_depth=analysis.max_depth,
        rotation_steps=analysis.rotation_steps,
        ct_mults=analysis.ct_mults,
        plain_mults=analysis.plain_mults,
        adds=analysis.adds,
        input_names=analysis.inputs,
        recommended=recommended,
    )
