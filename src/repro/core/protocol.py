"""The client-aided protocol runtime (Figure 3) and its cost ledger.

A trusted, resource-constrained client and an untrusted offload server
exchange ciphertexts: the server applies encrypted linear algebra; the
client decrypts, applies plaintext non-linear operations (refreshing the
noise budget and repacking vectors in the process), re-encrypts, and
uploads.  The ledger tallies exactly the quantities the paper's evaluation
reports: client encryption/decryption operations, client active time and
energy, bytes moved in each direction, rounds, and server time.

Costs follow §5.2's methodology — operation counts multiplied by
per-operation platform costs — with the client's per-operation cost coming
from either the software model (:class:`Imx6SoftwareClient`), a partial
accelerator (HEAX/FPGA), or CHOCO-TACO (:class:`AcceleratorModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.hecore.params import EncryptionParameters, SchemeType
from repro.platforms.client_device import Imx6SoftwareClient
from repro.platforms.radio import BluetoothLink
from repro.platforms.server import XeonServer


@dataclass
class CostLedger:
    """Everything the evaluation charges to the client, server, or link."""

    client_encrypt_ops: int = 0
    client_decrypt_ops: int = 0
    # Batched-schedule accounting: how many stacked encrypt/decrypt passes
    # produced those ops.  ops >> batches means the client amortizes its
    # per-invocation overhead well (Fig. 12's batched client schedule).
    client_encrypt_batches: int = 0
    client_decrypt_batches: int = 0
    client_compute_s: float = 0.0
    client_energy_j: float = 0.0
    bytes_up: int = 0
    bytes_down: int = 0
    rounds: int = 0
    server_compute_s: float = 0.0
    # Rotation accounting: how many slot rotations the server performed and
    # how many key-switch digit decomposes backed them.  A healthy hoisted
    # hot path shows rotations >> hoisted + naive decomposes.
    rotations: int = 0
    hoisted_decomposes: int = 0
    naive_decomposes: int = 0
    # NTT-residency accounting (units: residue-row transform passes).  The
    # scheduler charges forward/inverse transforms it performs and credits
    # ``ntt_elided`` for every inverse->forward pair its residency pass
    # skipped across op boundaries.
    ntt_forward: int = 0
    ntt_inverse: int = 0
    ntt_elided: int = 0
    # Level-planner accounting.  ``limbs_live`` is the limbs-live integral:
    # live residue count summed over every ciphertext the server produced —
    # lower means the planner ran more of the program on a trimmed chain.
    # ``limb_drops`` counts planned mod-switch frontier executions and
    # ``level_replans`` the recrypt segments re-entered on a trimmed chain.
    limb_drops: int = 0
    limbs_live: int = 0
    level_replans: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_up + self.bytes_down

    # Single source of truth for transfer accounting: the in-process
    # ClientAidedSession and the runtime's SimulatedLink charge through the
    # same two methods, so the analytical byte/round model cannot drift from
    # the served path.
    def charge_upload(self, nbytes: int) -> None:
        """One client->server ciphertext upload: bytes plus one round."""
        self.bytes_up += int(nbytes)
        self.rounds += 1

    def charge_download(self, nbytes: int) -> None:
        """One server->client ciphertext download (no extra round)."""
        self.bytes_down += int(nbytes)

    def communication_time(self, radio: BluetoothLink) -> float:
        return radio.transfer_time(self.total_bytes)

    def communication_energy(self, radio: BluetoothLink) -> float:
        return radio.transfer_energy(self.total_bytes)

    def end_to_end_client_time(self, radio: BluetoothLink) -> float:
        """Client-perceived latency: active compute + radio (bytes and
        per-round link latency) + server."""
        comm = radio.session_time(self.total_bytes, self.rounds) \
            if hasattr(radio, "session_time") else self.communication_time(radio)
        return self.client_compute_s + comm + self.server_compute_s

    def end_to_end_client_energy(self, radio: BluetoothLink) -> float:
        """Client energy: active compute plus radio (server energy is free
        to the client — the point of offloading)."""
        return self.client_energy_j + self.communication_energy(radio)

    def merge(self, other: "CostLedger") -> None:
        self.client_encrypt_ops += other.client_encrypt_ops
        self.client_decrypt_ops += other.client_decrypt_ops
        self.client_encrypt_batches += other.client_encrypt_batches
        self.client_decrypt_batches += other.client_decrypt_batches
        self.client_compute_s += other.client_compute_s
        self.client_energy_j += other.client_energy_j
        self.bytes_up += other.bytes_up
        self.bytes_down += other.bytes_down
        self.rounds += other.rounds
        self.server_compute_s += other.server_compute_s
        self.rotations += other.rotations
        self.hoisted_decomposes += other.hoisted_decomposes
        self.naive_decomposes += other.naive_decomposes
        self.ntt_forward += other.ntt_forward
        self.ntt_inverse += other.ntt_inverse
        self.ntt_elided += other.ntt_elided
        self.limb_drops += other.limb_drops
        self.limbs_live += other.limbs_live
        self.level_replans += other.level_replans


class ClientCostModel:
    """Per-HE-operation client costs under one hardware assumption.

    The ``*_batch_overhead_*`` fields are the per-invocation fixed cost a
    batched schedule amortizes: a batch of ``m`` operations costs
    ``m * per_op - (m - 1) * overhead``.  Software models pay the overhead
    on every op (no pipeline to keep warm), so theirs is zero; the
    CHOCO-TACO model amortizes its fixed per-invocation pipeline cycles
    (see ``AcceleratorModel.batch_overhead_cycles``).
    """

    def __init__(self, name: str, encrypt_s: float, decrypt_s: float,
                 encrypt_j: float, decrypt_j: float,
                 encrypt_batch_overhead_s: float = 0.0,
                 decrypt_batch_overhead_s: float = 0.0,
                 encrypt_batch_overhead_j: float = 0.0,
                 decrypt_batch_overhead_j: float = 0.0):
        self.name = name
        self.encrypt_s = encrypt_s
        self.decrypt_s = decrypt_s
        self.encrypt_j = encrypt_j
        self.decrypt_j = decrypt_j
        self.encrypt_batch_overhead_s = encrypt_batch_overhead_s
        self.decrypt_batch_overhead_s = decrypt_batch_overhead_s
        self.encrypt_batch_overhead_j = encrypt_batch_overhead_j
        self.decrypt_batch_overhead_j = decrypt_batch_overhead_j

    # ------------------------------------------------------- batched costs
    def encrypt_many_s(self, m: int) -> float:
        return 0.0 if m <= 0 else m * self.encrypt_s - (m - 1) * self.encrypt_batch_overhead_s

    def decrypt_many_s(self, m: int) -> float:
        return 0.0 if m <= 0 else m * self.decrypt_s - (m - 1) * self.decrypt_batch_overhead_s

    def encrypt_many_j(self, m: int) -> float:
        return 0.0 if m <= 0 else m * self.encrypt_j - (m - 1) * self.encrypt_batch_overhead_j

    def decrypt_many_j(self, m: int) -> float:
        return 0.0 if m <= 0 else m * self.decrypt_j - (m - 1) * self.decrypt_batch_overhead_j

    # ------------------------------------------------------------ factories
    @classmethod
    def software(cls, params: EncryptionParameters,
                 client: Optional[Imx6SoftwareClient] = None) -> "ClientCostModel":
        client = client or Imx6SoftwareClient()
        n = params.poly_degree
        k = params.logical_residue_count
        if params.scheme is SchemeType.CKKS:
            enc = client.ckks_encrypt_time(n, k)
            dec = client.ckks_decrypt_time(n, k)
        else:
            enc = client.encrypt_time(n, k)
            dec = client.decrypt_time(n, k)
        return cls("software", enc, dec, client.energy(enc), client.energy(dec))

    @classmethod
    def partial_accelerator(cls, params: EncryptionParameters, accelerator,
                            client: Optional[Imx6SoftwareClient] = None):
        """HEAX/FPGA-style NTT-only assistance applied to the software model."""
        base = cls.software(params, client)
        client = client or Imx6SoftwareClient()
        enc = accelerator.accelerated_time(base.encrypt_s)
        dec = accelerator.accelerated_time(base.decrypt_s)
        return cls(accelerator.name, enc, dec, client.energy(enc), client.energy(dec))

    @classmethod
    def choco_taco(cls, params: EncryptionParameters, model=None) -> "ClientCostModel":
        """Full CHOCO-TACO acceleration of encryption and decryption."""
        from repro.accel.ckks_support import CkksAcceleration
        from repro.accel.design import AcceleratorModel

        from repro.accel.design import CLOCK_HZ

        n = params.poly_degree
        k = params.logical_residue_count
        hw = (model or AcceleratorModel()).at_parameters(n, k)
        # The fixed pipeline overhead only the first op of a stacked batch
        # pays (see AcceleratorModel.batch_overhead_cycles); leakage is the
        # only energy drawn during those cycles.
        overhead_s = hw.batch_overhead_cycles() / CLOCK_HZ
        overhead_j = hw.leakage_w * overhead_s
        if params.scheme is SchemeType.CKKS:
            ckks = CkksAcceleration()
            enc = ckks.encrypt_encode_time(n, k)
            dec = ckks.decrypt_decode_time(n, k)
            enc_j = hw.encrypt_cost().energy_j + Imx6SoftwareClient().energy(enc) * 0.05
            dec_j = hw.decrypt_cost().energy_j + Imx6SoftwareClient().energy(dec) * 0.44
            return cls("choco-taco", enc, dec, enc_j, dec_j,
                       encrypt_batch_overhead_s=overhead_s,
                       decrypt_batch_overhead_s=overhead_s,
                       encrypt_batch_overhead_j=overhead_j,
                       decrypt_batch_overhead_j=overhead_j)
        enc_cost = hw.encrypt_cost()
        dec_cost = hw.decrypt_cost()
        return cls("choco-taco", enc_cost.time_s, dec_cost.time_s,
                   enc_cost.energy_j, dec_cost.energy_j,
                   encrypt_batch_overhead_s=overhead_s,
                   decrypt_batch_overhead_s=overhead_s,
                   encrypt_batch_overhead_j=overhead_j,
                   decrypt_batch_overhead_j=overhead_j)


class ProtocolViolation(RuntimeError):
    """Server-side code touched a client-only capability.

    The semi-honest model (§3.1) trusts the server to run the specified
    encrypted operations — but nothing the server runs may require the
    secret key.  The session enforces that boundary mechanically.
    """


class ClientAidedSession:
    """Functional protocol driver: real HE plus cost accounting.

    Wraps a :class:`BfvContext` or :class:`CkksContext`; client-side
    encrypt/decrypt and transfers must go through this object so the ledger
    stays faithful.  Server-side evaluation runs inside
    :meth:`server_compute`, which meters HE operation counts into server
    time and raises :class:`ProtocolViolation` if the computation decrypts
    anything (the secret key never leaves the client, §3.1).
    """

    def __init__(self, ctx, cost_model: Optional[ClientCostModel] = None,
                 server: Optional[XeonServer] = None,
                 radio: Optional[BluetoothLink] = None,
                 record_transcript: bool = False):
        self.ctx = ctx
        self.params = ctx.params
        self.cost_model = cost_model or ClientCostModel.software(ctx.params)
        self.server = server or XeonServer()
        self.radio = radio or BluetoothLink()
        self.ledger = CostLedger()
        self.transcript: list = [] if record_transcript else None

    def _record(self, event: str, detail: str) -> None:
        if self.transcript is not None:
            self.transcript.append((event, detail))

    def format_transcript(self) -> str:
        """The protocol run as a readable message trace."""
        if not self.transcript:
            return "(no transcript recorded)"
        lines = []
        for i, (event, detail) in enumerate(self.transcript):
            lines.append(f"{i:3d}  {event:10s} {detail}")
        return "\n".join(lines)

    # ------------------------------------------------------------- client
    def client_encrypt(self, values):
        ct = self.ctx.encrypt(values)
        self.ledger.client_encrypt_ops += 1
        self.ledger.client_compute_s += self.cost_model.encrypt_s
        self.ledger.client_energy_j += self.cost_model.encrypt_j
        self._record("encrypt", f"client encrypts ({ct.size_bytes()} B)")
        return ct

    def client_decrypt(self, ct):
        out = self.ctx.decrypt(ct)
        self.ledger.client_decrypt_ops += 1
        self.ledger.client_compute_s += self.cost_model.decrypt_s
        self.ledger.client_energy_j += self.cost_model.decrypt_j
        self._record("decrypt", "client decrypts and refreshes noise")
        return out

    def client_encrypt_many(self, values_list):
        """Encrypt a batch through the stacked engine, charging the
        batch-amortized cost (one pipeline overhead for the whole batch)."""
        cts = self.ctx.encrypt_many(values_list)
        m = len(cts)
        self.ledger.client_encrypt_ops += m
        if m:
            self.ledger.client_encrypt_batches += 1
        self.ledger.client_compute_s += self.cost_model.encrypt_many_s(m)
        self.ledger.client_energy_j += self.cost_model.encrypt_many_j(m)
        self._record("encrypt", f"client encrypts batch of {m}")
        return cts

    def client_decrypt_many(self, cts):
        """Decrypt a batch through the stacked engine (batch-amortized)."""
        out = self.ctx.decrypt_many(cts)
        m = len(out)
        self.ledger.client_decrypt_ops += m
        if m:
            self.ledger.client_decrypt_batches += 1
        self.ledger.client_compute_s += self.cost_model.decrypt_many_s(m)
        self.ledger.client_energy_j += self.cost_model.decrypt_many_j(m)
        self._record("decrypt", f"client decrypts batch of {m}")
        return out

    def client_plain_compute(self, seconds: float) -> None:
        """Charge client-side plaintext work (activations, packing)."""
        self.ledger.client_compute_s += seconds
        self.ledger.client_energy_j += Imx6SoftwareClient().energy(seconds)

    # ----------------------------------------------------------- transfers
    def upload(self, ct):
        self.ledger.charge_upload(ct.size_bytes())
        self._record("upload", f"client -> server, {ct.size_bytes()} B "
                               f"(round {self.ledger.rounds})")
        return ct

    def download(self, ct):
        self.ledger.charge_download(ct.size_bytes())
        self._record("download", f"server -> client, {ct.size_bytes()} B")
        return ct

    # -------------------------------------------------------------- server
    def server_compute(self, fn: Callable, *args, **kwargs):
        """Run server-side HE work, metering its operation counts.

        Raises :class:`ProtocolViolation` if the work decrypts — server
        code has no business holding the secret key (§3.1).
        """
        before = dict(self.ctx.counts)
        result = fn(*args, **kwargs)
        delta = {op: self.ctx.counts[op] - before.get(op, 0)
                 for op in self.ctx.counts}
        if delta.get("decrypt", 0):
            raise ProtocolViolation(
                "server-side computation performed a decryption; the secret "
                "key must never leave the client"
            )
        residues = self.params.logical_data_residues
        self.ledger.server_compute_s += self.server.time_for_counts(
            delta, self.params.poly_degree, residues
        )
        self.ledger.rotations += delta.get("rotate", 0)
        self.ledger.hoisted_decomposes += delta.get("hoisted_decompose", 0)
        self.ledger.naive_decomposes += delta.get("naive_decompose", 0)
        self.ledger.ntt_forward += delta.get("ntt_forward", 0)
        self.ledger.ntt_inverse += delta.get("ntt_inverse", 0)
        self.ledger.ntt_elided += delta.get("ntt_elided", 0)
        self.ledger.limb_drops += delta.get("limb_drops", 0)
        self.ledger.limbs_live += delta.get("limbs_live", 0)
        self.ledger.level_replans += delta.get("level_replans", 0)
        ops = ", ".join(f"{op}x{n}" for op, n in sorted(delta.items()) if n)
        self._record("server", f"encrypted compute: {ops or 'no-op'}")
        return result
