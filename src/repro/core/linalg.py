"""Encrypted linear algebra built on rotational redundancy (§3.3).

The workhorse is :class:`EncryptedConv2d`: input channels are packed
redundantly into power-of-two spans (one per channel), and every
(input-channel, filter-tap) pair becomes a **single** ciphertext rotation by
``j * span + delta`` followed by one plaintext weight multiply — no masking
multiplies, no arbitrary permutations.  That is the paper's "convolution with
optimal multiplication efficiency".

Boundary semantics are client-aided: rotations are circular within each
redundant window, so the server computes *valid* convolution outputs at
interior positions; the client discards everything else when unpacking and
re-pads when packing the next layer's input.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.core.ir import ScheduleError, compile_ir, trace_program
from repro.core.packing import ChannelLayout, RedundantPacking
from repro.hecore.hoisting import rotate_and_sum_steps
from repro.hecore.params import SchemeType


def _is_bfv(ctx) -> bool:
    return ctx.params.scheme is SchemeType.BFV


#: Sentinel: the kernel has not attempted to build its schedule yet.
_UNSCHEDULED = object()


class _ScheduledKernel:
    """Mixin: trace the kernel's direct evaluation once, then replay it as
    a scheduled ciphertext program.

    Subclasses implement ``_direct(ctx, ct, galois_keys)`` — the original
    hand-wired evaluation, written against the generic evaluator surface.
    The first scheduled call runs ``_direct`` against a recording
    :class:`~repro.core.ir.TracerContext` to capture the kernel's IR, then
    the scheduler passes fuse its rotations into hoisted spans, batch its
    constants, and keep intermediates NTT-resident.  The direct path stays
    reachable (``use_scheduler=False``) as the bit-exactness reference.
    """

    use_scheduler = True
    #: Opt-in: run the level planner over the kernel's schedule, dropping
    #: modulus limbs down to the decryptability floor.  Off by default —
    #: these kernels compose (callers chain their outputs into further
    #: encrypted compute, and under CKKS they do level arithmetic keyed to
    #: the planner-off output level), so only enable this when the kernel's
    #: output goes straight back to the client.
    use_level_planner = False
    _sched = _UNSCHEDULED

    def _schedule(self):
        if self._sched is _UNSCHEDULED:
            try:
                ir = trace_program(self.ctx.params,
                                   lambda tr, x: self._direct(tr, x, None),
                                   ["x"])
                planner_params = (self.ctx.params if self.use_level_planner
                                  else None)
                self._sched = compile_ir(ir, self.ctx.params.scheme,
                                         params=planner_params)
            except ScheduleError:
                self._sched = None   # untraceable: stay on the direct path
        return self._sched

    def schedule_report(self):
        """The scheduler's pass report, or None when running direct."""
        sched = self._schedule() if self.use_scheduler else None
        return None if sched is None else sched.report

    def __call__(self, ct, galois_keys=None):
        if self.use_scheduler:
            sched = self._schedule()
            if sched is not None:
                return sched.run(self.ctx, {"x": ct}, galois_keys)["out0"]
        return self._direct(self.ctx, ct, galois_keys)


def _encode_vector(ctx, values: np.ndarray, ct=None):
    """Encode a plaintext vector, level-matched to *ct* under CKKS."""
    if _is_bfv(ctx):
        return ctx.encode(np.asarray(values, dtype=np.int64))
    base = ct.level_base if ct is not None else None
    return ctx.encode(np.asarray(values, dtype=np.float64), base=base)


def _rotate(ctx, ct, steps: int, galois_keys=None):
    rotate = getattr(ctx, "rotate_rows", None) or ctx.rotate
    return rotate(ct, steps, galois_keys)


def _rotate_many(ctx, ct, steps: Sequence[int], galois_keys=None) -> Dict:
    """Rotate *ct* by each step, hoisting the decompose when the context
    supports it; bit-exact with per-step :func:`_rotate` calls either way."""
    steps = [s for s in steps if s]
    fused = getattr(ctx, "rotate_many", None)
    if fused is not None and steps:
        return dict(zip(steps, fused(ct, steps, galois_keys)))
    return {s: _rotate(ctx, ct, s, galois_keys) for s in steps}


def row_slot_count(ctx) -> int:
    """Slots that rotate together: N/2 for BFV rows and for CKKS."""
    return ctx.params.poly_degree // 2


@dataclass(frozen=True)
class Conv2dSpec:
    """Shape of one convolutional layer (stride 1, odd kernel)."""

    in_channels: int
    out_channels: int
    height: int
    width: int
    kernel_size: int

    def __post_init__(self):
        if self.kernel_size % 2 == 0:
            raise ValueError("kernel size must be odd")

    @property
    def pad(self) -> int:
        return self.kernel_size // 2

    @property
    def out_height(self) -> int:
        return self.height - 2 * self.pad

    @property
    def out_width(self) -> int:
        return self.width - 2 * self.pad

    @property
    def taps(self) -> List[Tuple[int, int]]:
        p = self.pad
        return list(itertools.product(range(-p, p + 1), repeat=2))

    def tap_offset(self, dy: int, dx: int) -> int:
        """Slot offset of tap (dy, dx) in the row-major flattened window."""
        return dy * self.width + dx

    @property
    def max_tap_offset(self) -> int:
        return self.pad * (self.width + 1)

    @property
    def macs(self) -> int:
        """Multiply-accumulates for one plaintext evaluation of this layer."""
        return (self.out_height * self.out_width * self.out_channels
                * self.in_channels * self.kernel_size ** 2)


def conv_input_packing(ctx, spec: Conv2dSpec) -> RedundantPacking:
    """The redundant channel packing a :class:`Conv2dSpec` needs.

    Spans are sized so that the whole rotating row is an exact multiple of
    the span, which makes channel-aligned rotations wrap cleanly.
    """
    row = row_slot_count(ctx)
    window = spec.height * spec.width
    packing = RedundantPacking(window=window, redundancy=spec.max_tap_offset,
                               count=max(spec.in_channels, spec.out_channels))
    if packing.layout.total_slots > row:
        raise ValueError(
            f"conv needs {packing.layout.total_slots} slots, row has {row}"
        )
    return packing


class EncryptedConv2d(_ScheduledKernel):
    """Server-side encrypted convolution over a redundantly packed input."""

    def __init__(self, ctx, spec: Conv2dSpec, weights: np.ndarray,
                 packing: RedundantPacking | None = None,
                 use_scheduler: bool = True, use_level_planner: bool = False):
        weights = np.asarray(weights)
        if weights.shape != (spec.out_channels, spec.in_channels,
                             spec.kernel_size, spec.kernel_size):
            raise ValueError(f"bad weight shape {weights.shape}")
        self.ctx = ctx
        self.spec = spec
        self.use_scheduler = use_scheduler
        self.use_level_planner = use_level_planner
        self.packing = packing or conv_input_packing(ctx, spec)
        layout = self.packing.layout
        self._row_spans = row_slot_count(ctx) // layout.span
        self.weights = weights
        self._plan = self._build_plan()

    # ------------------------------------------------------------- planning
    def _build_plan(self) -> List[Tuple[int, np.ndarray]]:
        """One (rotation, weight-vector) pair per non-zero (shift, tap)."""
        spec, layout = self.spec, self.packing.layout
        row = row_slot_count(self.ctx)
        spans = self._row_spans
        plan = []
        for j in range(spans):
            # Does any output span o see an input channel under shift j?
            touched = [
                o for o in range(spec.out_channels)
                if (o + j) % spans < spec.in_channels
            ]
            if not touched:
                continue
            for dy, dx in spec.taps:
                delta = spec.tap_offset(dy, dx)
                mask = np.zeros(row)
                for o in touched:
                    c = (o + j) % spans
                    w = self.weights[o, c, dy + spec.pad, dx + spec.pad]
                    if w:
                        start = o * layout.span
                        mask[start: start + layout.span] = w
                if np.any(mask):
                    plan.append((j * layout.span + delta, mask))
        return plan

    def required_rotation_steps(self) -> Set[int]:
        """Rotation amounts the evaluation performs (for Galois key gen)."""
        return {rot for rot, _ in self._plan if rot != 0}

    # ------------------------------------------------------------ execution
    def _direct(self, ctx, ct, galois_keys=None):
        """Evaluate the convolution on an encrypted, packed input.

        Encoded weight plaintexts are cached after the first evaluation
        (weights are static across inferences), so repeated calls skip the
        encoding work.  All taps rotate the *same* packed input, so the
        rotations share one hoisted key-switch decompose; under BFV the
        whole plan runs as a single fused rotate-multiply-accumulate that
        pays one inverse transform and one rescale.
        """
        if getattr(ctx, "is_tracer", False):
            cache = {}   # symbolic plaintexts must not poison the real cache
        else:
            cache = getattr(self, "_encoded_cache", None)
            if cache is None:
                cache = self._encoded_cache = {}
        if _is_bfv(ctx) and hasattr(ctx, "rotate_weighted_sum"):
            terms = []
            for i, (rotation, mask) in enumerate(self._plan):
                encoded = cache.get(i)
                if encoded is None:
                    encoded = cache[i] = _encode_vector(ctx, mask)
                terms.append((rotation, encoded))
            if not terms:
                raise ValueError("convolution has no non-zero weights")
            return ctx.rotate_weighted_sum(ct, terms, galois_keys)
        shifted_by = _rotate_many(ctx, ct,
                                  [rot for rot, _ in self._plan], galois_keys)
        acc = None
        for i, (rotation, mask) in enumerate(self._plan):
            shifted = shifted_by[rotation] if rotation else ct
            key = (i, getattr(shifted, "level_base", None))
            encoded = cache.get(key)
            if encoded is None:
                encoded = _encode_vector(ctx, mask, shifted)
                cache[key] = encoded
            term = ctx.multiply_plain(shifted, encoded)
            acc = term if acc is None else ctx.add(acc, term)
        if acc is None:
            raise ValueError("convolution has no non-zero weights")
        return acc

    # ----------------------------------------------------------- unpacking
    def unpack_outputs(self, slots: np.ndarray) -> np.ndarray:
        """Extract the valid (out_channels, out_h, out_w) outputs."""
        spec = self.spec
        channels = self.packing.unpack(slots)
        p = spec.pad
        out = np.zeros((spec.out_channels, spec.out_height, spec.out_width),
                       dtype=np.asarray(slots).dtype)
        for o in range(spec.out_channels):
            grid = np.asarray(channels[o]).reshape(spec.height, spec.width)
            out[o] = grid[p: spec.height - p, p: spec.width - p]
        return out

    def reference(self, image: np.ndarray) -> np.ndarray:
        """Plaintext oracle: valid cross-correlation of (C_in, H, W) input."""
        spec = self.spec
        p = spec.pad
        out = np.zeros((spec.out_channels, spec.out_height, spec.out_width),
                       dtype=np.result_type(image, self.weights))
        for o in range(spec.out_channels):
            for y in range(spec.out_height):
                for x in range(spec.out_width):
                    patch = image[:, y: y + spec.kernel_size, x: x + spec.kernel_size]
                    out[o, y, x] = np.sum(patch * self.weights[o])
        return out


class EncryptedMatVec(_ScheduledKernel):
    """Encrypted matrix-vector product via the windowed diagonal method.

    Packs the input vector in one fully-redundant window (redundancy =
    dimension − 1), so every Halevi-Shoup diagonal rotation is a single
    cheap ciphertext rotation.  Used for fully-connected layers.
    """

    def __init__(self, ctx, matrix: np.ndarray, use_scheduler: bool = True,
                 use_level_planner: bool = False):
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        self.ctx = ctx
        self.use_scheduler = use_scheduler
        self.use_level_planner = use_level_planner
        self.matrix = matrix
        self.n_out, self.n_in = matrix.shape
        self.dim = max(self.n_out, self.n_in)
        self.packing = RedundantPacking(window=self.dim, redundancy=self.dim - 1,
                                        count=1, slot_limit=row_slot_count(ctx))
        # Square the matrix up to dim x dim with zeros.
        self._square = np.zeros((self.dim, self.dim), dtype=matrix.dtype)
        self._square[: self.n_out, : self.n_in] = matrix

    def pack_input(self, vector: np.ndarray) -> np.ndarray:
        padded = np.zeros(self.dim, dtype=np.asarray(vector).dtype)
        padded[: self.n_in] = vector
        return self.packing.pack([padded])

    def required_rotation_steps(self) -> Set[int]:
        return {j for j in range(1, self.dim)
                if np.any(self._diagonal(j))}

    def _diagonal(self, j: int) -> np.ndarray:
        d = self.dim
        return np.array([self._square[i, (i + j) % d] for i in range(d)])

    def _diagonal_masks(self) -> List[Tuple[int, np.ndarray]]:
        """(rotation, full-row mask) for every non-zero diagonal."""
        row = row_slot_count(self.ctx)
        offset = self.packing.layout.window_offset(0)
        masks = []
        for j in range(self.dim):
            diag = self._diagonal(j)
            if not np.any(diag):
                continue
            mask = np.zeros(row)
            mask[offset: offset + self.dim] = diag
            masks.append((j, mask))
        return masks

    def _direct(self, ctx, ct, galois_keys=None):
        masks = self._diagonal_masks()
        if not masks:
            raise ValueError("matrix is all zeros")
        # Every diagonal rotates the same input ciphertext: one hoisted
        # decompose serves all of them, and under BFV the multiplies and
        # the accumulation fuse into a single NTT-domain pass.
        if _is_bfv(ctx) and hasattr(ctx, "rotate_weighted_sum"):
            terms = [(j, _encode_vector(ctx, mask)) for j, mask in masks]
            return ctx.rotate_weighted_sum(ct, terms, galois_keys)
        shifted_by = _rotate_many(ctx, ct, [j for j, _ in masks], galois_keys)
        acc = None
        for j, mask in masks:
            shifted = shifted_by[j] if j else ct
            term = ctx.multiply_plain(shifted, _encode_vector(ctx, mask, shifted))
            acc = term if acc is None else ctx.add(acc, term)
        return acc

    def unpack_output(self, slots: np.ndarray) -> np.ndarray:
        return self.packing.unpack(slots)[0][: self.n_out]

    def reference(self, vector: np.ndarray) -> np.ndarray:
        return self.matrix @ np.asarray(vector)


class BsgsMatVec(EncryptedMatVec):
    """Baby-step/giant-step diagonal matrix-vector product.

    The plain diagonal method needs ``d − 1`` distinct rotations (and as
    many Galois keys).  Writing each diagonal index as ``j = g·b_count + b``
    and hoisting the giant rotations outside the weight multiplies gives

        y = Σ_g rotate( Σ_b diag'_{g,b} ⊙ rotate(x, b),  g·b_count )

    with only ``b_count + g_count ≈ 2·√d`` rotations/keys — the standard
    Halevi-Shoup/Gazelle optimization.  The inner diagonals are pre-rotated
    by ``−g·b_count`` in plaintext so the algebra works out.
    """

    def __init__(self, ctx, matrix: np.ndarray, baby_steps: int = 0,
                 use_scheduler: bool = True, use_level_planner: bool = False):
        super().__init__(ctx, matrix, use_scheduler=use_scheduler,
                         use_level_planner=use_level_planner)
        d = self.dim
        self.baby_count = baby_steps or max(1, int(math.isqrt(d)))
        self.giant_count = math.ceil(d / self.baby_count)

    def required_rotation_steps(self) -> Set[int]:
        steps = set(range(1, self.baby_count))
        steps.update(g * self.baby_count for g in range(1, self.giant_count))
        return {s for s in steps if s}

    def _direct(self, ctx, ct, galois_keys=None):
        row = row_slot_count(ctx)
        offset = self.packing.layout.window_offset(0)
        d = self.dim
        # Hoist the baby rotations: computed once, reused by every giant
        # step — and, when the context supports it, sharing one key-switch
        # digit decompose across the whole baby set.
        babies = {0: ct}
        babies.update(_rotate_many(ctx, ct, range(1, self.baby_count),
                                   galois_keys))
        acc = None
        for g in range(self.giant_count):
            shift = g * self.baby_count
            inner = None
            for b in range(self.baby_count):
                j = shift + b
                if j >= d:
                    break
                if not np.any(self._diagonal(j)):
                    continue
                mask = self._bsgs_mask(j, shift, offset, row)
                term = ctx.multiply_plain(babies[b],
                                          _encode_vector(ctx, mask, babies[b]))
                inner = term if inner is None else ctx.add(inner, term)
            if inner is None:
                continue
            if shift:
                inner = _rotate(ctx, inner, shift, galois_keys)
            acc = inner if acc is None else ctx.add(acc, inner)
        if acc is None:
            raise ValueError("matrix is all zeros")
        return acc

    def _bsgs_mask(self, j: int, shift: int, offset: int, row: int) -> np.ndarray:
        """Mask applied before the giant rotation for diagonal *j*.

        Output slot ``i`` (after rotating left by *shift*) reads pre-rotation
        slot ``i + shift``; it must contain ``diag_j[i] * x[(i + j) mod d]``.
        The baby-rotated input at pre-rotation slot ``i + shift`` holds
        ``x_circ[(i + shift) + b] = x[(i + j) mod d]`` (redundant window), so
        the mask simply places ``diag_j[i]`` at slot ``offset + i + shift``.
        """
        d = self.dim
        diag = self._diagonal(j)
        mask = np.zeros(row)
        for i in range(d):
            pos = offset + i + shift
            if pos < row:
                mask[pos] = diag[i]
        return mask


def rotate_and_accumulate(ctx, ct, width: int, galois_keys=None):
    """Sum *width* (a power of two) adjacent slots into slot 0 of each window.

    Only the window's first slot (and every ``width``-aligned slot) holds a
    valid total afterwards — the client discards the rest, per the CHOCO
    packing discipline.  Contexts exposing the fused
    :meth:`~repro.hecore.hoisting.rotate_and_sum` kernel run the span with a
    hoisted key-switch decompose when the session holds the richer step set
    of :func:`rotate_and_sum_steps`; otherwise (or for plain contexts) this
    is the classic log2(width) rotate/add tree.
    """
    if width & (width - 1):
        raise ValueError(f"width {width} must be a power of two")
    fused = getattr(ctx, "rotate_and_sum", None)
    if fused is not None:
        return fused(ct, width, galois_keys)
    step = width // 2
    while step >= 1:
        ct = ctx.add(ct, _rotate(ctx, ct, step, galois_keys))
        step //= 2
    return ct
