"""Multi-ciphertext (tiled) encrypted convolution.

:class:`repro.core.linalg.EncryptedConv2d` requires every channel span to
fit one rotating row; real layers (Table 5's networks) need dozens of
ciphertexts.  This module tiles channels across ciphertexts while keeping
CHOCO's rotational-redundancy discipline: every alignment inside a tile is
still a single rotation (span-aligned shift + tap offset, no masking
permutations), and cross-tile channel reductions are plain ciphertext adds.

Layout: input channels are packed ``spans_per_ct`` at a time into a list of
ciphertexts; output channels likewise.  For an output tile position ``p_out``
receiving input channel at tile position ``p_in`` of input ciphertext ``i``,
the server rotates ciphertext ``i`` by ``(p_in - p_out) * span + delta`` and
weight-multiplies — exactly the single-ciphertext algorithm, generalized.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.linalg import Conv2dSpec, _encode_vector, _rotate, row_slot_count
from repro.core.packing import ChannelLayout, RedundantPacking


@dataclass(frozen=True)
class TiledLayout:
    """How a channel list maps onto a list of ciphertexts."""

    span: int
    spans_per_ct: int
    channels: int

    @property
    def ciphertexts(self) -> int:
        return math.ceil(self.channels / self.spans_per_ct)

    def position(self, channel: int) -> Tuple[int, int]:
        """(ciphertext index, tile position) of *channel*."""
        if not 0 <= channel < self.channels:
            raise IndexError(f"channel {channel} out of range")
        return divmod(channel, self.spans_per_ct)


class TiledEncryptedConv2d:
    """Encrypted convolution over channel-tiled ciphertext lists."""

    def __init__(self, ctx, spec: Conv2dSpec, weights: np.ndarray):
        weights = np.asarray(weights)
        if weights.shape != (spec.out_channels, spec.in_channels,
                             spec.kernel_size, spec.kernel_size):
            raise ValueError(f"bad weight shape {weights.shape}")
        self.ctx = ctx
        self.spec = spec
        self.weights = weights
        row = row_slot_count(ctx)
        window = spec.height * spec.width
        redundancy = spec.max_tap_offset
        span = 1 << max(0, (window + 2 * redundancy - 1)).bit_length()
        if span > row:
            raise ValueError(f"one channel needs {span} slots; row has {row}")
        spans_per_ct = row // span
        self.packing = RedundantPacking(window=window, redundancy=redundancy,
                                        count=spans_per_ct)
        self.in_layout = TiledLayout(span, spans_per_ct, spec.in_channels)
        self.out_layout = TiledLayout(span, spans_per_ct, spec.out_channels)
        self._plan = self._build_plan()

    # ------------------------------------------------------------- packing
    def pack_input(self, image: np.ndarray) -> List[np.ndarray]:
        """(C_in, H, W) image -> one redundant slot vector per ciphertext."""
        if image.shape != (self.spec.in_channels, self.spec.height,
                           self.spec.width):
            raise ValueError(f"bad image shape {image.shape}")
        vectors = []
        per = self.in_layout.spans_per_ct
        for lo in range(0, self.spec.in_channels, per):
            hi = min(lo + per, self.spec.in_channels)
            channels = [image[c].ravel() for c in range(lo, hi)]
            vectors.append(self.packing.pack(channels))
        return vectors

    def encrypt_input(self, image: np.ndarray):
        return self.ctx.encrypt_many(
            [v.astype(self._dtype()) for v in self.pack_input(image)])

    def _dtype(self):
        from repro.hecore.params import SchemeType

        return np.int64 if self.ctx.params.scheme is SchemeType.BFV else np.float64

    # ------------------------------------------------------------ planning
    def _build_plan(self) -> Dict[int, List[Tuple[int, int, np.ndarray]]]:
        """out-ct index -> [(in-ct index, rotation, weight mask), ...]."""
        spec = self.spec
        span = self.in_layout.span
        row = row_slot_count(self.ctx)
        plan: Dict[int, List[Tuple[int, int, np.ndarray]]] = {}
        for out_ct in range(self.out_layout.ciphertexts):
            terms: Dict[Tuple[int, int], np.ndarray] = {}
            for o in range(spec.out_channels):
                ct_o, p_out = self.out_layout.position(o)
                if ct_o != out_ct:
                    continue
                for c in range(spec.in_channels):
                    ct_i, p_in = self.in_layout.position(c)
                    shift = (p_in - p_out) * span
                    for dy, dx in spec.taps:
                        w = self.weights[o, c, dy + spec.pad, dx + spec.pad]
                        if not w:
                            continue
                        rotation = shift + spec.tap_offset(dy, dx)
                        mask = terms.get((ct_i, rotation))
                        if mask is None:
                            mask = np.zeros(row)
                            terms[(ct_i, rotation)] = mask
                        start = p_out * span
                        mask[start: start + span] = w
            plan[out_ct] = [(ct_i, rot, mask)
                            for (ct_i, rot), mask in sorted(terms.items())]
        return plan

    def required_rotation_steps(self) -> Set[int]:
        steps = set()
        for terms in self._plan.values():
            steps.update(rot for _, rot, _ in terms if rot)
        return steps

    # ------------------------------------------------------------ execution
    def __call__(self, input_cts, galois_keys=None) -> List:
        """Evaluate; returns one output ciphertext per output tile."""
        if len(input_cts) != self.in_layout.ciphertexts:
            raise ValueError(
                f"expected {self.in_layout.ciphertexts} input ciphertexts, "
                f"got {len(input_cts)}"
            )
        ctx = self.ctx
        outputs = []
        rotated_cache: Dict[Tuple[int, int], object] = {}
        encoded_cache = getattr(self, "_encoded_cache", None)
        if encoded_cache is None:
            encoded_cache = self._encoded_cache = {}
        for out_ct in range(self.out_layout.ciphertexts):
            acc = None
            for term_idx, (ct_i, rotation, mask) in enumerate(self._plan[out_ct]):
                key = (ct_i, rotation)
                shifted = rotated_cache.get(key)
                if shifted is None:
                    shifted = (_rotate(ctx, input_cts[ct_i], rotation, galois_keys)
                               if rotation else input_cts[ct_i])
                    rotated_cache[key] = shifted
                enc_key = (out_ct, term_idx, getattr(shifted, "level_base", None))
                encoded = encoded_cache.get(enc_key)
                if encoded is None:
                    encoded = _encode_vector(ctx, mask, shifted)
                    encoded_cache[enc_key] = encoded
                term = ctx.multiply_plain(shifted, encoded)
                acc = term if acc is None else ctx.add(acc, term)
            if acc is None:
                raise ValueError(f"output tile {out_ct} has no non-zero weights")
            outputs.append(acc)
        return outputs

    # ----------------------------------------------------------- unpacking
    def unpack_outputs(self, slot_vectors: Sequence[np.ndarray]) -> np.ndarray:
        """Decrypted tile vectors -> (C_out, out_h, out_w) valid outputs."""
        spec = self.spec
        p = spec.pad
        out = np.zeros((spec.out_channels, spec.out_height, spec.out_width),
                       dtype=np.asarray(slot_vectors[0]).dtype)
        for o in range(spec.out_channels):
            ct_o, p_out = self.out_layout.position(o)
            channels = self.packing.unpack(slot_vectors[ct_o])
            grid = np.asarray(channels[p_out]).reshape(spec.height, spec.width)
            out[o] = grid[p: spec.height - p, p: spec.width - p]
        return out

    def reference(self, image: np.ndarray) -> np.ndarray:
        """Plaintext oracle (valid cross-correlation)."""
        from repro.core.linalg import EncryptedConv2d

        return EncryptedConv2d.reference(self, image)
