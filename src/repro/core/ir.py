"""Ciphertext-program IR and the fusing scheduler (ROADMAP item 3).

Consumers (``core.linalg``, ``core.distance``, the Eva compiler, apps)
describe their homomorphic computation as a linear **ciphertext IR** —
rotate / mul / add / sub / neg / rescale / mod-switch nodes over input
ciphertexts and plaintext constants — instead of calling scheme primitives
directly.  A scheduler then runs ordered passes over the DAG:

1. **Weighted-sum fusion** (BFV) — maximal add-trees of
   ``mul(rotate(x, s_j), const_j)`` over one source ciphertext collapse
   into a single :class:`repro.hecore.hoisting.WeightedSumSpan` node: one
   hoisted key-switch decompose, one inverse-NTT pair, one rescale for the
   whole diagonal sum, with the plaintext NTT tables cached across calls.
2. **Rotation fusion** — remaining live rotations are grouped by source
   ciphertext and lowered onto one hoisted decompose per group
   (``rotate_many``); ``rotate_sum`` nodes pick flat or BSGS spans by
   width inside :func:`repro.hecore.hoisting.rotate_and_sum`.
3. **Batch grouping** — plaintext constants consumed by a BFV program are
   encoded in one stacked :meth:`BatchEncoder.encode_many` pass; encrypts
   and decrypts batch at the program boundary (``encrypt_many`` /
   ``decrypt_many`` in the callers).
4. **Mod-switch sinking** — ``add(rescale(a), rescale(b))`` rewrites to
   ``rescale(add(a, b))`` whenever both operands sit at the same level and
   scale exponent, merging redundant level drops (same for BFV
   ``mod_switch``).  Exact for BFV (mod-switch only moves noise);
   rounding-noise-level drift for CKKS.
5. **NTT-domain residency** — plain-multiply products stay in evaluation
   (NTT) form; adds/subs/negs of resident values accumulate without leaving
   it, and the deferred inverse transform is paid once at the first
   coefficient-domain consumer.  Elided inverse→forward pairs are charged
   to ``ctx.counts['ntt_elided']`` (units: residue-row transform pairs);
   transforms the scheduler does perform charge ``ntt_forward`` /
   ``ntt_inverse``.

The scheduler-off reference path (:meth:`ScheduledProgram.run_reference`)
executes the same IR one primitive at a time — the bit-exactness oracle
the randomized DAG tests compare against.

``TracerContext`` lets existing consumer code *emit* IR without being
rewritten: it mimics the evaluator surface of a context (encode, add,
multiply_plain, rotate, rescale, ...), recording nodes instead of
computing.  ``core.linalg`` and ``core.distance`` trace their own direct
evaluation bodies once and replay the scheduled program thereafter.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.hecore import hoisting
from repro.hecore.params import SchemeType


class ScheduleError(ValueError):
    """The program cannot be represented/scheduled in the IR."""


# ---------------------------------------------------------------------------
# IR nodes
# ---------------------------------------------------------------------------

#: Node kinds producing ciphertext values.
CT_KINDS = frozenset({
    "input", "rotate", "add", "sub", "neg", "mul",
    "rescale", "mod_switch", "rotate_sum", "weighted_sum",
    "encrypt", "recrypt_boundary",
})

#: Crypto-boundary kinds: the value crossing them is fresh (full budget).
#: ``encrypt`` enters the encrypted domain from named plaintext inputs,
#: ``recrypt_boundary`` is a client round trip (decrypt, refresh, re-encrypt)
#: made visible to the scheduler, and ``decrypt`` exits to plaintext.
BOUNDARY_KINDS = frozenset({"encrypt", "decrypt", "recrypt_boundary"})

#: Kinds whose output may legally stay in NTT (evaluation) form.
_FORM_AGNOSTIC = frozenset({"add", "sub", "neg"})


@dataclass
class IrNode:
    """One IR operation.  ``args`` index earlier nodes."""

    kind: str
    args: Tuple[int, ...] = ()
    steps: int = 0                  # rotate
    width: int = 0                  # rotate_sum
    values: Optional[np.ndarray] = None   # const
    name: str = ""                  # input
    terms: Tuple[Tuple[int, int], ...] = ()  # weighted_sum: (step, const id)
    normalize: bool = False         # rescale: snap scale back to nominal
    planned: bool = False           # mod_switch inserted by the level planner


@dataclass
class IrProgram:
    """A linear ciphertext program: nodes in emission order plus outputs."""

    nodes: List[IrNode] = field(default_factory=list)
    outputs: Dict[str, int] = field(default_factory=dict)
    slots: int = 0

    def is_const(self, nid: int) -> bool:
        return self.nodes[nid].kind == "const"

    def ct_args(self, nid: int) -> Tuple[int, ...]:
        return tuple(a for a in self.nodes[nid].args if not self.is_const(a))

    def live_set(self) -> Set[int]:
        """Nodes reachable from the outputs (consts included)."""
        live: Set[int] = set()
        stack = list(self.outputs.values())
        while stack:
            nid = stack.pop()
            if nid in live:
                continue
            live.add(nid)
            stack.extend(self.nodes[nid].args)
            for _, cid in self.nodes[nid].terms:
                stack.append(cid)
        return live

    def consumers(self, live: Optional[Set[int]] = None) -> Dict[int, List[int]]:
        """node id -> ids of (live) nodes consuming it."""
        out: Dict[int, List[int]] = {}
        for nid, node in enumerate(self.nodes):
            if live is not None and nid not in live:
                continue
            for a in node.args:
                out.setdefault(a, []).append(nid)
        return out


class IrBuilder:
    """Convenience constructor for :class:`IrProgram`."""

    def __init__(self, slots: int = 0):
        self.program = IrProgram(slots=slots)

    # ------------------------------------------------------------- plumbing
    def _emit(self, node: IrNode) -> int:
        self.program.nodes.append(node)
        return len(self.program.nodes) - 1

    def _require_ct(self, nid: int, op: str) -> None:
        if self.program.is_const(nid):
            raise ScheduleError(f"{op} needs a ciphertext operand")

    # ----------------------------------------------------------------- api
    def input(self, name: str) -> int:
        return self._emit(IrNode("input", name=name))

    def encrypt(self, name: str) -> int:
        """A named plaintext input encrypted at the program boundary."""
        return self._emit(IrNode("encrypt", name=name))

    def decrypt(self, a: int) -> int:
        """Exit the encrypted domain: the node's value is a slot vector."""
        self._require_ct(a, "decrypt")
        return self._emit(IrNode("decrypt", (a,)))

    def recrypt(self, a: int) -> int:
        """A client round trip: decrypt, refresh the budget, re-encrypt."""
        self._require_ct(a, "recrypt")
        return self._emit(IrNode("recrypt_boundary", (a,)))

    def const(self, values) -> int:
        return self._emit(IrNode("const", values=np.asarray(values)))

    def rotate(self, a: int, steps: int) -> int:
        self._require_ct(a, "rotate")
        if steps == 0:
            return a
        return self._emit(IrNode("rotate", (a,), steps=int(steps)))

    def _binary(self, kind: str, a: int, b: int) -> int:
        if self.program.is_const(a) and self.program.is_const(b):
            raise ScheduleError("fold constant-only expressions before emitting")
        return self._emit(IrNode(kind, (a, b)))

    def add(self, a: int, b: int) -> int:
        return self._binary("add", a, b)

    def sub(self, a: int, b: int) -> int:
        return self._binary("sub", a, b)

    def mul(self, a: int, b: int) -> int:
        return self._binary("mul", a, b)

    def neg(self, a: int) -> int:
        self._require_ct(a, "neg")
        return self._emit(IrNode("neg", (a,)))

    def rescale(self, a: int, normalize: bool = False) -> int:
        self._require_ct(a, "rescale")
        return self._emit(IrNode("rescale", (a,), normalize=normalize))

    def mod_switch(self, a: int) -> int:
        self._require_ct(a, "mod_switch")
        return self._emit(IrNode("mod_switch", (a,)))

    def rotate_sum(self, a: int, width: int) -> int:
        self._require_ct(a, "rotate_sum")
        if width <= 1:
            return a
        return self._emit(IrNode("rotate_sum", (a,), width=int(width)))

    def output(self, name: str, a: int) -> None:
        if self.program.nodes[a].kind != "decrypt":
            self._require_ct(a, "output")
        self.program.outputs[name] = a


# ---------------------------------------------------------------------------
# Tracing: existing consumer code emits IR by running against this context
# ---------------------------------------------------------------------------

class _TraceValue:
    """A symbolic ciphertext handle produced while tracing."""

    __slots__ = ("nid",)
    #: Consumers level-match plaintext encodes against ``ct.level_base``;
    #: during tracing there is no level yet, so encodes stay base-deferred.
    level_base = None

    def __init__(self, nid: int):
        self.nid = nid


class _TracePlain:
    """A symbolic plaintext handle (an IR const node)."""

    __slots__ = ("nid",)

    def __init__(self, nid: int):
        self.nid = nid


class TracerContext:
    """A recording stand-in for a BFV/CKKS context.

    Implements exactly the evaluator surface the linalg/distance direct
    paths use.  Deliberately does **not** expose ``rotate_weighted_sum`` or
    ``rotate_many``: tracing captures the *unfused* rotate/mul/add chain
    and the scheduler re-derives the fusions as passes.
    """

    #: Lets consumers skip real-plaintext caching while being traced.
    is_tracer = True

    def __init__(self, params):
        self.params = params
        self.counts: Counter = Counter()
        self.builder = IrBuilder(slots=params.poly_degree // 2)

    # ------------------------------------------------------------ plumbing
    def trace_input(self, name: str) -> _TraceValue:
        return _TraceValue(self.builder.input(name))

    def trace_encrypt(self, name: str) -> _TraceValue:
        """A named plaintext input entering through an ``encrypt`` node."""
        return _TraceValue(self.builder.encrypt(name))

    def _ct(self, value) -> int:
        if isinstance(value, _TraceValue):
            return value.nid
        raise ScheduleError(f"cannot trace non-IR value {type(value).__name__}")

    # ----------------------------------------------------------- evaluator
    def encode(self, values, scale=None, base=None) -> _TracePlain:
        return _TracePlain(self.builder.const(values))

    def add(self, a, b) -> _TraceValue:
        return _TraceValue(self.builder.add(self._ct(a), self._ct(b)))

    def sub(self, a, b) -> _TraceValue:
        return _TraceValue(self.builder.sub(self._ct(a), self._ct(b)))

    def negate(self, a) -> _TraceValue:
        return _TraceValue(self.builder.neg(self._ct(a)))

    def add_plain(self, ct, pt: _TracePlain) -> _TraceValue:
        return _TraceValue(self.builder.add(self._ct(ct), pt.nid))

    def multiply_plain(self, ct, pt: _TracePlain) -> _TraceValue:
        return _TraceValue(self.builder.mul(self._ct(ct), pt.nid))

    def multiply(self, a, b, relinearize: bool = True) -> _TraceValue:
        if not relinearize:
            raise ScheduleError("IR multiplies always relinearize")
        return _TraceValue(self.builder.mul(self._ct(a), self._ct(b)))

    def square(self, a, relinearize: bool = True) -> _TraceValue:
        return self.multiply(a, a, relinearize)

    def rescale(self, ct) -> _TraceValue:
        return _TraceValue(self.builder.rescale(self._ct(ct)))

    def mod_switch_down(self, ct) -> _TraceValue:
        return _TraceValue(self.builder.mod_switch(self._ct(ct)))

    def align(self, a, b):
        return a, b            # the executor aligns levels dynamically

    def rotate(self, ct, steps: int, galois_keys=None) -> _TraceValue:
        return _TraceValue(self.builder.rotate(self._ct(ct), steps))

    def rotate_and_sum(self, ct, width: int, galois_keys=None) -> _TraceValue:
        return _TraceValue(self.builder.rotate_sum(self._ct(ct), width))

    def recrypt(self, ct) -> _TraceValue:
        """Record a client-aided refresh (decrypt + re-encrypt) boundary."""
        return _TraceValue(self.builder.recrypt(self._ct(ct)))

    def decrypt(self, ct) -> _TraceValue:
        """Record the exit to plaintext; the handle may only be an output."""
        return _TraceValue(self.builder.decrypt(self._ct(ct)))


def trace_program(params, fn, input_names: Sequence[str],
                  encrypt_inputs: bool = False) -> IrProgram:
    """Run *fn(tracer, \\*handles)* and return the recorded program.

    *fn* receives a :class:`TracerContext` followed by one symbolic handle
    per input name, and returns a handle or a sequence of handles; outputs
    are named ``out0..outN`` (a single handle still gets ``out0``).

    With ``encrypt_inputs=True`` the inputs enter through explicit
    ``encrypt`` nodes (the executor encrypts raw slot vectors at the
    program boundary) instead of expecting pre-encrypted ciphertexts.
    """
    tracer = TracerContext(params)
    enter = tracer.trace_encrypt if encrypt_inputs else tracer.trace_input
    handles = [enter(name) for name in input_names]
    result = fn(tracer, *handles)
    if isinstance(result, _TraceValue):
        result = [result]
    for i, handle in enumerate(result):
        tracer.builder.output(f"out{i}", tracer._ct(handle))
    return tracer.builder.program


def concat_programs(first: IrProgram, second: IrProgram,
                    boundary: str = "recrypt") -> IrProgram:
    """Splice *second* after *first* through explicit crypto boundaries.

    Each of *second*'s inputs must name one of *first*'s outputs; the
    spliced program routes that output through a ``recrypt_boundary`` node
    (``boundary="recrypt"``, the client-aided round trip between dnn/knn
    segments) or feeds it directly (``boundary="none"``).  The combined
    program carries *second*'s output names — making the round trip visible
    to the scheduler instead of implicit between two separate programs.
    """
    if boundary not in ("recrypt", "none"):
        raise ScheduleError(f"unknown boundary kind {boundary!r}")
    out = IrProgram(slots=first.slots or second.slots)
    out.nodes = [IrNode(n.kind, n.args, n.steps, n.width, n.values,
                        n.name, n.terms, n.normalize, n.planned)
                 for n in first.nodes]
    mapping: Dict[int, int] = {}
    for nid, node in enumerate(second.nodes):
        if node.kind == "input":
            if node.name not in first.outputs:
                raise ScheduleError(
                    f"second program's input {node.name!r} matches no "
                    f"output of the first ({sorted(first.outputs)})")
            src = first.outputs[node.name]
            if boundary == "recrypt":
                out.nodes.append(IrNode("recrypt_boundary", (src,)))
                mapping[nid] = len(out.nodes) - 1
            else:
                mapping[nid] = src
            continue
        args = tuple(mapping[a] for a in node.args)
        terms = tuple((s, mapping[c]) for s, c in node.terms)
        out.nodes.append(IrNode(node.kind, args, node.steps, node.width,
                                node.values, node.name, terms,
                                node.normalize, node.planned))
        mapping[nid] = len(out.nodes) - 1
    out.outputs = {name: mapping[nid] for name, nid in second.outputs.items()}
    return out


# ---------------------------------------------------------------------------
# Scheduling passes
# ---------------------------------------------------------------------------

@dataclass
class ScheduleReport:
    """What the passes did — asserted by the pass-level unit tests."""

    rotation_groups: int = 0        # fused multi-rotation groups
    fused_rotations: int = 0        # rotations covered by those groups
    weighted_sum_spans: int = 0     # add-trees collapsed to hoisted spans
    weighted_sum_terms: int = 0     # mul terms those spans absorbed
    rescales_sunk: int = 0          # rescale pairs merged below an add/sub
    mod_switches_sunk: int = 0      # mod-switch pairs merged likewise
    resident_nodes: int = 0         # values planned to stay in NTT form
    batched_consts: int = 0         # BFV consts encoded in one stacked pass
    #: The level planner's :class:`repro.core.levelplan.LevelPlan`, when the
    #: planner ran (``compile_ir(..., params=...)``); ``None`` otherwise.
    level_plan: object = None

    def describe(self) -> str:
        text = (f"{self.weighted_sum_spans} weighted-sum span(s) "
                f"({self.weighted_sum_terms} terms), "
                f"{self.rotation_groups} rotation group(s) "
                f"({self.fused_rotations} rotations), "
                f"{self.rescales_sunk + self.mod_switches_sunk} level drop(s) "
                f"sunk, {self.resident_nodes} NTT-resident node(s), "
                f"{self.batched_consts} const(s) batch-encoded")
        if self.level_plan is not None:
            text += f"; {self.level_plan.describe()}"
        return text


def _fuse_weighted_sums(program: IrProgram, scheme: SchemeType,
                        report: ScheduleReport) -> None:
    """Collapse BFV diagonal add-trees into ``weighted_sum`` nodes.

    A tree qualifies when every leaf is a single-consumer
    ``mul(rotate(x, s) | x, const)`` over one common source ``x``, the
    rotates themselves are single-consumer (shared baby rotations — BSGS —
    stay with the rotation-fusion pass instead), and at least two leaves
    carry distinct rotations.
    """
    if scheme is not SchemeType.BFV:
        return
    nodes = program.nodes
    live = program.live_set()
    consumers = program.consumers(live)
    out_ids = set(program.outputs.values())

    def single_consumer(nid: int) -> bool:
        return len(consumers.get(nid, ())) == 1 and nid not in out_ids

    def leaf_term(nid: int, source: Optional[int]):
        """(source, step, const) when *nid* is a fusable leaf, else None."""
        node = nodes[nid]
        if node.kind != "mul":
            return None
        a, b = node.args
        if program.is_const(a):
            a, b = b, a
        if not program.is_const(b) or program.is_const(a):
            return None
        rot = nodes[a]
        if rot.kind == "rotate" and single_consumer(a):
            src, step = rot.args[0], rot.steps
        else:
            src, step = a, 0
        if source is not None and src != source:
            return None
        return src, step, b

    def maximal(nid: int) -> bool:
        """True when no larger add-tree strictly contains *nid*."""
        cons = consumers.get(nid, ())
        return (nid in out_ids or len(cons) != 1
                or nodes[cons[0]].kind != "add")

    for root in range(len(nodes)):
        if (root not in live or nodes[root].kind != "add"
                or not maximal(root)):
            continue
        # Collect the maximal single-consumer add-tree under `root`.
        terms: List[Tuple[int, int]] = []
        source: Optional[int] = None
        ok = True
        stack = [root]
        while stack and ok:
            nid = stack.pop()
            node = nodes[nid]
            if node.kind == "add" and (nid == root or single_consumer(nid)):
                stack.extend(node.args)
                continue
            leaf = leaf_term(nid, source)
            if leaf is None or not single_consumer(nid):
                ok = False
                break
            source = leaf[0]
            terms.append((leaf[1], leaf[2]))
        if not ok or source is None or len(terms) < 2:
            continue
        if len({step for step, _ in terms if step}) < 2:
            continue
        nodes[root] = IrNode("weighted_sum", (source,),
                             terms=tuple(sorted(terms)))
        report.weighted_sum_spans += 1
        report.weighted_sum_terms += len(terms)
        live = program.live_set()
        consumers = program.consumers(live)


def _sink_level_drops(program: IrProgram, report: ScheduleReport) -> None:
    """Rewrite ``add(drop(a), drop(b))`` → ``drop(add(a, b))`` to fixpoint.

    Legal only when both drops are single-consumer siblings at the same
    (level, scale-exponent) state: the merged drop then divides the summed
    value exactly as the two separate drops would have (up to CKKS rescale
    rounding noise, which lives below the noise floor by construction).
    """
    nodes = program.nodes

    def states() -> Dict[int, Optional[Tuple[int, int]]]:
        # Demand-driven: sunk drops reference nodes appended after them,
        # so a simple id-order sweep would hit unresolved arguments.
        state: Dict[int, Optional[Tuple[int, int]]] = {}
        stack = list(range(len(nodes)))
        while stack:
            nid = stack[-1]
            if nid in state:
                stack.pop()
                continue
            node = nodes[nid]
            if node.kind == "const":
                state[nid] = None
                stack.pop()
                continue
            if node.kind in ("encrypt", "recrypt_boundary"):
                # Crypto boundaries reset the level state: the value on the
                # far side is freshly encrypted at the full chain.
                state[nid] = (0, 1)
                stack.pop()
                continue
            missing = [a for a in node.args if a not in state]
            if missing:
                stack.extend(missing)
                continue
            ct_args = [a for a in node.args if state[a] is not None]
            if node.kind in ("rescale", "mod_switch"):
                lvl, sexp = state[node.args[0]]
                state[nid] = (lvl + 1, max(1, sexp - 1))
            elif node.kind == "mul":
                if len(ct_args) == 2:
                    (l1, s1), (l2, s2) = (state[a] for a in ct_args)
                    state[nid] = (max(l1, l2), s1 + s2)
                elif ct_args:
                    lvl, sexp = state[ct_args[0]]
                    state[nid] = (lvl, sexp + 1)
                else:
                    state[nid] = (0, 1)
            elif ct_args:
                pairs = [state[a] for a in ct_args]
                state[nid] = (max(l for l, _ in pairs),
                              max(s for _, s in pairs))
            else:
                state[nid] = (0, 1)
            stack.pop()
        return state

    changed = True
    while changed:
        changed = False
        state = states()
        live = program.live_set()
        consumers = program.consumers(live)
        out_ids = set(program.outputs.values())
        for root, node in enumerate(nodes):
            if root not in live or node.kind not in ("add", "sub"):
                continue
            a, b = node.args
            da, db = nodes[a], nodes[b]
            if da.kind != db.kind or da.kind not in ("rescale", "mod_switch"):
                continue
            if da.normalize != db.normalize:
                continue
            if any(len(consumers.get(d, ())) != 1 or d in out_ids
                   for d in (a, b)):
                continue
            if state[da.args[0]] != state[db.args[0]]:
                continue
            inner = len(nodes)
            nodes.append(IrNode(node.kind, (da.args[0], db.args[0])))
            nodes[root] = IrNode(da.kind, (inner,),
                                 width=da.width if da.width == db.width else 0,
                                 normalize=da.normalize,
                                 planned=da.planned and db.planned)
            if da.kind == "rescale":
                report.rescales_sunk += 1
            else:
                report.mod_switches_sunk += 1
            changed = True
            break   # indices shifted; recompute state and rescan


def _group_rotations(program: IrProgram, report: ScheduleReport
                     ) -> Dict[int, List[int]]:
    """Group live rotations by source: one hoisted decompose per group.

    Returns source node id -> rotate node ids (groups of 2+ only)."""
    live = program.live_set()
    by_source: Dict[int, List[int]] = {}
    for nid in live:
        node = program.nodes[nid]
        if node.kind == "rotate":
            by_source.setdefault(node.args[0], []).append(nid)
    groups = {src: sorted(members, key=lambda m: program.nodes[m].steps)
              for src, members in by_source.items() if len(members) > 1}
    report.rotation_groups = len(groups)
    report.fused_rotations = sum(len(m) for m in groups.values())
    return groups


def _mark_residency(program: IrProgram, report: ScheduleReport) -> Set[int]:
    """Nodes whose value stays in NTT form until a coefficient consumer.

    Plain-multiplies produce NTT-form values; adds/subs/negs stay resident
    when every ciphertext operand is.  Everything else (rotation spans,
    level drops, ct-ct multiplies, outputs) consumes coefficient form — the
    deferred inverse is paid there, once."""
    resident: Set[int] = set()
    for nid, node in enumerate(program.nodes):
        if node.kind == "mul" and len(program.ct_args(nid)) == 1:
            resident.add(nid)
        elif node.kind in _FORM_AGNOSTIC:
            ct_args = program.ct_args(nid)
            if ct_args and all(a in resident for a in ct_args):
                resident.add(nid)
    live = program.live_set()
    resident &= live
    report.resident_nodes = len(resident)
    return resident


def compile_ir(program: IrProgram, scheme: SchemeType, params=None,
               level_planner=None) -> "ScheduledProgram":
    """Run the pass pipeline and return an executable scheduled program.

    With *params* (an :class:`EncryptionParameters`) the level-aware
    parameter planner runs between weighted-sum fusion and the remaining
    passes: it walks the program with the static noise estimator, drops
    modulus-chain limbs the moment no downstream consumer needs their
    headroom, and re-plans each post-``recrypt_boundary`` segment onto a
    trimmed entry chain (see :mod:`repro.core.levelplan`).  Pass
    *level_planner* (a :class:`repro.core.levelplan.PlannerOptions`) to
    tune or disable it; without *params* the planner never runs — the
    pre-planner pipeline is unchanged.
    """
    nodes = list(program.nodes)      # the passes rewrite a private copy
    program = IrProgram(nodes=[IrNode(n.kind, n.args, n.steps, n.width,
                                      n.values, n.name, n.terms, n.normalize,
                                      n.planned)
                               for n in nodes],
                        outputs=dict(program.outputs), slots=program.slots)
    report = ScheduleReport()
    _fuse_weighted_sums(program, scheme, report)
    if params is not None and (level_planner is None or level_planner.enabled):
        from repro.core.levelplan import plan_levels

        program, report.level_plan = plan_levels(program, params,
                                                 options=level_planner)
    _sink_level_drops(program, report)
    groups = _group_rotations(program, report)
    resident = _mark_residency(program, report)
    return ScheduledProgram(program, scheme, report, groups, resident)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _rows(ct, only_ntt: Optional[bool] = None) -> int:
    """Residue rows across a ciphertext's components (counter units)."""
    return sum(len(c.base) for c in ct.components
               if only_ntt is None or c.is_ntt == only_ntt)


def _negate_bfv_plain(pt):
    from repro.hecore.plaintext import Plaintext

    return Plaintext(np.mod(-pt.coeffs, pt.modulus), pt.modulus)


def _negate_ckks_plain(pt):
    from repro.hecore.plaintext import CkksPlaintext

    return CkksPlaintext(-pt.poly, pt.scale)


class ScheduledProgram:
    """An IR program plus its schedule; reusable across calls and contexts.

    Plaintext encodings, NTT-form plaintext tables, and weighted-sum spans
    are cached per modulus chain, so repeated executions (the static-weight
    inference loop) skip all plaintext transform work.
    """

    def __init__(self, program: IrProgram, scheme: SchemeType,
                 report: ScheduleReport, groups: Dict[int, List[int]],
                 resident: Set[int]):
        self.program = program
        self.scheme = scheme
        self.report = report
        self.groups = groups
        self.resident = resident
        self._group_of = {m: src for src, ms in groups.items() for m in ms}
        self._spans: Dict[Tuple, hoisting.WeightedSumSpan] = {}
        self._plain_cache: Dict[Tuple, object] = {}
        self._ntt_plain_cache: Dict[Tuple, object] = {}
        self._bfv_batch: Dict[int, Dict[int, object]] = {}

    # ------------------------------------------------------------ metadata
    def rotation_steps(self) -> Set[int]:
        """Merged Galois step set the whole program needs (satellite: one
        ``make_galois_keys`` call per pipeline, not one per op)."""
        steps: Set[int] = set()
        for nid in self.program.live_set():
            node = self.program.nodes[nid]
            if node.kind == "rotate":
                steps.add(node.steps)
            elif node.kind == "rotate_sum":
                steps |= hoisting.rotate_and_sum_steps(node.width)
            elif node.kind == "weighted_sum":
                steps |= {s for s, _ in node.terms}
        return {s for s in steps if s}

    # ------------------------------------------------------------ plaintexts
    def _const_values(self, cid: int) -> np.ndarray:
        return self.program.nodes[cid].values

    def _bfv_plain(self, ctx, cid: int):
        """BFV plaintext for const *cid*, batch-encoded on first touch.

        The first request under a given plain modulus encodes EVERY live
        const in one stacked ``encode_many`` pass (batch-grouping pass)."""
        t = ctx.params.plain_modulus
        batch = self._bfv_batch.get(t)
        if batch is None:
            live = self.program.live_set()
            cids = [nid for nid in sorted(live)
                    if self.program.nodes[nid].kind == "const"]
            encoder = getattr(ctx, "encoder", None)
            if encoder is not None and hasattr(encoder, "encode_many") and cids:
                pts = encoder.encode_many(
                    [np.asarray(self._const_values(c), dtype=np.int64)
                     for c in cids])
            else:
                pts = [ctx.encode(np.asarray(self._const_values(c),
                                             dtype=np.int64)) for c in cids]
            batch = self._bfv_batch[t] = dict(zip(cids, pts))
            self.report.batched_consts = len(cids)
        return batch[cid]

    def _ckks_plain(self, ctx, cid: int, base, scale=None):
        key = (cid, tuple(int(p) for p in base.moduli),
               None if scale is None else round(float(scale), 6))
        pt = self._plain_cache.get(key)
        if pt is None:
            values = np.asarray(self._const_values(cid), dtype=np.float64)
            pt = ctx.encode(values, scale=scale, base=base)
            self._plain_cache[key] = pt
        return pt

    def _plain_ntt(self, ctx, cid: int, base):
        """NTT-form plaintext multiplicand for const *cid* at *base*."""
        from repro.hecore.polyring import RnsPoly

        key = (cid, tuple(int(p) for p in base.moduli))
        m_ntt = self._ntt_plain_cache.get(key)
        if m_ntt is None:
            if self.scheme is SchemeType.BFV:
                pt = self._bfv_plain(ctx, cid)
                m_ntt = RnsPoly.from_signed_array(base, pt.coeffs).to_ntt()
                scale = 1.0
            else:
                pt = self._ckks_plain(ctx, cid, base)
                m_ntt = pt.poly.to_ntt()
                scale = pt.scale
            ctx.counts["ntt_forward"] += len(base)
            self._ntt_plain_cache[key] = (m_ntt, scale)
        else:
            ctx.counts["ntt_elided"] += len(base)
        return self._ntt_plain_cache[key]

    def _span(self, ctx, nid: int) -> hoisting.WeightedSumSpan:
        node = self.program.nodes[nid]
        key = (nid, ctx.params.plain_modulus)
        span = self._spans.get(key)
        if span is None:
            terms = [(step, self._bfv_plain(ctx, cid).coeffs)
                     for step, cid in node.terms]
            span = self._spans[key] = hoisting.WeightedSumSpan(terms)
        return span

    # ------------------------------------------------------------ execution
    def run(self, ctx, inputs: Dict[str, object], galois_keys=None):
        """Execute the scheduled program; returns output ciphertexts."""
        plan = self.report.level_plan
        if plan is not None and plan.replans:
            ctx.counts["level_replans"] += plan.replans
        return _IrRunner(self, ctx, inputs, galois_keys, fused=True).run()

    def run_reference(self, ctx, inputs: Dict[str, object], galois_keys=None):
        """Scheduler-off oracle: same IR, one primitive call per node —
        no fusion, no residency, no caching."""
        return _IrRunner(self, ctx, inputs, galois_keys, fused=False).run()


class _IrRunner:
    """Demand-driven evaluator over the scheduled (or raw) IR."""

    def __init__(self, sched: ScheduledProgram, ctx, inputs, galois_keys,
                 fused: bool):
        self.sched = sched
        self.program = sched.program
        self.ctx = ctx
        self.inputs = inputs
        self.keys = galois_keys
        self.fused = fused
        self.ckks = ctx.params.scheme is SchemeType.CKKS
        self.memo: Dict[int, object] = {}

    # ------------------------------------------------------- form handling
    def _to_coeff(self, ct):
        if not any(c.is_ntt for c in ct.components):
            return ct
        from repro.hecore.ciphertext import Ciphertext

        self.ctx.counts["ntt_inverse"] += _rows(ct, only_ntt=True)
        return Ciphertext(ct.params, [c.from_ntt() for c in ct.components],
                          scale=ct.scale)

    def _to_ntt(self, ct):
        from repro.hecore.ciphertext import Ciphertext

        pending = _rows(ct, only_ntt=False)
        if pending:
            self.ctx.counts["ntt_forward"] += pending
        resident = _rows(ct, only_ntt=True)
        if resident:
            # The producer skipped its inverse AND this forward: one
            # inverse->forward pair per already-resident residue row.
            self.ctx.counts["ntt_elided"] += resident
        if not pending:
            return ct
        return Ciphertext(ct.params, [c.to_ntt() for c in ct.components],
                          scale=ct.scale)

    def _matched_forms(self, a, b):
        a_ntt = any(c.is_ntt for c in a.components)
        b_ntt = any(c.is_ntt for c in b.components)
        if a_ntt == b_ntt:
            return a, b
        return self._to_coeff(a), self._to_coeff(b)

    # ------------------------------------------------------------- helpers
    def _rotate_one(self, ct, steps):
        rotate = getattr(self.ctx, "rotate_rows", None) or self.ctx.rotate
        return rotate(ct, steps, self.keys)

    def _additive_plain(self, kind, ct, cid, const_left):
        """add/sub with a plaintext operand — mirrors the Eva executor."""
        ctx = self.ctx
        ct = self._to_coeff(ct)
        if self.ckks:
            pt = self.sched._ckks_plain(ctx, cid, ct.level_base, scale=ct.scale)
            negate_pt = _negate_ckks_plain
        else:
            pt = self.sched._bfv_plain(ctx, cid)
            negate_pt = _negate_bfv_plain
        if kind == "add":
            return ctx.add_plain(ct, pt)
        if const_left:                      # plain - ct
            return ctx.add_plain(ctx.negate(ct), pt)
        return ctx.add_plain(ct, negate_pt(pt))   # ct - plain

    def _mul_plain(self, ct, cid):
        ctx = self.ctx
        if not self.fused:
            ct = self._to_coeff(ct)
            if self.ckks:
                pt = self.sched._ckks_plain(ctx, cid, ct.level_base)
            else:
                pt = self.sched._bfv_plain(ctx, cid)
            return ctx.multiply_plain(ct, pt)
        # Residency pass: multiply in evaluation form and STAY there.  The
        # product is bit-identical to multiply_plain (to_ntt/from_ntt are
        # exact inverses mod p); only the inverse transform is deferred.
        from repro.hecore.ciphertext import Ciphertext

        ct_ntt = self._to_ntt(ct)
        m_ntt, pt_scale = self.sched._plain_ntt(ctx, cid, ct.level_base)
        ctx.counts["multiply_plain"] += 1
        comps = [c * m_ntt for c in ct_ntt.components]
        return Ciphertext(ct.params, comps, scale=ct.scale * pt_scale)

    def _align(self, a, b):
        if a.level_base != b.level_base:
            align = getattr(self.ctx, "align", None)
            if align is not None:
                a, b = align(self._to_coeff(a), self._to_coeff(b))
        return a, b

    def _group_results(self, src_nid: int):
        """All rotations of a fused group, one hoisted decompose."""
        key = ("group", src_nid)
        results = self.memo.get(key)
        if results is None:
            members = self.sched.groups[src_nid]
            steps = [self.program.nodes[m].steps for m in members]
            src = self._to_coeff(self.memo[src_nid])
            fused = getattr(self.ctx, "rotate_many", None)
            if fused is not None:
                cts = fused(src, steps, self.keys)
            else:
                cts = [self._rotate_one(src, s) for s in steps]
            results = dict(zip(members, cts))
            self.memo[key] = results
        return results

    # ----------------------------------------------------------- evaluation
    def run(self):
        outputs = {}
        for name, nid in self.program.outputs.items():
            self._eval(nid)
            value = self.memo[nid]
            if hasattr(value, "components"):
                value = self._to_coeff(value)
            outputs[name] = value
        return outputs

    def _eval(self, root: int):
        stack = [root]
        nodes = self.program.nodes
        counts = self.ctx.counts
        while stack:
            nid = stack[-1]
            if nid in self.memo:
                stack.pop()
                continue
            deps = [a for a in nodes[nid].args if not self.program.is_const(a)]
            missing = [d for d in deps if d not in self.memo]
            if missing:
                stack.extend(missing)
                continue
            value = self.memo[nid] = self._compute(nid)
            if hasattr(value, "level_base"):
                # Limbs-live integral: live limb count summed over every
                # executed ciphertext-producing op (CostLedger telemetry).
                counts["limbs_live"] += len(value.level_base)
            stack.pop()

    def _compute(self, nid: int):
        ctx = self.ctx
        node = self.program.nodes[nid]
        kind = node.kind
        if kind == "input":
            value = self.inputs[node.name]
            if not hasattr(value, "components"):
                raise ScheduleError(
                    f"input {node.name!r} must be a ciphertext (encrypt "
                    "program inputs at the batch boundary)")
            return value
        if kind == "encrypt":
            value = self.inputs[node.name]
            if hasattr(value, "components"):
                return value          # already encrypted upstream
            return ctx.encrypt(value)
        if kind == "decrypt":
            return ctx.decrypt(self._to_coeff(self.memo[node.args[0]]))
        if kind == "recrypt_boundary":
            # The client-aided round trip: decrypt, refresh the budget,
            # re-encrypt at the full chain.  Only a client-side context can
            # execute this node — running it under ``server_compute`` trips
            # the ProtocolViolation guard, by design.
            values = ctx.decrypt(self._to_coeff(self.memo[node.args[0]]))
            ctx.counts["recrypt"] += 1
            return ctx.encrypt(values)
        if kind == "neg":
            return ctx.negate(self.memo[node.args[0]])
        if kind == "rotate":
            if self.fused and nid in self.sched._group_of:
                return self._group_results(self.sched._group_of[nid])[nid]
            return self._rotate_one(self._to_coeff(self.memo[node.args[0]]),
                                    node.steps)
        if kind in ("add", "sub"):
            a, b = node.args
            a_const = self.program.is_const(a)
            b_const = self.program.is_const(b)
            if a_const or b_const:
                cid, ct_id = (a, b) if a_const else (b, a)
                return self._additive_plain(kind, self.memo[ct_id], cid,
                                            const_left=a_const)
            va, vb = self._align(self.memo[a], self.memo[b])
            if self.fused:
                va, vb = self._matched_forms(va, vb)
            else:
                va, vb = self._to_coeff(va), self._to_coeff(vb)
            return (ctx.add if kind == "add" else ctx.sub)(va, vb)
        if kind == "mul":
            a, b = node.args
            if self.program.is_const(a) or self.program.is_const(b):
                cid, ct_id = ((a, b) if self.program.is_const(a) else (b, a))
                return self._mul_plain(self.memo[ct_id], cid)
            va, vb = self._align(self.memo[a], self.memo[b])
            if self.ckks and self.fused:
                # CKKS ct-ct multiply starts in evaluation form anyway:
                # resident operands skip their inverse->forward round trip.
                elided = _rows(va, only_ntt=True) + _rows(vb, only_ntt=True)
                if elided:
                    ctx.counts["ntt_elided"] += elided
            else:
                va, vb = self._to_coeff(va), self._to_coeff(vb)
            return ctx.multiply(va, vb)
        if kind == "rescale":
            out = ctx.rescale(self._to_coeff(self.memo[node.args[0]]))
            if node.normalize:
                drift = out.scale / ctx.params.scale
                if not 0.5 < drift < 2.0:
                    raise RuntimeError(
                        "scale drifted out of the normalization range")
                out.scale = ctx.params.scale
            return out
        if kind == "mod_switch":
            ct = self._to_coeff(self.memo[node.args[0]])
            if node.planned:
                # Planned drops are advisory: the planner modeled inputs at
                # the full chain, but a caller may feed a ciphertext that
                # already shed residues (e.g. a downstream segment reusing a
                # rescaled value).  ``width`` records the live-limb count
                # the planner expected; on divergence — or with no limb to
                # spare — the drop is skipped, which is always value-safe.
                if len(ct.level_base) < 2 or (
                        node.width and len(ct.level_base) != node.width):
                    return ct
                ctx.counts["limb_drops"] += 1
            return ctx.mod_switch_down(ct)
        if kind == "rotate_sum":
            ct = self._to_coeff(self.memo[node.args[0]])
            fused = getattr(ctx, "rotate_and_sum", None)
            if self.fused and fused is not None:
                return fused(ct, node.width, self.keys)
            step = node.width // 2
            while step >= 1:
                ct = ctx.add(ct, self._rotate_one(ct, step))
                step //= 2
            return ct
        if kind == "weighted_sum":
            ct = self._to_coeff(self.memo[node.args[0]])
            return self.sched._span(ctx, nid)(ctx, ct, self.keys)
        raise ScheduleError(f"unknown IR node kind {kind!r}")


# ---------------------------------------------------------------------------
# Pipeline conveniences
# ---------------------------------------------------------------------------

def ensure_galois_keys(ctx, *step_sets):
    """Union *step_sets* and make ONE merged Galois key set.

    The dnn/knn pipelines call this once per session instead of generating
    keys per-op; ``make_galois_keys`` reuses already-present elements.
    Returns the context's Galois key object (extended in place)."""
    steps: Set[int] = set()
    for s in step_sets:
        steps |= set(s)
    steps.discard(0)
    return ctx.make_galois_keys(steps)
