"""Encrypted distance kernels: the five packings of Figure 9 (§5.1, §5.4).

KNN and K-Means reduce to one-to-many squared-distance calculations
``dist_i = sum_k (x_i[k] - q[k])^2`` between a query/centroid ``q`` and all
stored points ``x_i`` — the access pattern of a matrix-vector product.  How
points and dimensions are packed into ciphertexts determines the balance of
server time, client time, and communication that Figure 11 explores:

* ``point-major``       — one point's dimensions per ciphertext;
* ``dimension-major``   — one dimension of every point per ciphertext;
* ``stacked-point``     — several points per ciphertext;
* ``stacked-dimension`` — several dimensions per ciphertext;
* ``collapsed``         — stacked-point compute plus an extra server-side
  mask-and-rotate round that compacts all distances into one dense
  ciphertext: more server work, minimal client/communication cost — the
  client-optimized choice (§5.4).

All variants run on CKKS.  Dimensions are padded to a power of two so the
log-rotation accumulation of :func:`repro.core.linalg.rotate_and_accumulate`
applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple, Type

import numpy as np

from repro.core.ir import ScheduleError, compile_ir, trace_program
from repro.core.linalg import (
    _rotate,
    rotate_and_accumulate,
    rotate_and_sum_steps,
    row_slot_count,
)


def _pow2(n: int) -> int:
    return 1 << max(0, (n - 1)).bit_length()


@dataclass(frozen=True)
class DistanceProblem:
    """A one-to-many distance computation: *n_points* stored, *dims* each."""

    n_points: int
    dims: int

    @property
    def padded_dims(self) -> int:
        return _pow2(self.dims)

    @property
    def padded_points(self) -> int:
        return _pow2(self.n_points)


class DistanceKernel:
    """Base class: packing, server compute, and result decoding."""

    name = "abstract"

    def __init__(self, ctx, problem: DistanceProblem):
        self.ctx = ctx
        self.problem = problem
        self.slots = row_slot_count(ctx)

    #: Route compute() through the traced-and-scheduled IR (the direct
    #: path stays reachable as the exactness reference).
    use_scheduler = True
    #: Distance results go straight back to the client for decryption
    #: (top-k happens client-side), so their outputs are terminal and the
    #: level planner can drop them to the decryptability floor — smaller
    #: downloads for free.  ``False`` schedules without the planner.
    use_level_planner = True

    # Subclasses implement these four (``_compute_direct`` runs against any
    # evaluator surface — a live context or a recording tracer).
    def pack_points(self, points: np.ndarray) -> List[np.ndarray]:
        raise NotImplementedError

    def pack_query(self, query: np.ndarray) -> List[np.ndarray]:
        raise NotImplementedError

    def _compute_direct(self, ctx, point_cts, query_cts, galois_keys=None):
        raise NotImplementedError

    def decode(self, outputs: List[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    # Shared helpers -------------------------------------------------------
    def _schedule(self, n_points_cts: int, n_query_cts: int):
        """Trace this kernel's direct path once per ciphertext-count shape
        and cache the scheduled program (None when untraceable)."""
        cache = getattr(self, "_sched_cache", None)
        if cache is None:
            cache = self._sched_cache = {}
        key = (n_points_cts, n_query_cts)
        if key not in cache:
            names = ([f"p{i}" for i in range(n_points_cts)]
                     + [f"q{i}" for i in range(n_query_cts)])

            def body(tracer, *handles):
                return self._compute_direct(
                    tracer, list(handles[:n_points_cts]),
                    list(handles[n_points_cts:]), None)

            try:
                ir = trace_program(self.ctx.params, body, names)
                cache[key] = compile_ir(
                    ir, self.ctx.params.scheme,
                    params=self.ctx.params if self.use_level_planner
                    else None)
            except ScheduleError:
                cache[key] = None
        return cache[key]

    def compute(self, point_cts, query_cts, galois_keys=None):
        """Evaluate the kernel, scheduled by default (rotation fusion,
        rescale sinking, NTT residency); falls back to the hand-wired
        direct path when the kernel cannot be traced."""
        sched = (self._schedule(len(point_cts), len(query_cts))
                 if self.use_scheduler else None)
        if sched is None:
            return self._compute_direct(self.ctx, point_cts, query_cts,
                                        galois_keys)
        inputs = {f"p{i}": ct for i, ct in enumerate(point_cts)}
        inputs.update({f"q{i}": ct for i, ct in enumerate(query_cts)})
        outputs = sched.run(self.ctx, inputs, galois_keys)
        return [outputs[f"out{i}"] for i in range(len(outputs))]

    def required_rotation_steps(self) -> Set[int]:
        return set()

    def encrypt_points(self, points: np.ndarray):
        return self.ctx.encrypt_many(self.pack_points(points))

    def encrypt_query(self, query: np.ndarray):
        return self.ctx.encrypt_many(self.pack_query(query))

    def distances(self, point_cts, query_cts, galois_keys=None) -> np.ndarray:
        """End-to-end helper: compute, decrypt, decode."""
        outputs = self.compute(point_cts, query_cts, galois_keys)
        return self.decode([np.real(v) for v in self.ctx.decrypt_many(outputs)])

    def _check(self, points: np.ndarray):
        n, d = points.shape
        if n != self.problem.n_points or d != self.problem.dims:
            raise ValueError(f"points shape {points.shape} does not match problem")

    def _squared_diff(self, ctx, a, b):
        return ctx.rescale(ctx.square(ctx.sub(a, b)))

    def reference(self, points: np.ndarray, query: np.ndarray) -> np.ndarray:
        return np.sum((points - query) ** 2, axis=1)


class PointMajorKernel(DistanceKernel):
    """One ciphertext per point; outputs one sparse ciphertext per point."""

    name = "point-major"

    def pack_points(self, points):
        self._check(points)
        d = self.problem.padded_dims
        out = []
        for row in points:
            v = np.zeros(d)
            v[: self.problem.dims] = row
            out.append(v)
        return out

    def pack_query(self, query):
        v = np.zeros(self.problem.padded_dims)
        v[: self.problem.dims] = query
        return [v]

    def required_rotation_steps(self):
        # Hoisted step set plus the power-of-two fallback ladder, so the
        # dimension sum can run as one fused hoisted span.
        return rotate_and_sum_steps(self.problem.padded_dims)

    def _compute_direct(self, ctx, point_cts, query_cts, galois_keys=None):
        q = query_cts[0]
        out = []
        for p in point_cts:
            sq = self._squared_diff(ctx, p, q)
            out.append(rotate_and_accumulate(ctx, sq, self.problem.padded_dims,
                                             galois_keys))
        return out

    def decode(self, outputs):
        return np.array([o[0] for o in outputs])


class DimensionMajorKernel(DistanceKernel):
    """One ciphertext per dimension; outputs one dense ciphertext."""

    name = "dimension-major"

    def pack_points(self, points):
        self._check(points)
        return [points[:, k].astype(float) for k in range(self.problem.dims)]

    def pack_query(self, query):
        n = self.problem.n_points
        return [np.full(n, float(q_k)) for q_k in query]

    def _compute_direct(self, ctx, point_cts, query_cts, galois_keys=None):
        acc = None
        for p, q in zip(point_cts, query_cts):
            sq = self._squared_diff(ctx, p, q)
            acc = sq if acc is None else ctx.add(acc, sq)
        return [acc]

    def decode(self, outputs):
        return outputs[0][: self.problem.n_points]


class StackedPointMajorKernel(DistanceKernel):
    """Several points per ciphertext; output distances at stride ``d``."""

    name = "stacked-point"

    def __init__(self, ctx, problem):
        super().__init__(ctx, problem)
        d = problem.padded_dims
        self.points_per_ct = max(1, self.slots // d)

    def _groups(self):
        n, per = self.problem.n_points, self.points_per_ct
        return [(i, min(i + per, n)) for i in range(0, n, per)]

    def pack_points(self, points):
        self._check(points)
        d = self.problem.padded_dims
        out = []
        for lo, hi in self._groups():
            v = np.zeros(self.slots)
            for idx in range(lo, hi):
                v[(idx - lo) * d: (idx - lo) * d + self.problem.dims] = points[idx]
            out.append(v)
        return out

    def pack_query(self, query):
        d = self.problem.padded_dims
        v = np.zeros(self.slots)
        for i in range(self.points_per_ct):
            v[i * d: i * d + self.problem.dims] = query
        return [v]

    def required_rotation_steps(self):
        return rotate_and_sum_steps(self.problem.padded_dims)

    def _compute_direct(self, ctx, point_cts, query_cts, galois_keys=None):
        q = query_cts[0]
        out = []
        for p in point_cts:
            sq = self._squared_diff(ctx, p, q)
            out.append(rotate_and_accumulate(ctx, sq, self.problem.padded_dims,
                                             galois_keys))
        return out

    def decode(self, outputs):
        d = self.problem.padded_dims
        dists = []
        for lo, hi in self._groups():
            block = outputs[lo // self.points_per_ct]
            for idx in range(hi - lo):
                dists.append(block[idx * d])
        return np.array(dists[: self.problem.n_points])


class StackedDimensionMajorKernel(DistanceKernel):
    """Several dimensions per ciphertext; cross-window adds on the server."""

    name = "stacked-dimension"

    def __init__(self, ctx, problem):
        super().__init__(ctx, problem)
        n = problem.padded_points
        self.dims_per_ct = max(1, self.slots // n)

    def _groups(self):
        d, per = self.problem.dims, self.dims_per_ct
        return [(k, min(k + per, d)) for k in range(0, d, per)]

    def pack_points(self, points):
        self._check(points)
        n = self.problem.padded_points
        out = []
        for lo, hi in self._groups():
            v = np.zeros(self.slots)
            for k in range(lo, hi):
                v[(k - lo) * n: (k - lo) * n + self.problem.n_points] = points[:, k]
            out.append(v)
        return out

    def pack_query(self, query):
        n = self.problem.padded_points
        out = []
        for lo, hi in self._groups():
            v = np.zeros(self.slots)
            for k in range(lo, hi):
                v[(k - lo) * n: (k - lo) * n + self.problem.n_points] = query[k]
            out.append(v)
        return out

    def required_rotation_steps(self):
        n = self.problem.padded_points
        steps = set()
        stride = self.dims_per_ct
        while stride > 1:
            steps.add((stride // 2) * n)
            stride //= 2
        return steps

    def _compute_direct(self, ctx, point_cts, query_cts, galois_keys=None):
        n = self.problem.padded_points
        acc = None
        for p, q in zip(point_cts, query_cts):
            sq = self._squared_diff(ctx, p, q)
            acc = sq if acc is None else ctx.add(acc, sq)
        # Fold the per-window partial sums into window 0.
        stride = _pow2(self.dims_per_ct)
        while stride > 1:
            acc = ctx.add(acc, _rotate(ctx, acc, (stride // 2) * n, galois_keys))
            stride //= 2
        return [acc]

    def decode(self, outputs):
        return outputs[0][: self.problem.n_points]


class CollapsedPointMajorKernel(StackedPointMajorKernel):
    """Stacked point-major plus a server-side collapse to one dense output.

    After the per-point accumulation leaves distance *i* at slot ``i * d``,
    the server masks each sparse distance and rotates it to slot ``i``,
    producing one densely packed output ciphertext — extra masking
    multiplies and rotations on the server buy minimal client decryption and
    communication (the client-optimized pick of §5.4).
    """

    name = "collapsed"

    def required_rotation_steps(self):
        steps = set(super().required_rotation_steps())
        d = self.problem.padded_dims
        occupied = min(self.points_per_ct, self.problem.n_points)
        for i in range(1, occupied):
            steps.add(i * d - i)
        for g in range(1, len(self._groups())):
            steps.add(-(g * self.points_per_ct))
        return {s for s in steps if s != 0}

    def _compute_direct(self, ctx, point_cts, query_cts, galois_keys=None):
        d = self.problem.padded_dims
        sparse = super()._compute_direct(ctx, point_cts, query_cts,
                                         galois_keys)
        collapsed = None
        for g, (block, (lo, hi)) in enumerate(zip(sparse, self._groups())):
            dense_block = None
            for i in range(hi - lo):
                mask = np.zeros(self.slots)
                mask[i * d] = 1.0
                encoded = ctx.encode(mask, base=block.level_base)
                picked = ctx.rescale(ctx.multiply_plain(block, encoded))
                if i * d - i:
                    picked = _rotate(ctx, picked, i * d - i, galois_keys)
                dense_block = picked if dense_block is None else ctx.add(dense_block, picked)
            if g:
                dense_block = _rotate(ctx, dense_block,
                                      -(g * self.points_per_ct), galois_keys)
            if collapsed is None:
                collapsed = dense_block
            else:
                collapsed, dense_block = ctx.align(collapsed, dense_block)
                collapsed = ctx.add(collapsed, dense_block)
        return [collapsed]

    def decode(self, outputs):
        return outputs[0][: self.problem.n_points]


class MultiQueryDimensionMajor(DimensionMajorKernel):
    """Dimension-major distances for *several* queries in one pass.

    The stored points stay packed once (single region per dimension); the
    server replicates each dimension ciphertext across query regions with
    ``log2(q)`` rotations, subtracts a multi-region query ciphertext, and
    squares — producing every (query, point) distance in ONE output
    ciphertext.  K-Means uses this to price all centroids per round with a
    single server pass.
    """

    name = "multi-query"

    def __init__(self, ctx, problem: DistanceProblem, max_queries: int):
        super().__init__(ctx, problem)
        if max_queries < 1:
            raise ValueError("need at least one query")
        self.max_queries = max_queries
        self.stride = problem.padded_points
        self._regions = _pow2(max_queries)
        if self.stride * self._regions > self.slots:
            raise ValueError(
                f"{max_queries} queries x stride {self.stride} exceed "
                f"{self.slots} slots"
            )

    def pack_queries(self, queries: np.ndarray) -> List[np.ndarray]:
        """(q, dims) query matrix -> one slot vector per dimension."""
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2 or queries.shape[1] != self.problem.dims:
            raise ValueError(f"bad query matrix shape {queries.shape}")
        if len(queries) > self.max_queries:
            raise ValueError(f"at most {self.max_queries} queries supported")
        out = []
        for k in range(self.problem.dims):
            v = np.zeros(self.slots)
            for j, query in enumerate(queries):
                start = j * self.stride
                v[start: start + self.problem.n_points] = query[k]
            out.append(v)
        return out

    def required_rotation_steps(self) -> Set[int]:
        steps = set()
        copies = 1
        while copies < self._regions:
            steps.add(-(self.stride * copies))
            copies *= 2
        return steps

    def _replicate_points(self, ctx, ct, galois_keys=None):
        copies = 1
        while copies < self._regions:
            ct = ctx.add(ct, _rotate(ctx, ct, -(self.stride * copies),
                                     galois_keys))
            copies *= 2
        return ct

    def _compute_direct(self, ctx, point_cts, query_cts, galois_keys=None):
        acc = None
        for p, q in zip(point_cts, query_cts):
            replicated = self._replicate_points(ctx, p, galois_keys)
            sq = self._squared_diff(ctx, replicated, q)
            acc = sq if acc is None else ctx.add(acc, sq)
        return [acc]

    def decode_matrix(self, outputs: List[np.ndarray],
                      n_queries: int) -> np.ndarray:
        """One decrypted output ciphertext -> (queries, points) distances."""
        block = np.asarray(outputs[0])
        rows = []
        for j in range(n_queries):
            start = j * self.stride
            rows.append(block[start: start + self.problem.n_points])
        return np.stack(rows)

    def reference_matrix(self, points: np.ndarray,
                         queries: np.ndarray) -> np.ndarray:
        return np.stack([
            np.sum((points - q) ** 2, axis=1) for q in np.asarray(queries)
        ])


KERNEL_VARIANTS: Dict[str, Type[DistanceKernel]] = {
    k.name: k
    for k in (
        PointMajorKernel,
        DimensionMajorKernel,
        StackedPointMajorKernel,
        StackedDimensionMajorKernel,
        CollapsedPointMajorKernel,
    )
}
