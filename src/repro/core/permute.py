"""Arbitrary encrypted permutation via masking (the Figure 4A baseline).

This is how Gazelle/HElib-style packed algorithms implement a windowed
rotation when the input was *not* packed redundantly: rotate the whole
ciphertext both ways, isolate the two pieces with plaintext 0/1 masking
multiplies, and add.  Each masking multiply costs a plaintext multiplication
(moderate noise growth, Table 1) — which is exactly what Table 4's
"Post-Permute" column charges against the noise budget and what rotational
redundancy eliminates.
"""

from __future__ import annotations

import numpy as np


def _rotate(ctx, ct, steps, galois_keys):
    rotate = getattr(ctx, "rotate_rows", None) or ctx.rotate
    return rotate(ct, steps, galois_keys)


def _encode_mask(ctx, mask: np.ndarray):
    if hasattr(ctx, "encoder") and hasattr(ctx.encoder, "modulus"):  # BFV
        return ctx.encode(mask.astype(np.int64))
    return ctx.encode(mask.astype(np.float64))


def windowed_rotation_masked(ctx, ct, rotation: int, offset: int, window: int,
                             galois_keys=None):
    """Rotate the *window*-slot sub-range at *offset* left by *rotation*.

    Uses the standard mask-and-combine permutation:

    1. rotate the whole ciphertext left by ``rotation`` and keep the
       ``window - rotation`` values that did not wrap (masking multiply);
    2. rotate the original right by ``window - rotation`` to position the
       wrapped values, keep them with a second masking multiply;
    3. add the two pieces.

    Cost: 2 rotations + 2 plaintext multiplies + 1 add, with the plaintext
    multiplies dominating noise consumption.
    """
    rotation %= window
    if rotation == 0:
        return ct.copy()
    slot_count = _slot_count(ctx)
    if offset + window > slot_count:
        raise ValueError("window exceeds the slot vector")

    keep = np.zeros(slot_count)
    keep[offset: offset + window - rotation] = 1
    wrap = np.zeros(slot_count)
    wrap[offset + window - rotation: offset + window] = 1

    shifted = _rotate(ctx, ct, rotation, galois_keys)
    part_keep = ctx.multiply_plain(shifted, _encode_mask(ctx, keep))
    wrapped = _rotate(ctx, ct, -(window - rotation), galois_keys)
    part_wrap = ctx.multiply_plain(wrapped, _encode_mask(ctx, wrap))
    return ctx.add(part_keep, part_wrap)


def required_rotation_steps(rotation: int, window: int):
    """The two global rotation amounts the masked implementation performs."""
    rotation %= window
    if rotation == 0:
        return ()
    return (rotation, -(window - rotation))


def _slot_count(ctx) -> int:
    n = ctx.params.poly_degree
    # BFV batching rotates within rows of N/2; CKKS has N/2 slots total.
    return n // 2
