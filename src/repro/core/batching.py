"""Batching algorithms vs packed algorithms (§2.1).

Two opposite ways to fill an HE ciphertext's SIMD slots:

* **Batching** (CryptoNets [22], nGraph-HE2 [6]) — one ciphertext per
  *activation element*, slots filled with that element from many inputs.
  Server arithmetic is direct SIMD (no rotations at all), throughput is
  excellent at full batches — but a single-image inference still pays for
  one ciphertext per activation, which is catastrophically inefficient
  ("highly inefficient for few inputs").

* **Packing** (Gazelle [36], LoLa [8], CHOCO) — one or more full inputs per
  ciphertext; needs rotations/permutations to align elements, optimizing
  latency.  CHOCO's rotational redundancy makes those alignments cheap.

This module provides the batched cost model so the tradeoff is measurable
against :class:`repro.apps.dnn.ClientAidedDnnPlan`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.hecore.params import EncryptionParameters, seal_default_parameters
from repro.nn.layers import ConvLayer, FcLayer, FireLayer, Network


@dataclass(frozen=True)
class BatchedLayerCosts:
    """One layer boundary under element-wise batching."""

    name: str
    input_elements: int      # ciphertexts uploaded at this boundary
    output_elements: int     # ciphertexts downloaded at this boundary


class BatchedDnnPlan:
    """CryptoNets-style batched client-aided inference cost model.

    Every activation element is its own ciphertext (slots span the batch),
    so per-boundary ciphertext counts equal activation-map sizes.  Costs are
    reported per batch and per image.
    """

    def __init__(self, network: Network, batch_size: Optional[int] = None,
                 params: Optional[EncryptionParameters] = None):
        # Batched systems use large default parameters (deep circuits, no
        # client refresh in the original; here client-aided for parity).
        self.params = params or seal_default_parameters(8192)
        self.network = network
        self.batch_size = batch_size or self.params.slot_count
        if self.batch_size > self.params.slot_count:
            raise ValueError(
                f"batch {self.batch_size} exceeds {self.params.slot_count} slots"
            )
        self.layers = self._build()

    def _build(self) -> List[BatchedLayerCosts]:
        out = []
        for layer, in_shape in self.network.linear_layers():
            in_elems = int(np.prod(in_shape))
            if isinstance(layer, FireLayer):
                _, h, w = in_shape
                out.append(BatchedLayerCosts("fire-squeeze", in_elems,
                                             layer.squeeze * h * w))
                out.append(BatchedLayerCosts(
                    "fire-expand", layer.squeeze * h * w,
                    (layer.expand1 + layer.expand3) * h * w))
                continue
            out_elems = int(np.prod(layer.output_shape(in_shape)))
            name = "conv" if isinstance(layer, ConvLayer) else "fc"
            out.append(BatchedLayerCosts(name, in_elems, out_elems))
        return out

    # ------------------------------------------------------------ totals
    @property
    def upload_ciphertexts(self) -> int:
        return sum(b.input_elements for b in self.layers)

    @property
    def download_ciphertexts(self) -> int:
        return sum(b.output_elements for b in self.layers)

    def communication_bytes_per_batch(self) -> int:
        ct = self.params.ciphertext_bytes()
        return (self.upload_ciphertexts + self.download_ciphertexts) * ct

    def communication_bytes_per_image(self) -> float:
        return self.communication_bytes_per_batch() / self.batch_size

    def client_crypto_ops_per_batch(self) -> Tuple[int, int]:
        """(encryptions, decryptions) per batch — one per ciphertext."""
        return self.upload_ciphertexts, self.download_ciphertexts

    def single_image_overhead_vs(self, packed_comm_bytes: int) -> float:
        """How much worse single-image batched communication is than a
        packed plan's (the §2.1 'inefficient for few inputs' factor)."""
        single = BatchedDnnPlan(self.network, batch_size=1, params=self.params)
        return single.communication_bytes_per_batch() / packed_comm_bytes


def crossover_batch_size(network: Network, packed_comm_bytes: int,
                         params: Optional[EncryptionParameters] = None) -> int:
    """Smallest batch at which batching's per-image communication beats the
    packed plan's single-image communication (∞ if never)."""
    plan = BatchedDnnPlan(network, params=params)
    per_batch = plan.communication_bytes_per_batch()
    needed = math.ceil(per_batch / packed_comm_bytes)
    if needed > plan.params.slot_count:
        return -1   # never: not enough slots to amortize
    return needed
