"""LoLa-style alternating dot-product representations (§5.1).

For *continuous* encrypted execution — no client in the loop — the output
packing of one matrix-vector product must directly feed the next.  LoLa [8]
achieves this by alternating between two formats so consecutive products
compose without any repacking or masking permutations:

* **dense**  — ``x_j`` at slot ``j``;
* **spread** — ``x_j`` at slot ``j * n`` (stride-``n`` interleaving).

A product consuming dense input emits spread output and vice versa; each
direction costs two plaintext multiplies (the weight mask, plus a 0/1
cleanup mask that zeroes the tree-accumulation's partial sums so the next
product's replication step starts clean) and ``2·log2(n)`` rotations.
CHOCO's fully offloaded PageRank variant is built on exactly this
alternation.

Requires ``n^2`` slots for an ``n``-vector (the throughput-vs-latency
tradeoff of packed algorithms, §2.1).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Set

import numpy as np

from repro.core.linalg import _encode_vector, _rotate, row_slot_count
from repro.hecore.params import SchemeType


def _pow2(n: int) -> int:
    return 1 << max(0, (n - 1)).bit_length()


class AlternatingMatVec:
    """Matrix-vector products that alternate dense and spread packings."""

    def __init__(self, ctx, matrix: np.ndarray):
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("alternating products need a square matrix")
        self.ctx = ctx
        self.matrix = matrix
        self.n = _pow2(matrix.shape[0])
        self._square = np.zeros((self.n, self.n), dtype=matrix.dtype)
        self._square[: matrix.shape[0], : matrix.shape[0]] = matrix
        self.slots = row_slot_count(ctx)
        if self.n * self.n > self.slots:
            raise ValueError(
                f"need {self.n ** 2} slots for n={self.n}, have {self.slots}"
            )

    # ------------------------------------------------------------- packing
    def pack_dense(self, vector: Sequence[float]) -> np.ndarray:
        out = np.zeros(self.slots)
        out[: len(vector)] = vector
        return out

    def unpack_dense(self, slots: np.ndarray) -> np.ndarray:
        return np.asarray(slots)[: self.matrix.shape[0]].copy()

    def unpack_spread(self, slots: np.ndarray) -> np.ndarray:
        idx = np.arange(self.matrix.shape[0]) * self.n
        return np.asarray(slots)[idx].copy()

    def required_rotation_steps(self) -> Set[int]:
        steps = set()
        p = 1
        while p < self.n:
            steps.update({p, -p, p * self.n, -(p * self.n)})
            p *= 2
        return steps

    # ----------------------------------------------------------- internals
    def _replicate(self, ct, stride: int, galois_keys=None):
        """Fill slots by doubling right-rotations: out[b + k*stride] = in[b]."""
        ctx = self.ctx
        p = 1
        while p < self.n:
            ct = ctx.add(ct, _rotate(ctx, ct, -(p * stride), galois_keys))
            p *= 2
        return ct

    def _accumulate(self, ct, stride: int, galois_keys=None):
        """Tree-sum left-rotations: out[b] = sum_k in[b + k*stride]."""
        ctx = self.ctx
        p = self.n // 2
        while p >= 1:
            ct = ctx.add(ct, _rotate(ctx, ct, p * stride, galois_keys))
            p //= 2
        return ct

    def _masked_multiply(self, ct, mask: np.ndarray):
        ctx = self.ctx
        product = ctx.multiply_plain(ct, _encode_vector(ctx, mask, ct))
        if ctx.params.scheme is SchemeType.CKKS:
            product = ctx.rescale(product)
        return product

    def _cleanup(self, ct, fmt: str):
        """Zero everything but the format's payload slots.

        Tree accumulation leaves partial sums in the non-target slots; the
        next product's replication would smear them into the payload, so
        each product ends with a 0/1 mask (one extra plaintext-multiply
        level — the latency price of continuous server-side execution).
        """
        mask = np.zeros(self.slots)
        if fmt == "dense":
            mask[: self.n] = 1.0
        else:
            mask[np.arange(self.n) * self.n] = 1.0
        return self._masked_multiply(ct, mask)

    # ------------------------------------------------------------ products
    def dense_to_spread(self, ct, galois_keys=None):
        """y = M x for dense-packed x; emits spread-packed y.

        Replicate the dense block across all n windows, multiply by the mask
        ``W[k*n + j] = M[k, j]``, and tree-sum within each window, leaving
        ``y_k`` at slot ``k * n``.
        """
        n = self.n
        replicated = self._replicate(ct, stride=n, galois_keys=galois_keys)
        mask = np.zeros(self.slots)
        for k in range(n):
            mask[k * n: k * n + n] = self._square[k]
        product = self._masked_multiply(replicated, mask)
        out = self._accumulate(product, stride=1, galois_keys=galois_keys)
        return self._cleanup(out, "spread")

    def spread_to_dense(self, ct, galois_keys=None):
        """y = M x for spread-packed x; emits dense-packed y.

        Fill each window with its spread value, multiply by the transposed
        mask ``W[k*n + i] = M[i, k]``, and tree-sum across windows, leaving
        ``y_i`` at slot ``i``.
        """
        n = self.n
        filled = self._replicate(ct, stride=1, galois_keys=galois_keys)
        mask = np.zeros(self.slots)
        for k in range(n):
            mask[k * n: k * n + n] = self._square[:, k]
        product = self._masked_multiply(filled, mask)
        out = self._accumulate(product, stride=n, galois_keys=galois_keys)
        return self._cleanup(out, "dense")

    def power_iteration(self, ct, iterations: int, galois_keys=None):
        """Apply M *iterations* times, alternating packings server-side.

        Returns ``(ciphertext, format)`` with format "dense" or "spread".
        """
        spread = False
        for _ in range(iterations):
            if spread:
                ct = self.spread_to_dense(ct, galois_keys)
            else:
                ct = self.dense_to_spread(ct, galois_keys)
            spread = not spread
        return ct, ("spread" if spread else "dense")

    def unpack(self, slots: np.ndarray, fmt: str) -> np.ndarray:
        if fmt == "dense":
            return self.unpack_dense(slots)
        if fmt == "spread":
            return self.unpack_spread(slots)
        raise ValueError(f"unknown format {fmt!r}")
