"""CHOCO's core contribution: client-optimized client-aided HE.

* :mod:`repro.core.packing` — rotational redundancy (Figure 4B).
* :mod:`repro.core.permute` — arbitrary-permutation baseline (Figure 4A).
* :mod:`repro.core.linalg` — encrypted convolution and matrix-vector products.
* :mod:`repro.core.tiling` — multi-ciphertext (tiled) convolution.
* :mod:`repro.core.distance` — the five distance-kernel packings (Figure 9).
* :mod:`repro.core.lola` — alternating dense/spread products (LoLa-style).
* :mod:`repro.core.compiler` — EVA-style CKKS program compilation (§3.2).
* :mod:`repro.core.protocol` — the client-aided runtime and cost ledger.
* :mod:`repro.core.paramsearch` — client-optimal HE parameter selection.
* :mod:`repro.core.batching` — batched (CryptoNets-style) cost models (§2.1).
"""

from repro.core.packing import (
    ChannelLayout,
    RedundantPacking,
    windowed_rotation_redundant,
)
from repro.core.permute import windowed_rotation_masked
from repro.core.protocol import ClientAidedSession, ClientCostModel, CostLedger

__all__ = [
    "ChannelLayout",
    "RedundantPacking",
    "windowed_rotation_redundant",
    "windowed_rotation_masked",
    "ClientAidedSession",
    "ClientCostModel",
    "CostLedger",
]
