"""Rotational redundancy: CHOCO's encrypted-permutation optimization (§3.3).

A *windowed rotation* rotates the elements of a sub-range of a vector,
wrapping within the sub-range.  The standard HE implementation (Figure 4A,
:mod:`repro.core.permute`) needs two full rotations, two masking multiplies
and an add — and each masking multiply burns roughly ``log2(t) + 6`` bits of
noise budget (Table 4).

Rotational redundancy (Figure 4B) instead packs each window with redundant
copies of its edge values on both sides *before encryption*.  Any windowed
rotation of magnitude up to the redundancy then becomes a **single** cheap
full-ciphertext rotation: the values that should wrap are already sitting in
the redundant margins.  The client, which unpacks and repacks ciphertexts at
every layer boundary anyway, simply discards everything outside the window
of interest.

The payoff is smaller noise growth → smaller HE parameters → smaller
ciphertexts → less client computation and communication (Tables 3 & 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


def _next_power_of_two(n: int) -> int:
    return 1 << max(0, (n - 1)).bit_length()


@dataclass(frozen=True)
class ChannelLayout:
    """Where redundantly packed channels live inside a slot vector.

    Each channel occupies ``span`` slots (a power of two, so channels stay
    aligned under rotation); the useful *window* starts ``redundancy`` slots
    into the span, flanked by redundant copies of the window's edges.
    """

    window: int          # useful values per channel
    redundancy: int      # maximum supported rotation magnitude
    span: int            # power-of-two slots allotted per channel
    count: int           # number of channels packed

    def __post_init__(self):
        if self.window < 1 or self.count < 1 or self.redundancy < 0:
            raise ValueError("invalid layout dimensions")
        if self.span & (self.span - 1):
            raise ValueError(f"span {self.span} must be a power of two")
        if self.window + 2 * self.redundancy > self.span:
            raise ValueError(
                f"window {self.window} + 2x redundancy {self.redundancy} "
                f"exceeds span {self.span}"
            )

    @property
    def total_slots(self) -> int:
        return self.span * self.count

    def window_offset(self, channel: int) -> int:
        """First slot of *channel*'s window of interest."""
        if not 0 <= channel < self.count:
            raise IndexError(f"channel {channel} out of range")
        return channel * self.span + self.redundancy

    @property
    def density(self) -> float:
        """Fraction of slots holding non-redundant payload (§3.3 tradeoff)."""
        return (self.window * self.count) / self.total_slots


class RedundantPacking:
    """Packs channel vectors with rotational redundancy into slot vectors."""

    def __init__(self, window: int, redundancy: int, count: int = 1,
                 slot_limit: int | None = None):
        span = _next_power_of_two(window + 2 * redundancy)
        self.layout = ChannelLayout(window=window, redundancy=redundancy,
                                    span=span, count=count)
        if slot_limit is not None and self.layout.total_slots > slot_limit:
            raise ValueError(
                f"layout needs {self.layout.total_slots} slots, "
                f"only {slot_limit} available"
            )

    def pack(self, channels: Sequence[np.ndarray]) -> np.ndarray:
        """Pack channel value vectors into one redundant slot vector.

        Channel *c*'s window values ``v`` are laid out as
        ``[v[-r:], v, v[:r]]`` inside the channel's power-of-two span, so a
        rotation by up to ``r`` in either direction stays correct.
        """
        layout = self.layout
        if len(channels) > layout.count:
            raise ValueError(f"expected <= {layout.count} channels, got {len(channels)}")
        out = np.zeros(layout.total_slots, dtype=np.asarray(channels[0]).dtype)
        r, w = layout.redundancy, layout.window
        for c, values in enumerate(channels):
            values = np.asarray(values)
            if len(values) != w:
                raise ValueError(f"channel {c} has {len(values)} values, window is {w}")
            start = c * layout.span
            if r:
                out[start: start + r] = values[-r:]
                out[start + r + w: start + r + w + r] = values[:r]
            out[start + r: start + r + w] = values
        return out

    def unpack(self, slots: np.ndarray, rotation: int = 0) -> List[np.ndarray]:
        """Read every channel's window of interest, discarding redundancy.

        *rotation* is the net windowed rotation the ciphertext has undergone
        (positive = left); redundancy guarantees windows are still intact for
        ``|rotation| <= redundancy``.
        """
        layout = self.layout
        if abs(rotation) > layout.redundancy:
            raise ValueError(
                f"rotation {rotation} exceeds redundancy {layout.redundancy}"
            )
        slots = np.asarray(slots)
        out = []
        for c in range(layout.count):
            start = layout.window_offset(c)
            out.append(slots[start: start + layout.window].copy())
        return out

    def expected_after_rotation(self, channels: Sequence[np.ndarray],
                                rotation: int) -> List[np.ndarray]:
        """Plaintext oracle: each window rotated left by *rotation*."""
        return [np.roll(np.asarray(v), -rotation) for v in channels]


def windowed_rotation_redundant(ctx, ct, rotation: int, layout: ChannelLayout,
                                galois_keys=None):
    """Windowed rotation via rotational redundancy: ONE ciphertext rotation.

    Contrast with :func:`repro.core.permute.windowed_rotation_masked`, which
    needs two rotations, two masking multiplies and an add.  Works for BFV
    (``rotate_rows``) and CKKS (``rotate``) contexts alike.
    """
    if abs(rotation) > layout.redundancy:
        raise ValueError(f"rotation {rotation} exceeds redundancy {layout.redundancy}")
    rotate = getattr(ctx, "rotate_rows", None) or ctx.rotate
    return rotate(ct, rotation, galois_keys)
