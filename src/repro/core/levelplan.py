"""Level-aware parameter planner: per-segment modulus-chain tuning.

The paper's client-optimized thesis is to never pay for more crypto than a
computation step needs.  This pass family applies that idea to the modulus
chain of a traced ciphertext program (Cheetah-style per-layer parameter
tuning, see PAPERS.md): every residue limb kept alive past its usefulness
taxes *every* downstream NTT row, key-switch decompose, and serialized
byte, so the planner drops limbs the moment no consumer needs their noise
headroom.

Two cooperating analyses over the IR DAG:

1. **Noise-driven level planning** (BFV) — a reverse walk prices the
   noise budget every node's downstream consumers will spend (the static
   :class:`repro.hecore.noise.NoiseEstimator` transitions); a forward walk
   then inserts the cheapest legal ``mod_switch`` frontier eagerly: at each
   drop site, trailing limbs whose headroom exceeds the remaining spend
   (plus slack) are switched away.  CKKS uses the level/scale analog:
   limbs beyond the downstream rescale depth drop via the scale-preserving
   ``drop_modulus`` as long as the coefficient magnitude still fits.
2. **Per-segment parameter selection** — ``recrypt_boundary`` nodes split
   the program into client-refresh segments.  Each downstream segment is
   re-planned onto a trimmed entry chain: the noise spend bound meets a
   :mod:`repro.core.paramsearch` workload-profile bound (the same model
   that sizes whole parameter sets), and the matching
   :class:`~repro.core.paramsearch.ParameterChoice` — plus, optionally, an
   :mod:`repro.accel.dse` operating point for the trimmed residue count —
   is recorded in the plan for telemetry.

The planner preserves decrypted values exactly: BFV mod-switch moves noise,
not plaintext, and CKKS ``drop_modulus`` removes CRT residues without
touching the scale.  Binary operands are re-aligned with explicit switches
so every emitted program is level-monotone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import paramsearch
from repro.core.ir import IrNode, IrProgram
from repro.hecore.noise import (
    MOD_SWITCH_GUARD_BITS,
    NoiseEstimator,
    SAFETY_BITS,
)
from repro.hecore.params import SchemeType

#: Node kinds after which an eager limb drop is considered.  Chosen to sit
#: at coefficient-form reduction points (span outputs, ct-ct multiplies,
#: fresh entries) so the NTT-residency pass keeps its plain-multiply chains.
DROP_SITE_KINDS = frozenset({
    "input", "encrypt", "recrypt_boundary",
    "rotate_sum", "weighted_sum",
})

#: CKKS coefficient-magnitude guard: live bits kept above the scale stack.
CKKS_VALUE_GUARD_BITS = 20


@dataclass
class PlannerOptions:
    """Tuning knobs for :func:`plan_levels`."""

    enabled: bool = True
    #: Margin kept above the modeled downstream spend before a drop.
    slack_bits: float = SAFETY_BITS + 1.0
    #: Hard cap on planned drops (None = unlimited).
    max_drops: Optional[int] = None
    #: Trim post-``recrypt_boundary`` entry chains via paramsearch.
    replan_segments: bool = True
    #: Also pick an accelerator operating point per segment (accel.dse).
    use_dse: bool = False
    #: ``True`` when program outputs go straight to the client (drop them
    #: to the decryptability floor — maximal wire savings).  Kernel
    #: schedules set ``False``: their outputs may feed further caller-side
    #: compute, so each output keeps a one-layer continuation reserve
    #: (one plain multiply + rotation + accumulation of headroom).
    terminal_outputs: bool = True


@dataclass
class SegmentPlan:
    """One client-refresh segment's re-planned entry parameters."""

    index: int
    full_limbs: int
    entry_limbs: int
    spend_bits: float               # modeled noise the segment consumes
    #: ``ParameterChoice.describe()`` for the segment's workload profile
    #: (what a from-scratch selection would pick), when computable.
    choice: Optional[str] = None
    #: ``accel.dse`` operating point at the trimmed residue count.
    operating_point: Optional[str] = None


@dataclass
class LevelPlan:
    """What the planner did — wired into ScheduleReport and CostLedger."""

    limb_drops: int = 0             # eager drops inserted at drop sites
    align_switches: int = 0         # switches inserted to level-match operands
    replans: int = 0                # segments entered below the full chain
    segments: List[SegmentPlan] = field(default_factory=list)
    limb_rows_before: int = 0       # static limbs-live integral, planner off
    limb_rows_after: int = 0        # same integral over the planned program
    predicted_unsafe: int = 0       # outputs the noise model flags as unsafe

    def describe(self) -> str:
        saved = self.limb_rows_before - self.limb_rows_after
        return (f"{self.limb_drops} limb drop(s), "
                f"{self.align_switches} align switch(es), "
                f"{self.replans} segment replan(s), "
                f"{saved} limb-row(s) saved")


def _op_cost(node: IrNode, nodes: List[IrNode], t_bits: float,
             log_n: float) -> float:
    """Modeled noise bits *node* charges the value flowing into it."""
    kind = node.kind
    if kind == "rotate":
        return 2.0
    if kind in ("add", "sub"):
        if any(nodes[a].kind == "const" for a in node.args):
            return 0.5
        return 1.0
    if kind == "mul":
        if any(nodes[a].kind == "const" for a in node.args):
            return t_bits + log_n / 2
        return t_bits + log_n + 8
    if kind == "rotate_sum":
        rounds = max(1, math.ceil(math.log2(max(node.width, 2))))
        return 2.0 + math.log2(rounds + 1) + rounds
    if kind == "weighted_sum":
        count = max(1, len(node.terms))
        return (2.0 + math.log2(count + 1) + t_bits + log_n / 2
                + math.ceil(math.log2(count + 1)))
    return 0.0      # neg, rescale, mod_switch, boundaries


def _downstream_spend(program: IrProgram, t_bits: float, log_n: float,
                      output_reserve: float = 0.0) -> Dict[int, float]:
    """Noise bits every node's live consumers will still spend on it.

    Crypto boundaries cut the propagation: a value feeding only a
    ``decrypt``/``recrypt_boundary`` just has to stay decryptable.
    *output_reserve* seeds each program output with headroom for unmodeled
    caller-side compute (non-terminal kernel outputs).
    """
    nodes = program.nodes
    live = program.live_set()
    consumers = program.consumers(live)
    outputs = set(program.outputs.values())
    spend = {nid: 0.0 for nid in live}
    for nid in sorted(live, reverse=True):      # emission order = topological
        best = output_reserve if nid in outputs else 0.0
        for c in consumers.get(nid, ()):
            node = nodes[c]
            if node.kind in ("decrypt", "recrypt_boundary"):
                continue
            best = max(best, _op_cost(node, nodes, t_bits, log_n) + spend[c])
        spend[nid] = best
    return spend


def _downstream_rescales(program: IrProgram,
                         output_reserve: int = 0) -> Dict[int, int]:
    """CKKS analog of the spend walk: rescale depth still ahead of a node."""
    nodes = program.nodes
    live = program.live_set()
    consumers = program.consumers(live)
    outputs = set(program.outputs.values())
    depth = {nid: 0 for nid in live}
    for nid in sorted(live, reverse=True):
        best = output_reserve if nid in outputs else 0
        for c in consumers.get(nid, ()):
            node = nodes[c]
            if node.kind in ("decrypt", "recrypt_boundary"):
                continue
            best = max(best, depth[c] + (1 if node.kind == "rescale" else 0))
        depth[nid] = best
    return depth


def _segment_ids(program: IrProgram) -> Dict[int, int]:
    """Client-refresh segment index per node (recrypt boundaries +1)."""
    seg: Dict[int, int] = {}
    for nid, node in enumerate(program.nodes):
        deps = list(node.args) + [c for _, c in node.terms]
        base = max((seg[a] for a in deps), default=0)
        seg[nid] = base + (1 if node.kind == "recrypt_boundary" else 0)
    return seg


def _segment_profile(program: IrProgram, seg: Dict[int, int], index: int,
                     t_bits: int, slots: int) -> paramsearch.WorkloadProfile:
    """A paramsearch workload profile summarizing one segment's op mix."""
    nodes = program.nodes
    live = program.live_set()
    rotations = 0
    fan_in = 1
    plain_depth: Dict[int, int] = {}
    ct_depth: Dict[int, int] = {}
    for nid in sorted(live):
        if seg.get(nid) != index:
            continue
        node = nodes[nid]
        deps = [a for a in node.args if nodes[a].kind != "const"]
        p = max((plain_depth.get(a, 0) for a in deps), default=0)
        c = max((ct_depth.get(a, 0) for a in deps), default=0)
        if node.kind == "rotate":
            rotations += 1
        elif node.kind == "rotate_sum":
            rotations += max(1, math.ceil(math.log2(max(node.width, 2))))
            fan_in = max(fan_in, node.width)
        elif node.kind == "weighted_sum":
            rotations += len(node.terms)
            fan_in = max(fan_in, len(node.terms))
            p += 1
        elif node.kind == "mul":
            if any(nodes[a].kind == "const" for a in node.args):
                p += 1
            else:
                c += 1
        plain_depth[nid] = p
        ct_depth[nid] = c
    return paramsearch.WorkloadProfile(
        value_bits=max(2, t_bits // 2),
        fan_in=max(fan_in, 1),
        rotations=rotations,
        plain_mult_depth=max(1, max(plain_depth.values(), default=1)),
        ct_mult_depth=max(ct_depth.values(), default=0),
        min_slots=max(1, slots),
    )


def _dse_operating_point(poly_degree: int, residues: int) -> Optional[str]:
    """A small accel.dse sweep at the segment's trimmed residue count."""
    from repro.accel import dse

    grid = {
        "prng_lanes": (2, 4),
        "ntt_pes": (4, 8),
        "intt_pes": (4,),
        "dyadic_pes": (4,),
        "add_pes": (2,),
        "modswitch_pes": (2,),
        "encode_pes": (2,),
    }
    try:
        points = dse.explore_design_space(grid, poly_degree=poly_degree,
                                          residues=max(1, residues))
        best = dse.select_operating_point(points)
    except ValueError:
        return None
    return (f"ntt={best.config.ntt_pes} prng={best.config.prng_lanes} "
            f"{1e3 * best.time_s:.2f}ms {1e3 * best.power_w:.0f}mW")


class _Planner:
    """Single forward rebuild of the program with eager drop frontiers."""

    def __init__(self, program: IrProgram, params, options: PlannerOptions):
        self.src = program
        self.params = params
        self.options = options
        self.scheme = params.scheme
        self.bfv = params.scheme is SchemeType.BFV
        self.limb_bits = [int(p).bit_length()
                          for p in params.data_base.moduli]
        self.full = len(self.limb_bits)
        self.plan = LevelPlan()
        self.out = IrProgram(slots=program.slots)
        if self.bfv:
            self.estimator = NoiseEstimator(params)
            self.t_bits = float(self.estimator.t_bits)
            self.log_n = self.estimator.log_n
        else:
            self.estimator = None
            self.t_bits = 0.0
            self.log_n = math.log2(params.poly_degree)
            self.scale_bits = max(1.0, math.log2(max(2.0, params.scale)))
        # Non-terminal outputs keep headroom for one unmodeled caller-side
        # layer: a plain multiply, a rotation, and an accumulation.
        reserve = 0.0 if options.terminal_outputs else (
            self.t_bits + self.log_n / 2 + 10.0)
        self.spend = _downstream_spend(program, self.t_bits, self.log_n,
                                       output_reserve=reserve)
        self.rescales = ({} if self.bfv else _downstream_rescales(
            program, output_reserve=0 if options.terminal_outputs else 1))
        self.seg = _segment_ids(program)
        self.live_set = program.live_set()
        consumers = program.consumers(self.live_set)
        outputs = set(program.outputs.values())
        # Values about to cross a boundary or leave the program: dropping
        # there shrinks the download even when no compute follows.  When
        # outputs are non-terminal they are not free drop triggers.
        self.pre_boundary = {
            a for nid in self.live_set
            for a in program.nodes[nid].args
            if program.nodes[nid].kind in ("decrypt", "recrypt_boundary")
        }
        if options.terminal_outputs:
            self.pre_boundary |= outputs
        self.consumers = consumers

    # ------------------------------------------------------------ plumbing
    def _emit(self, node: IrNode) -> int:
        self.out.nodes.append(node)
        return len(self.out.nodes) - 1

    def _bits(self, live: int) -> float:
        return float(sum(self.limb_bits[:live]))

    # ------------------------------------------------------------ dropping
    def _drop_chain(self, new_id: int, live: int, target: int) -> Tuple[int, int]:
        """Switch *new_id* down to *target* live limbs; returns (id, live).

        ``width`` carries the expected pre-drop live count so the executor
        can skip the drop if the runtime value entered at another level.
        """
        while live > target:
            new_id = self._emit(IrNode("mod_switch", (new_id,), width=live,
                                       planned=True))
            live -= 1
        return new_id, live

    def _droppable(self, nid: int, live: int, floor_bits: float) -> int:
        """Largest legal drop target (live limbs) for node *nid*."""
        target = live
        bits = self._bits(live)
        while target > 1:
            if (self.options.max_drops is not None
                    and self.plan.limb_drops + (live - target) + 1
                    > self.options.max_drops):
                break
            after = bits - self.limb_bits[target - 1]
            if after < floor_bits:
                break
            if self.bfv:
                ceiling = (after - self.t_bits - self.log_n
                           - MOD_SWITCH_GUARD_BITS)
                if ceiling < self.spend[nid] + self.options.slack_bits:
                    break
            else:
                if target - 1 < 1 + self.rescales.get(nid, 0):
                    break
                need = (self.sexp[nid] * self.scale_bits
                        + CKKS_VALUE_GUARD_BITS)
                if after < need:
                    break
            bits = after
            target -= 1
        return target

    def _entry_floor_bits(self, nid: int) -> float:
        """Paramsearch bound on a recrypt segment's entry chain (bits)."""
        if not (self.bfv and self.options.replan_segments):
            return 0.0
        index = self.seg[nid]
        profile = _segment_profile(self.src, self.seg, index,
                                   int(self.t_bits), self.src.slots)
        floor = (2 * self.t_bits + paramsearch.FRESH_NOISE_BITS
                 + paramsearch.SAFETY_MARGIN_BITS
                 + paramsearch.noise_cost_bits(profile, int(self.t_bits),
                                               self.params.poly_degree))
        try:
            choice = paramsearch.select_parameters(profile).describe()
        except ValueError:
            choice = None
        seg_plan = SegmentPlan(index=index, full_limbs=self.full,
                               entry_limbs=self.full,
                               spend_bits=round(self.spend[nid], 2),
                               choice=choice)
        self.plan.segments.append(seg_plan)
        return float(floor)

    # ------------------------------------------------------------- rebuild
    def run(self) -> Tuple[IrProgram, LevelPlan]:
        src = self.src
        nodes = src.nodes
        if not self.bfv:
            self.sexp = self._scale_exponents()
        new_id: Dict[int, int] = {}
        live: Dict[int, int] = {}
        for nid, node in enumerate(nodes):
            if nid not in self.live_set:
                continue        # live_set is dependency-closed over outputs
            if node.kind == "const":
                new_id[nid] = self._emit(IrNode("const", values=node.values))
                live[nid] = self.full
                continue
            args, arg_live = self._aligned_args(node, new_id, live)
            terms = tuple((s, new_id[c]) for s, c in node.terms)
            nid2 = self._emit(IrNode(node.kind, args, node.steps, node.width,
                                     node.values, node.name, terms,
                                     node.normalize, node.planned))
            lv = self._result_live(node, arg_live)
            if node.kind not in ("mod_switch", "decrypt"):
                self.plan.limb_rows_before += self.full
            seg_plan = None
            if node.kind == "recrypt_boundary":
                floor_bits = self._entry_floor_bits(nid)
                seg_plan = self.plan.segments[-1] if self.plan.segments \
                    else None
            else:
                floor_bits = 0.0
            if (node.kind in DROP_SITE_KINDS or nid in self.pre_boundary):
                target = self._droppable(nid, lv, floor_bits)
                if target < lv:
                    before = lv
                    nid2, lv = self._drop_chain(nid2, lv, target)
                    self.plan.limb_drops += before - lv
            if seg_plan is not None:
                seg_plan.entry_limbs = lv
                if lv < self.full:
                    self.plan.replans += 1
                    if self.options.use_dse:
                        seg_plan.operating_point = _dse_operating_point(
                            self.params.poly_degree, lv)
            new_id[nid] = nid2
            live[nid] = lv
        for name, nid in src.outputs.items():
            self.out.outputs[name] = new_id[nid]
        self.plan.limb_rows_after = self._rows_after()
        return self.out, self.plan

    def _rows_after(self) -> int:
        """Static limbs-live integral of the planned program."""
        out = self.out
        live_nodes = out.live_set()
        lv = {}
        total = 0
        for nid, node in enumerate(out.nodes):
            if node.kind == "const":
                lv[nid] = self.full
                continue
            deps = [a for a in node.args if out.nodes[a].kind != "const"]
            base = min((lv[a] for a in deps), default=self.full)
            if node.kind in ("input", "encrypt", "recrypt_boundary"):
                base = self.full
            elif node.kind == "mod_switch":
                base -= 1
            elif node.kind == "rescale" and self.scheme is SchemeType.CKKS:
                base -= 1
            lv[nid] = max(1, base)
            # mod_switch rows are bookkeeping (no NTT/key-switch work):
            # count only the limbs real compute nodes touch, so the
            # before/after delta reflects saved kernel work.
            if nid in live_nodes and node.kind not in ("decrypt",
                                                       "mod_switch"):
                total += lv[nid]
        return total

    def _scale_exponents(self) -> Dict[int, int]:
        """CKKS per-node scale-exponent forward walk."""
        sexp: Dict[int, int] = {}
        nodes = self.src.nodes
        for nid, node in enumerate(nodes):
            if node.kind == "const":
                sexp[nid] = 0
                continue
            deps = [a for a in node.args if nodes[a].kind != "const"]
            base = max((sexp[a] for a in deps), default=1)
            if node.kind == "mul":
                if any(nodes[a].kind == "const" for a in node.args):
                    base += 1
                elif len(deps) == 2:
                    base = sexp[deps[0]] + sexp[deps[1]]
            elif node.kind == "rescale":
                base = max(1, base - 1)
            elif node.kind in ("input", "encrypt", "recrypt_boundary"):
                base = 1
            sexp[nid] = base
        return sexp

    def _result_live(self, node: IrNode, arg_live: List[int]) -> int:
        if node.kind in ("input", "encrypt", "recrypt_boundary"):
            return self.full
        base = min(arg_live, default=self.full)
        if node.kind == "mod_switch":
            return max(1, base - 1)
        if node.kind == "rescale" and self.scheme is SchemeType.CKKS:
            return max(1, base - 1)
        return base

    def _aligned_args(self, node: IrNode, new_id: Dict[int, int],
                      live: Dict[int, int]) -> Tuple[Tuple[int, ...],
                                                     List[int]]:
        """Map args, level-matching binary ciphertext operands."""
        nodes = self.src.nodes
        ct_args = [a for a in node.args if nodes[a].kind != "const"]
        target = min((live[a] for a in ct_args), default=self.full)
        args: List[int] = []
        arg_live: List[int] = []
        for a in node.args:
            if nodes[a].kind == "const":
                args.append(new_id[a])
                continue
            mapped, lv = new_id[a], live[a]
            if (node.kind in ("add", "sub", "mul") and len(ct_args) == 2
                    and lv > target):
                mapped, lv = self._drop_chain(mapped, lv, target)
                self.plan.align_switches += live[a] - target
            args.append(mapped)
            arg_live.append(lv)
        return tuple(args), arg_live


def plan_levels(program: IrProgram, params,
                options: Optional[PlannerOptions] = None
                ) -> Tuple[IrProgram, LevelPlan]:
    """Run the level planner; returns the rewritten program and its plan.

    A no-op (original program, empty plan) when the chain has a single
    limb or the options disable the planner.
    """
    options = options or PlannerOptions()
    if not options.enabled or len(params.data_base.moduli) < 2:
        return program, LevelPlan()
    planner = _Planner(program, params, options)
    out, plan = planner.run()
    if planner.estimator is not None:
        for est in planner.estimator.budget_after(out).values():
            if est is not None and not est.is_safe():
                plan.predicted_unsafe += 1
    return out, plan
