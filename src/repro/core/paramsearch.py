"""Client-optimal HE parameter selection (§3.2, §5.6).

Given a workload profile — value quantization, accumulation fan-in, and the
encrypted-operation schedule between client refreshes — this module selects
the *smallest* parameter set (and therefore the smallest ciphertext) that
still finishes the segment with noise budget to spare.  This is the paper's
client-first inversion of the usual server-first parameter choice, and the
machinery behind Figure 13's communication-vs-schedule sweep.

The noise model is empirical, matching Table 4's structure (and this
repository's measured budgets, see ``benchmarks/bench_table4_noise.py``):

* initial budget ≈ ``log2(q_data) − 2·log2(t) − 7``
* a rotation costs ~2 bits;
* a masked permutation costs ``log2(t) + 6`` bits (two masking multiplies);
* a plaintext-multiply level costs ``log2(t) + log2(N)/2`` bits;
* a ciphertext-multiply level costs ``log2(t) + log2(N) + 8`` bits.

Rotational redundancy's payoff appears here directly: it zeroes the
``masked_permutations`` term, which shrinks ``q`` — often by an entire RNS
residue (§3.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.hecore.params import (
    MAX_COEFF_MODULUS_BITS_128,
    SchemeType,
)

#: Empirical noise costs, bits (see module docstring).
FRESH_NOISE_BITS = 7
ROTATION_COST_BITS = 2
MASKED_PERMUTE_EXTRA_BITS = 6
SAFETY_MARGIN_BITS = 4

#: Largest logical bits per RNS residue (SEAL word size).
MAX_RESIDUE_BITS = 60

#: Logical key-prime width used when sizing a parameter set.
KEY_PRIME_BITS = 60

POLY_DEGREES = (2048, 4096, 8192, 16384, 32768)


@dataclass(frozen=True)
class WorkloadProfile:
    """What one encrypted segment (between client refreshes) must support."""

    value_bits: int                 # quantized input magnitude, bits
    fan_in: int                     # longest encrypted accumulation
    rotations: int = 0              # plain rotations per segment
    masked_permutations: int = 0    # arbitrary permutations (0 under CHOCO)
    plain_mult_depth: int = 1       # plaintext-multiply levels
    ct_mult_depth: int = 0          # ciphertext-multiply levels
    min_slots: int = 1              # packing requirement

    def with_rotational_redundancy(self) -> "WorkloadProfile":
        """The same workload after the §3.3 optimization: no masked permutes,
        one extra plain rotation per former permutation."""
        return replace(
            self,
            masked_permutations=0,
            rotations=self.rotations + self.masked_permutations,
        )


@dataclass(frozen=True)
class ParameterChoice:
    """A selected parameter point (the logical view the paper reports)."""

    scheme: SchemeType
    poly_degree: int
    plain_bits: Optional[int]       # BFV t; None for CKKS
    data_bits: int                  # log2 of the data coefficient modulus
    data_residues: int              # k - 1
    residue_bits: Tuple[int, ...]   # logical {k} including the key prime

    @property
    def residue_count(self) -> int:
        return self.data_residues + 1

    @property
    def total_bits(self) -> int:
        return sum(self.residue_bits)

    @property
    def ciphertext_bytes(self) -> int:
        return 2 * self.data_residues * self.poly_degree * 8

    def describe(self) -> str:
        t = f"t=2^{self.plain_bits}" if self.plain_bits else "t=N/A"
        return (f"{self.scheme.value.upper()} N={self.poly_degree} "
                f"{{k}}={list(self.residue_bits)} {t} "
                f"-> {self.ciphertext_bytes} B")


def required_plain_bits(profile: WorkloadProfile) -> int:
    """Smallest BFV log2(t) holding the segment's widest accumulation.

    A product of two *value_bits* operands needs ``2v`` bits, accumulating
    *fan_in* of them adds ``log2(fan_in)``, and every further multiply level
    — plaintext or ciphertext — compounds another *value_bits*-wide
    fixed-point scale (BFV has no rescaling, so scales stack; this is why
    deep PageRank segments favor CKKS, §5.6).
    """
    return ((1 + max(1, profile.plain_mult_depth)) * profile.value_bits
            + math.ceil(math.log2(max(profile.fan_in, 1)))
            + profile.ct_mult_depth * profile.value_bits)


def noise_cost_bits(profile: WorkloadProfile, plain_bits: int, poly_degree: int) -> int:
    """Noise budget (bits) the segment consumes after fresh encryption."""
    log_n = math.log2(poly_degree)
    # Rotations within one linear operation apply to (copies of) the same
    # fresh input and are then summed, so their key-switch noise combines
    # additively: a few bits of sequential depth plus log2(count) for the
    # accumulation — not a per-rotation charge.
    rot = profile.rotations
    cost = ROTATION_COST_BITS * min(rot, 4) + math.ceil(math.log2(rot + 1))
    cost += profile.masked_permutations * (plain_bits + MASKED_PERMUTE_EXTRA_BITS)
    cost += profile.plain_mult_depth * (plain_bits + log_n / 2)
    cost += profile.ct_mult_depth * (plain_bits + log_n + 8)
    return math.ceil(cost)


def required_data_bits(profile: WorkloadProfile, poly_degree: int,
                       scheme: SchemeType = SchemeType.BFV) -> Tuple[int, Optional[int]]:
    """(log2 q_data, log2 t) needed for the segment at this N."""
    if scheme is SchemeType.CKKS:
        # CKKS: a base prime covers value + scale; each multiplicative level
        # consumes one ~scale-sized rescale prime.
        scale_bits = profile.value_bits + 14
        levels = profile.plain_mult_depth + profile.ct_mult_depth
        data = (scale_bits + profile.value_bits + 10) + levels * scale_bits
        return data, None
    t_bits = required_plain_bits(profile)
    data = (2 * t_bits + FRESH_NOISE_BITS + SAFETY_MARGIN_BITS
            + noise_cost_bits(profile, t_bits, poly_degree))
    return data, t_bits


def _split_residues(data_bits: int) -> Tuple[int, ...]:
    count = max(1, math.ceil(data_bits / MAX_RESIDUE_BITS))
    base = data_bits // count
    rem = data_bits - base * count
    return tuple(base + 1 if i < rem else base for i in range(count))


def select_parameters(profile: WorkloadProfile,
                      scheme: SchemeType = SchemeType.BFV) -> ParameterChoice:
    """Smallest-ciphertext parameter point satisfying *profile* (§3.2)."""
    best: Optional[ParameterChoice] = None
    for n in POLY_DEGREES:
        if n < 2 * profile.min_slots:   # slots: N for BFV rows, N/2 rotating
            continue
        data_bits, t_bits = required_data_bits(profile, n, scheme)
        limit = MAX_COEFF_MODULUS_BITS_128[n]
        if data_bits + KEY_PRIME_BITS > limit:
            continue
        if scheme is SchemeType.BFV and t_bits is not None and t_bits >= n.bit_length() + 24:
            # plaintext modulus must stay well below the residue word size
            if t_bits > 40:
                continue
        residues = _split_residues(data_bits)
        choice = ParameterChoice(
            scheme=scheme,
            poly_degree=n,
            plain_bits=t_bits,
            data_bits=data_bits,
            data_residues=len(residues),
            residue_bits=residues + (KEY_PRIME_BITS,),
        )
        if best is None or choice.ciphertext_bytes < best.ciphertext_bytes:
            best = choice
    if best is None:
        raise ValueError("no 128-bit-secure parameter set satisfies this workload")
    return best


def residue_savings_from_redundancy(profile: WorkloadProfile,
                                    scheme: SchemeType = SchemeType.BFV):
    """Compare parameter choices with and without rotational redundancy.

    Returns (baseline_choice, choco_choice); §3.3 reports that eliminating
    masked permutations saves an entire RNS residue for the DNN workloads.
    """
    choco = select_parameters(profile.with_rotational_redundancy(), scheme)
    baseline = select_parameters(profile, scheme)
    return baseline, choco
