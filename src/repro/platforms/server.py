"""Offload-server cost model: SEAL-class HE throughput on a Xeon (§5.2).

Server results in the paper come from an Intel Xeon at 2.50 GHz.  Per-
operation times follow Table 1's complexities with constants in the range
SEAL exhibits on server-class x86; they are used for the server-time
component of Figure 11 and for sanity bounds (server costs are
"consistently high", §2.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Calibration constants: seconds per (N log2 N x residues) unit, set so that
# N=8192, k=2 yields roughly SEAL-on-Xeon magnitudes:
#   add ~ 0.05 ms, plain multiply ~ 0.5 ms, rotate ~ 2 ms, ct multiply ~ 6 ms.
_UNIT = 8192 * math.log2(8192) * 2
_ADD_CONST = 0.05e-3 / (8192 * 2)
_PLAIN_MULT_CONST = 0.5e-3 / _UNIT
_ROTATE_CONST = 2.0e-3 / (_UNIT * 2)
_CT_MULT_CONST = 6.0e-3 / (_UNIT * 2)
_ENC_CONST = 1.5e-3 / _UNIT
_DEC_CONST = 0.8e-3 / _UNIT


@dataclass(frozen=True)
class XeonServer:
    """Per-HE-operation server times at (N, data residues r)."""

    clock_hz: float = 2.5e9

    def _nlogn_r(self, poly_degree: int, residues: int) -> float:
        return poly_degree * math.log2(poly_degree) * residues

    def add_time(self, poly_degree: int, residues: int) -> float:
        return _ADD_CONST * poly_degree * residues

    def plain_multiply_time(self, poly_degree: int, residues: int) -> float:
        return _PLAIN_MULT_CONST * self._nlogn_r(poly_degree, residues)

    def rotate_time(self, poly_degree: int, residues: int) -> float:
        # Table 1: rotation is O(N log N x r^2) (key switching).
        return _ROTATE_CONST * self._nlogn_r(poly_degree, residues) * residues

    def ct_multiply_time(self, poly_degree: int, residues: int) -> float:
        return _CT_MULT_CONST * self._nlogn_r(poly_degree, residues) * residues

    def encrypt_time(self, poly_degree: int, residues: int) -> float:
        return _ENC_CONST * self._nlogn_r(poly_degree, residues)

    def decrypt_time(self, poly_degree: int, residues: int) -> float:
        return _DEC_CONST * self._nlogn_r(poly_degree, residues)

    def time_for_counts(self, counts, poly_degree: int, residues: int) -> float:
        """Total server seconds for a Counter of HE operations."""
        table = {
            "add": self.add_time,
            "add_plain": self.add_time,
            "multiply_plain": self.plain_multiply_time,
            "rotate": self.rotate_time,
            "multiply": self.ct_multiply_time,
            "relinearize": self.rotate_time,
            "rescale": self.add_time,
            "encrypt": self.encrypt_time,
            "decrypt": self.decrypt_time,
        }
        total = 0.0
        for op, n in counts.items():
            fn = table.get(op)
            if fn is not None:
                total += n * fn(poly_degree, residues)
        return total
