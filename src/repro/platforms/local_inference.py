"""Local (non-offloaded) inference cost model: TFLite on the IMX6 (§5.2).

The paper's lower-bound baseline runs quantized TFLite inference on the
client's Cortex-A7.  We model it as a sustained MAC rate.  The rate below is
calibrated so that the Figure 12/14 relationships hold in shape: tiny
networks (LeNet-Sm) favor local compute, large networks (VGG16) favor
CHOCO-TACO offload, with the crossover near SqueezeNet — the workload-
dependence result of §5.8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.client_device import IMX6_ACTIVE_POWER_W

#: Sustained quantized-MAC throughput of TFLite on a 528 MHz Cortex-A7 with
#: NEON.  (~0.66 MACs/cycle; quantized TFLite kernels reach this range.)
TFLITE_MACS_PER_SECOND = 0.35e9

#: Fixed per-inference overhead (interpreter dispatch, im2col, requantize).
TFLITE_OVERHEAD_S = 0.5e-3


@dataclass(frozen=True)
class TfLiteLocalInference:
    """MAC-rate model of on-device quantized DNN inference."""

    macs_per_second: float = TFLITE_MACS_PER_SECOND
    overhead_s: float = TFLITE_OVERHEAD_S
    active_power_w: float = IMX6_ACTIVE_POWER_W

    def inference_time(self, macs: float) -> float:
        """Seconds for one single-image inference of a *macs*-sized network."""
        return self.overhead_s + macs / self.macs_per_second

    def inference_energy(self, macs: float) -> float:
        """Client joules for one local inference."""
        return self.inference_time(macs) * self.active_power_w
