"""Software HE cost model for the paper's client device (§5.2).

The paper's client baseline is an NXP IMX6 evaluation kit: ARM Cortex-A7 at
528 MHz, 32/128 kB L1/L2, running SEAL.  Active power is 269.5 mW (NXP
application note AN5345, running Dhrystone).

Anchor points published in the paper calibrate the model:

* §4.4/§4.5 — CHOCO-TACO encrypts in 0.66 ms at (N=8192, k=3) and is 417×
  faster than the software baseline  ⇒  software encryption ≈ 275.2 ms.
* §4.6 — decryption takes 0.65 ms in hardware, a 125× speedup
  ⇒  software decryption ≈ 81.25 ms.
* §4.7 — CKKS software encode+encrypt is 310 ms, decode+decrypt 37 ms.

Scaling follows Table 1's complexities: encryption and decryption are
``O(N log N × r)`` with ``r`` the residue count — the full base ``k`` for
encryption (the key prime participates before mod switching) and the data
base ``k − 1`` for decryption.  Figure 8's observation that "software scales
up with both N and k" is this model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Active-power characterization from NXP AN5345 (Dhrystone), in watts.
IMX6_ACTIVE_POWER_W = 0.2695

#: Client CPU clock, Hz.
IMX6_CLOCK_HZ = 528e6

#: Published anchor: software BFV encryption time at (N=8192, k=3), seconds.
SW_ENC_TIME_ANCHOR_S = 417 * 0.66e-3       # = 275.2 ms

#: Published anchor: software BFV decryption time at (N=8192, k=3), seconds.
SW_DEC_TIME_ANCHOR_S = 125 * 0.65e-3       # = 81.25 ms

#: Published anchors for CKKS at parameter set C (N=8192), seconds (§4.7).
SW_CKKS_ENC_ENCODE_S = 0.310
SW_CKKS_DEC_DECODE_S = 0.037

_ANCHOR_N = 8192
_ANCHOR_K = 3

#: Usable client memory for HE contexts/keys; the paper's IMX6 cannot hold
#: the (32768, 16) parameter set (§4.5, Figure 8 omits its baseline bars).
CLIENT_MEMORY_LIMIT_BYTES = 512 * 1024 * 1024

#: Rough memory model: Galois/relin key material dominates at large (N, k).
_KEYSET_GALOIS_COUNT = 16


def _nlogn(n: int) -> float:
    return n * math.log2(n)


@dataclass(frozen=True)
class Imx6SoftwareClient:
    """Per-operation software HE costs on the IMX6 client."""

    active_power_w: float = IMX6_ACTIVE_POWER_W

    # ----------------------------------------------------------------- BFV
    def encrypt_time(self, poly_degree: int, residues: int) -> float:
        """Seconds for one software BFV encryption at (N, k)."""
        scale = (_nlogn(poly_degree) * residues) / (_nlogn(_ANCHOR_N) * _ANCHOR_K)
        return SW_ENC_TIME_ANCHOR_S * scale

    def decrypt_time(self, poly_degree: int, residues: int) -> float:
        """Seconds for one software BFV decryption at (N, k)."""
        data_residues = max(1, residues - 1)
        anchor_data = _ANCHOR_K - 1
        scale = (_nlogn(poly_degree) * data_residues) / (_nlogn(_ANCHOR_N) * anchor_data)
        return SW_DEC_TIME_ANCHOR_S * scale

    # ---------------------------------------------------------------- CKKS
    def ckks_encrypt_time(self, poly_degree: int, residues: int) -> float:
        """Seconds for software CKKS encode+encrypt (anchored at set C)."""
        scale = (_nlogn(poly_degree) * residues) / (_nlogn(_ANCHOR_N) * 3)
        return SW_CKKS_ENC_ENCODE_S * scale

    def ckks_decrypt_time(self, poly_degree: int, residues: int) -> float:
        """Seconds for software CKKS decrypt+decode (anchored at set C)."""
        data_residues = max(1, residues - 1)
        scale = (_nlogn(poly_degree) * data_residues) / (_nlogn(_ANCHOR_N) * 2)
        return SW_CKKS_DEC_DECODE_S * scale

    # --------------------------------------------------------------- shared
    def energy(self, seconds: float) -> float:
        """Joules consumed by *seconds* of active client computation."""
        return seconds * self.active_power_w

    def plain_compute_time(self, operations: float) -> float:
        """Seconds for client-side plaintext work (activations, packing).

        Modeled at one simple op per cycle; these costs are <1% of client
        time (Figure 2), so precision here is immaterial.
        """
        return operations / IMX6_CLOCK_HZ

    def keyset_memory_bytes(self, poly_degree: int, residues: int) -> int:
        """Rough context+keys memory footprint at (N, k)."""
        per_key = residues * residues * 2 * poly_degree * 8
        return _KEYSET_GALOIS_COUNT * per_key

    def can_hold_parameters(self, poly_degree: int, residues: int) -> bool:
        """Whether the client has memory for this parameter set (§4.5)."""
        return self.keyset_memory_bytes(poly_degree, residues) <= CLIENT_MEMORY_LIMIT_BYTES
