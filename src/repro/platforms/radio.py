"""Radio link model: 10 mW Bluetooth at 22 Mbps (§5.7).

The paper's end-to-end reference implementation communicates ciphertexts
over a low-power, low-data-rate channel; communication time and energy
follow analytically from byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BluetoothLink:
    """A half-duplex client radio."""

    rate_bits_per_s: float = 22e6
    power_w: float = 0.010
    round_trip_s: float = 0.015     # connection-interval latency per exchange

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds to move *num_bytes* in either direction."""
        return 8.0 * num_bytes / self.rate_bits_per_s

    def transfer_energy(self, num_bytes: float) -> float:
        """Client joules to move *num_bytes*."""
        return self.transfer_time(num_bytes) * self.power_w

    def session_time(self, num_bytes: float, rounds: int = 0) -> float:
        """Bytes on the wire plus per-round connection latency."""
        return self.transfer_time(num_bytes) + rounds * self.round_trip_s


@dataclass(frozen=True)
class WiFiLink(BluetoothLink):
    """A faster, hungrier alternative for sensitivity studies."""

    rate_bits_per_s: float = 100e6
    power_w: float = 0.400
