"""Platform cost models: client device, server, radio, local inference.

These reproduce the paper's §5.2 methodology: client costs are computed by
counting encryption/decryption operations and multiplying by per-operation
platform costs; communication costs follow analytically from ciphertext
sizes and the radio model.
"""

from repro.platforms.client_device import Imx6SoftwareClient
from repro.platforms.local_inference import TfLiteLocalInference
from repro.platforms.radio import BluetoothLink
from repro.platforms.server import XeonServer

__all__ = [
    "Imx6SoftwareClient",
    "TfLiteLocalInference",
    "BluetoothLink",
    "XeonServer",
]
