"""Garbled-circuit cost model for the hybrid HE-MPC baselines.

Gazelle/MiniONN/Delphi-class protocols evaluate non-linear layers with
Yao-style garbled circuits: every ReLU on a ``b``-bit share costs a
comparison circuit of ~``b`` AND gates, each shipping two 128-bit wire
labels under half-gates, plus oblivious-transfer traffic for the input
labels.  Communication is therefore dominated by

    activations x bits x (2 x 16 B per AND gate)  (+ OT, + HE ciphertexts)

This model lets Figure 10's baseline magnitudes be *derived* instead of
only cited; ``tests/test_mpc_model.py`` cross-checks the derivations
against the published totals carried in
:mod:`repro.baselines.protocols`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.layers import Network

#: Wire-label size (128-bit labels), bytes.
LABEL_BYTES = 16

#: Ciphertext material per AND gate under half-gates: two labels.
BYTES_PER_AND_GATE = 2 * LABEL_BYTES

#: AND gates per b-bit ReLU (comparison + mux over arithmetic shares;
#: implementations land at ~2 gates per bit once share conversion counts).
GATES_PER_RELU_BIT = 2.0

#: OT traffic per input bit (IKNP-style OT extension), bytes.
OT_BYTES_PER_BIT = 32


@dataclass(frozen=True)
class GarbledCircuitModel:
    """Per-inference GC communication for a network's non-linear layers."""

    share_bits: int = 16            # arithmetic-share width in GC land

    def relu_bytes(self, count: int = 1) -> float:
        """GC bytes to evaluate *count* ReLUs."""
        gates = GATES_PER_RELU_BIT * self.share_bits * count
        ot = OT_BYTES_PER_BIT * self.share_bits * count
        return gates * BYTES_PER_AND_GATE + ot

    def network_activation_count(self, network: Network) -> int:
        return network.activation_op_count()

    def network_gc_bytes(self, network: Network) -> float:
        """GC communication for one inference over *network*."""
        return self.relu_bytes(self.network_activation_count(network))

    def hybrid_total_bytes(self, network: Network,
                           he_bytes_per_boundary: float,
                           boundaries: int) -> float:
        """GC activations plus HE ciphertexts at the linear-layer boundaries
        (the Gazelle/MiniONN structure)."""
        return (self.network_gc_bytes(network)
                + boundaries * he_bytes_per_boundary)


def derived_gazelle_class_comm_mb(network: Network,
                                  share_bits: int = 16) -> float:
    """First-principles estimate of a Gazelle-class protocol's per-inference
    communication for *network*, in MB."""
    model = GarbledCircuitModel(share_bits=share_bits)
    # Gazelle moves two ~0.5 MB ciphertext batches per linear layer at its
    # default parameters (N=4096-8192 with large q).
    linear_layers = len(network.linear_layers())
    return model.hybrid_total_bytes(
        network, he_bytes_per_boundary=2 * 0.5e6, boundaries=linear_layers
    ) / 1e6


def choco_hybrid_mpc_comm_mb(network: Network, share_bits: int = 16) -> float:
    """§3.1's model-privacy variant: CHOCO's HE linear layers plus garbled
    circuits for the activations (so the server's model stays hidden from
    the client too).

    CHOCO's parameter minimization still shrinks the HE share, so the hybrid
    sits between plain CHOCO and Gazelle — "CHOCO's HE algorithm
    optimizations and hardware support also provide client benefits in
    HE-MPC protocols".
    """
    from repro.apps.dnn import ClientAidedDnnPlan

    plan = ClientAidedDnnPlan(network)
    gc = GarbledCircuitModel(share_bits=share_bits)
    return (plan.communication_bytes() + gc.network_gc_bytes(network)) / 1e6


def derived_delphi_class_comm_mb(network: Network,
                                 share_bits: int = 32) -> float:
    """Delphi-class protocols move GC material for *every* activation during
    preprocessing at wider shares, plus Beaver-triple traffic per MAC-heavy
    layer — an order of magnitude above Gazelle online."""
    model = GarbledCircuitModel(share_bits=share_bits)
    gc = model.network_gc_bytes(network)
    # Preprocessing replication and triple traffic: ~10x the online GC.
    return (gc * 10) / 1e6
