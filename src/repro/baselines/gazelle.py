"""The server-optimized software baseline (Figures 2 & 12).

The paper's characterization prototype uses Gazelle's server-optimized HE
algorithms with SEAL's default parameters: no rotational redundancy (so
windowed rotations are arbitrary masked permutations, whose noise forces
the default, larger coefficient modulus) and therefore bigger, slower
client encryptions and decryptions.  §5.5 reports that CHOCO's software
optimizations alone (rotational redundancy + minimized parameters) buy an
average 1.7× over this baseline before any hardware acceleration.
"""

from __future__ import annotations

from repro.apps.dnn import ClientAidedDnnPlan
from repro.hecore.params import EncryptionParameters, seal_default_parameters
from repro.nn.layers import Network

#: SEAL default the baseline prototype runs with (N=8192, five residues).
BASELINE_POLY_DEGREE = 8192


def baseline_parameters(plain_bits: int = 20) -> EncryptionParameters:
    """SEAL's default 128-bit parameter set at N=8192 (k=5)."""
    return seal_default_parameters(BASELINE_POLY_DEGREE, plain_bits=plain_bits)


def server_optimized_plan(network: Network) -> ClientAidedDnnPlan:
    """The network's client-aided plan under baseline (Gazelle/SEAL-default)
    parameters: same round structure, larger ciphertexts, slower client ops.

    The masked permutations the baseline performs are server-side; their
    client-visible cost is exactly the larger parameter selection this plan
    carries (more residues, bigger N-independent per-op time).
    """
    return ClientAidedDnnPlan(network, params=baseline_parameters())
