"""Prior-work comparison points.

* :mod:`repro.baselines.protocols` — communication totals of the
  privacy-preserving DNN protocols Figure 10 compares against.
* :mod:`repro.baselines.gazelle` — the server-optimized client-aided
  software baseline (Gazelle-style algorithms, SEAL default parameters)
  used by Figures 2 and 12.
"""

from repro.baselines.gazelle import server_optimized_plan
from repro.baselines.protocols import (
    PRIOR_PROTOCOLS,
    PriorProtocol,
    communication_improvements,
)

__all__ = [
    "PriorProtocol",
    "PRIOR_PROTOCOLS",
    "communication_improvements",
    "server_optimized_plan",
]
