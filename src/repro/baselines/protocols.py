"""Communication costs of prior privacy-preserving DNN protocols (Fig. 10).

Single-image inference communication (offline preprocessing + online), as
reported in the respective publications for MNIST-class and CIFAR-10-class
networks.  CHOCO's improvements in the paper range from 14× (vs. LoLa's
complete-HE offload on MNIST) to 2948× (vs. an MPC-heavy protocol on
CIFAR-10), with ~90× against the most comparable protocol, Gazelle, on
CIFAR-10.

These are *published baseline values*, not measurements of this repository
— the same way the paper itself uses them.  Each entry carries a note with
its provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class PriorProtocol:
    """One comparison protocol and its per-inference communication."""

    name: str
    technology: str           # "HE", "MPC", or "HE-MPC"
    dataset: str              # "MNIST" or "CIFAR-10"
    comm_mb: float            # offline + online, single image
    note: str


PRIOR_PROTOCOLS: List[PriorProtocol] = [
    # ---------------------------------------------------------------- MNIST
    PriorProtocol(
        "CryptoNets", "HE", "MNIST", 595.5,
        "Complete-HE batched inference [22]; ciphertexts sized for batch "
        "throughput dominate (value as tabulated in the Gazelle comparison)."),
    PriorProtocol(
        "LoLa", "HE", "MNIST", 36.4,
        "Complete-HE latency-optimized inference [8]; large N keeps input "
        "ciphertexts in the tens of MB.  CHOCO's smallest margin (~14x)."),
    PriorProtocol(
        "MiniONN", "HE-MPC", "MNIST", 657.5,
        "Client-aided with garbled-circuit activations [41]; GC tables "
        "dominate communication."),
    PriorProtocol(
        "Gazelle", "HE-MPC", "MNIST", 70.0,
        "The most closely comparable client-aided HE protocol [36]."),
    PriorProtocol(
        "nGraph-HE2", "HE", "MNIST", 336.0,
        "Batched complete-HE framework [6]; per-image share of a batch's "
        "multi-GB ciphertext traffic."),
    # -------------------------------------------------------------- CIFAR-10
    PriorProtocol(
        "Gazelle", "HE-MPC", "CIFAR-10", 1236.0,
        "Gazelle's CIFAR network [36]: ~1.2 GB per inference; CHOCO's "
        "SqueezeNet is ~90x less."),
    PriorProtocol(
        "MiniONN", "HE-MPC", "CIFAR-10", 9272.0,
        "MiniONN's CIFAR network [41]: 9.27 GB per inference."),
    PriorProtocol(
        "XONN", "MPC", "CIFAR-10", 2599.0,
        "XNOR-based GC inference [60]; binarized but GC-heavy."),
    PriorProtocol(
        "Delphi", "HE-MPC", "CIFAR-10", 40690.0,
        "Delphi-class preprocessing-heavy hybrid [47]: tens of GB of "
        "offline triples/GC material.  CHOCO's largest margin (~2948x)."),
]


def protocols_for(dataset: str) -> List[PriorProtocol]:
    return [p for p in PRIOR_PROTOCOLS if p.dataset == dataset]


def communication_improvements(choco_comm_mb: float,
                               dataset: str) -> Dict[str, float]:
    """CHOCO's communication-reduction factor vs. every prior protocol."""
    if choco_comm_mb <= 0:
        raise ValueError("CHOCO communication must be positive")
    return {p.name: p.comm_mb / choco_comm_mb for p in protocols_for(dataset)}
