"""A functional Gazelle-style convolution (the server-optimized baseline).

Gazelle [36] packs inputs *without* rotational redundancy — channels occupy
tight power-of-two spans with no margins — so aligning a filter tap is an
arbitrary windowed permutation: two full rotations plus two masking
multiplies per tap (Figure 4A).  The computation is correct but burns
roughly ``log2(t)`` bits of noise budget per tap instead of ~2, which is
why this baseline needs SEAL's larger default parameters (§5.5's "standard
permutations and default parameter selections").

Implemented for single-channel-group convolutions; used by the ablation
benchmarks to measure the *real* noise gap between the two algorithms on an
identical layer.
"""

from __future__ import annotations

from typing import Set

import numpy as np

from repro.core.linalg import Conv2dSpec, _encode_vector, _rotate, row_slot_count
from repro.core.permute import required_rotation_steps, windowed_rotation_masked


def _pow2(n: int) -> int:
    return 1 << max(0, (n - 1)).bit_length()


class GazelleStyleConv2d:
    """Encrypted convolution via masked permutations (no redundancy).

    Single input channel, multiple output channels in one ciphertext; the
    window is the tight ``pow2(H*W)`` span.  Each tap's alignment uses the
    Figure 4A masked windowed rotation.
    """

    def __init__(self, ctx, spec: Conv2dSpec, weights: np.ndarray):
        if spec.in_channels != 1:
            raise ValueError("the baseline demo covers one input channel")
        weights = np.asarray(weights)
        if weights.shape != (spec.out_channels, 1,
                             spec.kernel_size, spec.kernel_size):
            raise ValueError(f"bad weight shape {weights.shape}")
        self.ctx = ctx
        self.spec = spec
        self.weights = weights
        self.window = spec.height * spec.width
        self.span = _pow2(self.window)       # NO redundancy margins
        row = row_slot_count(ctx)
        if spec.out_channels * self.span > row:
            raise ValueError("layer does not fit one rotating row")

    def pack_input(self, image: np.ndarray) -> np.ndarray:
        row = row_slot_count(self.ctx)
        out = np.zeros(row)
        out[: self.window] = image[0].ravel()
        return out

    def required_rotation_steps(self) -> Set[int]:
        steps = set()
        for dy, dx in self.spec.taps:
            delta = self.spec.tap_offset(dy, dx) % self.window
            steps.update(required_rotation_steps(delta, self.window))
        # Output-channel placement rotations.
        for o in range(1, self.spec.out_channels):
            steps.add(-(o * self.span))
        return {s for s in steps if s}

    def __call__(self, ct, galois_keys=None):
        """Evaluate; every tap alignment is an arbitrary masked permutation."""
        ctx = self.ctx
        spec = self.spec
        acc = None
        for o in range(spec.out_channels):
            channel_acc = None
            for dy, dx in spec.taps:
                w = self.weights[o, 0, dy + spec.pad, dx + spec.pad]
                if not w:
                    continue
                delta = spec.tap_offset(dy, dx) % self.window
                aligned = windowed_rotation_masked(
                    ctx, ct, delta, 0, self.window, galois_keys)
                mask = np.zeros(row_slot_count(ctx))
                mask[: self.window] = w
                term = ctx.multiply_plain(
                    aligned, _encode_vector(ctx, mask, aligned))
                channel_acc = term if channel_acc is None else ctx.add(channel_acc, term)
            if channel_acc is None:
                continue
            if o:
                channel_acc = _rotate(ctx, channel_acc, -(o * self.span),
                                      galois_keys)
            acc = channel_acc if acc is None else ctx.add(acc, channel_acc)
        if acc is None:
            raise ValueError("convolution has no non-zero weights")
        return acc

    def unpack_outputs(self, slots: np.ndarray) -> np.ndarray:
        spec = self.spec
        p = spec.pad
        out = np.zeros((spec.out_channels, spec.out_height, spec.out_width),
                       dtype=np.asarray(slots).dtype)
        for o in range(spec.out_channels):
            grid = np.asarray(
                slots[o * self.span: o * self.span + self.window]
            ).reshape(spec.height, spec.width)
            out[o] = grid[p: spec.height - p, p: spec.width - p]
        return out

    def reference(self, image: np.ndarray) -> np.ndarray:
        from repro.core.linalg import EncryptedConv2d

        return EncryptedConv2d.reference(self, image)
