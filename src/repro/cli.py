"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``params``
    Print Table 3's parameter selections and the SEAL defaults.
``networks``
    Print the Table 5 model zoo with measured plan costs.
``accelerator``
    Evaluate the CHOCO-TACO operating point; ``--dse`` runs the full sweep.
``advisor --network NAME``
    The §5.8 offload-vs-local energy analysis for one network.
``demo``
    A tiny end-to-end encrypted inference (real HE).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_params(_args) -> int:
    from repro.hecore.params import (
        PARAMETER_SET_A,
        PARAMETER_SET_B,
        PARAMETER_SET_C,
        seal_default_parameters,
    )

    print("CHOCO parameter selections (Table 3):")
    for p in (PARAMETER_SET_A, PARAMETER_SET_B, PARAMETER_SET_C):
        print(f"  {p.describe()}")
    default = seal_default_parameters(8192)
    print("\nSEAL default baseline:")
    print(f"  {default.describe()}")
    ratio = default.ciphertext_bytes() / PARAMETER_SET_A.ciphertext_bytes()
    print(f"\nCHOCO ciphertexts are {ratio:.0f}/2 the default size at N=8192.")
    return 0


def _cmd_networks(_args) -> int:
    from repro.apps.dnn import ClientAidedDnnPlan
    from repro.nn.models import NETWORK_BUILDERS, TABLE5_REFERENCE

    print(f"{'network':8s} {'MACs(M)':>9s} {'params':>7s} {'comm MB':>8s} "
          f"{'pub MB':>7s} {'enc':>4s} {'dec':>4s}")
    for name, build in NETWORK_BUILDERS.items():
        net = build()
        plan = ClientAidedDnnPlan(net)
        print(f"{name:8s} {net.total_macs() / 1e6:9.2f} "
              f"{plan.params.label:>7s} "
              f"{plan.communication_bytes() / 1e6:8.2f} "
              f"{TABLE5_REFERENCE[name]['comm_mb']:7.2f} "
              f"{plan.encrypt_ops:4d} {plan.decrypt_ops:4d}")
    return 0


def _cmd_accelerator(args) -> int:
    from repro.accel.design import AcceleratorModel, CHOCO_TACO_CONFIG

    model = AcceleratorModel(CHOCO_TACO_CONFIG, args.n, args.k)
    enc, dec = model.encrypt_cost(), model.decrypt_cost()
    print(f"CHOCO-TACO at (N={args.n}, k={args.k}):")
    print(f"  encrypt: {enc.time_s * 1e3:7.3f} ms   {enc.energy_j * 1e6:8.1f} uJ")
    print(f"  decrypt: {dec.time_s * 1e3:7.3f} ms   {dec.energy_j * 1e6:8.1f} uJ")
    print(f"  area {model.area_mm2:.1f} mm^2, average power "
          f"{model.average_power_w * 1e3:.0f} mW")
    if args.dse:
        from repro.accel.dse import explore_design_space, select_operating_point

        print("\nsweeping 32,000 configurations ...")
        points = explore_design_space(poly_degree=args.n, residues=args.k)
        sel = select_operating_point(points)
        print(f"operating point: {sel.config.as_dict()}")
        print(f"  {sel.time_s * 1e3:.3f} ms | {sel.energy_j * 1e3:.4f} mJ | "
              f"{sel.area_mm2:.1f} mm^2 | {sel.power_w * 1e3:.0f} mW")
    return 0


def _cmd_advisor(args) -> int:
    from repro.apps.advisor import WorkloadAdvisor
    from repro.nn.models import NETWORK_BUILDERS

    build = NETWORK_BUILDERS.get(args.network)
    if build is None:
        print(f"unknown network {args.network!r}; choose from "
              f"{sorted(NETWORK_BUILDERS)}", file=sys.stderr)
        return 2
    advisor = WorkloadAdvisor()
    print(advisor.render(advisor.analyze(build())))
    return 0


def _cmd_report(_args) -> int:
    """Regenerate every table/figure via the benchmark harness."""
    import pathlib

    import pytest

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    bench_dir = repo_root / "benchmarks"
    if not bench_dir.is_dir():
        print("benchmarks/ not found next to the package; run from a source "
              "checkout", file=sys.stderr)
        return 2
    code = pytest.main([str(bench_dir), "--benchmark-only", "-q"])
    if code == 0:
        print(f"\nreports written under {bench_dir / 'results'}")
    return int(code)


def _cmd_demo(_args) -> int:
    import numpy as np

    from repro.core.packing import RedundantPacking, windowed_rotation_redundant
    from repro.hecore.bfv import BfvContext
    from repro.hecore.params import SchemeType, small_test_parameters

    params = small_test_parameters(SchemeType.BFV, poly_degree=1024,
                                   plain_bits=16, data_bits=(30, 30))
    ctx = BfvContext(params, seed=0)
    ctx.make_galois_keys([2])
    packing = RedundantPacking(window=8, redundancy=2, count=1)
    values = np.arange(1, 9)
    ct = ctx.encrypt(packing.pack([values]).astype(np.int64))
    print(f"encrypted {[int(v) for v in values]} "
          f"(noise budget {ctx.noise_budget(ct)} bits)")
    ct = windowed_rotation_redundant(ctx, ct, 2, packing.layout)
    out = packing.unpack(ctx.decrypt(ct), rotation=2)[0]
    print(f"windowed rotation by 2 via rotational redundancy -> "
          f"{[int(v) for v in out]} (budget {ctx.noise_budget(ct)} bits)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHOCO / CHOCO-TACO (ASPLOS 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("params", help="Table 3 parameter selections")
    sub.add_parser("networks", help="Table 5 model zoo and plan costs")
    acc = sub.add_parser("accelerator", help="CHOCO-TACO cost model")
    acc.add_argument("--n", type=int, default=8192, help="polynomial degree")
    acc.add_argument("--k", type=int, default=3, help="RNS residue count")
    acc.add_argument("--dse", action="store_true",
                     help="run the full design-space sweep")
    adv = sub.add_parser("advisor", help="offload-vs-local energy advice (§5.8)")
    adv.add_argument("--network", required=True,
                     help="LeNetSm | LeNetLg | SqzNet | VGG16")
    sub.add_parser("demo", help="tiny end-to-end encrypted demo")
    sub.add_parser("report", help="regenerate every table/figure "
                                  "(runs the benchmark harness)")
    return parser


_HANDLERS = {
    "params": _cmd_params,
    "networks": _cmd_networks,
    "accelerator": _cmd_accelerator,
    "advisor": _cmd_advisor,
    "demo": _cmd_demo,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)
