"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``params``
    Print Table 3's parameter selections and the SEAL defaults.
``networks``
    Print the Table 5 model zoo with measured plan costs.
``accelerator``
    Evaluate the CHOCO-TACO operating point; ``--dse`` runs the full sweep.
``advisor --network NAME``
    The §5.8 offload-vs-local energy analysis for one network.
``demo``
    A tiny end-to-end encrypted inference (real HE).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_params(_args) -> int:
    from repro.hecore.params import (
        PARAMETER_SET_A,
        PARAMETER_SET_B,
        PARAMETER_SET_C,
        seal_default_parameters,
    )

    print("CHOCO parameter selections (Table 3):")
    for p in (PARAMETER_SET_A, PARAMETER_SET_B, PARAMETER_SET_C):
        print(f"  {p.describe()}")
    default = seal_default_parameters(8192)
    print("\nSEAL default baseline:")
    print(f"  {default.describe()}")
    ratio = default.ciphertext_bytes() / PARAMETER_SET_A.ciphertext_bytes()
    print(f"\nCHOCO ciphertexts are {ratio:.0f}/2 the default size at N=8192.")
    return 0


def _cmd_networks(_args) -> int:
    from repro.apps.dnn import ClientAidedDnnPlan
    from repro.nn.models import NETWORK_BUILDERS, TABLE5_REFERENCE

    print(f"{'network':8s} {'MACs(M)':>9s} {'params':>7s} {'comm MB':>8s} "
          f"{'pub MB':>7s} {'enc':>4s} {'dec':>4s}")
    for name, build in NETWORK_BUILDERS.items():
        net = build()
        plan = ClientAidedDnnPlan(net)
        print(f"{name:8s} {net.total_macs() / 1e6:9.2f} "
              f"{plan.params.label:>7s} "
              f"{plan.communication_bytes() / 1e6:8.2f} "
              f"{TABLE5_REFERENCE[name]['comm_mb']:7.2f} "
              f"{plan.encrypt_ops:4d} {plan.decrypt_ops:4d}")
    return 0


def _cmd_accelerator(args) -> int:
    from repro.accel.design import AcceleratorModel, CHOCO_TACO_CONFIG

    model = AcceleratorModel(CHOCO_TACO_CONFIG, args.n, args.k)
    enc, dec = model.encrypt_cost(), model.decrypt_cost()
    print(f"CHOCO-TACO at (N={args.n}, k={args.k}):")
    print(f"  encrypt: {enc.time_s * 1e3:7.3f} ms   {enc.energy_j * 1e6:8.1f} uJ")
    print(f"  decrypt: {dec.time_s * 1e3:7.3f} ms   {dec.energy_j * 1e6:8.1f} uJ")
    print(f"  area {model.area_mm2:.1f} mm^2, average power "
          f"{model.average_power_w * 1e3:.0f} mW")
    if args.dse:
        from repro.accel.dse import explore_design_space, select_operating_point

        print("\nsweeping 32,000 configurations ...")
        points = explore_design_space(poly_degree=args.n, residues=args.k)
        sel = select_operating_point(points)
        print(f"operating point: {sel.config.as_dict()}")
        print(f"  {sel.time_s * 1e3:.3f} ms | {sel.energy_j * 1e3:.4f} mJ | "
              f"{sel.area_mm2:.1f} mm^2 | {sel.power_w * 1e3:.0f} mW")
    return 0


def _cmd_advisor(args) -> int:
    from repro.apps.advisor import WorkloadAdvisor
    from repro.nn.models import NETWORK_BUILDERS

    build = NETWORK_BUILDERS.get(args.network)
    if build is None:
        print(f"unknown network {args.network!r}; choose from "
              f"{sorted(NETWORK_BUILDERS)}", file=sys.stderr)
        return 2
    advisor = WorkloadAdvisor()
    print(advisor.render(advisor.analyze(build())))
    return 0


def _cmd_report(_args) -> int:
    """Regenerate every table/figure via the benchmark harness."""
    import pathlib

    import pytest

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    bench_dir = repo_root / "benchmarks"
    if not bench_dir.is_dir():
        print("benchmarks/ not found next to the package; run from a source "
              "checkout", file=sys.stderr)
        return 2
    code = pytest.main([str(bench_dir), "--benchmark-only", "-q"])
    if code == 0:
        print(f"\nreports written under {bench_dir / 'results'}")
    return int(code)


def _cmd_demo(_args) -> int:
    import numpy as np

    from repro.core.packing import RedundantPacking, windowed_rotation_redundant
    from repro.hecore.bfv import BfvContext
    from repro.hecore.params import SchemeType, small_test_parameters

    params = small_test_parameters(SchemeType.BFV, poly_degree=1024,
                                   plain_bits=16, data_bits=(30, 30))
    ctx = BfvContext(params, seed=0)
    ctx.make_galois_keys([2])
    packing = RedundantPacking(window=8, redundancy=2, count=1)
    values = np.arange(1, 9)
    # Encode explicitly so the encode cost is charged once, on the plaintext
    # path, instead of hiding inside encrypt (keeps breakdown benches honest).
    pt = ctx.encode(packing.pack([values]).astype(np.int64))
    ct = ctx.encrypt(pt)
    print(f"encrypted {[int(v) for v in values]} "
          f"(noise budget {ctx.noise_budget(ct)} bits)")
    ct = windowed_rotation_redundant(ctx, ct, 2, packing.layout)
    out = packing.unpack(ctx.decrypt(ct), rotation=2)[0]
    print(f"windowed rotation by 2 via rotational redundancy -> "
          f"{[int(v) for v in out]} (budget {ctx.noise_budget(ct)} bits)")
    return 0


_PARAM_PRESETS = ("test-bfv", "test-ckks", "A", "B", "C")


def _resolve_params(preset: str):
    """One shared preset table for ``serve`` and ``offload``.

    Parameter generation is deterministic, so the same preset name yields
    bit-identical moduli in separate processes — the handshake fingerprint
    matches across a real client/server split.
    """
    from repro.hecore.params import (
        PARAMETER_SET_A,
        PARAMETER_SET_B,
        PARAMETER_SET_C,
        SchemeType,
        small_test_parameters,
    )

    if preset == "test-bfv":
        return small_test_parameters(SchemeType.BFV, poly_degree=1024,
                                     plain_bits=16, data_bits=(30, 30, 30))
    if preset == "test-ckks":
        return small_test_parameters(SchemeType.CKKS, poly_degree=1024,
                                     data_bits=(30, 24, 24))
    named = {"A": PARAMETER_SET_A, "B": PARAMETER_SET_B,
             "C": PARAMETER_SET_C}
    if preset in named:
        return named[preset]
    raise SystemExit(f"unknown parameter preset {preset!r}; choose from "
                     f"{', '.join(_PARAM_PRESETS)}")


def _make_context(params, seed):
    from repro.hecore.bfv import BfvContext
    from repro.hecore.ckks import CkksContext
    from repro.hecore.params import SchemeType

    cls = BfvContext if params.scheme is SchemeType.BFV else CkksContext
    return cls(params, seed=seed)


def _install_demo_ops(server) -> None:
    """Ops the ``offload`` client exercises (beyond the built-in echo)."""

    def square(session, request):
        ctx = session.ctx
        return [ctx.multiply(ct, ct) for ct in request.cts]

    server.register("square", square)


#: Installer specs for the fleet path — worker processes resolve these by
#: name, so the same ops are served whether sharded or single-process.
_SERVE_INSTALLERS = (
    "repro.apps.knn:KnnOffloadService.install",
    "repro.cli:_install_demo_ops",
)
_SERVE_POOLED_INSTALLERS = (
    "repro.apps.knn:KnnOffloadService.install_pooled",
)


async def _serve_selftest(params, host, port) -> int:
    """One encrypted round trip against the server we just started."""
    import numpy as np

    from repro.hecore.params import SchemeType
    from repro.runtime import OffloadClient

    ctx = _make_context(params, seed=b"serve-selftest")
    client = await OffloadClient(params, host, port).connect()
    try:
        await client.upload_keys(relin=ctx.relin_keys())
        values = (np.array([1, 2, 3]) if params.scheme is SchemeType.BFV
                  else np.array([1.0, 2.0, 3.0]))
        ct = ctx.encrypt_symmetric(ctx.encode(values))
        out, _meta = await client.request("square", [ct])
        decrypted = np.real(ctx.decrypt(out[0]))[: len(values)]
        rounded = [round(float(v)) for v in decrypted]
        expected = [round(float(v) ** 2) for v in values]
        if rounded != expected:
            print(f"selftest MISMATCH: {rounded} != {expected}",
                  file=sys.stderr)
            return 1
        print(f"selftest ok: square{values.tolist()} -> {rounded} "
              f"(session {client.session_id})")
        return 0
    finally:
        await client.close()


def _cmd_serve(args) -> int:
    import asyncio

    from repro.apps.knn import KnnOffloadService
    from repro.runtime import OffloadServer

    params = _resolve_params(args.params)

    async def run() -> int:
        if args.workers > 0:
            from repro.runtime.fleet import FleetServer

            server = FleetServer(
                params, args.workers,
                installers=_SERVE_INSTALLERS,
                pooled_installers=_SERVE_POOLED_INSTALLERS,
                eval_workers=args.eval_workers,
                queue_limit=args.queue_limit,
                concurrency=args.concurrency)
            host, port = await server.start(args.host, args.port)
            print(f"offload fleet on {host}:{port} "
                  f"({args.workers} worker(s) x {args.eval_workers} eval "
                  f"subprocess(es); {params.describe()}); Ctrl-C to stop")
        else:
            eval_pool = None
            if args.eval_workers > 0:
                from repro.runtime import EvalPool, pooled_op_names

                eval_pool = EvalPool(params, args.eval_workers,
                                     _SERVE_POOLED_INSTALLERS)
            server = OffloadServer(params, queue_limit=args.queue_limit,
                                   concurrency=args.concurrency,
                                   eval_pool=eval_pool, verbose=True)
            KnnOffloadService.install(server)
            _install_demo_ops(server)
            if eval_pool is not None:
                for op in pooled_op_names(_SERVE_POOLED_INSTALLERS):
                    server.register_pooled(op)
            host, port = await server.start(args.host, args.port)
            print(f"offload server on {host}:{port} "
                  f"({params.describe()}); Ctrl-C to stop")
        try:
            if args.selftest:
                return await _serve_selftest(params, host, port)
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("\nstopped")
        return 0


def _cmd_offload(args) -> int:
    import asyncio

    import numpy as np

    from repro.hecore.params import SchemeType
    from repro.runtime import OffloadClient, OffloadServer

    params = _resolve_params(args.params)
    if params.scheme is SchemeType.BFV:
        values = np.array([int(v) for v in args.values.split(",")])
    else:
        values = np.array([float(v) for v in args.values.split(",")])

    async def run() -> int:
        server = None
        host, port = args.host, args.port
        if args.selftest:
            server = OffloadServer(params)
            _install_demo_ops(server)
            host, port = await server.start("127.0.0.1", 0)
        ctx = _make_context(params, seed=b"offload-cli-client")
        client = await OffloadClient(params, host, port).connect()
        try:
            await client.upload_keys(relin=ctx.relin_keys())
            # Explicit encode-then-encrypt: same plaintext path as the batch
            # engine, so encode cost is not double-counted in breakdowns.
            ct = ctx.encrypt_symmetric(ctx.encode(values))
            out, _meta = await client.request("square", [ct])
            decrypted = np.real(ctx.decrypt(out[0]))[: len(values)]
            rounded = [round(float(v)) for v in decrypted]
            print(f"encrypted square of {values.tolist()} -> {rounded} "
                  f"(session {client.session_id} on {host}:{port})")
            expected = [round(float(v) ** 2) for v in values]
            if rounded != expected:
                print(f"MISMATCH: expected {expected}", file=sys.stderr)
                return 1
        finally:
            await client.close()
            if server is not None:
                await server.stop()
        return 0

    return asyncio.run(run())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHOCO / CHOCO-TACO (ASPLOS 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("params", help="Table 3 parameter selections")
    sub.add_parser("networks", help="Table 5 model zoo and plan costs")
    acc = sub.add_parser("accelerator", help="CHOCO-TACO cost model")
    acc.add_argument("--n", type=int, default=8192, help="polynomial degree")
    acc.add_argument("--k", type=int, default=3, help="RNS residue count")
    acc.add_argument("--dse", action="store_true",
                     help="run the full design-space sweep")
    adv = sub.add_parser("advisor", help="offload-vs-local energy advice (§5.8)")
    adv.add_argument("--network", required=True,
                     help="LeNetSm | LeNetLg | SqzNet | VGG16")
    sub.add_parser("demo", help="tiny end-to-end encrypted demo")
    sub.add_parser("report", help="regenerate every table/figure "
                                  "(runs the benchmark harness)")
    srv = sub.add_parser("serve", help="run the offload runtime server")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7700)
    srv.add_argument("--params", default="test-bfv",
                     help=f"parameter preset: {', '.join(_PARAM_PRESETS)}")
    srv.add_argument("--workers", type=int, default=0,
                     help="shard sessions across N worker processes behind "
                          "a router (0 = single-process)")
    srv.add_argument("--eval-workers", type=int, default=0,
                     help="per-worker eval subprocesses for pooled COMPUTE "
                          "ops (0 = run handlers on the serving loop)")
    srv.add_argument("--selftest", action="store_true",
                     help="start, run one encrypted round trip against "
                          "the server, and exit")
    srv.add_argument("--queue-limit", type=int, default=16,
                     help="per-session request queue bound")
    srv.add_argument("--concurrency", type=int, default=1,
                     help="parallel compute slots")
    off = sub.add_parser("offload",
                         help="run an encrypted request against a server")
    off.add_argument("--host", default="127.0.0.1")
    off.add_argument("--port", type=int, default=7700)
    off.add_argument("--params", default="test-bfv",
                     help=f"parameter preset: {', '.join(_PARAM_PRESETS)}")
    off.add_argument("--values", default="1,2,3",
                     help="comma-separated values to square under encryption")
    off.add_argument("--selftest", action="store_true",
                     help="spin up an in-process server on an ephemeral port")
    return parser


_HANDLERS = {
    "params": _cmd_params,
    "networks": _cmd_networks,
    "accelerator": _cmd_accelerator,
    "advisor": _cmd_advisor,
    "demo": _cmd_demo,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "offload": _cmd_offload,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)
