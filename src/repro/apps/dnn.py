"""Client-aided encrypted DNN inference (§5.1, Table 5).

Two complementary paths, mirroring the paper's own methodology (§5.2):

* :class:`ClientAidedDnnPlan` — the **analytic** plan for full-scale
  networks: per-layer ciphertext counts from CHOCO's redundant packing,
  which yield communication bytes, client encryption/decryption operation
  counts, and (through a :class:`ClientCostModel`) client time and energy.
  This is how the paper itself computes client costs — by counting
  operations and multiplying by per-operation hardware/software cost.

* :func:`run_encrypted_inference` — a **functional** end-to-end encrypted
  inference that actually runs every linear layer under BFV on a (small)
  quantized network, with the client decrypting, applying ReLU/pool/
  requantization, and re-encrypting between layers.  Used by tests and
  examples to prove the protocol computes the right thing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.ir import ensure_galois_keys
from repro.core.linalg import BsgsMatVec, Conv2dSpec, EncryptedConv2d
from repro.core.packing import RedundantPacking
from repro.core.protocol import ClientAidedSession, ClientCostModel, CostLedger
from repro.hecore.params import (
    EncryptionParameters,
    PARAMETER_SET_A,
    PARAMETER_SET_B,
    SchemeType,
)
from repro.nn.layers import ConvLayer, FcLayer, FireLayer, Network
from repro.nn.quantize import quantize_tensor
from repro.platforms.client_device import Imx6SoftwareClient


def _pow2(n: int) -> int:
    return 1 << max(0, (n - 1)).bit_length()


def choose_dnn_parameters(network: Network) -> EncryptionParameters:
    """CHOCO's parameter pick per network (§5.3).

    MNIST-scale networks fit parameter set B (N=4096); CIFAR-scale networks
    with wider accumulations use set A (N=8192).  Both keep k=3.
    """
    c, h, w = network.input_shape
    return PARAMETER_SET_B if h <= 28 and c == 1 else PARAMETER_SET_A


@dataclass(frozen=True)
class LayerRound:
    """One client-server round: upload inputs, download one layer's outputs."""

    name: str
    up_cts: int
    down_cts: int
    server_rotations: int
    server_plain_mults: int
    macs: int


def _conv_span(height: int, width: int, kernel: int) -> int:
    """Slots per channel under rotational-redundancy packing."""
    window = height * width
    if kernel == 1:
        return _pow2(window)
    redundancy = (kernel // 2) * (width + 1)
    return _pow2(window + 2 * redundancy)


def _cts(slots: int, poly_degree: int) -> int:
    return max(1, math.ceil(slots / poly_degree))


class ClientAidedDnnPlan:
    """Analytic per-round plan for one network at one parameter set."""

    def __init__(self, network: Network, params: Optional[EncryptionParameters] = None):
        self.network = network
        self.params = params or choose_dnn_parameters(network)
        self.rounds = self._build_rounds()

    # --------------------------------------------------------------- plan
    def _build_rounds(self) -> List[LayerRound]:
        n = self.params.poly_degree
        rounds = []
        for layer, in_shape in self.network.linear_layers():
            if isinstance(layer, ConvLayer):
                rounds.append(self._conv_round(layer, in_shape, n, layer.__class__.__name__))
            elif isinstance(layer, FireLayer):
                # A fire module is two rounds: the 1x1 squeeze, then the
                # parallel expand branches computed server-side together.
                c, h, w = in_shape
                rounds.append(self._conv_round(layer.squeeze_conv, in_shape, n, "fire-squeeze"))
                mid_shape = (layer.squeeze, h, w)
                span = _conv_span(h, w, 3)
                up = _cts(layer.squeeze * span, n)
                down = _cts((layer.expand1 + layer.expand3) * span, n)
                taps = 9 + 1    # 3x3 branch taps plus the 1x1 branch
                rounds.append(LayerRound(
                    name="fire-expand",
                    up_cts=up,
                    down_cts=down,
                    server_rotations=layer.squeeze * taps,
                    server_plain_mults=layer.squeeze * taps,
                    macs=layer.expand1_conv.macs(mid_shape)
                    + layer.expand3_conv.macs(mid_shape),
                ))
            elif isinstance(layer, FcLayer):
                rounds.append(LayerRound(
                    name="fc",
                    up_cts=_cts(layer.in_features, n),
                    down_cts=_cts(layer.out_features, n),
                    server_rotations=min(layer.in_features, n) - 1,
                    server_plain_mults=min(layer.in_features, n),
                    macs=layer.macs((layer.in_features,)),
                ))
            else:
                raise TypeError(f"unhandled linear layer {layer!r}")
        return rounds

    def _conv_round(self, conv: ConvLayer, in_shape, n: int, name: str) -> LayerRound:
        c, h, w = in_shape
        out_c, out_h, out_w = conv.output_shape(in_shape)
        span = _conv_span(h, w, conv.kernel_size)
        taps = conv.kernel_size ** 2
        return LayerRound(
            name=name,
            up_cts=_cts(c * span, n),
            down_cts=_cts(out_c * span, n),
            server_rotations=c * taps - 1,
            server_plain_mults=c * taps,
            macs=conv.macs(in_shape),
        )

    # ---------------------------------------------------------- aggregates
    @property
    def encrypt_ops(self) -> int:
        """Client encryptions per inference (one per uploaded ciphertext)."""
        return sum(r.up_cts for r in self.rounds)

    @property
    def decrypt_ops(self) -> int:
        """Client decryptions per inference."""
        return sum(r.down_cts for r in self.rounds)

    def communication_bytes(self) -> int:
        """Total up+down bytes per single-image inference (Table 5 Comm.)."""
        ct = self.params.ciphertext_bytes()
        return (self.encrypt_ops + self.decrypt_ops) * ct

    def offline_key_bytes(self) -> int:
        """One-time key material the client ships to the server.

        Public key, relinearization key, and a power-of-two Galois key set
        (2·log2(N) keys generate every rotation).  Unlike MPC protocols'
        per-inference preprocessing, HE keys are reusable across all
        inferences, so this is *not* part of per-inference communication —
        it amortizes to zero (§2.2's centralization argument).
        """
        n = self.params.poly_degree
        k = self.params.logical_residue_count
        digits = k - 1
        per_switch_key = digits * 2 * k * n * 8
        galois_count = 2 * (n.bit_length() - 1)
        public_key = 2 * k * n * 8
        return public_key + (galois_count + 1) * per_switch_key

    def client_crypto_time(self, cost_model: ClientCostModel) -> float:
        """Client crypto time under the batched schedule: each round's
        uploads (and downloads) run as one stacked batch, so only the first
        op of each batch pays the cost model's per-invocation overhead."""
        return sum(cost_model.encrypt_many_s(r.up_cts)
                   + cost_model.decrypt_many_s(r.down_cts)
                   for r in self.rounds)

    def client_crypto_energy(self, cost_model: ClientCostModel) -> float:
        return sum(cost_model.encrypt_many_j(r.up_cts)
                   + cost_model.decrypt_many_j(r.down_cts)
                   for r in self.rounds)

    def client_activation_time(self,
                               client: Optional[Imx6SoftwareClient] = None) -> float:
        """Plaintext client work: activations, pooling, requantization.

        ~8 simple ops per activation value (dequant, compare, requant, pack).
        """
        client = client or Imx6SoftwareClient()
        return client.plain_compute_time(8 * self.network.activation_op_count())

    def client_time(self, cost_model: ClientCostModel) -> float:
        """Total active client compute per inference (Figure 12's bars)."""
        return self.client_crypto_time(cost_model) + self.client_activation_time()

    def client_energy(self, cost_model: ClientCostModel) -> float:
        client = Imx6SoftwareClient()
        return (self.client_crypto_energy(cost_model)
                + client.energy(self.client_activation_time(client)))

    def describe(self) -> str:
        """Per-round plan report: the layer-by-layer protocol schedule."""
        ct_mb = self.params.ciphertext_bytes() / 1e6
        lines = [
            f"{self.network.name} under parameter set "
            f"{self.params.label or self.params.describe()}: "
            f"{len(self.rounds)} rounds, "
            f"{self.communication_bytes() / 1e6:.2f} MB per inference",
            f"{'round':14s} {'up':>4s} {'down':>5s} {'MB':>7s} "
            f"{'rotations':>10s} {'MACs(M)':>8s}",
        ]
        for rnd in self.rounds:
            mb = (rnd.up_cts + rnd.down_cts) * ct_mb
            lines.append(
                f"{rnd.name:14s} {rnd.up_cts:4d} {rnd.down_cts:5d} "
                f"{mb:7.2f} {rnd.server_rotations:10d} "
                f"{rnd.macs / 1e6:8.2f}"
            )
        return "\n".join(lines)

    def ledger(self, cost_model: ClientCostModel) -> CostLedger:
        """The analytic plan folded into a protocol ledger."""
        led = CostLedger()
        led.client_encrypt_ops = self.encrypt_ops
        led.client_decrypt_ops = self.decrypt_ops
        led.client_encrypt_batches = sum(1 for r in self.rounds if r.up_cts)
        led.client_decrypt_batches = sum(1 for r in self.rounds if r.down_cts)
        led.client_compute_s = self.client_time(cost_model)
        led.client_energy_j = self.client_energy(cost_model)
        ct = self.params.ciphertext_bytes()
        led.bytes_up = sum(r.up_cts for r in self.rounds) * ct
        led.bytes_down = sum(r.down_cts for r in self.rounds) * ct
        led.rounds = len(self.rounds)
        return led


# ---------------------------------------------------------------------------
# Functional encrypted inference (small networks, real HE).
# ---------------------------------------------------------------------------

def _quantized_network(network: Network, bits: int) -> Network:
    """Clone *network* with weights quantized to signed integers."""
    import copy

    net = copy.deepcopy(network)
    for layer in net.layers:
        if isinstance(layer, ConvLayer) or isinstance(layer, FcLayer):
            layer.weights = quantize_tensor(layer.weights, bits).values
        elif isinstance(layer, FireLayer):
            for conv in layer.convs:
                conv.weights = quantize_tensor(conv.weights, bits).values
    return net


def run_encrypted_inference(ctx, network: Network, image: np.ndarray,
                            bits: int = 4,
                            session: Optional[ClientAidedSession] = None
                            ) -> Tuple[np.ndarray, CostLedger]:
    """Run *network* on *image* with every linear layer under BFV.

    The network's weights and the input must already be (small) integers —
    use :func:`quantize_network_for_encryption`.  Non-linear layers run on
    the "client"; linear layers run encrypted on the "server"; intermediate
    activations are reduced to *bits*-bit magnitudes by a shift, standing in
    for the client's requantization step.

    Returns the logits and the session's cost ledger.
    """
    if ctx.params.scheme is not SchemeType.BFV:
        raise ValueError("functional encrypted inference runs under BFV")
    session = session or ClientAidedSession(ctx)
    # ONE merged Galois key set for the whole network, fed by every linear
    # layer's required_rotation_steps — no per-layer keygen below.
    ensure_galois_keys(ctx, inference_rotation_steps(ctx, network))
    logits = _run_inference(
        network, image, bits,
        conv_fn=lambda conv, x: _encrypted_conv(session, conv, x),
        fc_fn=lambda fc, x: _encrypted_fc(session, fc, x),
        modulus=ctx.params.plain_modulus,
    )
    return logits, session.ledger


def run_reference_inference(network: Network, image: np.ndarray,
                            bits: int = 4) -> np.ndarray:
    """The plaintext twin of :func:`run_encrypted_inference`: identical
    quantization/requantization flow with numpy linear layers."""
    return _run_inference(
        network, image, bits,
        conv_fn=lambda conv, x: conv.forward(x),
        fc_fn=lambda fc, x: fc.forward(x),
        modulus=None,
    )


def _run_inference(network: Network, image: np.ndarray, bits: int,
                   conv_fn, fc_fn, modulus: Optional[int]) -> np.ndarray:
    limit = (1 << (bits - 1)) - 1

    def to_signed(values: np.ndarray) -> np.ndarray:
        if modulus is None:
            return values.astype(np.int64)
        values = np.mod(values, modulus)
        return np.where(values > modulus // 2, values - modulus, values)

    def requantize(values: np.ndarray) -> np.ndarray:
        peak = np.max(np.abs(values))
        if peak <= limit:
            return values.astype(np.int64)
        shift = int(np.ceil(np.log2(peak / limit)))
        return (values.astype(np.int64) >> shift)

    x = np.asarray(image)
    for layer in network.layers:
        if isinstance(layer, ConvLayer):
            x = requantize(to_signed(conv_fn(layer, x)))
        elif isinstance(layer, FireLayer):
            squeezed = requantize(to_signed(conv_fn(layer.squeeze_conv, x)))
            squeezed = np.maximum(squeezed, 0)
            e1 = to_signed(conv_fn(layer.expand1_conv, squeezed))
            e3 = to_signed(conv_fn(layer.expand3_conv, squeezed))
            x = requantize(np.maximum(np.concatenate([e1, e3]), 0))
        elif isinstance(layer, FcLayer):
            x = requantize(to_signed(fc_fn(layer, x)))
        else:
            x = layer.forward(x)
            if x.dtype != np.int64:
                x = np.rint(x).astype(np.int64)
    return x


def inference_rotation_steps(ctx, network: Network) -> set:
    """Merged rotation-step set for every offloaded layer of *network*.

    Reconstructs each layer's encrypted-kernel plan (tiled conv specs from
    the padded activation shapes, BSGS baby/giant ladders for FC weights)
    and unions their ``required_rotation_steps`` — the scheduler-fed
    single-keygen path the dnn/knn pipelines use instead of per-op calls.
    """
    from repro.core.tiling import TiledEncryptedConv2d

    def conv_steps(conv: ConvLayer, in_shape) -> set:
        p = conv.pad
        c, h, w = in_shape
        spec = Conv2dSpec(conv.in_channels, conv.out_channels,
                          h + 2 * p, w + 2 * p, conv.kernel_size)
        return TiledEncryptedConv2d(ctx, spec,
                                    conv.weights).required_rotation_steps()

    steps = set()
    for layer, in_shape in network.linear_layers():
        if isinstance(layer, FireLayer):
            steps |= conv_steps(layer.squeeze_conv, in_shape)
            mid = layer.squeeze_conv.output_shape(in_shape)
            steps |= conv_steps(layer.expand1_conv, mid)
            steps |= conv_steps(layer.expand3_conv, mid)
        elif isinstance(layer, ConvLayer):
            steps |= conv_steps(layer, in_shape)
        elif isinstance(layer, FcLayer):
            steps |= BsgsMatVec(ctx, layer.weights).required_rotation_steps()
    return {s for s in steps if s}


def _encrypted_conv(session: ClientAidedSession, conv: ConvLayer,
                    x: np.ndarray) -> np.ndarray:
    """One conv layer offloaded: pack (with client-side zero padding for
    'same' convs), encrypt, upload, evaluate, download, decrypt, unpack.

    Uses the tiled implementation, so any channel count works — layers
    whose channels exceed one ciphertext simply occupy several.
    """
    from repro.core.tiling import TiledEncryptedConv2d

    ctx = session.ctx
    p = conv.pad
    padded = np.pad(x, ((0, 0), (p, p), (p, p))) if p else x
    c, h, w = padded.shape
    spec = Conv2dSpec(conv.in_channels, conv.out_channels, h, w, conv.kernel_size)
    enc_conv = TiledEncryptedConv2d(ctx, spec, conv.weights)
    cts = [session.upload(ct) for ct in session.client_encrypt_many(
        [v.astype(np.int64) for v in enc_conv.pack_input(padded)])]
    out_cts = session.server_compute(enc_conv, cts)
    slots = session.client_decrypt_many(
        [session.download(ct) for ct in out_cts])
    return enc_conv.unpack_outputs(slots)


def _encrypted_fc(session: ClientAidedSession, fc: FcLayer,
                  x: np.ndarray) -> np.ndarray:
    """FC layers use the baby-step/giant-step diagonal product: ~2*sqrt(d)
    rotations and Galois keys instead of d - 1.  The baby rotations share
    one hoisted key-switch decompose; the session's merged key set (one
    :func:`inference_rotation_steps` keygen per inference) already covers
    this layer's ladder."""
    ctx = session.ctx
    mv = BsgsMatVec(ctx, fc.weights)
    ct = session.upload(session.client_encrypt(mv.pack_input(x.ravel()).astype(np.int64)))
    out_ct = session.server_compute(mv, ct)
    return mv.unpack_output(session.client_decrypt(session.download(out_ct)))


def quantize_network_for_encryption(network: Network, bits: int = 4) -> Network:
    """Public alias for building an integer-weight clone of a network."""
    return _quantized_network(network, bits)
