"""Encrypted PageRank in BFV and CKKS (§5.1, §5.6, Figure 13).

PageRank is pure linear algebra, so it can run *continuously* in encrypted
space — or client-aided, with the client decrypting and re-encrypting the
rank vector every few iterations to refresh the noise budget.  Less frequent
communication demands larger parameters (deeper encrypted segments); §5.6
finds that frequent communication of *smaller* ciphertexts wins — and that
every client-optimal schedule fits CHOCO-TACO's (N ≤ 8192, k ≤ 3) envelope.

The functional implementation runs real HE on small graphs; the analytic
:func:`schedule_communication_bytes` sweep regenerates Figure 13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.linalg import EncryptedMatVec
from repro.core.paramsearch import (
    ParameterChoice,
    WorkloadProfile,
    select_parameters,
)
from repro.core.protocol import ClientAidedSession
from repro.hecore.params import SchemeType


def _to_signed(values: np.ndarray, modulus: int) -> np.ndarray:
    """Map canonical BFV residues to signed values."""
    values = np.mod(values, modulus)
    return np.where(values > modulus // 2, values - modulus, values)


def google_matrix(adjacency: np.ndarray, damping: float = 0.85) -> np.ndarray:
    """The dense PageRank iteration matrix ``d*A_norm + (1-d)/n``."""
    adjacency = np.asarray(adjacency, dtype=float)
    n = adjacency.shape[0]
    out_degree = adjacency.sum(axis=0)
    norm = np.where(out_degree > 0, adjacency / np.maximum(out_degree, 1), 1.0 / n)
    return damping * norm + (1 - damping) / n


def pagerank_reference(adjacency: np.ndarray, damping: float = 0.85,
                       iterations: int = 20) -> np.ndarray:
    """Plaintext power iteration (the correctness oracle)."""
    m = google_matrix(adjacency, damping)
    rank = np.full(m.shape[0], 1.0 / m.shape[0])
    for _ in range(iterations):
        rank = m @ rank
    return rank


class ClientAidedPageRank:
    """Functional encrypted PageRank with a configurable refresh schedule.

    ``schedule`` is a list of encrypted-segment lengths; between segments the
    client decrypts and re-encrypts the rank vector (noise refresh + repack).
    A single-segment schedule is the fully-offloaded, continuously encrypted
    variant.
    """

    def __init__(self, ctx, adjacency: np.ndarray, damping: float = 0.85,
                 quant_bits: int = 7):
        self.ctx = ctx
        self.is_bfv = ctx.params.scheme is SchemeType.BFV
        self.matrix = google_matrix(adjacency, damping)
        self.n = self.matrix.shape[0]
        if self.is_bfv:
            # Fixed-point: integer matrix at scale 2^quant_bits; the running
            # rank vector picks up one factor of the scale per iteration.
            self.scale = float(1 << quant_bits)
            matrix = np.rint(self.matrix * self.scale).astype(np.int64)
        else:
            self.scale = 1.0
            matrix = self.matrix
        self.matvec = EncryptedMatVec(ctx, matrix)
        steps = set(self.matvec.required_rotation_steps())
        steps.update((self.matvec.dim, -self.matvec.dim))
        ctx.make_galois_keys(steps)

    def run(self, schedule: Sequence[int],
            session: Optional[ClientAidedSession] = None) -> Tuple[np.ndarray, object]:
        """Run ``sum(schedule)`` iterations; returns (ranks, ledger)."""
        session = session or ClientAidedSession(self.ctx)
        rank = np.full(self.n, 1.0 / self.n)
        for segment in schedule:
            ct = session.upload(session.client_encrypt(self._pack(rank)))
            for step in range(segment):
                last = step == segment - 1
                ct = session.server_compute(self._one_iteration, ct, last)
            slots = np.asarray(session.client_decrypt(session.download(ct)))
            raw = np.real(self.matvec.unpack_output(slots))
            if self.is_bfv:
                raw = _to_signed(raw, self.ctx.params.plain_modulus)
                raw = raw / (self.scale ** (segment + 1))
            rank = raw / raw.sum()         # client-side renormalization
        return rank, session.ledger

    def _pack(self, rank: np.ndarray):
        if self.is_bfv:
            return np.rint(self.matvec.pack_input(rank) * self.scale).astype(np.int64)
        return self.matvec.pack_input(rank)

    def _one_iteration(self, ct, last: bool):
        ct = self.matvec(ct)
        if not self.is_bfv:
            ct = self.ctx.rescale(ct)
        if not last:
            ct = self._refresh_packing(ct)
        return ct

    def _refresh_packing(self, ct):
        """Server-side repack between iterations.

        The matvec output occupies the window without redundant margins; a
        further iteration needs the rotational redundancy restored.  The
        server rebuilds the margins with two rotations and adds — cheap in
        noise (no masking multiplies), which is what lets encrypted segments
        run back-to-back.  Both rotations act on the same ciphertext, so
        they share one hoisted key-switch decompose when the context
        supports it.
        """
        ctx = self.ctx
        dim = self.matvec.dim
        fused = getattr(ctx, "rotate_many", None)
        if fused is not None:
            left, right = fused(ct, (dim, -dim))
        else:
            rot = getattr(ctx, "rotate_rows", None) or ctx.rotate
            left = rot(ct, dim, None)
            right = rot(ct, -dim, None)
        return ctx.add(ctx.add(ct, left), right)


class FullyEncryptedPageRank:
    """Continuous encrypted PageRank: zero client interaction mid-run.

    Uses LoLa's alternating dense/spread dot-product representations
    (:class:`repro.core.lola.AlternatingMatVec`) so consecutive iterations
    compose on the server without repacking.  The client encrypts the
    initial rank vector once and decrypts once at the end — at the price of
    parameters deep enough for the whole iteration count (the §5.6
    tradeoff that client-aided execution wins).
    """

    def __init__(self, ctx, adjacency: np.ndarray, damping: float = 0.85):
        from repro.core.lola import AlternatingMatVec

        self.ctx = ctx
        if ctx.params.scheme is not SchemeType.CKKS:
            raise ValueError("the fully-encrypted variant runs under CKKS")
        self.matrix = google_matrix(adjacency, damping)
        self.n = self.matrix.shape[0]
        self.matvec = AlternatingMatVec(ctx, self.matrix)
        ctx.make_galois_keys(self.matvec.required_rotation_steps())

    def max_iterations(self) -> int:
        """Each iteration consumes two levels (weight + cleanup masks)."""
        return (len(self.ctx.params.data_base) - 1) // 2

    def run(self, iterations: int,
            session: Optional[ClientAidedSession] = None) -> Tuple[np.ndarray, object]:
        if iterations > self.max_iterations():
            raise ValueError(
                f"{iterations} iterations exceed the parameter depth "
                f"({self.max_iterations()} levels)"
            )
        session = session or ClientAidedSession(self.ctx)
        rank = np.full(self.n, 1.0 / self.n)
        ct = session.upload(session.client_encrypt(self.matvec.pack_dense(rank)))
        ct, fmt = session.server_compute(self.matvec.power_iteration,
                                         ct, iterations)
        slots = np.real(np.asarray(session.client_decrypt(session.download(ct))))
        out = self.matvec.unpack(slots, fmt)
        return out / out.sum(), session.ledger


def segment_profile(segment: int, n_nodes: int,
                    scheme: SchemeType) -> WorkloadProfile:
    """The workload one encrypted PageRank segment imposes (Figure 13).

    Each iteration is one matrix-vector product: ~n rotations of the packed
    rank vector and one plaintext-multiply level.  BFV fixed-point scales
    compound per iteration, so the accumulated value width grows with the
    segment length; CKKS rescales instead, consuming one prime per level.
    """
    value_bits = 6  # fixed-point rank/link weights per iteration
    return WorkloadProfile(
        value_bits=value_bits,
        fan_in=n_nodes,
        rotations=segment * max(1, int(math.ceil(math.log2(max(n_nodes, 2))))),
        masked_permutations=0,
        plain_mult_depth=segment,
        min_slots=n_nodes,
    )


@dataclass(frozen=True)
class SchedulePoint:
    """One Figure 13 dot: a (total iterations, segment length) combination."""

    total_iterations: int
    segment: int
    scheme: SchemeType
    choice: ParameterChoice
    communication_bytes: int

    @property
    def taco_compatible(self) -> bool:
        """Within CHOCO-TACO's supported envelope: N <= 8192, k <= 3 (§5.6)."""
        return (self.choice.poly_degree <= 8192
                and self.choice.residue_count <= 3)


def schedule_communication_bytes(total_iterations: int, segment: int,
                                 n_nodes: int, scheme: SchemeType) -> SchedulePoint:
    """Total communication to reach *total_iterations* with one refresh every
    *segment* iterations, using the smallest workable parameters."""
    if total_iterations % segment:
        raise ValueError("segment must divide the iteration total")
    choice = select_parameters(segment_profile(segment, n_nodes, scheme), scheme)
    segments = total_iterations // segment
    vector_cts = max(1, math.ceil(n_nodes / choice.poly_degree))
    # Each segment: upload the (re-encrypted) rank vector, download the result.
    total_bytes = segments * 2 * vector_cts * choice.ciphertext_bytes
    return SchedulePoint(total_iterations, segment, scheme, choice, total_bytes)


def sweep_schedules(total_iterations: int, n_nodes: int,
                    scheme: SchemeType) -> List[SchedulePoint]:
    """All divisor schedules for one iteration total (one Figure 13 column)."""
    points = []
    for segment in range(1, total_iterations + 1):
        if total_iterations % segment:
            continue
        try:
            points.append(schedule_communication_bytes(
                total_iterations, segment, n_nodes, scheme))
        except ValueError:
            continue   # segment too deep for any 128-bit-secure parameters
    return points
