"""Encrypted K-Nearest-Neighbors (§5.1).

The server stores encrypted points — potentially aggregated from many
contributors over time (the centralization benefit local compute cannot
offer) — and runs encrypted squared-distance calculations against an
encrypted query.  The client decrypts the distance vector and applies the
non-linear step — ``min()``/top-k selection and majority vote — in
plaintext.  Classifying one new point needs just a single client-server
interaction.

Contributions are stored as independent encrypted batches (the server
cannot repack ciphertexts it cannot decrypt); a query is evaluated against
every batch and the client concatenates the decrypted distances.  The
distance kernel is pluggable: any of the five Figure 9 packings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.distance import (
    KERNEL_VARIANTS,
    DistanceKernel,
    DistanceProblem,
)
from repro.core.ir import ensure_galois_keys
from repro.core.protocol import ClientAidedSession


@dataclass
class KnnResult:
    """One classification: the label, neighbors, and decrypted distances."""

    label: int
    neighbor_indices: np.ndarray
    distances: np.ndarray


class _Batch:
    """One contribution: a kernel instance plus its encrypted points.

    Key generation is NOT per-batch: the pipeline unions every batch
    kernel's ``required_rotation_steps`` into one merged
    :func:`~repro.core.ir.ensure_galois_keys` call (batches sharing a
    dimensionality add no key material beyond the first).
    """

    def __init__(self, ctx, variant_cls, points: np.ndarray):
        self.count = len(points)
        self.dims = points.shape[1]
        self.kernel: DistanceKernel = variant_cls(
            ctx, DistanceProblem(n_points=self.count, dims=self.dims))
        self.point_cts = self.kernel.encrypt_points(points)


class EncryptedKnn:
    """Client-aided KNN over a growing encrypted point database."""

    def __init__(self, ctx, points: np.ndarray, labels: Sequence[int],
                 k: int = 3, variant: str = "collapsed"):
        points = np.asarray(points, dtype=float)
        if len(points) != len(labels):
            raise ValueError("points and labels disagree in length")
        if k < 1 or k > len(points):
            raise ValueError(f"k={k} out of range for {len(points)} points")
        self.ctx = ctx
        self.k = k
        self.variant_cls = KERNEL_VARIANTS.get(variant)
        if self.variant_cls is None:
            raise ValueError(f"unknown kernel variant {variant!r}; "
                             f"choose from {sorted(KERNEL_VARIANTS)}")
        self.dims = points.shape[1]
        self.labels = np.asarray(labels)
        self._batches: List[_Batch] = [_Batch(ctx, self.variant_cls, points)]
        self._refresh_galois_keys()

    def _refresh_galois_keys(self):
        """One merged keygen covering every stored batch's kernel."""
        ensure_galois_keys(
            self.ctx,
            *(b.kernel.required_rotation_steps() for b in self._batches))

    @property
    def size(self) -> int:
        return sum(b.count for b in self._batches)

    def add_points(self, points: np.ndarray, labels: Sequence[int]) -> None:
        """Grow the server-side database with a new encrypted contribution.

        The server cannot repack ciphertexts it cannot decrypt, so each
        contribution stays its own batch; queries span all batches.
        """
        points = np.asarray(points, dtype=float)
        if len(points) != len(labels):
            raise ValueError("points and labels disagree in length")
        if points.shape[1] != self.dims:
            raise ValueError(f"expected {self.dims}-dimensional points")
        self.labels = np.concatenate([self.labels, np.asarray(labels)])
        self._batches.append(_Batch(self.ctx, self.variant_cls, points))
        self._refresh_galois_keys()

    def classify(self, query: np.ndarray,
                 session: Optional[ClientAidedSession] = None) -> KnnResult:
        """One single-interaction classification of *query*."""
        session = session or ClientAidedSession(self.ctx)
        query = np.asarray(query, dtype=float)
        distances = []
        for batch in self._batches:
            query_cts = [
                session.upload(ct)
                for ct in session.client_encrypt_many(batch.kernel.pack_query(query))
            ]
            out_cts = session.server_compute(batch.kernel.compute,
                                             batch.point_cts, query_cts)
            decrypted = [
                np.real(v) for v in session.client_decrypt_many(
                    [session.download(ct) for ct in out_cts])
            ]
            distances.append(batch.kernel.decode(decrypted))
        all_distances = np.concatenate(distances)
        neighbors = np.argsort(all_distances)[: self.k]
        votes = Counter(self.labels[neighbors].tolist())
        label = votes.most_common(1)[0][0]
        return KnnResult(label=label, neighbor_indices=neighbors,
                         distances=all_distances)

    # ------------------------------------------------------------ oracles
    def reference_classify(self, query: np.ndarray) -> int:
        """Plaintext oracle for correctness checks."""
        points = np.stack(self._plaintext_points())
        distances = np.sum((points - np.asarray(query)) ** 2, axis=1)
        neighbors = np.argsort(distances)[: self.k]
        return Counter(self.labels[neighbors].tolist()).most_common(1)[0][0]

    def _plaintext_points(self) -> List[np.ndarray]:
        """Decrypt the stored database (test helper: the client owns the key)."""
        out = []
        for batch in self._batches:
            decrypted = [np.real(v)
                         for v in self.ctx.decrypt_many(batch.point_cts)]
            for i in range(batch.count):
                out.append(self._unpack_point(batch, decrypted, i))
        return out

    def _unpack_point(self, batch: _Batch, decrypted: List[np.ndarray],
                      index: int) -> np.ndarray:
        kernel = batch.kernel
        d = batch.dims
        name = kernel.name
        if name == "point-major":
            return decrypted[index][:d]
        if name == "dimension-major":
            return np.array([decrypted[j][index] for j in range(d)])
        if name in ("stacked-point", "collapsed"):
            per = kernel.points_per_ct
            block = decrypted[index // per]
            off = (index % per) * kernel.problem.padded_dims
            return block[off: off + d]
        if name == "stacked-dimension":
            n = kernel.problem.padded_points
            per = kernel.dims_per_ct
            return np.array([
                decrypted[j // per][(j % per) * n + index] for j in range(d)
            ])
        raise ValueError(f"unhandled kernel {name}")


# ---------------------------------------------------------------------------
# Served KNN: the same application over the offload runtime
# ---------------------------------------------------------------------------

class KnnOffloadService:
    """Server-side KNN operations for an :class:`OffloadServer`.

    The server holds encrypted point batches in per-session state and runs
    the pluggable distance kernel against uploaded queries.  It never holds
    a decryption capability: kernels evaluate on the session context, whose
    ``decrypt`` is mechanically forbidden by the runtime.
    """

    OP_STORE = "knn/store"
    OP_QUERY = "knn/query"

    @classmethod
    def install(cls, server) -> None:
        """Register the KNN operations on *server* (inline execution)."""
        server.register(cls.OP_STORE, cls._store)
        server.register(cls.OP_QUERY, cls._query)

    @classmethod
    def install_pooled(cls, registry) -> None:
        """Register the KNN operations as pooled pure functions.

        This is an :mod:`repro.runtime.evalpool` installer: *registry* maps
        op names to ``fn(ctx, state, meta, cts)``.  Store and query share
        their implementation with the inline handlers, so a pooled fleet
        worker and a single-process server compute identical bytes.
        """
        registry[cls.OP_STORE] = cls.store_op
        registry[cls.OP_QUERY] = cls.query_op

    # Pure implementations, shared by the inline and pooled paths --------
    @staticmethod
    def store_op(ctx, state, meta, cts):
        try:
            n_points = int(meta["n_points"])
            dims = int(meta["dims"])
            variant = str(meta["variant"])
        except KeyError as exc:
            raise ValueError(f"knn/store metadata missing {exc}") from exc
        variant_cls = KERNEL_VARIANTS.get(variant)
        if variant_cls is None:
            raise ValueError(f"unknown kernel variant {variant!r}")
        if n_points < 1 or dims < 1:
            raise ValueError("knn/store needs positive n_points and dims")
        kernel = variant_cls(ctx,
                             DistanceProblem(n_points=n_points, dims=dims))
        batches = state.setdefault("knn_batches", [])
        batches.append((kernel, list(cts)))
        return [], {"batch": len(batches) - 1, "points": n_points}

    @staticmethod
    def query_op(ctx, state, meta, cts):
        batches = state.get("knn_batches") or []
        index = int(meta.get("batch", 0))
        if not 0 <= index < len(batches):
            raise ValueError(f"no stored batch {index} in this session")
        kernel, point_cts = batches[index]
        return kernel.compute(point_cts, list(cts)), {}

    @staticmethod
    def _store(session, request):
        return KnnOffloadService.store_op(
            session.ensure_context(), session.state, request.meta,
            request.cts)

    @staticmethod
    def _query(session, request):
        return KnnOffloadService.query_op(
            session.ensure_context(), session.state, request.meta,
            request.cts)


class RemoteKnn:
    """Client-side KNN whose server half lives across the wire.

    Mirrors :class:`EncryptedKnn` — same kernels, same batching, same
    plaintext top-k vote — but every server-side step is a runtime request
    against a :class:`~repro.runtime.server.OffloadServer` with
    :class:`KnnOffloadService` installed.  Key and database provisioning
    (``add_points``) is the offline phase and is not charged to the
    transfer ledger; per-classification traffic is, so a
    :class:`~repro.runtime.transport.SimulatedLink` reproduces the
    in-process :class:`CostLedger` numbers exactly.
    """

    def __init__(self, client, ctx, k: int = 3, variant: str = "collapsed",
                 symmetric: bool = True):
        if variant not in KERNEL_VARIANTS:
            raise ValueError(f"unknown kernel variant {variant!r}; "
                             f"choose from {sorted(KERNEL_VARIANTS)}")
        self.client = client
        self.ctx = ctx
        self.k = k
        self.variant = variant
        self.variant_cls = KERNEL_VARIANTS[variant]
        #: Seed-compressed symmetric uploads by default (§4.3).  Use
        #: ``symmetric=False`` to match the public-key byte accounting of
        #: the in-process ``EncryptedKnn`` path bit for bit.
        self.symmetric = symmetric
        self.labels = np.asarray([], dtype=np.int64)
        self.dims: Optional[int] = None
        self._batches: List[Tuple[DistanceKernel, int]] = []

    @property
    def size(self) -> int:
        return len(self.labels)

    def _encrypt(self, values):
        if self.symmetric:
            return self.ctx.encrypt_symmetric(values)
        return self.ctx.encrypt(values)

    def _encrypt_many(self, values_list):
        """Batch upload path: one stacked client pass for the whole list
        (seed-compressed when symmetric)."""
        if self.symmetric:
            return self.ctx.encrypt_symmetric_many(values_list)
        return self.ctx.encrypt_many(values_list)

    async def add_points(self, points: np.ndarray,
                         labels: Sequence[int]) -> int:
        """Provision one encrypted contribution; returns its batch id."""
        points = np.asarray(points, dtype=float)
        if len(points) != len(labels):
            raise ValueError("points and labels disagree in length")
        if self.dims is not None and points.shape[1] != self.dims:
            raise ValueError(f"expected {self.dims}-dimensional points")
        kernel = self.variant_cls(
            self.ctx, DistanceProblem(n_points=len(points),
                                      dims=points.shape[1]))
        # Merged key set: every stored batch plus the new one, one keygen.
        galois = ensure_galois_keys(
            self.ctx, kernel.required_rotation_steps(),
            *(k.required_rotation_steps() for k, _ in self._batches))
        await self.client.upload_keys(relin=self.ctx.relin_keys(),
                                      galois=galois)
        cts = self._encrypt_many(kernel.pack_points(points))
        _, meta = await self.client.request(
            KnnOffloadService.OP_STORE, cts,
            {"n_points": len(points), "dims": int(points.shape[1]),
             "variant": self.variant},
            account=False)
        self.dims = points.shape[1]
        self.labels = np.concatenate([self.labels, np.asarray(labels)])
        self._batches.append((kernel, int(meta["batch"])))
        return int(meta["batch"])

    async def classify(self, query: np.ndarray) -> KnnResult:
        """One classification of *query* across all stored batches."""
        if not self._batches:
            raise ValueError("no points stored yet")
        query = np.asarray(query, dtype=float)
        distances = []
        for kernel, batch_id in self._batches:
            query_cts = self._encrypt_many(kernel.pack_query(query))
            out_cts, _meta = await self.client.request(
                KnnOffloadService.OP_QUERY, query_cts, {"batch": batch_id})
            decrypted = [np.real(v) for v in self.ctx.decrypt_many(out_cts)]
            distances.append(kernel.decode(decrypted))
        all_distances = np.concatenate(distances)
        neighbors = np.argsort(all_distances)[: self.k]
        votes = Counter(self.labels[neighbors].tolist())
        return KnnResult(label=votes.most_common(1)[0][0],
                         neighbor_indices=neighbors, distances=all_distances)
