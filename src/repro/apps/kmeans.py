"""Encrypted K-Means clustering (§5.1).

Each round, the client encrypts the current centroids and offloads the
one-to-many distance calculations to the server; the client decrypts the
per-centroid distance vectors, performs the non-linear assignment
(``argmin``), and updates centroids.  Client-server interaction iterates
until convergence.

Centroid updates use encrypted cluster sums: the server masks the stored
encrypted points with the client's assignment vectors and accumulates, so
the client only ever handles centroid-coordinate data (and cluster counts),
never the raw stored points — matching the paper's division of labor where
the client touches "newly computed (e.g. updated K-Means centroids)
coordinate data".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.distance import (
    DimensionMajorKernel,
    DistanceProblem,
    MultiQueryDimensionMajor,
)
from repro.core.linalg import _rotate, rotate_and_accumulate, rotate_and_sum_steps
from repro.core.protocol import ClientAidedSession


def _pow2(n: int) -> int:
    return 1 << max(0, (n - 1)).bit_length()


@dataclass
class KMeansResult:
    centroids: np.ndarray
    assignments: np.ndarray
    iterations: int
    converged: bool


class EncryptedKMeans:
    """Client-aided K-Means over an encrypted, server-resident database."""

    def __init__(self, ctx, points: np.ndarray, n_clusters: int):
        points = np.asarray(points, dtype=float)
        self.ctx = ctx
        self.n, self.d = points.shape
        self.k = n_clusters
        self.problem = DistanceProblem(n_points=self.n, dims=self.d)
        # Multi-query kernel: one server pass prices ALL centroids per round.
        self.kernel = MultiQueryDimensionMajor(ctx, self.problem,
                                               max_queries=n_clusters)
        steps = set(self.kernel.required_rotation_steps())
        width = _pow2(self.n)
        # Hoisted step set (plus pow2 fallback ladder) so the per-cluster
        # coordinate sums run as fused hoisted spans.
        steps.update(rotate_and_sum_steps(width))
        ctx.make_galois_keys(steps)
        self._sum_width = width
        # One ciphertext per dimension, each holding that coordinate of
        # every stored point (dimension-major).
        self.point_cts = self.kernel.encrypt_points(points)

    # ----------------------------------------------------------------- run
    def run(self, initial_centroids: np.ndarray, max_iterations: int = 10,
            tolerance: float = 1e-3,
            session: Optional[ClientAidedSession] = None) -> KMeansResult:
        session = session or ClientAidedSession(self.ctx)
        centroids = np.array(initial_centroids, dtype=float)
        assignments = np.zeros(self.n, dtype=int)
        converged = False
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            distances = self._encrypted_distances(centroids, session)
            assignments = np.argmin(distances, axis=0)
            new_centroids = self._encrypted_centroid_update(assignments, session)
            shift = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            if shift < tolerance:
                converged = True
                break
        return KMeansResult(centroids=centroids, assignments=assignments,
                            iterations=iteration, converged=converged)

    # ------------------------------------------------------------ internals
    def _encrypted_distances(self, centroids: np.ndarray,
                             session: ClientAidedSession) -> np.ndarray:
        """(k, n) matrix of encrypted squared distances, decrypted client-side.

        All centroids travel in one multi-region query per dimension, and
        the server answers with a single ciphertext of every (centroid,
        point) distance.
        """
        query_cts = [
            session.upload(ct)
            for ct in session.client_encrypt_many(
                self.kernel.pack_queries(centroids))
        ]
        out = session.server_compute(self.kernel.compute,
                                     self.point_cts, query_cts)
        decrypted = [np.real(v) for v in session.client_decrypt_many(
            [session.download(ct) for ct in out])]
        return self.kernel.decode_matrix(decrypted, len(centroids))

    def _encrypted_centroid_update(self, assignments: np.ndarray,
                                   session: ClientAidedSession) -> np.ndarray:
        """Server-side masked cluster sums; client divides by counts."""
        ctx = self.ctx
        centroids = np.zeros((self.k, self.d))
        counts = np.bincount(assignments, minlength=self.k)
        for cluster in range(self.k):
            if counts[cluster] == 0:
                continue
            mask = np.zeros(self.kernel.slots)
            mask[: self.n][assignments == cluster] = 1.0

            def cluster_sums():
                sums = []
                for x_k in self.point_cts:
                    masked = ctx.multiply_plain(x_k, ctx.encode(mask))
                    masked = ctx.rescale(masked)
                    sums.append(rotate_and_accumulate(ctx, masked, self._sum_width))
                return sums

            sum_cts = session.server_compute(cluster_sums)
            decrypted = session.client_decrypt_many(
                [session.download(ct) for ct in sum_cts])
            for dim, vec in enumerate(decrypted):
                centroids[cluster, dim] = np.real(vec)[0] / counts[cluster]
        return centroids

    # ------------------------------------------------------------ reference
    @staticmethod
    def reference(points: np.ndarray, initial_centroids: np.ndarray,
                  max_iterations: int = 10, tolerance: float = 1e-3) -> KMeansResult:
        """Plaintext Lloyd's algorithm with the same update rule."""
        points = np.asarray(points, dtype=float)
        centroids = np.array(initial_centroids, dtype=float)
        assignments = np.zeros(len(points), dtype=int)
        converged = False
        iteration = 0
        for iteration in range(1, max_iterations + 1):
            distances = np.stack([
                np.sum((points - c) ** 2, axis=1) for c in centroids
            ])
            assignments = np.argmin(distances, axis=0)
            new_centroids = centroids.copy()
            for cluster in range(len(centroids)):
                members = points[assignments == cluster]
                if len(members):
                    new_centroids[cluster] = members.mean(axis=0)
            shift = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            if shift < tolerance:
                converged = True
                break
        return KMeansResult(centroids=centroids, assignments=assignments,
                            iterations=iteration, converged=converged)
