"""The workload advisor of §5.8.

"A quick analytical comparison of computation (MACs) versus communication
(MBs) per layer helps an application designer decide if their DNN
application will see an energy benefit in the CHOCO client-aided model."

Offloading a layer trades local MAC energy for radio + client-crypto
energy.  The break-even line is a MACs-per-byte threshold: layers above it
(big filters, many channels at small spatial size — VGG-like) save energy
offloaded; layers below it (SqueezeNet-like 1x1-dominated layers) should
stay local.  The advisor computes the threshold from the platform models
and renders a per-layer and whole-network verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.dnn import ClientAidedDnnPlan, choose_dnn_parameters
from repro.core.protocol import ClientCostModel
from repro.hecore.params import EncryptionParameters
from repro.nn.layers import ConvLayer, FcLayer, FireLayer, Network
from repro.platforms.local_inference import TfLiteLocalInference
from repro.platforms.radio import BluetoothLink


@dataclass(frozen=True)
class LayerAdvice:
    """One linear layer's offload economics."""

    name: str
    macs: int
    comm_bytes: int
    offload: bool           # True when offloading saves client energy

    @property
    def macs_per_byte(self) -> float:
        return self.macs / max(self.comm_bytes, 1)


@dataclass(frozen=True)
class NetworkAdvice:
    """Whole-network verdict plus the per-layer breakdown."""

    network: str
    threshold_macs_per_byte: float
    layers: List[LayerAdvice]
    total_macs: int
    total_comm_bytes: int
    offload_energy_j: float
    local_energy_j: float

    @property
    def offload_network(self) -> bool:
        return self.offload_energy_j < self.local_energy_j

    @property
    def energy_ratio(self) -> float:
        """local / offload energy: >1 means offloading wins (§5.7's VGG)."""
        return self.local_energy_j / self.offload_energy_j


class WorkloadAdvisor:
    """Computes §5.8's MACs-per-MB break-even analysis."""

    def __init__(self, radio: Optional[BluetoothLink] = None,
                 local: Optional[TfLiteLocalInference] = None):
        self.radio = radio or BluetoothLink()
        self.local = local or TfLiteLocalInference()

    def _offload_joules_per_byte(self, params: EncryptionParameters) -> float:
        """Radio energy plus amortized CHOCO-TACO crypto energy per byte."""
        taco = ClientCostModel.choco_taco(params)
        ct_bytes = params.ciphertext_bytes()
        crypto_per_byte = (taco.encrypt_j + taco.decrypt_j) / (2 * ct_bytes)
        radio_per_byte = self.radio.transfer_energy(1)
        return radio_per_byte + crypto_per_byte

    def _local_joules_per_mac(self) -> float:
        return self.local.active_power_w / self.local.macs_per_second

    def threshold(self, params: EncryptionParameters) -> float:
        """MACs per communicated byte above which offloading saves energy."""
        return self._offload_joules_per_byte(params) / self._local_joules_per_mac()

    def analyze(self, network: Network,
                params: Optional[EncryptionParameters] = None) -> NetworkAdvice:
        params = params or choose_dnn_parameters(network)
        plan = ClientAidedDnnPlan(network, params=params)
        threshold = self.threshold(params)
        ct_bytes = params.ciphertext_bytes()

        layers = []
        for rnd in plan.rounds:
            comm = (rnd.up_cts + rnd.down_cts) * ct_bytes
            layers.append(LayerAdvice(
                name=rnd.name, macs=rnd.macs, comm_bytes=comm,
                offload=(rnd.macs / max(comm, 1)) > threshold,
            ))

        total_macs = network.total_macs()
        total_comm = plan.communication_bytes()
        taco = ClientCostModel.choco_taco(params)
        offload_energy = (plan.client_energy(taco)
                          + self.radio.transfer_energy(total_comm))
        local_energy = self.local.inference_energy(total_macs)
        return NetworkAdvice(
            network=network.name,
            threshold_macs_per_byte=threshold,
            layers=layers,
            total_macs=total_macs,
            total_comm_bytes=total_comm,
            offload_energy_j=offload_energy,
            local_energy_j=local_energy,
        )

    def render(self, advice: NetworkAdvice) -> str:
        """A human-readable report for the designer."""
        lines = [
            f"network {advice.network}: {advice.total_macs / 1e6:.2f}M MACs, "
            f"{advice.total_comm_bytes / 1e6:.2f} MB per inference",
            f"break-even: {advice.threshold_macs_per_byte:.1f} MACs per byte",
        ]
        for layer in advice.layers:
            verdict = "offload" if layer.offload else "keep local"
            lines.append(
                f"  {layer.name:14s} {layer.macs / 1e6:9.3f}M MACs  "
                f"{layer.comm_bytes / 1e6:7.3f} MB  "
                f"{layer.macs_per_byte:8.1f} MACs/B  -> {verdict}"
            )
        winner = "OFFLOAD (CHOCO)" if advice.offload_network else "LOCAL (TFLite)"
        lines.append(
            f"verdict: {winner} — local/offload energy = "
            f"{advice.energy_ratio:.2f}x"
        )
        return "\n".join(lines)
