"""CHOCO's encrypted applications (§5.1).

* :mod:`repro.apps.dnn` — client-aided DNN inference (BFV).
* :mod:`repro.apps.pagerank` — encrypted PageRank (BFV and CKKS), fully
  offloaded or client-aided.
* :mod:`repro.apps.knn` — K-Nearest-Neighbors over encrypted distances (CKKS).
* :mod:`repro.apps.kmeans` — K-Means clustering over encrypted distances (CKKS).
"""

from repro.apps.advisor import WorkloadAdvisor
from repro.apps.dnn import ClientAidedDnnPlan, choose_dnn_parameters, run_encrypted_inference
from repro.apps.knn import EncryptedKnn
from repro.apps.kmeans import EncryptedKMeans
from repro.apps.pagerank import (
    ClientAidedPageRank,
    FullyEncryptedPageRank,
    pagerank_reference,
)

__all__ = [
    "WorkloadAdvisor",
    "ClientAidedDnnPlan",
    "choose_dnn_parameters",
    "run_encrypted_inference",
    "EncryptedKnn",
    "EncryptedKMeans",
    "ClientAidedPageRank",
    "FullyEncryptedPageRank",
    "pagerank_reference",
]
