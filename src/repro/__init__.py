"""CHOCO / CHOCO-TACO: client-optimized encrypted compute offloading.

Reproduction of van der Hagen & Lucia, ASPLOS 2022.  See DESIGN.md for the
system inventory and EXPERIMENTS.md for the paper-vs-measured record.

Public API tour
---------------
``repro.hecore``
    From-scratch RNS BFV and CKKS homomorphic encryption.
``repro.core``
    The paper's contribution: rotational redundancy, encrypted linear
    algebra, the client-aided protocol, and parameter selection.
``repro.accel``
    The CHOCO-TACO accelerator model and its design-space exploration.
``repro.nn`` / ``repro.apps``
    Quantized DNN substrate and the encrypted applications (DNN inference,
    KNN, K-Means, PageRank).
``repro.platforms`` / ``repro.baselines``
    Client/server/radio cost models and prior-work comparison points.
"""

__version__ = "1.0.0"
