"""Synthetic datasets standing in for MNIST and CIFAR-10 (see DESIGN.md).

The paper's evaluation consumes image *shapes* and client costs, which are
data-independent; examples and tests still need realistic inputs, so these
generators produce class-structured images of the right geometry with
deterministic seeding.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def synthetic_mnist(count: int, seed: int = 0,
                    levels: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """*count* MNIST-shaped (1, 28, 28) images with 10 stroke-pattern classes.

    Pixel values are quantized to ``levels`` (default 4 = 2-bit inputs,
    matching CHOCO's aggressive quantization story).
    Returns (images, labels).
    """
    rng = np.random.default_rng(seed)
    images = np.zeros((count, 1, 28, 28), dtype=np.int64)
    labels = rng.integers(0, 10, count)
    peak = levels - 1
    for i, label in enumerate(labels):
        img = images[i, 0]
        if label % 2 == 0:                       # ring of class-dependent size
            r = 4 + label
            img[14 - r // 2: 14 + r // 2, 14 - r // 2: 14 + r // 2] = peak
            inner = max(1, r // 2 - 2)
            img[14 - inner: 14 + inner, 14 - inner: 14 + inner] = 0
        else:                                    # bar at class-dependent slant
            for y in range(4, 24):
                x = 4 + (y * (label % 5 + 1)) % 20
                img[y, max(0, x - 1): min(28, x + 2)] = peak
        noise = rng.integers(0, 2, (28, 28))
        np.clip(img + noise, 0, peak, out=img)
    return images, labels


def synthetic_cifar(count: int, seed: int = 0,
                    levels: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """*count* CIFAR-shaped (3, 32, 32) images with 10 color-texture classes."""
    rng = np.random.default_rng(seed)
    images = np.zeros((count, 3, 32, 32), dtype=np.int64)
    labels = rng.integers(0, 10, count)
    peak = levels - 1
    for i, label in enumerate(labels):
        dominant = label % 3
        stride = 2 + label % 4
        base = rng.integers(0, 2, (3, 32, 32))
        base[dominant] += peak - 1
        base[dominant, ::stride, :] = peak       # class texture: stripes
        np.clip(base, 0, peak, out=base)
        images[i] = base
    return images, labels


def clustered_points(n_per_cluster: int, centers: np.ndarray,
                     spread: float = 0.25,
                     seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian clusters for the distance-based algorithms (KNN, K-Means)."""
    rng = np.random.default_rng(seed)
    centers = np.asarray(centers, dtype=float)
    points = np.vstack([
        rng.normal(c, spread, (n_per_cluster, centers.shape[1]))
        for c in centers
    ])
    labels = np.repeat(np.arange(len(centers)), n_per_cluster)
    return points, labels
