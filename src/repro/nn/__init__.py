"""Quantized DNN substrate and the Table 5 model zoo.

Provides plaintext (client-side / local-baseline) layer implementations with
exact MAC, parameter, and shape accounting — the quantities every cost model
in the paper's evaluation consumes — plus builders for the four evaluated
networks: LeNet-Small, LeNet-Large, SqueezeNet (CIFAR-10), and VGG16.
"""

from repro.nn.layers import (
    AvgPoolLayer,
    ConvLayer,
    FcLayer,
    FlattenLayer,
    MaxPoolLayer,
    Network,
    ReluLayer,
)
from repro.nn.models import (
    NETWORK_BUILDERS,
    TABLE5_REFERENCE,
    lenet_small,
    lenet_large,
    squeezenet_cifar10,
    vgg16_cifar10,
)
from repro.nn.quantize import dequantize, quantize_tensor

__all__ = [
    "ConvLayer",
    "FcLayer",
    "ReluLayer",
    "MaxPoolLayer",
    "AvgPoolLayer",
    "FlattenLayer",
    "Network",
    "NETWORK_BUILDERS",
    "TABLE5_REFERENCE",
    "lenet_small",
    "lenet_large",
    "squeezenet_cifar10",
    "vgg16_cifar10",
    "quantize_tensor",
    "dequantize",
]
