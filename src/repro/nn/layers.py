"""Plaintext DNN layers with exact shape / MAC / parameter accounting.

Linear layers (conv, FC) run encrypted on the server in client-aided
inference; non-linear layers (ReLU, pooling) run in plaintext on the client.
Every layer knows its multiply-accumulate count and parameter count — the
quantities Table 5, Figure 2, and Figure 15 are built from — and implements
a numpy ``forward`` used for the local-inference baseline and for the
client-side halves of the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

Shape = Tuple[int, ...]


class Layer:
    """Base layer: shape propagation, cost accounting, forward."""

    #: True when the layer is linear and therefore offloaded to the HE server.
    is_linear = False

    def output_shape(self, input_shape: Shape) -> Shape:
        raise NotImplementedError

    def macs(self, input_shape: Shape) -> int:
        return 0

    def param_count(self) -> int:
        return 0

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError


@dataclass
class ConvLayer(Layer):
    """2-D convolution, stride 1 or 2, 'same' or 'valid' padding."""

    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int = 1
    padding: str = "same"
    weights: Optional[np.ndarray] = field(default=None, repr=False)

    is_linear = True

    def __post_init__(self):
        if self.padding not in ("same", "valid"):
            raise ValueError(f"unknown padding {self.padding}")
        if self.weights is None:
            rng = np.random.default_rng(self.in_channels * 1009 + self.out_channels)
            shape = (self.out_channels, self.in_channels,
                     self.kernel_size, self.kernel_size)
            self.weights = rng.normal(0, 0.5, shape)

    @property
    def pad(self) -> int:
        return self.kernel_size // 2 if self.padding == "same" else 0

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h = (h + 2 * self.pad - self.kernel_size) // self.stride + 1
        out_w = (w + 2 * self.pad - self.kernel_size) // self.stride + 1
        return (self.out_channels, out_h, out_w)

    def macs(self, input_shape: Shape) -> int:
        _, out_h, out_w = self.output_shape(input_shape)
        return (out_h * out_w * self.out_channels
                * self.in_channels * self.kernel_size ** 2)

    def param_count(self) -> int:
        return self.out_channels * self.in_channels * self.kernel_size ** 2

    def forward(self, x: np.ndarray) -> np.ndarray:
        c, h, w = x.shape
        out_c, out_h, out_w = self.output_shape(x.shape)
        p, f, s = self.pad, self.kernel_size, self.stride
        padded = np.pad(x, ((0, 0), (p, p), (p, p)))
        out = np.zeros((out_c, out_h, out_w), dtype=np.result_type(x, self.weights))
        for o in range(out_c):
            for y in range(out_h):
                for xx in range(out_w):
                    patch = padded[:, y * s: y * s + f, xx * s: xx * s + f]
                    out[o, y, xx] = np.sum(patch * self.weights[o])
        return out


@dataclass
class FcLayer(Layer):
    """Fully-connected layer."""

    in_features: int
    out_features: int
    weights: Optional[np.ndarray] = field(default=None, repr=False)

    is_linear = True

    def __post_init__(self):
        if self.weights is None:
            rng = np.random.default_rng(self.in_features * 31 + self.out_features)
            self.weights = rng.normal(0, 0.5, (self.out_features, self.in_features))

    def output_shape(self, input_shape: Shape) -> Shape:
        if int(np.prod(input_shape)) != self.in_features:
            raise ValueError(
                f"expected {self.in_features} inputs, got shape {input_shape}"
            )
        return (self.out_features,)

    def macs(self, input_shape: Shape) -> int:
        return self.in_features * self.out_features

    def param_count(self) -> int:
        return self.in_features * self.out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.weights @ x.ravel()


@dataclass
class ReluLayer(Layer):
    """ReLU activation (client-side, plaintext)."""

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0)


@dataclass
class _PoolLayer(Layer):
    size: int = 2
    stride: int = 2

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        return (c, (h - self.size) // self.stride + 1,
                (w - self.size) // self.stride + 1)

    def _windows(self, x: np.ndarray):
        c, out_h, out_w = self.output_shape(x.shape)
        for y in range(out_h):
            for xx in range(out_w):
                yield (y, xx), x[:, y * self.stride: y * self.stride + self.size,
                                 xx * self.stride: xx * self.stride + self.size]


@dataclass
class MaxPoolLayer(_PoolLayer):
    """Max pooling (client-side, plaintext)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.zeros(self.output_shape(x.shape), dtype=x.dtype)
        for (y, xx), window in self._windows(x):
            out[:, y, xx] = window.reshape(x.shape[0], -1).max(axis=1)
        return out


@dataclass
class AvgPoolLayer(_PoolLayer):
    """Average pooling (client-side, plaintext)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.zeros(self.output_shape(x.shape), dtype=np.float64)
        for (y, xx), window in self._windows(x):
            out[:, y, xx] = window.reshape(x.shape[0], -1).mean(axis=1)
        return out


@dataclass
class FireLayer(Layer):
    """A SqueezeNet fire module: squeeze 1x1, then parallel expand 1x1 and
    expand 3x3 branches over the squeeze output, channel-concatenated.

    Counts as three convolutional layers (matching how the paper's Table 5
    tallies SqueezeNet's 10 conv layers).
    """

    in_channels: int
    squeeze: int
    expand1: int
    expand3: int

    is_linear = True

    def __post_init__(self):
        self.squeeze_conv = ConvLayer(self.in_channels, self.squeeze, 1)
        self.expand1_conv = ConvLayer(self.squeeze, self.expand1, 1)
        self.expand3_conv = ConvLayer(self.squeeze, self.expand3, 3, padding="same")

    @property
    def convs(self):
        return (self.squeeze_conv, self.expand1_conv, self.expand3_conv)

    def output_shape(self, input_shape: Shape) -> Shape:
        _, h, w = self.squeeze_conv.output_shape(input_shape)
        return (self.expand1 + self.expand3, h, w)

    def macs(self, input_shape: Shape) -> int:
        mid = self.squeeze_conv.output_shape(input_shape)
        return (self.squeeze_conv.macs(input_shape)
                + self.expand1_conv.macs(mid) + self.expand3_conv.macs(mid))

    def param_count(self) -> int:
        return sum(c.param_count() for c in self.convs)

    def forward(self, x: np.ndarray) -> np.ndarray:
        squeezed = np.maximum(self.squeeze_conv.forward(x), 0)
        expanded = np.concatenate(
            [self.expand1_conv.forward(squeezed), self.expand3_conv.forward(squeezed)]
        )
        return np.maximum(expanded, 0)


@dataclass
class GlobalAvgPoolLayer(Layer):
    """Global average pooling to one value per channel (not tallied as a
    pooling layer, matching Table 5's census)."""

    def output_shape(self, input_shape: Shape) -> Shape:
        return (input_shape[0],)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1).mean(axis=1)


@dataclass
class FlattenLayer(Layer):
    """Flatten to a vector (free)."""

    def output_shape(self, input_shape: Shape) -> Shape:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.ravel()


@dataclass
class Network:
    """A named stack of layers with an input shape (Table 5 row)."""

    name: str
    input_shape: Shape
    layers: List[Layer]

    def shapes(self) -> List[Shape]:
        """Input shape of every layer (plus the final output shape)."""
        shapes = [self.input_shape]
        for layer in self.layers:
            shapes.append(layer.output_shape(shapes[-1]))
        return shapes

    @property
    def output_shape(self) -> Shape:
        return self.shapes()[-1]

    def total_macs(self) -> int:
        shapes = self.shapes()
        return sum(layer.macs(shape) for layer, shape in zip(self.layers, shapes))

    def total_params(self) -> int:
        return sum(layer.param_count() for layer in self.layers)

    def model_size_bytes(self, bits_per_weight: float = 32) -> float:
        """Serialized model size (Table 5's ``Mod. Sz.`` columns)."""
        return self.total_params() * bits_per_weight / 8

    def layer_census(self) -> dict:
        """Counts per layer kind (Table 5's ``# Layers`` columns)."""
        census = {"conv": 0, "fc": 0, "act": 0, "pool": 0}
        for layer in self.layers:
            if isinstance(layer, ConvLayer):
                census["conv"] += 1
            elif isinstance(layer, FireLayer):
                census["conv"] += 3   # squeeze + two expand branches
                census["act"] += 3    # each branch conv is ReLU'd
            elif isinstance(layer, FcLayer):
                census["fc"] += 1
            elif isinstance(layer, ReluLayer):
                census["act"] += 1
            elif isinstance(layer, _PoolLayer):
                census["pool"] += 1
        return census

    def linear_layers(self) -> List[Tuple[Layer, Shape]]:
        """The offloaded (linear) layers with their input shapes."""
        shapes = self.shapes()
        return [(layer, shape) for layer, shape in zip(self.layers, shapes)
                if layer.is_linear]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Plaintext end-to-end inference (the TFLite-baseline computation)."""
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def activation_op_count(self) -> int:
        """Client-side plaintext operations (activations, pooling, requant)."""
        shapes = self.shapes()
        ops = 0
        for layer, shape in zip(self.layers, shapes):
            if not layer.is_linear:
                ops += int(np.prod(shape))
        return ops
