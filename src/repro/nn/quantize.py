"""Symmetric linear quantization (§3.2: aggressive 4-bit input quantization).

CHOCO minimizes the BFV plaintext modulus by quantizing DNN weights and
activations to 4 bits (8-bit also supported; Table 5 reports accuracy for
float/8b/4b).  Quantized values are signed integers in
``[-2^(bits-1), 2^(bits-1) - 1]`` with a per-tensor power-of-two-free scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """Integer values plus the scale that maps them back to reals."""

    values: np.ndarray
    scale: float
    bits: int

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scale


def quantization_range(bits: int) -> int:
    """Largest representable magnitude at *bits* (symmetric signed)."""
    if bits < 2:
        raise ValueError("need at least 2 bits for signed quantization")
    return (1 << (bits - 1)) - 1


def quantize_tensor(tensor: np.ndarray, bits: int = 4) -> QuantizedTensor:
    """Quantize symmetrically to *bits* with a per-tensor scale."""
    tensor = np.asarray(tensor, dtype=np.float64)
    limit = quantization_range(bits)
    peak = float(np.max(np.abs(tensor))) or 1.0
    scale = peak / limit
    values = np.clip(np.rint(tensor / scale), -limit, limit).astype(np.int64)
    return QuantizedTensor(values=values, scale=scale, bits=bits)


def dequantize(values: np.ndarray, scale: float) -> np.ndarray:
    return np.asarray(values, dtype=np.float64) * scale


def requantize(accumulator: np.ndarray, in_scale: float, bits: int = 4) -> QuantizedTensor:
    """Re-quantize a wide accumulator back to *bits* (the client-side step
    between DNN layers in client-aided inference)."""
    return quantize_tensor(accumulator.astype(np.float64) * in_scale, bits)


def accumulation_bits(bits: int, fan_in: int) -> int:
    """Worst-case accumulator width for a dot product of *fan_in* terms.

    This drives plaintext-modulus selection: ``t`` must exceed the widest
    encrypted accumulation (§3.2, Table 4's ``log2 t`` column).
    """
    return 2 * bits + int(np.ceil(np.log2(max(fan_in, 1))))
