"""The Table 5 model zoo: the four DNNs the paper evaluates.

Architectures follow the cited sources (mlpack's digit recognizer, the
TensorFlow tutorial LeNet, the CIFAR-10 SqueezeNet of [17], and the CIFAR
VGG16 of [42]); weights are synthetic (the evaluation consumes shapes, MAC
counts, model sizes, and ciphertext counts, not accuracy — accuracy columns
are carried as published reference values in :data:`TABLE5_REFERENCE`).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.nn.layers import (
    AvgPoolLayer,
    ConvLayer,
    FcLayer,
    FireLayer,
    FlattenLayer,
    GlobalAvgPoolLayer,
    MaxPoolLayer,
    Network,
    ReluLayer,
)


def lenet_small() -> Network:
    """LeNet-Small [24]: 2 conv, 1 FC, 2 act, 2 pool, ~0.24M MACs (MNIST)."""
    return Network(
        name="LeNetSm",
        input_shape=(1, 28, 28),
        layers=[
            ConvLayer(1, 8, 5, padding="valid"),
            ReluLayer(),
            MaxPoolLayer(),
            ConvLayer(8, 10, 5, padding="valid"),
            ReluLayer(),
            MaxPoolLayer(),
            FlattenLayer(),
            FcLayer(160, 10),
        ],
    )


def lenet_large() -> Network:
    """LeNet-Large [69]: 2 conv, 2 FC, 3 act, 2 pool, ~12.27M MACs (MNIST)."""
    return Network(
        name="LeNetLg",
        input_shape=(1, 28, 28),
        layers=[
            ConvLayer(1, 32, 5, padding="same"),
            ReluLayer(),
            MaxPoolLayer(),
            ConvLayer(32, 64, 5, padding="same"),
            ReluLayer(),
            MaxPoolLayer(),
            FlattenLayer(),
            FcLayer(3136, 512),
            ReluLayer(),
            FcLayer(512, 10),
        ],
    )


def squeezenet_cifar10() -> Network:
    """SqueezeNet for CIFAR-10 [17]: 10 conv, 0 FC, 10 act, 3 pool, ~32.6M MACs.

    Two fire modules at 16x16 followed by a squeeze-style reduce/expand pair
    and a 1x1 classifier conv with global average pooling (no FC layers),
    sized to match the published MAC count.
    """
    layers = [
        ConvLayer(3, 128, 3, padding="same"),
        ReluLayer(),
        MaxPoolLayer(),                         # 32 -> 16
        FireLayer(128, squeeze=32, expand1=64, expand3=80),    # -> 144 @ 16
        FireLayer(144, squeeze=32, expand1=96, expand3=96),    # -> 192 @ 16
        MaxPoolLayer(),                         # 16 -> 8
        ConvLayer(192, 64, 1),                  # squeeze-style reduce
        ReluLayer(),
        ConvLayer(64, 320, 3, padding="same"),
        ReluLayer(),
        MaxPoolLayer(),                         # 8 -> 4
        ConvLayer(320, 10, 1),                  # 1x1 classifier conv
        ReluLayer(),
        GlobalAvgPoolLayer(),
    ]
    return Network(name="SqzNet", input_shape=(3, 32, 32), layers=layers)


def vgg16_cifar10() -> Network:
    """VGG16 for CIFAR-10 [42]: 13 conv, 2 FC, 14 act, 5 pool, ~313M MACs."""
    cfg = [64, 64, "P", 128, 128, "P", 256, 256, 256, "P",
           512, 512, 512, "P", 512, 512, 512, "P"]
    layers = []
    in_ch = 3
    for item in cfg:
        if item == "P":
            layers.append(MaxPoolLayer())
        else:
            layers += [ConvLayer(in_ch, item, 3, padding="same"), ReluLayer()]
            in_ch = item
    layers += [
        FlattenLayer(),
        FcLayer(512, 512),
        ReluLayer(),
        FcLayer(512, 10),
    ]
    return Network(name="VGG16", input_shape=(3, 32, 32), layers=layers)


NETWORK_BUILDERS: Dict[str, Callable[[], Network]] = {
    "LeNetSm": lenet_small,
    "LeNetLg": lenet_large,
    "SqzNet": squeezenet_cifar10,
    "VGG16": vgg16_cifar10,
}

#: Table 5 as published: layer census, MACs (x1e6), accuracy (float/8b/4b %),
#: model size (MB, float/4b), and per-inference communication (MB).
TABLE5_REFERENCE = {
    "LeNetSm": {
        "layers": {"conv": 2, "fc": 1, "act": 2, "pool": 2},
        "macs_e6": 0.24, "acc": (99.0, 94.9, 93.8),
        "size_mb": (0.02, 0.01), "comm_mb": 0.66, "dataset": "MNIST",
    },
    "LeNetLg": {
        "layers": {"conv": 2, "fc": 2, "act": 3, "pool": 2},
        "macs_e6": 12.27, "acc": (98.7, 97.2, 96.4),
        "size_mb": (8.22, 2.07), "comm_mb": 2.6, "dataset": "MNIST",
    },
    "SqzNet": {
        "layers": {"conv": 10, "fc": 0, "act": 10, "pool": 3},
        "macs_e6": 32.60, "acc": (76.5, 74.0, 15.0),
        "size_mb": (0.57, 0.16), "comm_mb": 13.8, "dataset": "CIFAR-10",
    },
    "VGG16": {
        "layers": {"conv": 13, "fc": 2, "act": 14, "pool": 5},
        "macs_e6": 313.26, "acc": (70.0, 66.0, 21.0),
        "size_mb": (56.40, 14.13), "comm_mb": 22.2, "dataset": "CIFAR-10",
    },
}
