"""The multi-session offload server: sessions, scheduling, backpressure.

An :class:`OffloadServer` owns one HE parameter set and a registry of named
operations.  Each connected client gets a **session**: its own evaluation-key
store (public / relinearization / Galois — uploaded once, the offline phase
of the protocol), its own bounded request queue, and its own metrics.

Scheduling is fair round-robin across sessions: a single scheduler task
rotates through every session with queued work and dispatches one request at
a time into a bounded worker pool (``concurrency`` slots), so a chatty
session cannot starve a quiet one.  Within one session execution is strictly
serialized — two workers never touch the same session's evaluation context
(or its ``state``) concurrently — while different sessions still run in
parallel.  When a session's queue is full the server answers ``BUSY`` with a
retry-after hint instead of buffering unboundedly — backpressure is part of
the wire contract, not an afterthought.

The server is built for lossy links (the paper's client model, §7):

* **Idempotent compute.**  ``COMPUTE`` request ids are idempotency keys.
  A resubmitted id that is still queued or executing is silently absorbed
  (the original's ``RESULT`` answers both); an id in the recently-completed
  dedupe window gets the cached ``RESULT`` replayed without re-executing the
  handler.  A timed-out retry can therefore never run a handler twice.
* **Session resumption.**  A lost connection *detaches* the session rather
  than destroying it.  Within ``resume_grace_s`` the client can open a new
  connection and present its resume token (``RESUME``); the server reattaches
  the session — keystore, state, metrics, dedupe window — so megabytes of
  Galois keys are never re-uploaded.  Work queued before the disconnect keeps
  executing while detached; its results wait in the dedupe window.
* **Heartbeats and reaping.**  ``PING`` is answered with ``PONG``; a reaper
  task closes detached sessions whose grace period expired and (optionally)
  live sessions idle past ``idle_timeout_s``.

The server-side evaluation context is built from the *uploaded* keys only.
It mechanically forbids decryption (raising
:class:`~repro.core.protocol.ProtocolViolation`, the same boundary
``ClientAidedSession.server_compute`` enforces) and refuses to fabricate
evaluation keys the client never sent.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import secrets
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.protocol import ProtocolViolation
from repro.hecore.ciphertext import Ciphertext
from repro.hecore.params import EncryptionParameters, SchemeType
from repro.hecore.serialize import (
    deserialize_ciphertext,
    deserialize_galois_keys,
    deserialize_public_key,
    deserialize_relin_key,
    serialize_ciphertext,
)
from repro.runtime.framing import (
    MAX_FRAME_BYTES,
    Busy,
    Compute,
    Error,
    ErrorCode,
    FrameError,
    Hello,
    HelloAck,
    KeyAck,
    KeyKind,
    KeyUpload,
    MessageType,
    Ping,
    Pong,
    Result,
    Resume,
    ResumeAck,
)
from repro.runtime.metrics import RuntimeMetrics, SessionMetrics
from repro.runtime.transport import TcpTransport, Transport

logger = logging.getLogger("repro.runtime")


class MissingEvaluationKey(ValueError):
    """An operation needed an evaluation key the session never uploaded."""


@dataclass
class ComputeRequest:
    """One deserialized offload request, queued for a worker.

    ``blobs`` keeps the raw wire ciphertexts alongside the deserialized
    ``cts`` so a pooled executor can forward them to its subprocess without
    a redundant re-serialization round.
    """

    request_id: int
    op: str
    meta: Dict
    cts: List[Ciphertext]
    blobs: Tuple[bytes, ...] = ()
    received_at: float = field(default_factory=time.monotonic)


#: A handler takes ``(session, request)`` and returns a list of result
#: ciphertexts, or a ``(ciphertexts, meta)`` tuple.  Plain functions run in
#: a worker thread (keeping the event loop responsive during heavy HE);
#: coroutine functions are awaited on the loop.
Handler = Callable[["ServerSession", ComputeRequest], Any]


class ServerSession:
    """One client's server-side state: keys, queue, metrics, eval context."""

    def __init__(self, session_id: int, transport: Transport,
                 server: "OffloadServer", metrics: SessionMetrics):
        self.id = session_id
        self.transport = transport
        self.server = server
        self.metrics = metrics
        self.keystore: Dict[KeyKind, Any] = {}
        #: Raw uploaded key blobs, retained so a pooled evaluation executor
        #: can re-ship them to its subprocess (Galois uploads accumulate).
        self.key_blobs: Dict[KeyKind, List[bytes]] = {}
        #: Monotonic per-kind upload counters; the eval pool compares them
        #: against what it already shipped to each subprocess.
        self.key_versions: Dict[KeyKind, int] = {}
        #: Kinds dropped by the key-store LRU; non-empty means the next
        #: COMPUTE is answered with a KEYS_EVICTED re-upload signal.
        self.evicted_kinds: set = set()
        #: Free-form per-session application state (e.g. stored KNN batches).
        self.state: Dict[str, Any] = {}
        self.queue: Deque[ComputeRequest] = deque()
        self.ctx = None
        self._send_lock = asyncio.Lock()
        self.closed = False
        #: Secret the client must present in a RESUME frame to reattach.
        self.resume_token: bytes = secrets.token_bytes(16)
        #: Request ids currently queued or executing (idempotency guard).
        self.inflight_ids: set = set()
        #: Recently completed ids -> packed RESULT payload, bounded by the
        #: server's ``dedupe_window`` (oldest evicted first).
        self.completed: "OrderedDict[int, bytes]" = OrderedDict()
        #: True while a worker runs this session's handler (per-session
        #: execution is serialized; sessions stay parallel across each other).
        self.executing = False
        #: When the connection died (None while attached).
        self.detached_at: Optional[float] = None
        #: Monotonic timestamp of the last frame received from the client.
        self.last_seen: float = time.monotonic()
        #: The client said BYE: no retention, the session dies with the
        #: connection.
        self.bye_received = False

    @property
    def params(self) -> EncryptionParameters:
        return self.server.params

    def ensure_context(self):
        """The session's evaluation context, built on first use."""
        if self.ctx is None:
            self.ctx = self.server._make_eval_context(self)
        return self.ctx

    async def send(self, mtype: MessageType, payload: bytes) -> None:
        """Serialized frame send (workers and the session loop interleave)."""
        async with self._send_lock:
            await self.transport.send_frame(mtype, payload)

    def remember_result(self, request_id: int, payload: bytes) -> None:
        """Retire *request_id* into the dedupe window (replayable RESULT)."""
        self.inflight_ids.discard(request_id)
        self.completed[request_id] = payload
        self.completed.move_to_end(request_id)
        while len(self.completed) > self.server.dedupe_window:
            self.completed.popitem(last=False)

    def key_mask(self) -> int:
        mask = 0
        for kind in self.keystore:
            mask |= 1 << (int(kind) - 1)
        return mask


#: Context-counter -> SessionMetrics-field pairs metered per request, in
#: both the process-pool and inline execution paths.
_METERED_COUNTERS = (
    ("rotate", "rotations"),
    ("hoisted_decompose", "hoisted_decomposes"),
    ("naive_decompose", "naive_decomposes"),
    ("ntt_forward", "ntt_forward"),
    ("ntt_inverse", "ntt_inverse"),
    ("ntt_elided", "ntt_elided"),
    ("limb_drops", "limb_drops"),
    ("limbs_live", "limbs_live"),
    ("level_replans", "level_replans"),
)


class OffloadServer:
    """Serves the client-aided protocol to many concurrent sessions."""

    def __init__(self, params: EncryptionParameters, *,
                 queue_limit: int = 16, concurrency: int = 1,
                 retry_after_ms: int = 50, banner: str = "choco-offload",
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 context_seed: bytes = b"offload-server-eval",
                 dedupe_window: int = 64,
                 resume_grace_s: float = 30.0,
                 idle_timeout_s: Optional[float] = None,
                 session_id_start: int = 1, session_id_step: int = 1,
                 keystore_limit: Optional[int] = None,
                 eval_pool=None,
                 op_config: Optional[Dict[str, Any]] = None,
                 verbose: bool = False):
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        if dedupe_window < 1:
            raise ValueError("dedupe_window must be at least 1")
        if session_id_start < 1 or session_id_step < 1:
            raise ValueError("session ids must start at >= 1 and step >= 1")
        if keystore_limit is not None and keystore_limit < 1:
            raise ValueError("keystore_limit must be at least 1 (or None)")
        self.params = params
        self.queue_limit = queue_limit
        self.concurrency = concurrency
        self.retry_after_ms = retry_after_ms
        self.banner = banner
        self.max_frame_bytes = max_frame_bytes
        self.dedupe_window = dedupe_window
        self.resume_grace_s = resume_grace_s
        self.idle_timeout_s = idle_timeout_s
        self.verbose = verbose
        #: Fleet workers bound this to a cap so N shared-nothing processes
        #: don't hold N full key sets for every historical session.
        self.keystore_limit = keystore_limit
        #: Optional :class:`~repro.runtime.evalpool.EvalPool`; ops marked
        #: via :meth:`register_pooled` execute in its subprocesses.
        self.eval_pool = eval_pool
        #: Free-form per-deployment handler configuration (e.g. the fleet
        #: soak's execution-log directory), reachable as
        #: ``session.server.op_config`` from any handler.
        self.op_config: Dict[str, Any] = dict(op_config or {})
        self._context_seed = context_seed
        self.metrics = RuntimeMetrics()
        self._handlers: Dict[str, Handler] = {}
        self._pooled_ops: set = set()
        self._sessions: Dict[int, ServerSession] = {}
        self._rr: Deque[int] = deque()
        #: Sharded deployments give each worker a disjoint arithmetic
        #: progression (start=i+1, step=n_workers) so a session id names
        #: its owning worker: (sid - 1) % n_workers == i.  Sticky routing
        #: becomes a pure function of the id — no shared routing table.
        self._ids = itertools.count(session_id_start, session_id_step)
        #: LRU over sessions holding evaluation keys (order = recency).
        self._key_lru: "OrderedDict[int, None]" = OrderedDict()
        self._work = asyncio.Event()
        self._slots = asyncio.Semaphore(concurrency)
        self._scheduler_task: Optional[asyncio.Task] = None
        self._reaper_task: Optional[asyncio.Task] = None
        self._worker_tasks: set = set()
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._closing = False
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.register("echo", _echo_handler)

    # --------------------------------------------------------------- setup
    def register(self, op: str, handler: Handler) -> None:
        """Register (or replace) the handler for operation *op*."""
        self._handlers[op] = handler

    def register_pooled(self, op: str) -> None:
        """Mark *op* for execution in the server's eval pool.

        The op must also be registered (or be registrable) as a pure pooled
        function in the pool's own registry; the inline handler registered
        via :meth:`register` remains the fallback when no pool is attached.
        """
        if op not in self._handlers:
            # Admission checks key off _handlers; a pooled-only op still
            # needs an entry so UNKNOWN_OP is not returned for it.
            self._handlers[op] = _pooled_only_handler(op)
        self._pooled_ops.add(op)

    async def start(self, host: str = "127.0.0.1", port: int = 0,
                    ) -> Tuple[str, int]:
        """Listen on TCP; returns the bound (host, port)."""
        self._ensure_scheduler()
        self._tcp_server = await asyncio.start_server(
            self._on_tcp_connection, host, port)
        sockname = self._tcp_server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Close the listener and all sessions; print metrics if verbose."""
        self._closing = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for session in list(self._sessions.values()):
            self._unregister(session)
            await session.transport.close()
        for task in (self._scheduler_task, self._reaper_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._scheduler_task = None
        self._reaper_task = None
        for task in list(self._worker_tasks):
            task.cancel()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        if self.verbose:
            print(self.metrics.render())

    def _note_task_death(self, task: Optional[asyncio.Task],
                         name: str) -> None:
        """Surface why a core task died before it gets respawned.

        A dead scheduler used to be respawned silently — the server kept
        working but the exception (and the fact it ever happened) was
        unobservable.  Now every crash-respawn is counted and the last
        error is retained in the metrics snapshot.
        """
        if task is None or not task.done() or task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        self.metrics.scheduler_restarts += 1
        self.metrics.last_scheduler_error = f"{type(exc).__name__}: {exc}"
        logger.error("offload %s task died (restarting): %s",
                     name, self.metrics.last_scheduler_error)

    def _ensure_scheduler(self) -> None:
        if self._scheduler_task is None or self._scheduler_task.done():
            self._note_task_death(self._scheduler_task, "scheduler")
            self._scheduler_task = asyncio.ensure_future(self._scheduler())
        if self._reaper_task is None or self._reaper_task.done():
            self._note_task_death(self._reaper_task, "reaper")
            self._reaper_task = asyncio.ensure_future(self._reaper())

    # ----------------------------------------------------- session serving
    async def _on_tcp_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        await self.serve_transport(
            TcpTransport(reader, writer, self.max_frame_bytes))

    async def serve_transport(self, transport: Transport) -> None:
        """Serve one session over any :class:`Transport` until it closes."""
        self._ensure_scheduler()
        session: Optional[ServerSession] = None
        try:
            session = await self._handshake(transport)
            if session is None:
                return
            await self._session_loop(session)
        except (ConnectionError, FrameError):
            pass  # peer vanished or spoke garbage: drop the connection
        finally:
            # Only the transport currently attached may detach the session —
            # a connection superseded by RESUME must not tear down its heir.
            if (session is not None and session.transport is transport
                    and not session.closed):
                if (session.bye_received or self._closing
                        or self.resume_grace_s <= 0):
                    self._unregister(session)
                else:
                    self._detach(session)
            await transport.close()

    async def _handshake(self, transport: Transport,
                         ) -> Optional[ServerSession]:
        mtype, _flags, payload = await transport.recv_frame()
        if mtype is MessageType.RESUME:
            return await self._handle_resume(transport, payload)
        if mtype is not MessageType.HELLO:
            await transport.send_frame(MessageType.ERROR, Error(
                0, ErrorCode.BAD_FRAME, "expected HELLO").pack())
            return None
        try:
            hello = Hello.unpack(payload)
        except FrameError as exc:
            await transport.send_frame(MessageType.ERROR, Error(
                0, ErrorCode.BAD_FRAME, str(exc)).pack())
            return None
        mismatch = hello.mismatch(self.params)
        if mismatch is not None:
            self.metrics.sessions_rejected += 1
            await transport.send_frame(MessageType.ERROR, Error(
                0, ErrorCode.PARAMS_MISMATCH,
                f"parameter mismatch: {mismatch}").pack())
            return None
        session_id = next(self._ids)
        metrics = self.metrics.open_session(session_id, transport.peer_name)
        session = ServerSession(session_id, transport, self, metrics)
        self._sessions[session_id] = session
        self._rr.append(session_id)
        await transport.send_frame(MessageType.HELLO_ACK, HelloAck(
            session_id, self.queue_limit, self.concurrency, self.banner,
            session.resume_token,
            int(max(self.resume_grace_s, 0) * 1000)).pack())
        return session

    async def _handle_resume(self, transport: Transport, payload: bytes,
                             ) -> Optional[ServerSession]:
        try:
            resume = Resume.unpack(payload)
        except FrameError as exc:
            await transport.send_frame(MessageType.ERROR, Error(
                0, ErrorCode.BAD_FRAME, str(exc)).pack())
            return None
        session = self._sessions.get(resume.session_id)
        if (session is None or session.closed or session.bye_received
                or not secrets.compare_digest(session.resume_token,
                                              resume.token)):
            self.metrics.resumes_rejected += 1
            await transport.send_frame(MessageType.ERROR, Error(
                0, ErrorCode.RESUME_REJECTED,
                f"no resumable session {resume.session_id}").pack())
            return None
        old = session.transport
        session.transport = transport
        session.detached_at = None
        session.last_seen = time.monotonic()
        session.metrics.resumes += 1
        self.metrics.sessions_resumed += 1
        if old is not transport:
            # Kick the superseded connection loose; its serve loop sees the
            # closed transport and exits without touching the session.
            await old.close()
        await transport.send_frame(MessageType.RESUME_ACK, ResumeAck(
            session.id, self.queue_limit, self.concurrency,
            session.key_mask(), self.banner).pack())
        return session

    async def _session_loop(self, session: ServerSession) -> None:
        while True:
            mtype, _flags, payload = await session.transport.recv_frame()
            session.last_seen = time.monotonic()
            session.metrics.bytes_up += len(payload)
            if mtype is MessageType.BYE:
                session.bye_received = True
                return
            if mtype is MessageType.KEY_UPLOAD:
                await self._handle_key_upload(session, payload)
            elif mtype is MessageType.COMPUTE:
                await self._handle_compute(session, payload)
            elif mtype is MessageType.PING:
                await self._handle_ping(session, payload)
            elif mtype is MessageType.ERROR:
                return  # client-side fatal error: drop the session
            else:
                session.metrics.errors += 1
                await session.send(MessageType.ERROR, Error(
                    0, ErrorCode.BAD_FRAME,
                    f"unexpected {mtype.name} frame").pack())

    async def _handle_ping(self, session: ServerSession,
                           payload: bytes) -> None:
        try:
            ping = Ping.unpack(payload)
        except FrameError:
            ping = Ping(0)
        session.metrics.pings += 1
        await session.send(MessageType.PONG, Pong(ping.nonce).pack())

    async def _handle_key_upload(self, session: ServerSession,
                                 payload: bytes) -> None:
        try:
            upload = KeyUpload.unpack(payload)
            if upload.kind is KeyKind.PUBLIC:
                key = deserialize_public_key(upload.blob, self.params)
            elif upload.kind is KeyKind.RELIN:
                key = deserialize_relin_key(upload.blob, self.params)
            else:
                key = deserialize_galois_keys(upload.blob, self.params)
        except ValueError as exc:
            session.metrics.errors += 1
            await session.send(MessageType.ERROR, Error(
                0, ErrorCode.BAD_FRAME, f"bad key upload: {exc}").pack())
            return
        if upload.kind is KeyKind.GALOIS and upload.kind in session.keystore:
            # Incremental key provisioning: later uploads extend the set.
            session.keystore[upload.kind].keys.update(key.keys)
            session.key_blobs.setdefault(upload.kind, []).append(upload.blob)
        else:
            session.keystore[upload.kind] = key
            session.key_blobs[upload.kind] = [upload.blob]
        session.key_versions[upload.kind] = (
            session.key_versions.get(upload.kind, 0) + 1)
        session.evicted_kinds.discard(upload.kind)
        if session.ctx is not None and upload.kind is KeyKind.GALOIS:
            session.ctx._galois = session.keystore[KeyKind.GALOIS]
        session.metrics.key_uploads += 1
        self._touch_keys(session)
        self._maybe_evict_keys(keep=session)
        await session.send(MessageType.KEY_ACK, KeyAck(upload.kind).pack())

    async def _handle_compute(self, session: ServerSession,
                              payload: bytes) -> None:
        try:
            compute = Compute.unpack(payload)
        except FrameError as exc:
            session.metrics.errors += 1
            await session.send(MessageType.ERROR, Error(
                0, ErrorCode.BAD_FRAME, str(exc)).pack())
            return
        # Idempotency: a resubmitted request id is answered, never re-run.
        cached = session.completed.get(compute.request_id)
        if cached is not None:
            session.metrics.results_replayed += 1
            await session.send(MessageType.RESULT, cached)
            return
        if compute.request_id in session.inflight_ids:
            # Still queued or executing: the original's RESULT answers the
            # retry (same request id on the same connection).
            session.metrics.duplicates_suppressed += 1
            return
        if compute.op not in self._handlers:
            session.metrics.errors += 1
            await session.send(MessageType.ERROR, Error(
                compute.request_id, ErrorCode.UNKNOWN_OP,
                f"unknown operation {compute.op!r}").pack())
            return
        if session.evicted_kinds:
            # Re-upload-on-miss: the LRU dropped this session's keys while
            # it was idle.  Signal before any execution so the client can
            # re-provision and resubmit the *same* request id — the
            # exactly-once window is untouched (nothing ran).
            session.metrics.reupload_signals += 1
            kinds = ",".join(sorted(k.name for k in session.evicted_kinds))
            await session.send(MessageType.ERROR, Error(
                compute.request_id, ErrorCode.KEYS_EVICTED,
                f"keys evicted: {kinds}").pack())
            return
        if len(session.queue) >= self.queue_limit:
            session.metrics.busy_rejections += 1
            await session.send(MessageType.BUSY, Busy(
                compute.request_id, self.retry_after_ms,
                len(session.queue)).pack())
            return
        try:
            cts = [deserialize_ciphertext(blob, self.params)
                   for blob in compute.blobs]
        except ValueError as exc:
            session.metrics.errors += 1
            await session.send(MessageType.ERROR, Error(
                compute.request_id, ErrorCode.BAD_FRAME,
                f"bad ciphertext: {exc}").pack())
            return
        session.queue.append(ComputeRequest(
            compute.request_id, compute.op, compute.meta, cts,
            tuple(compute.blobs)))
        session.inflight_ids.add(compute.request_id)
        session.metrics.requests += 1
        session.metrics.ciphertexts_in += len(cts)
        session.metrics.queue_depth = len(session.queue)
        if session.keystore:
            self._touch_keys(session)  # active sessions stay LRU-hot
        self._work.set()

    def _detach(self, session: ServerSession) -> None:
        """Keep the session for ``resume_grace_s``; the reaper enforces it."""
        session.detached_at = time.monotonic()

    def _unregister(self, session: ServerSession) -> None:
        session.closed = True
        self._sessions.pop(session.id, None)
        self._key_lru.pop(session.id, None)
        if self.eval_pool is not None:
            self.eval_pool.forget_session(session.id)
        try:
            self._rr.remove(session.id)
        except ValueError:
            pass
        session.metrics.queue_depth = 0

    # ---------------------------------------------------- key-store LRU
    def _touch_keys(self, session: ServerSession) -> None:
        self._key_lru[session.id] = None
        self._key_lru.move_to_end(session.id)

    def _maybe_evict_keys(self, keep: ServerSession) -> None:
        """Enforce ``keystore_limit`` by dropping the coldest idle keys.

        Only sessions with nothing queued or executing are eligible — an
        eviction never invalidates work already admitted.  The victim's
        next COMPUTE gets a ``KEYS_EVICTED`` signal and the client
        re-uploads transparently (charged once per eviction event).
        """
        if self.keystore_limit is None:
            return
        while len(self._key_lru) > self.keystore_limit:
            victim = None
            for sid in self._key_lru:  # oldest first
                candidate = self._sessions.get(sid)
                if candidate is None:
                    victim = sid  # stale entry: session already gone
                    break
                if (candidate is not keep and not candidate.executing
                        and not candidate.queue):
                    victim = sid
                    break
            if victim is None:
                return  # everything over the cap is busy; retry later
            self._key_lru.pop(victim, None)
            session = self._sessions.get(victim)
            if session is None:
                continue
            session.evicted_kinds = set(session.keystore)
            session.keystore.clear()
            session.key_blobs.clear()
            session.ctx = None  # rebuilt from the re-uploaded keys
            session.metrics.key_evictions += 1
            if self.eval_pool is not None:
                self.eval_pool.forget_session(session.id)

    # ----------------------------------------------------------- scheduling
    def _next_request(self,
                      ) -> Tuple[Optional[ServerSession],
                                 Optional[ComputeRequest]]:
        """Fair pick: rotate the session ring, take one queued request.

        Sessions with a handler already running are skipped — per-session
        execution is serialized so two workers never share one session's
        evaluation context (or its op counters).
        """
        for _ in range(len(self._rr)):
            sid = self._rr[0]
            self._rr.rotate(-1)
            session = self._sessions.get(sid)
            if session is not None and session.queue and not session.executing:
                session.executing = True
                request = session.queue.popleft()
                session.metrics.queue_depth = len(session.queue)
                return session, request
        return None, None

    async def _scheduler(self) -> None:
        while True:
            await self._work.wait()
            # Acquire the compute slot BEFORE popping a request: a request
            # must stay in its session queue — visible to the backpressure
            # check — until a worker can actually run it.
            await self._slots.acquire()
            try:
                session, request = self._next_request()
            except BaseException:
                # If picking crashes, the slot must not leak — a respawned
                # scheduler would otherwise deadlock on an empty semaphore.
                self._slots.release()
                raise
            if session is None:
                self._slots.release()
                self._work.clear()
                continue
            task = asyncio.ensure_future(self._execute(session, request))
            self._worker_tasks.add(task)
            task.add_done_callback(self._worker_tasks.discard)

    async def _reaper(self) -> None:
        """Close detached sessions past grace and (optionally) idle ones."""
        interval = max(0.02, min(1.0, max(self.resume_grace_s, 0.1) / 5))
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for session in list(self._sessions.values()):
                expired_detach = (
                    session.detached_at is not None
                    and now - session.detached_at >= self.resume_grace_s)
                idle = (
                    self.idle_timeout_s is not None
                    and session.detached_at is None
                    and now - session.last_seen >= self.idle_timeout_s
                    and not session.queue and not session.executing)
                if expired_detach or idle:
                    self._unregister(session)
                    self.metrics.sessions_reaped += 1
                    await session.transport.close()

    async def _execute(self, session: ServerSession,
                       request: ComputeRequest) -> None:
        self.metrics.record_dispatch(session.id)
        started = time.monotonic()
        try:
            if self.eval_pool is not None and request.op in self._pooled_ops:
                # Process-pool path: the handler runs in a subprocess with
                # its own rebuilt context; the asyncio loop stays free for
                # keys/heartbeats.  Raw request blobs go over as-is and
                # serialized results come back — no pickled HE objects.
                session.metrics.handler_invocations += 1
                blobs, meta, counters = await self.eval_pool.execute(
                    session, request)
                blobs = tuple(blobs)
                for count_key, metric_key in _METERED_COUNTERS:
                    setattr(session.metrics, metric_key,
                            getattr(session.metrics, metric_key)
                            + counters.get(count_key, 0))
            else:
                handler = self._handlers[request.op]
                session.ensure_context()
                session.metrics.handler_invocations += 1
                counts_before = dict(session.ctx.counts)
                if asyncio.iscoroutinefunction(handler):
                    result = await handler(session, request)
                else:
                    result = await asyncio.to_thread(handler, session,
                                                     request)
                counts = session.ctx.counts
                for count_key, metric_key in _METERED_COUNTERS:
                    setattr(session.metrics, metric_key,
                            getattr(session.metrics, metric_key)
                            + counts.get(count_key, 0)
                            - counts_before.get(count_key, 0))
                cts, meta = _normalize_result(result)
                blobs = tuple(serialize_ciphertext(ct, compress_seed=False)
                              for ct in cts)
            payload = Result(request.request_id, meta, blobs).pack()
            # Cache BEFORE sending: if the connection is dead the client
            # resumes and replays the id, and the cached RESULT answers it.
            session.remember_result(request.request_id, payload)
            if not session.closed:
                try:
                    await session.send(MessageType.RESULT, payload)
                except (ConnectionError, OSError):
                    pass  # detached mid-send; the dedupe window serves it
                else:
                    session.metrics.responses += 1
                    session.metrics.ciphertexts_out += len(blobs)
                    session.metrics.bytes_down += len(payload)
                    session.metrics.observe_latency(time.monotonic() - started)
        except ProtocolViolation as exc:
            await self._send_error(session, request,
                                   ErrorCode.PROTOCOL_VIOLATION, exc)
        except MissingEvaluationKey as exc:
            await self._send_error(session, request, ErrorCode.MISSING_KEYS,
                                   exc)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — one bad request must not
            # take down the serving loop; the typed error reaches the client.
            code = ErrorCode.HANDLER_FAILED
            if isinstance(exc, ValueError) and "Galois" in str(exc):
                code = ErrorCode.MISSING_KEYS
            await self._send_error(session, request, code, exc)
        finally:
            session.executing = False
            self._slots.release()
            self._work.set()  # re-check queues freed up by this completion

    async def _send_error(self, session: ServerSession,
                          request: ComputeRequest, code: ErrorCode,
                          exc: Exception) -> None:
        session.metrics.errors += 1
        # Failed ids leave the idempotency window: an explicit client retry
        # after a typed error is a fresh execution, not a replay.
        session.inflight_ids.discard(request.request_id)
        if session.closed:
            return
        try:
            await session.send(MessageType.ERROR, Error(
                request.request_id, code, f"{type(exc).__name__}: {exc}"
            ).pack())
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------- eval contexts
    def _make_eval_context(self, session: ServerSession):
        return build_restricted_context(self.params, session.keystore,
                                        self._context_seed)


def build_restricted_context(params: EncryptionParameters,
                             keystore: Dict[KeyKind, Any],
                             context_seed: bytes):
    """A decrypt-forbidden evaluator built from *uploaded* keys only.

    The context class generates its own (unrelated, never-used) key
    material at construction; what matters is that decryption is
    mechanically forbidden and relinearization/rotation resolve to the
    keys the client uploaded — the server cannot fabricate either.
    Shared by :class:`OffloadServer` sessions and by eval-pool subprocesses
    (:mod:`repro.runtime.evalpool`), which rebuild the same restricted
    context from serialized params and shipped key blobs.
    """
    from repro.hecore.bfv import BfvContext
    from repro.hecore.ckks import CkksContext

    cls = (BfvContext if params.scheme is SchemeType.BFV
           else CkksContext)
    ctx = cls(params, seed=context_seed)

    def _forbidden_decrypt(*_args, **_kwargs):
        raise ProtocolViolation(
            "offload server attempted a decryption; the secret key "
            "never leaves the client"
        )

    def _session_relin_keys():
        key = keystore.get(KeyKind.RELIN)
        if key is None:
            raise MissingEvaluationKey(
                "relinearization key not uploaded for this session")
        return key

    ctx.decrypt = _forbidden_decrypt
    ctx.relin_keys = _session_relin_keys
    ctx._relin = None
    ctx._galois = keystore.get(KeyKind.GALOIS)
    return ctx


def _pooled_only_handler(op: str) -> Handler:
    """Inline fallback for an op registered only in the eval pool."""

    def _unavailable(_session, _request):
        raise RuntimeError(
            f"operation {op!r} is pooled-only and no eval pool is attached")

    return _unavailable


def _normalize_result(result) -> Tuple[List[Ciphertext], Dict]:
    if result is None:
        return [], {}
    if isinstance(result, tuple) and len(result) == 2:
        cts, meta = result
        return list(cts), dict(meta or {})
    return list(result), {}


def _echo_handler(session: ServerSession,
                  request: ComputeRequest) -> List[Ciphertext]:
    """Built-in liveness op: returns the request's ciphertexts unchanged."""
    return request.cts
