"""Length-prefixed message framing for the CHOCO offload wire protocol.

Every message on a runtime connection is one **frame**:

    magic "CHOF" | version u8 | type u8 | flags u16 | payload_len u32 | payload

The payload of each frame type has its own fixed little-endian layout
(documented per dataclass below) wrapping the ``hecore.serialize`` blobs for
ciphertexts and keys.  Parsing is strict: unknown magic, version, or type,
an oversized payload, a truncated field, or trailing bytes all raise
:class:`FrameError` (a :class:`ValueError`) — a malformed peer can never
crash the runtime in low-level array code.

The session flow (see ``docs/PROTOCOL.md`` for the narrative version):

    C -> S : HELLO        parameter fingerprint (scheme, N, moduli, ...)
    S -> C : HELLO_ACK    session id, queue limit, concurrency, resume token
    C -> S : KEY_UPLOAD   public / relinearization / Galois key blobs
    S -> C : KEY_ACK
    C -> S : COMPUTE      op name, JSON metadata, ciphertext batch
    S -> C : RESULT       ciphertext batch + metadata
           | BUSY         queue full: retry after the given delay
           | ERROR        typed failure
    C -> S : PING         liveness probe (any time after the handshake)
    S -> C : PONG         echoes the probe nonce
    C -> S : BYE

A client that lost its connection mid-session opens a new one and sends
``RESUME`` (session id + the resume token from ``HELLO_ACK``) instead of
``HELLO``; the server reattaches the existing session — keys, state,
metrics, dedupe window — and answers ``RESUME_ACK``.  ``COMPUTE`` request
ids are idempotency keys: the client reuses one id for every resubmission
of a logical request, and the server replays the cached ``RESULT`` rather
than re-executing (see the dedupe-window contract in ``docs/PROTOCOL.md``).
"""

from __future__ import annotations

import asyncio
import enum
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hecore.params import EncryptionParameters, SchemeType

FRAME_MAGIC = b"CHOF"
#: Version 2 added RESUME / RESUME_ACK / PING / PONG and the resume token in
#: HELLO_ACK.  There is no cross-version negotiation: both ends of a CHOCO
#: deployment ship from this repository.
FRAME_VERSION = 2

#: Default ceiling on a single frame's payload.  Generous enough for a full
#: Galois key set at production parameters, small enough to bound a hostile
#: peer's memory demand.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_FRAME_HEADER = struct.Struct("<4sBBHI")

_SCHEME_CODES = {SchemeType.BFV: 0, SchemeType.CKKS: 1}
_SCHEME_FROM_CODE = {v: k for k, v in _SCHEME_CODES.items()}


class FrameError(ValueError):
    """A malformed, unexpected, or oversized frame."""


class MessageType(enum.IntEnum):
    HELLO = 1
    HELLO_ACK = 2
    KEY_UPLOAD = 3
    KEY_ACK = 4
    COMPUTE = 5
    RESULT = 6
    BUSY = 7
    ERROR = 8
    BYE = 9
    RESUME = 10
    RESUME_ACK = 11
    PING = 12
    PONG = 13


class KeyKind(enum.IntEnum):
    PUBLIC = 1
    RELIN = 2
    GALOIS = 3


class ErrorCode(enum.IntEnum):
    BAD_FRAME = 1          # unparseable or out-of-order message
    PARAMS_MISMATCH = 2    # HELLO fingerprint differs from the server's set
    UNKNOWN_OP = 3         # COMPUTE named an unregistered operation
    MISSING_KEYS = 4       # the op needs evaluation keys not yet uploaded
    HANDLER_FAILED = 5     # the registered handler raised
    PROTOCOL_VIOLATION = 6  # server-side code touched a client-only capability
    RESUME_REJECTED = 7    # unknown session, bad token, or grace period over
    KEYS_EVICTED = 8       # the key-store LRU dropped this session's keys;
    #                        re-upload them and resubmit the same request id


# ---------------------------------------------------------------------------
# Strict cursor-based parsing
# ---------------------------------------------------------------------------

class _Cursor:
    """Sequential reader over a payload with explicit bounds checking."""

    def __init__(self, buf: bytes):
        self.buf = buf
        self.off = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.off + n > len(self.buf):
            raise FrameError("frame payload truncated")
        out = self.buf[self.off: self.off + n]
        self.off += n
        return out

    def _unpack(self, fmt: str):
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.take(size))[0]

    def u8(self) -> int:
        return self._unpack("<B")

    def u16(self) -> int:
        return self._unpack("<H")

    def u32(self) -> int:
        return self._unpack("<I")

    def u64(self) -> int:
        return self._unpack("<Q")

    def bytes16(self) -> bytes:
        return self.take(self.u16())

    def bytes32(self) -> bytes:
        return self.take(self.u32())

    def str16(self) -> str:
        try:
            return self.bytes16().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameError("invalid UTF-8 in frame string") from exc

    def finish(self) -> None:
        if self.off != len(self.buf):
            raise FrameError(
                f"trailing bytes in frame payload ({len(self.buf) - self.off})"
            )


def _pack_bytes16(data: bytes) -> bytes:
    if len(data) > 0xFFFF:
        raise FrameError("string field exceeds 64 KiB")
    return struct.pack("<H", len(data)) + data


def _pack_bytes32(data: bytes) -> bytes:
    if len(data) > 0xFFFFFFFF:
        raise FrameError("blob field exceeds u32 range")
    return struct.pack("<I", len(data)) + data


def _pack_str16(text: str) -> bytes:
    return _pack_bytes16(text.encode("utf-8"))


def _pack_meta(meta: Optional[dict]) -> bytes:
    return _pack_bytes32(json.dumps(meta or {}).encode("utf-8"))


def _unpack_meta(cur: _Cursor) -> dict:
    raw = cur.bytes32()
    try:
        meta = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError("invalid JSON metadata in frame") from exc
    if not isinstance(meta, dict):
        raise FrameError("frame metadata must be a JSON object")
    return meta


def _pack_blobs(blobs: Sequence[bytes]) -> bytes:
    if len(blobs) > 0xFFFF:
        raise FrameError("too many ciphertexts in one frame")
    parts = [struct.pack("<H", len(blobs))]
    parts.extend(_pack_bytes32(b) for b in blobs)
    return b"".join(parts)


def _unpack_blobs(cur: _Cursor) -> List[bytes]:
    return [cur.bytes32() for _ in range(cur.u16())]


# ---------------------------------------------------------------------------
# Frame payloads
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Hello:
    """Client handshake: a full fingerprint of its parameter set.

    Layout: scheme u8 | poly_degree u32 | plain_modulus u64 | scale_bits u16
    | n_data u8 | n_special u8 | moduli u64[n_data + n_special].
    """

    scheme: SchemeType
    poly_degree: int
    plain_modulus: int
    scale_bits: int
    data_moduli: Tuple[int, ...]
    special_moduli: Tuple[int, ...]

    @classmethod
    def from_params(cls, params: EncryptionParameters) -> "Hello":
        return cls(
            scheme=params.scheme,
            poly_degree=params.poly_degree,
            plain_modulus=params.plain_modulus,
            scale_bits=params.scale_bits or 0,
            data_moduli=params.data_base.moduli,
            special_moduli=params.special_primes,
        )

    def mismatch(self, params: EncryptionParameters) -> Optional[str]:
        """Why this fingerprint cannot be served under *params* (or None)."""
        ours = Hello.from_params(params)
        for name in ("scheme", "poly_degree", "plain_modulus", "scale_bits",
                     "data_moduli", "special_moduli"):
            if getattr(self, name) != getattr(ours, name):
                return (f"{name}: client {getattr(self, name)!r} != "
                        f"server {getattr(ours, name)!r}")
        return None

    def pack(self) -> bytes:
        moduli = self.data_moduli + self.special_moduli
        return struct.pack(
            "<BIQHBB", _SCHEME_CODES[self.scheme], self.poly_degree,
            self.plain_modulus, self.scale_bits,
            len(self.data_moduli), len(self.special_moduli),
        ) + struct.pack(f"<{len(moduli)}Q", *moduli)

    @classmethod
    def unpack(cls, payload: bytes) -> "Hello":
        cur = _Cursor(payload)
        scheme_code = cur.u8()
        scheme = _SCHEME_FROM_CODE.get(scheme_code)
        if scheme is None:
            raise FrameError(f"unknown scheme code {scheme_code}")
        degree = cur.u32()
        plain_modulus = cur.u64()
        scale_bits = cur.u16()
        n_data, n_special = cur.u8(), cur.u8()
        if n_data < 1:
            raise FrameError("handshake declares no data moduli")
        moduli = tuple(cur.u64() for _ in range(n_data + n_special))
        cur.finish()
        return cls(scheme, degree, plain_modulus, scale_bits,
                   moduli[:n_data], moduli[n_data:])


@dataclass(frozen=True)
class HelloAck:
    """Server handshake reply.

    Layout: session_id u32 | queue_limit u16 | concurrency u16
    | resume_token bytes16 | grace_ms u32 | banner str16.

    ``resume_token`` is the secret a reconnecting client must present in a
    :class:`Resume` frame; ``grace_ms`` is how long the server retains a
    disconnected session before reaping it.
    """

    session_id: int
    queue_limit: int
    concurrency: int
    banner: str = ""
    resume_token: bytes = b""
    grace_ms: int = 0

    def pack(self) -> bytes:
        return (struct.pack("<IHH", self.session_id, self.queue_limit,
                            self.concurrency)
                + _pack_bytes16(self.resume_token)
                + struct.pack("<I", self.grace_ms)
                + _pack_str16(self.banner))

    @classmethod
    def unpack(cls, payload: bytes) -> "HelloAck":
        cur = _Cursor(payload)
        session_id, queue_limit, concurrency = cur.u32(), cur.u16(), cur.u16()
        resume_token = cur.bytes16()
        grace_ms = cur.u32()
        banner = cur.str16()
        cur.finish()
        return cls(session_id, queue_limit, concurrency, banner,
                   resume_token, grace_ms)


@dataclass(frozen=True)
class Resume:
    """Reattach to an existing session after a lost connection.

    Sent as the *first* frame on a fresh connection, in place of
    :class:`Hello`.  Layout: session_id u32 | token bytes16.
    """

    session_id: int
    token: bytes

    def pack(self) -> bytes:
        return struct.pack("<I", self.session_id) + _pack_bytes16(self.token)

    @classmethod
    def unpack(cls, payload: bytes) -> "Resume":
        cur = _Cursor(payload)
        out = cls(cur.u32(), cur.bytes16())
        cur.finish()
        return out


@dataclass(frozen=True)
class ResumeAck:
    """Successful reattach.

    Layout: session_id u32 | queue_limit u16 | concurrency u16 | key_mask u8
    | banner str16.  ``key_mask`` has bit ``1 << (kind - 1)`` set for every
    :class:`KeyKind` the session already holds, so the client knows nothing
    needs re-uploading.
    """

    session_id: int
    queue_limit: int
    concurrency: int
    key_mask: int = 0
    banner: str = ""

    def has_key(self, kind: KeyKind) -> bool:
        return bool(self.key_mask & (1 << (int(kind) - 1)))

    def pack(self) -> bytes:
        return (struct.pack("<IHHB", self.session_id, self.queue_limit,
                            self.concurrency, self.key_mask)
                + _pack_str16(self.banner))

    @classmethod
    def unpack(cls, payload: bytes) -> "ResumeAck":
        cur = _Cursor(payload)
        out = cls(cur.u32(), cur.u16(), cur.u16(), cur.u8(), cur.str16())
        cur.finish()
        return out


@dataclass(frozen=True)
class Ping:
    """Client liveness probe.  Layout: nonce u64."""

    nonce: int

    def pack(self) -> bytes:
        return struct.pack("<Q", self.nonce)

    @classmethod
    def unpack(cls, payload: bytes) -> "Ping":
        cur = _Cursor(payload)
        out = cls(cur.u64())
        cur.finish()
        return out


@dataclass(frozen=True)
class Pong:
    """Server liveness reply, echoing the probe nonce.  Layout: nonce u64."""

    nonce: int

    def pack(self) -> bytes:
        return struct.pack("<Q", self.nonce)

    @classmethod
    def unpack(cls, payload: bytes) -> "Pong":
        cur = _Cursor(payload)
        out = cls(cur.u64())
        cur.finish()
        return out


@dataclass(frozen=True)
class KeyUpload:
    """One evaluation-key blob.  Layout: kind u8 | blob (rest of payload)."""

    kind: KeyKind
    blob: bytes

    def pack(self) -> bytes:
        return struct.pack("<B", int(self.kind)) + self.blob

    @classmethod
    def unpack(cls, payload: bytes) -> "KeyUpload":
        cur = _Cursor(payload)
        kind_code = cur.u8()
        try:
            kind = KeyKind(kind_code)
        except ValueError as exc:
            raise FrameError(f"unknown key kind {kind_code}") from exc
        return cls(kind, cur.take(len(payload) - cur.off))


@dataclass(frozen=True)
class KeyAck:
    """Layout: kind u8."""

    kind: KeyKind

    def pack(self) -> bytes:
        return struct.pack("<B", int(self.kind))

    @classmethod
    def unpack(cls, payload: bytes) -> "KeyAck":
        cur = _Cursor(payload)
        try:
            kind = KeyKind(cur.u8())
        except ValueError as exc:
            raise FrameError("unknown key kind in ack") from exc
        cur.finish()
        return cls(kind)


@dataclass(frozen=True)
class Compute:
    """One offload request.

    Layout: request_id u32 | op str16 | meta json bytes32 | n_cts u16
    | (blob bytes32) * n_cts.
    """

    request_id: int
    op: str
    meta: Dict = field(default_factory=dict)
    blobs: Tuple[bytes, ...] = ()

    def pack(self) -> bytes:
        return (struct.pack("<I", self.request_id) + _pack_str16(self.op)
                + _pack_meta(self.meta) + _pack_blobs(self.blobs))

    @classmethod
    def unpack(cls, payload: bytes) -> "Compute":
        cur = _Cursor(payload)
        request_id = cur.u32()
        op = cur.str16()
        if not op:
            raise FrameError("compute frame names no operation")
        meta = _unpack_meta(cur)
        blobs = tuple(_unpack_blobs(cur))
        cur.finish()
        return cls(request_id, op, meta, blobs)


@dataclass(frozen=True)
class Result:
    """A successful reply.  Layout mirrors :class:`Compute` minus the op."""

    request_id: int
    meta: Dict = field(default_factory=dict)
    blobs: Tuple[bytes, ...] = ()

    def pack(self) -> bytes:
        return (struct.pack("<I", self.request_id) + _pack_meta(self.meta)
                + _pack_blobs(self.blobs))

    @classmethod
    def unpack(cls, payload: bytes) -> "Result":
        cur = _Cursor(payload)
        request_id = cur.u32()
        meta = _unpack_meta(cur)
        blobs = tuple(_unpack_blobs(cur))
        cur.finish()
        return cls(request_id, meta, blobs)


@dataclass(frozen=True)
class Busy:
    """Backpressure: the session queue is full; retry after the given delay.

    Layout: request_id u32 | retry_after_ms u32 | queue_depth u16.
    """

    request_id: int
    retry_after_ms: int
    queue_depth: int

    def pack(self) -> bytes:
        return struct.pack("<IIH", self.request_id, self.retry_after_ms,
                           self.queue_depth)

    @classmethod
    def unpack(cls, payload: bytes) -> "Busy":
        cur = _Cursor(payload)
        out = cls(cur.u32(), cur.u32(), cur.u16())
        cur.finish()
        return out


@dataclass(frozen=True)
class Error:
    """A typed failure.  Layout: request_id u32 | code u16 | message str16.

    ``request_id`` 0 marks a connection-level error (e.g. a handshake
    rejection) rather than a per-request one.
    """

    request_id: int
    code: ErrorCode
    message: str

    def pack(self) -> bytes:
        return (struct.pack("<IH", self.request_id, int(self.code))
                + _pack_str16(self.message))

    @classmethod
    def unpack(cls, payload: bytes) -> "Error":
        cur = _Cursor(payload)
        request_id = cur.u32()
        code_val = cur.u16()
        try:
            code = ErrorCode(code_val)
        except ValueError as exc:
            raise FrameError(f"unknown error code {code_val}") from exc
        message = cur.str16()
        cur.finish()
        return cls(request_id, code, message)


# ---------------------------------------------------------------------------
# Frame encode / decode
# ---------------------------------------------------------------------------

def encode_frame(mtype: MessageType, payload: bytes = b"",
                 flags: int = 0) -> bytes:
    """One wire frame: header plus payload."""
    if len(payload) > 0xFFFFFFFF:
        raise FrameError("frame payload exceeds u32 length")
    return _FRAME_HEADER.pack(FRAME_MAGIC, FRAME_VERSION, int(mtype), flags,
                              len(payload)) + payload


def decode_header(header: bytes,
                  max_payload: int = MAX_FRAME_BYTES,
                  ) -> Tuple[MessageType, int, int]:
    """Validate a 12-byte frame header; returns (type, flags, payload_len)."""
    if len(header) != _FRAME_HEADER.size:
        raise FrameError("short frame header")
    magic, version, type_code, flags, length = _FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise FrameError("bad frame magic (not a CHOCO offload connection)")
    if version != FRAME_VERSION:
        raise FrameError(f"unsupported frame version {version}")
    try:
        mtype = MessageType(type_code)
    except ValueError as exc:
        raise FrameError(f"unknown frame type {type_code}") from exc
    if length > max_payload:
        raise FrameError(
            f"frame payload of {length} bytes exceeds the {max_payload}-byte "
            f"limit"
        )
    return mtype, flags, length


def decode_frame(frame: bytes,
                 max_payload: int = MAX_FRAME_BYTES,
                 ) -> Tuple[MessageType, int, bytes]:
    """Decode one complete frame held in memory (the SimulatedLink path)."""
    mtype, flags, length = decode_header(frame[:_FRAME_HEADER.size],
                                         max_payload)
    payload = frame[_FRAME_HEADER.size:]
    if len(payload) != length:
        raise FrameError(
            f"frame body is {len(payload)} bytes, header declared {length}"
        )
    return mtype, flags, payload


HEADER_SIZE = _FRAME_HEADER.size


async def read_frame(reader: "asyncio.StreamReader",
                     max_payload: int = MAX_FRAME_BYTES,
                     ) -> Tuple[MessageType, int, bytes]:
    """Read exactly one frame from an asyncio stream.

    Raises :class:`ConnectionError` on EOF and :class:`FrameError` on a
    malformed header — callers treat both as fatal for the connection.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("peer closed the connection") from exc
    mtype, flags, length = decode_header(header, max_payload)
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("connection closed mid-frame") from exc
    return mtype, flags, payload
