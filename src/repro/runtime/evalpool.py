"""Process-pool evaluation executor for offload workers.

One slow BFV multiply on the asyncio loop stalls every session a worker
serves — heartbeats, key uploads, backpressure replies, all of it.  The
runtime already pushes handlers into threads, but CPython threads share
the GIL, so the numpy-heavy HE kernels still serialize.  An
:class:`EvalPool` runs **pooled** operations in real subprocesses instead:
the event loop keeps serving frames while ciphertext math burns a
different core.

Nothing live crosses the process boundary:

* parameters travel as a :func:`~repro.hecore.serialize.serialize_params`
  spec blob; each subprocess re-derives bit-identical moduli;
* evaluation keys travel as the exact ``hecore.serialize`` blobs the
  client uploaded (the server retains them per session), shipped lazily
  and re-shipped only when the session's key version changes;
* requests and results travel as wire-format ciphertext blobs — the same
  bytes the CHOF frames carry, no pickled HE objects anywhere.

Pooled operations are **pure functions** ``fn(ctx, state, meta, cts)``
returning ``cts`` or ``(cts, meta)``, registered by installer specs of the
form ``"module:attr"`` (resolved inside the subprocess, so the pool works
under both ``fork`` and ``spawn`` start methods).  ``ctx`` is the same
decrypt-forbidden restricted context the in-process server builds; ``state``
is a per-session dict living in the subprocess, so stateful services (the
KNN batch store) keep working.  Sessions are hash-pinned to one subprocess
— per-session execution stays serialized, sessions stay parallel.
"""

from __future__ import annotations

import asyncio
import importlib
import multiprocessing
import os
import stat
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.protocol import ProtocolViolation
from repro.hecore.params import EncryptionParameters
from repro.hecore.serialize import (
    deserialize_ciphertext,
    deserialize_galois_keys,
    deserialize_params,
    deserialize_public_key,
    deserialize_relin_key,
    serialize_ciphertext,
    serialize_params,
)
from repro.runtime.framing import KeyKind
from repro.runtime.server import (
    MissingEvaluationKey,
    _normalize_result,
    build_restricted_context,
)

#: A pooled operation: ``(ctx, state, meta, cts) -> cts | (cts, meta)``.
PooledOp = Callable[[Any, Dict, Dict, List], Any]

#: A pooled installer: ``(registry: Dict[str, PooledOp]) -> None``.
PooledInstaller = Callable[[Dict[str, PooledOp]], None]

_CALL_TIMEOUT_S = 300.0


def resolve_spec(spec: str) -> Any:
    """``"pkg.module:attr.subattr"`` -> the named object."""
    module_name, _, attr_path = spec.partition(":")
    if not module_name or not attr_path:
        raise ValueError(f"installer spec {spec!r} is not 'module:attr'")
    obj = importlib.import_module(module_name)
    for attr in attr_path.split("."):
        obj = getattr(obj, attr)
    return obj


def build_pooled_registry(installers: Tuple[str, ...],
                          ) -> Dict[str, PooledOp]:
    registry: Dict[str, PooledOp] = {}
    for spec in installers:
        resolve_spec(spec)(registry)
    return registry


def pooled_op_names(installers: Tuple[str, ...]) -> Tuple[str, ...]:
    """The op names a set of installer specs would register."""
    return tuple(sorted(build_pooled_registry(tuple(installers))))


def _mp_context():
    """fork where available (instant, shares loaded numpy); spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


def close_inherited_sockets(keep: Iterable[int] = ()) -> None:
    """Close every socket fd a fork duplicated into this child process.

    A child forked while the parent serves TCP traffic inherits duplicate
    descriptors for every open connection — including the parent's listen
    socket and any relayed client links.  Those duplicates keep the
    underlying connections half-open after the parent closes its copy: the
    peer never receives FIN and blocks forever on a read.  The child needs
    none of them (its control pipe is in *keep*; servers it runs open their
    own sockets), so the safe move is to drop them all on entry.

    Only sockets are touched — pipes and files (multiprocessing's resource
    tracker, logging, stdio) keep their descriptors.  Best-effort and
    POSIX-only: on platforms without ``/proc/self/fd`` this is a no-op,
    which matches the ``spawn`` start method where nothing leaks.
    """
    keep_fds = {int(fd) for fd in keep} | {0, 1, 2}
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except OSError:
        return
    for fd in fds:
        if fd in keep_fds:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


# ---------------------------------------------------------------------------
# Subprocess side
# ---------------------------------------------------------------------------

def _deserialize_key(kind: KeyKind, blob: bytes,
                     params: EncryptionParameters):
    if kind is KeyKind.PUBLIC:
        return deserialize_public_key(blob, params)
    if kind is KeyKind.RELIN:
        return deserialize_relin_key(blob, params)
    return deserialize_galois_keys(blob, params)


def _eval_main(conn, params_blob: bytes, installers: Tuple[str, ...],
               context_seed: bytes) -> None:
    """Subprocess loop: rebuild params, register pooled ops, serve calls."""
    close_inherited_sockets(keep=(conn.fileno(),))
    params = deserialize_params(params_blob)
    registry = build_pooled_registry(installers)
    # sid -> {"keystore": {KeyKind: key}, "state": {}, "ctx": restricted}
    sessions: Dict[int, Dict[str, Any]] = {}

    def entry_for(sid: int) -> Dict[str, Any]:
        return sessions.setdefault(
            sid, {"keystore": {}, "state": {}, "ctx": None})

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # parent died or closed the pipe: shut down quietly
        cmd = msg[0]
        if cmd == "stop":
            return
        try:
            if cmd == "keys":
                _sid, kind_code, blobs = msg[1], msg[2], msg[3]
                entry = entry_for(_sid)
                kind = KeyKind(kind_code)
                merged = None
                for blob in blobs:
                    key = _deserialize_key(kind, blob, params)
                    if merged is None:
                        merged = key
                    else:
                        merged.keys.update(key.keys)
                # Mutate the keystore in place: the restricted context's
                # relin_keys closure holds a reference to this dict.
                entry["keystore"][kind] = merged
                if entry["ctx"] is not None and kind is KeyKind.GALOIS:
                    entry["ctx"]._galois = merged
                conn.send(("ok",))
            elif cmd == "evict":
                sessions.pop(msg[1], None)
                conn.send(("ok",))
            elif cmd == "exec":
                _sid, op, meta, blobs = msg[1], msg[2], msg[3], msg[4]
                entry = entry_for(_sid)
                fn = registry.get(op)
                if fn is None:
                    raise RuntimeError(f"op {op!r} not in the pooled registry")
                if entry["ctx"] is None:
                    entry["ctx"] = build_restricted_context(
                        params, entry["keystore"], context_seed)
                ctx = entry["ctx"]
                cts = [deserialize_ciphertext(blob, params)
                       for blob in blobs]
                counts_before = dict(ctx.counts)
                out_cts, out_meta = _normalize_result(
                    fn(ctx, entry["state"], dict(meta), cts))
                counters = {k: v - counts_before.get(k, 0)
                            for k, v in ctx.counts.items()
                            if v != counts_before.get(k, 0)}
                out_blobs = tuple(
                    serialize_ciphertext(ct, compress_seed=False)
                    for ct in out_cts)
                conn.send(("result", out_blobs, out_meta, counters))
            else:
                conn.send(("error", "RuntimeError",
                           f"unknown eval-pool command {cmd!r}"))
        except Exception as exc:  # noqa: BLE001 — typed name crosses the pipe
            conn.send(("error", type(exc).__name__, str(exc)))


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class _Slot:
    """One eval subprocess plus its pipe, lock, and shipped-key ledger."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.lock = asyncio.Lock()
        #: (session_id, KeyKind) -> key version already shipped.
        self.shipped: Dict[Tuple[int, KeyKind], int] = {}


class EvalPool:
    """N subprocess evaluators behind an async dispatch facade.

    ``execute`` pins each session to ``session_id % size`` so per-session
    state (stored batches, restricted context, key cache) lives in exactly
    one subprocess and per-session execution stays serialized — mirroring
    the server's own scheduling invariant.  A dead subprocess is respawned
    on the next call that notices; the interrupted request surfaces as a
    ``HANDLER_FAILED`` and the client's idempotent retry re-executes it
    (the failed id left the dedupe window, so that is a fresh run).
    """

    def __init__(self, params: EncryptionParameters, size: int,
                 installers: Tuple[str, ...] = (), *,
                 context_seed: bytes = b"offload-server-eval"):
        if size < 1:
            raise ValueError("eval pool needs at least one worker")
        self.size = size
        self.installers = tuple(installers)
        self._params_blob = serialize_params(params)
        self._context_seed = context_seed
        self._mp = _mp_context()
        self._slots = [_Slot(i) for i in range(size)]
        self._closed = False
        self.started_at = time.monotonic()
        self.executions = 0
        self.busy_s = 0.0
        self.key_ships = 0
        self.respawns = 0
        for slot in self._slots:
            self._spawn(slot)

    # ------------------------------------------------------------ plumbing
    def _spawn(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_eval_main,
            args=(child_conn, self._params_blob, self.installers,
                  self._context_seed),
            daemon=True, name=f"choco-eval-{slot.index}")
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.shipped = {}

    def _respawn(self, slot: _Slot) -> None:
        self.respawns += 1
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.process is not None and slot.process.is_alive():
            slot.process.terminate()
        self._spawn(slot)

    def _call(self, slot: _Slot, msg: tuple,
              timeout: float = _CALL_TIMEOUT_S):
        """Blocking roundtrip on the slot's pipe (run via to_thread)."""
        slot.conn.send(msg)
        if not slot.conn.poll(timeout):
            raise RuntimeError(
                f"eval-pool worker {slot.index} timed out after {timeout}s")
        return slot.conn.recv()

    @staticmethod
    def _raise_remote(tname: str, message: str) -> None:
        if tname == "ProtocolViolation":
            raise ProtocolViolation(message)
        if tname == "MissingEvaluationKey":
            raise MissingEvaluationKey(message)
        if tname == "ValueError":
            raise ValueError(message)
        raise RuntimeError(f"{tname}: {message}")

    # ------------------------------------------------------------ dispatch
    async def execute(self, session, request,
                      ) -> Tuple[Tuple[bytes, ...], Dict, Dict]:
        """Run one pooled request; returns (result_blobs, meta, counters)."""
        if self._closed:
            raise RuntimeError("eval pool is closed")
        slot = self._slots[session.id % self.size]
        async with slot.lock:
            started = time.monotonic()
            try:
                for kind, version in list(session.key_versions.items()):
                    if slot.shipped.get((session.id, kind)) == version:
                        continue
                    blobs = tuple(session.key_blobs.get(kind, ()))
                    if not blobs:
                        continue  # evicted since: nothing to ship
                    reply = await asyncio.to_thread(
                        self._call, slot,
                        ("keys", session.id, int(kind), blobs))
                    if reply[0] == "error":
                        self._raise_remote(reply[1], reply[2])
                    slot.shipped[(session.id, kind)] = version
                    self.key_ships += 1
                reply = await asyncio.to_thread(
                    self._call, slot,
                    ("exec", session.id, request.op, dict(request.meta),
                     tuple(request.blobs)))
            except (EOFError, BrokenPipeError, OSError) as exc:
                self._respawn(slot)
                raise RuntimeError(
                    f"eval-pool worker {slot.index} died running "
                    f"{request.op!r}: {exc}") from exc
            finally:
                self.busy_s += time.monotonic() - started
        if reply[0] == "error":
            self._raise_remote(reply[1], reply[2])
        self.executions += 1
        _tag, out_blobs, out_meta, counters = reply
        return tuple(out_blobs), dict(out_meta), dict(counters)

    def forget_session(self, session_id: int) -> None:
        """Drop a session's shipped-key state (eviction or close).

        Synchronous and non-blocking: the subprocess purge rides on a
        fire-and-forget task when a loop is running, so the server can call
        this from teardown paths without awaiting pipe traffic.
        """
        owner = self._slots[session_id % self.size]
        for key in [k for k in owner.shipped if k[0] == session_id]:
            owner.shipped.pop(key, None)
        if self._closed:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        loop.create_task(self._purge(owner, session_id))

    async def _purge(self, slot: _Slot, session_id: int) -> None:
        try:
            async with slot.lock:
                if self._closed:
                    return
                await asyncio.to_thread(self._call, slot,
                                        ("evict", session_id), 10.0)
        except Exception:  # noqa: BLE001 — best-effort memory hygiene
            pass

    # ------------------------------------------------------------ lifecycle
    def snapshot(self) -> Dict:
        elapsed = max(time.monotonic() - self.started_at, 1e-9)
        return {
            "size": self.size,
            "executions": self.executions,
            "busy_s": round(self.busy_s, 4),
            "utilization": round(
                min(self.busy_s / (elapsed * self.size), 1.0), 4),
            "key_ships": self.key_ships,
            "respawns": self.respawns,
        }

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            async with slot.lock:
                try:
                    await asyncio.to_thread(slot.conn.send, ("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for slot in self._slots:
            if slot.process is not None:
                await asyncio.to_thread(slot.process.join, 5.0)
                if slot.process.is_alive():
                    slot.process.terminate()
            try:
                slot.conn.close()
            except OSError:
                pass
