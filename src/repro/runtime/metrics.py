"""Per-session counters and latency percentiles for the offload runtime.

The server keeps one :class:`SessionMetrics` per connected session plus a
fleet-wide :class:`RuntimeMetrics` aggregate.  Everything is exposed as a
plain-dict ``snapshot()`` (JSON-friendly, no live references) and as a
human-readable table the server prints on shutdown.

The ``service_order`` trace — the session id of each request in dispatch
order — is what the fairness tests audit: a round-robin scheduler must not
let any session starve behind a chatty neighbor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Cap on retained latency samples per session (newest wins); enough for
#: stable p99 estimates without unbounded growth on long-lived sessions.
MAX_LATENCY_SAMPLES = 4096

#: Cap on the retained dispatch-order trace.
MAX_SERVICE_ORDER = 65536


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


@dataclass
class SessionMetrics:
    """Counters for one client session."""

    session_id: int
    peer: str = "?"
    opened_at: float = field(default_factory=time.monotonic)
    requests: int = 0            # COMPUTE frames accepted into the queue
    responses: int = 0           # RESULT frames sent
    errors: int = 0              # ERROR frames sent
    busy_rejections: int = 0     # BUSY frames sent (queue-full backpressure)
    key_uploads: int = 0
    handler_invocations: int = 0  # handlers actually run (exactly-once audit)
    duplicates_suppressed: int = 0  # retried ids already queued or in flight
    results_replayed: int = 0    # retried ids answered from the dedupe window
    resumes: int = 0             # successful RESUME reattachments
    pings: int = 0               # PING frames answered with PONG
    ciphertexts_in: int = 0
    ciphertexts_out: int = 0
    bytes_up: int = 0            # physical payload bytes, client -> server
    bytes_down: int = 0          # physical payload bytes, server -> client
    queue_depth: int = 0         # current backlog
    rotations: int = 0           # slot rotations evaluated for this session
    hoisted_decomposes: int = 0  # key-switch decomposes shared via hoisting
    naive_decomposes: int = 0    # per-rotation (unshared) decomposes
    ntt_forward: int = 0         # forward NTT residue-rows the scheduler ran
    ntt_inverse: int = 0         # inverse NTT residue-rows the scheduler ran
    ntt_elided: int = 0          # inverse->forward row pairs residency skipped
    limb_drops: int = 0          # planned mod-switch limb drops executed
    limbs_live: int = 0          # limbs-live integral over produced ciphertexts
    level_replans: int = 0       # recrypt segments re-entered on a trimmed chain
    key_evictions: int = 0       # key-store LRU dropped this session's keys
    reupload_signals: int = 0    # KEYS_EVICTED errors sent to the client
    _latencies_s: List[float] = field(default_factory=list, repr=False)

    def observe_latency(self, seconds: float) -> None:
        self._latencies_s.append(seconds)
        if len(self._latencies_s) > MAX_LATENCY_SAMPLES:
            del self._latencies_s[: len(self._latencies_s)
                                  - MAX_LATENCY_SAMPLES]

    def latency_p50_ms(self) -> float:
        return 1e3 * percentile(self._latencies_s, 0.50)

    def latency_p99_ms(self) -> float:
        return 1e3 * percentile(self._latencies_s, 0.99)

    def snapshot(self) -> Dict:
        return {
            "session_id": self.session_id,
            "peer": self.peer,
            "requests": self.requests,
            "responses": self.responses,
            "errors": self.errors,
            "busy_rejections": self.busy_rejections,
            "key_uploads": self.key_uploads,
            "handler_invocations": self.handler_invocations,
            "duplicates_suppressed": self.duplicates_suppressed,
            "results_replayed": self.results_replayed,
            "resumes": self.resumes,
            "pings": self.pings,
            "ciphertexts_in": self.ciphertexts_in,
            "ciphertexts_out": self.ciphertexts_out,
            "bytes_up": self.bytes_up,
            "bytes_down": self.bytes_down,
            "queue_depth": self.queue_depth,
            "rotations": self.rotations,
            "hoisted_decomposes": self.hoisted_decomposes,
            "naive_decomposes": self.naive_decomposes,
            "ntt_forward": self.ntt_forward,
            "ntt_inverse": self.ntt_inverse,
            "ntt_elided": self.ntt_elided,
            "limb_drops": self.limb_drops,
            "limbs_live": self.limbs_live,
            "level_replans": self.level_replans,
            "key_evictions": self.key_evictions,
            "reupload_signals": self.reupload_signals,
            "latency_p50_ms": round(self.latency_p50_ms(), 3),
            "latency_p99_ms": round(self.latency_p99_ms(), 3),
        }


class RuntimeMetrics:
    """Fleet-wide view: one entry per session plus aggregate totals."""

    def __init__(self):
        self.sessions: Dict[int, SessionMetrics] = {}
        self.service_order: List[int] = []
        self.sessions_opened = 0
        self.sessions_rejected = 0
        self.sessions_resumed = 0
        self.sessions_reaped = 0
        self.resumes_rejected = 0
        #: Times the scheduler task was respawned after dying on an
        #: exception (a healthy server never increments this).
        self.scheduler_restarts = 0
        #: ``TypeName: message`` of the most recent scheduler death.
        self.last_scheduler_error: Optional[str] = None

    def open_session(self, session_id: int, peer: str = "?") -> SessionMetrics:
        metrics = SessionMetrics(session_id=session_id, peer=peer)
        self.sessions[session_id] = metrics
        self.sessions_opened += 1
        return metrics

    def record_dispatch(self, session_id: int) -> None:
        self.service_order.append(session_id)
        if len(self.service_order) > MAX_SERVICE_ORDER:
            del self.service_order[: len(self.service_order)
                                   - MAX_SERVICE_ORDER]

    def get(self, session_id: int) -> Optional[SessionMetrics]:
        return self.sessions.get(session_id)

    def snapshot(self) -> Dict:
        sessions = {sid: m.snapshot() for sid, m in self.sessions.items()}
        return {
            "sessions_opened": self.sessions_opened,
            "sessions_rejected": self.sessions_rejected,
            "sessions_resumed": self.sessions_resumed,
            "sessions_reaped": self.sessions_reaped,
            "resumes_rejected": self.resumes_rejected,
            "scheduler_restarts": self.scheduler_restarts,
            "last_scheduler_error": self.last_scheduler_error,
            "key_evictions": sum(m.key_evictions
                                 for m in self.sessions.values()),
            "reupload_signals": sum(m.reupload_signals
                                    for m in self.sessions.values()),
            "handler_invocations": sum(m.handler_invocations
                                       for m in self.sessions.values()),
            "duplicates_suppressed": sum(m.duplicates_suppressed
                                         for m in self.sessions.values()),
            "results_replayed": sum(m.results_replayed
                                    for m in self.sessions.values()),
            "requests": sum(m.requests for m in self.sessions.values()),
            "responses": sum(m.responses for m in self.sessions.values()),
            "errors": sum(m.errors for m in self.sessions.values()),
            "busy_rejections": sum(m.busy_rejections
                                   for m in self.sessions.values()),
            "bytes_up": sum(m.bytes_up for m in self.sessions.values()),
            "bytes_down": sum(m.bytes_down for m in self.sessions.values()),
            "rotations": sum(m.rotations for m in self.sessions.values()),
            "hoisted_decomposes": sum(m.hoisted_decomposes
                                      for m in self.sessions.values()),
            "naive_decomposes": sum(m.naive_decomposes
                                    for m in self.sessions.values()),
            "ntt_forward": sum(m.ntt_forward for m in self.sessions.values()),
            "ntt_inverse": sum(m.ntt_inverse for m in self.sessions.values()),
            "ntt_elided": sum(m.ntt_elided for m in self.sessions.values()),
            "limb_drops": sum(m.limb_drops for m in self.sessions.values()),
            "limbs_live": sum(m.limbs_live for m in self.sessions.values()),
            "level_replans": sum(m.level_replans
                                 for m in self.sessions.values()),
            "sessions": sessions,
        }

    def render(self) -> str:
        """Shutdown summary table."""
        total = self.snapshot()
        lines = [
            f"offload-server metrics: {total['sessions_opened']} session(s), "
            f"{total['responses']}/{total['requests']} requests served, "
            f"{total['busy_rejections']} busy rejection(s), "
            f"{total['errors']} error(s)",
            f"  physical bytes: {total['bytes_up']} up / "
            f"{total['bytes_down']} down",
            f"  rotations: {total['rotations']} "
            f"({total['hoisted_decomposes']} hoisted / "
            f"{total['naive_decomposes']} naive decomposes)",
            f"  ntt residency: {total['ntt_forward']} forward / "
            f"{total['ntt_inverse']} inverse row(s), "
            f"{total['ntt_elided']} pair(s) elided",
            f"  level planner: {total['limb_drops']} limb drop(s), "
            f"{total['limbs_live']} limb-row(s) live, "
            f"{total['level_replans']} replan(s)",
            f"  resilience: {total['sessions_resumed']} resume(s), "
            f"{total['sessions_reaped']} reaped, "
            f"{total['duplicates_suppressed']} duplicate(s) suppressed, "
            f"{total['results_replayed']} result(s) replayed",
        ]
        header = (f"  {'sess':>4s} {'peer':20s} {'reqs':>5s} {'resp':>5s} "
                  f"{'busy':>5s} {'err':>4s} {'up B':>10s} {'down B':>10s} "
                  f"{'p50 ms':>8s} {'p99 ms':>8s}")
        if self.sessions:
            lines.append(header)
        for sid in sorted(self.sessions):
            m = self.sessions[sid]
            lines.append(
                f"  {sid:4d} {m.peer[:20]:20s} {m.requests:5d} "
                f"{m.responses:5d} {m.busy_rejections:5d} {m.errors:4d} "
                f"{m.bytes_up:10d} {m.bytes_down:10d} "
                f"{m.latency_p50_ms():8.2f} {m.latency_p99_ms():8.2f}"
            )
        return "\n".join(lines)


class FleetMetrics:
    """Router-side view over a sharded worker fleet.

    Worker processes are shared-nothing, so the router can only see what
    they report: each call to ``update_worker`` stores the latest snapshot
    a worker shipped over its control pipe (per-worker queue depth, session
    counts, eval-executor utilization, eviction/re-upload counters).  When
    a worker dies its last snapshot is retired rather than discarded —
    fleet totals must not forget work a killed worker already served.
    """

    def __init__(self):
        #: index -> latest control-pipe snapshot from the live generation.
        self.workers: Dict[int, Dict] = {}
        #: Final known snapshots of dead worker generations.
        self.retired: List[Dict] = []
        self.worker_restarts = 0
        self.admission_rejections = 0
        self.sessions_routed = 0
        self.resumes_routed = 0
        self.resumes_bounced = 0    # RESUME for a worker that was down
        self.connections_total = 0
        self.connections_active = 0

    def update_worker(self, index: int, snapshot: Dict) -> None:
        self.workers[index] = dict(snapshot)

    def retire_worker(self, index: int) -> None:
        """A worker died: keep its last snapshot in the fleet totals."""
        last = self.workers.pop(index, None)
        if last is not None:
            last["retired"] = True
            self.retired.append(last)

    def _all_snapshots(self) -> List[Dict]:
        return list(self.retired) + [
            self.workers[i] for i in sorted(self.workers)]

    def snapshot(self) -> Dict:
        """Fleet aggregate plus the per-worker breakdown, JSON-friendly."""
        snaps = self._all_snapshots()

        def total(key: str) -> int:
            return sum(s.get("metrics", {}).get(key, 0) or 0 for s in snaps)

        return {
            "workers_live": len(self.workers),
            "worker_restarts": self.worker_restarts,
            "admission_rejections": self.admission_rejections,
            "sessions_routed": self.sessions_routed,
            "resumes_routed": self.resumes_routed,
            "resumes_bounced": self.resumes_bounced,
            "connections_total": self.connections_total,
            "connections_active": self.connections_active,
            "queue_depth": sum(s.get("queue_depth", 0) for s in snaps),
            "handler_invocations": total("handler_invocations"),
            "responses": total("responses"),
            "key_evictions": total("key_evictions"),
            "reupload_signals": total("reupload_signals"),
            "limb_drops": total("limb_drops"),
            "limbs_live": total("limbs_live"),
            "level_replans": total("level_replans"),
            "scheduler_restarts": total("scheduler_restarts"),
            "executor_utilization": round(sum(
                (s.get("eval_pool") or {}).get("utilization", 0.0)
                for s in snaps), 4),
            "per_worker": snaps,
        }

    def render(self) -> str:
        snap = self.snapshot()
        lines = [
            f"fleet metrics: {snap['workers_live']} live worker(s), "
            f"{snap['worker_restarts']} restart(s), "
            f"{snap['sessions_routed']} session(s) routed, "
            f"{snap['admission_rejections']} admission rejection(s)",
            f"  fleet totals: {snap['responses']} response(s), "
            f"queue depth {snap['queue_depth']}, "
            f"{snap['key_evictions']} eviction(s) / "
            f"{snap['reupload_signals']} re-upload signal(s)",
        ]
        for s in snap["per_worker"]:
            pool = s.get("eval_pool") or {}
            m = s.get("metrics", {})
            lines.append(
                f"  worker {s.get('worker', '?')}"
                f"{' (retired)' if s.get('retired') else ''}: "
                f"{s.get('sessions', 0)} session(s), "
                f"queue {s.get('queue_depth', 0)}, "
                f"{m.get('responses', 0)} response(s), "
                f"exec util {pool.get('utilization', 0.0):.2f}")
        return "\n".join(lines)
