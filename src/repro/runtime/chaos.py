"""Chaos-transport fault injection for the offload runtime.

The paper's client is a battery-powered device on a real, lossy radio link
(§7); loopback TCP never drops, stalls, or reorders anything, so none of
the runtime's retry/resume machinery is exercised by the happy path.  This
module makes hostile networks reproducible:

* :class:`FaultyTransport` decorates any
  :class:`~repro.runtime.transport.Transport` with a **seeded,
  deterministic** schedule of frame delays, drops, corruptions,
  truncations, and mid-stream disconnects.  Every per-frame decision is a
  pure function of ``(seed, direction, frame index)`` — replaying a seed
  replays the exact failure sequence, independent of event-loop timing.
* :func:`chaos_soak` drives N concurrent client sessions through
  randomized fault schedules against a real :class:`OffloadServer` over
  loopback TCP and checks the end-state invariants the protocol promises:
  every logical request executed **exactly once** (server-side handler
  invocation counters), per-session ledger totals **byte-identical** to a
  fault-free oracle run, sessions resumed without re-uploading keys, and
  zero leaked futures, worker tasks, or sessions.

The PRNG is the repo's deterministic :class:`~repro.hecore.random.BlakePrng`
(BLAKE2b-derived), the same generator the HE samplers use.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import tempfile
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.protocol import CostLedger
from repro.hecore.bfv import BfvContext
from repro.hecore.params import (
    EncryptionParameters,
    SchemeType,
    small_test_parameters,
)
from repro.hecore.random import BlakePrng
from repro.runtime.client import OffloadClient
from repro.runtime.framing import MessageType, encode_frame
from repro.runtime.server import OffloadServer
from repro.runtime.transport import SimulatedLink, TcpTransport, Transport


@dataclass(frozen=True)
class FaultPlan:
    """Per-frame fault probabilities and shapes for a FaultyTransport.

    Probabilities are evaluated against one uniform draw per frame, in the
    order *disconnect, corrupt, truncate, drop, delay* — at most one fault
    fires per frame.  ``corrupt`` and ``truncate`` apply to the send path
    only (they need raw wire access); drop/delay/disconnect apply to both
    directions when ``recv_faults`` is set.
    """

    drop_p: float = 0.0
    delay_p: float = 0.0
    delay_range_s: Tuple[float, float] = (0.001, 0.02)
    corrupt_p: float = 0.0
    truncate_p: float = 0.0
    disconnect_p: float = 0.0
    recv_faults: bool = True
    #: Leave the first N frames of each direction untouched so handshakes
    #: (HELLO/RESUME and their acks) always complete.
    skip_first_frames: int = 2
    #: Scripted, deterministic send-side drops by frame index (for targeted
    #: regression tests that need exactly one specific frame to vanish).
    drop_send_frames: Tuple[int, ...] = ()


#: A mildly hostile link: mostly drops and delays, occasional corruption,
#: truncation, and disconnects.  Tuned so a soak with sub-second timeouts
#: converges in seconds while still exercising every failure path.
DEFAULT_PLAN = FaultPlan(
    drop_p=0.10, delay_p=0.15, delay_range_s=(0.001, 0.01),
    corrupt_p=0.02, truncate_p=0.02, disconnect_p=0.03,
)


@dataclass
class FaultEvent:
    """One injected fault, recorded for replayability audits."""

    kind: str        # drop | delay | corrupt | truncate | disconnect
    direction: str   # send | recv
    index: int       # per-direction frame index
    mtype: str       # frame type the fault hit
    detail: str = ""

    def key(self) -> Tuple[str, str, int]:
        return (self.kind, self.direction, self.index)


class FaultyTransport(Transport):
    """Deterministic fault-injecting decorator over any transport.

    Frame *i* of each direction is assigned its fate by a BLAKE2b-derived
    draw on ``(seed, direction, i)`` — no shared PRNG state, so concurrent
    senders and reorderable event-loop timings cannot perturb the schedule.
    ``armed`` can be toggled to let provisioning phases (key uploads) run
    clean and then unleash faults on the steady state.
    """

    def __init__(self, inner: Transport, plan: FaultPlan = DEFAULT_PLAN, *,
                 seed: object = 0, armed: bool = True,
                 ledger: Optional[CostLedger] = None):
        super().__init__(inner.max_frame_bytes)
        self.inner = inner
        self.plan = plan
        self.armed = armed
        self.ledger = ledger
        self.events: List[FaultEvent] = []
        self._seed_material = repr(seed).encode()
        self._sent_i = 0
        self._recv_i = 0
        self._severed = False

    # ------------------------------------------------------------ decisions
    def _draws(self, direction: str, index: int) -> Tuple[float, float]:
        """The (selector, auxiliary) uniform draws for one frame."""
        prng = BlakePrng(self._seed_material
                         + f":{direction}:{index}".encode())
        raw = prng.random_bytes(14)
        unit = float(1 << 56)
        return (int.from_bytes(raw[:7], "little") / unit,
                int.from_bytes(raw[7:], "little") / unit)

    def _decide(self, direction: str, index: int,
                ) -> Tuple[Optional[str], float]:
        """Fault kind (or None) and the auxiliary draw for frame *index*."""
        plan = self.plan
        if direction == "send" and index in plan.drop_send_frames:
            return "drop", 0.0
        if index < plan.skip_first_frames:
            return None, 0.0
        u, aux = self._draws(direction, index)
        send = direction == "send"
        edges = [
            ("disconnect", plan.disconnect_p),
            ("corrupt", plan.corrupt_p if send else 0.0),
            ("truncate", plan.truncate_p if send else 0.0),
            ("drop", plan.drop_p),
            ("delay", plan.delay_p),
        ]
        lo = 0.0
        for kind, p in edges:
            if u < lo + p:
                return kind, aux
            lo += p
        return None, aux

    def _record(self, kind: str, direction: str, index: int,
                mtype: MessageType, detail: str = "") -> None:
        self.events.append(FaultEvent(kind, direction, index,
                                      mtype.name, detail))

    async def _sever(self) -> None:
        self._severed = True
        await self.inner.close()

    async def force_disconnect(self) -> None:
        """Sever the connection now (test hook for targeted resume tests)."""
        await self._sever()

    # ------------------------------------------------------------ transport
    @property
    def peer_name(self) -> str:
        return f"chaos:{self.inner.peer_name}"

    async def send_frame(self, mtype: MessageType, payload: bytes = b"",
                         flags: int = 0) -> None:
        if self._severed:
            raise ConnectionError("chaos: transport severed")
        index = self._sent_i
        self._sent_i += 1
        fault, aux = self._decide("send", index) if self.armed else (None, 0.0)
        if fault == "drop":
            self._record("drop", "send", index, mtype)
            return
        if fault == "delay":
            lo, hi = self.plan.delay_range_s
            d = lo + aux * (hi - lo)
            self._record("delay", "send", index, mtype, f"{d * 1e3:.1f}ms")
            await asyncio.sleep(d)
        elif fault == "corrupt":
            frame = bytearray(encode_frame(mtype, payload, flags))
            frame[0] ^= 0xFF  # garble the magic: always connection-fatal
            self._record("corrupt", "send", index, mtype)
            await self.inner.send_raw(bytes(frame))
            return
        elif fault == "truncate":
            frame = encode_frame(mtype, payload, flags)
            cut = 1 + int(aux * max(len(frame) - 1, 1))
            self._record("truncate", "send", index, mtype,
                         f"{cut}/{len(frame)}B")
            await self.inner.send_raw(frame[:cut])
            await self._sever()
            raise ConnectionError("chaos: frame truncated mid-stream")
        elif fault == "disconnect":
            self._record("disconnect", "send", index, mtype)
            await self._sever()
            raise ConnectionError("chaos: injected disconnect")
        await self.inner.send_frame(mtype, payload, flags)
        self.bytes_sent = self.inner.bytes_sent

    async def send_raw(self, data: bytes) -> None:
        await self.inner.send_raw(data)

    async def recv_frame(self) -> Tuple[MessageType, int, bytes]:
        while True:
            frame = await self.inner.recv_frame()
            if self._severed:
                raise ConnectionError("chaos: transport severed")
            self.bytes_received = self.inner.bytes_received
            if not self.armed or not self.plan.recv_faults:
                return frame
            index = self._recv_i
            self._recv_i += 1
            fault, aux = self._decide("recv", index)
            mtype = frame[0]
            if fault == "drop":
                self._record("drop", "recv", index, mtype)
                continue  # the frame evaporates in flight
            if fault == "delay":
                lo, hi = self.plan.delay_range_s
                d = lo + aux * (hi - lo)
                self._record("delay", "recv", index, mtype, f"{d * 1e3:.1f}ms")
                await asyncio.sleep(d)
            elif fault == "disconnect":
                self._record("disconnect", "recv", index, mtype)
                await self._sever()
                raise ConnectionError("chaos: injected disconnect")
            return frame

    async def close(self) -> None:
        await self.inner.close()

    # ---------------------------------------------------------- accounting
    def account_upload(self, logical_bytes: int) -> None:
        if self.ledger is not None:
            self.ledger.charge_upload(logical_bytes)
        self.inner.account_upload(logical_bytes)

    def account_download(self, logical_bytes: int) -> None:
        if self.ledger is not None:
            self.ledger.charge_download(logical_bytes)
        self.inner.account_download(logical_bytes)

    def fault_counts(self) -> Dict[str, int]:
        return dict(Counter(event.kind for event in self.events))


# ---------------------------------------------------------------------------
# The soak driver
# ---------------------------------------------------------------------------

@dataclass
class SoakReport:
    """End-state audit of one chaos soak run."""

    n_sessions: int
    n_requests: int
    seed: int
    elapsed_s: float = 0.0
    logical_requests: int = 0
    handler_invocations: int = 0
    duplicates_suppressed: int = 0
    results_replayed: int = 0
    resumes: int = 0
    reaped: int = 0
    retries: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    bytes_up: int = 0
    bytes_down: int = 0
    oracle_bytes_up: int = 0
    oracle_bytes_down: int = 0
    key_uploads: int = 0
    leaked_futures: int = 0
    leaked_workers: int = 0
    leaked_sessions: int = 0
    # Fleet-soak extensions (zero for the single-process soak).
    n_workers: int = 1
    failovers: int = 0
    key_reuploads: int = 0
    worker_restarts: int = 0
    admission_rejections: int = 0
    per_worker: List[Dict] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict:
        """Machine-readable form (consumed by the fleet bench gate)."""
        return {
            "ok": self.ok,
            "n_sessions": self.n_sessions,
            "n_requests": self.n_requests,
            "n_workers": self.n_workers,
            "seed": self.seed,
            "elapsed_s": round(self.elapsed_s, 3),
            "logical_requests": self.logical_requests,
            "handler_invocations": self.handler_invocations,
            "duplicates_suppressed": self.duplicates_suppressed,
            "results_replayed": self.results_replayed,
            "resumes": self.resumes,
            "reaped": self.reaped,
            "retries": self.retries,
            "failovers": self.failovers,
            "key_reuploads": self.key_reuploads,
            "worker_restarts": self.worker_restarts,
            "admission_rejections": self.admission_rejections,
            "fault_counts": dict(self.fault_counts),
            "bytes_up": self.bytes_up,
            "bytes_down": self.bytes_down,
            "oracle_bytes_up": self.oracle_bytes_up,
            "oracle_bytes_down": self.oracle_bytes_down,
            "key_uploads": self.key_uploads,
            "leaks": {
                "futures": self.leaked_futures,
                "workers": self.leaked_workers,
                "sessions": self.leaked_sessions,
            },
            "per_worker": [dict(w) for w in self.per_worker],
            "failures": list(self.failures),
        }

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"chaos soak [{status}] seed={self.seed}: "
            f"{self.n_sessions} session(s) x {self.n_requests} request(s) "
            f"in {self.elapsed_s:.2f}s",
            f"  exactly-once: {self.handler_invocations} handler run(s) for "
            f"{self.logical_requests} logical request(s); "
            f"{self.duplicates_suppressed} duplicate(s) suppressed, "
            f"{self.results_replayed} result(s) replayed, "
            f"{self.retries} client retries",
            f"  resumption: {self.resumes} resume(s), {self.reaped} "
            f"reaped, {self.key_uploads} key upload(s)",
            f"  faults injected: " + (", ".join(
                f"{k}={v}" for k, v in sorted(self.fault_counts.items()))
                or "none"),
            f"  ledger: {self.bytes_up}B up / {self.bytes_down}B down "
            f"(oracle {self.oracle_bytes_up}B / {self.oracle_bytes_down}B)",
            f"  leaks: {self.leaked_futures} future(s), "
            f"{self.leaked_workers} worker(s), "
            f"{self.leaked_sessions} session(s)",
        ]
        if self.n_workers > 1 or self.worker_restarts:
            lines.append(
                f"  fleet: {self.n_workers} worker(s), "
                f"{self.worker_restarts} restart(s), "
                f"{self.failovers} failover(s), "
                f"{self.key_reuploads} key re-upload(s), "
                f"{self.admission_rejections} admission rejection(s)")
            for w in self.per_worker:
                m = w.get("metrics", {})
                lines.append(
                    f"    worker {w.get('worker', '?')}"
                    f"{' (retired)' if w.get('retired') else ''}: "
                    f"{m.get('handler_invocations', 0)} execution(s), "
                    f"{m.get('responses', 0)} response(s), "
                    f"{w.get('sessions', 0)} session(s)")
        lines.extend(f"  FAILURE: {f}" for f in self.failures)
        return "\n".join(lines)


def _counting_echo(session, request):
    """Stateful echo: exactly-once execution is visible in session.state."""
    session.state["n"] = session.state.get("n", 0) + 1
    return list(request.cts), {"n": session.state["n"],
                               "seq": request.meta.get("seq")}


async def _oracle_session(params: EncryptionParameters, ctx: BfvContext,
                          n_requests: int) -> CostLedger:
    """A fault-free run of the soak workload over a SimulatedLink; its
    ledger is the byte-exact target every chaotic session must match."""
    ledger = CostLedger()
    client_end, server_end = SimulatedLink.pair(ledger=ledger)
    server = OffloadServer(params, concurrency=1, resume_grace_s=0)
    server.register("chaos/count", _counting_echo)
    serve_task = asyncio.ensure_future(server.serve_transport(server_end))
    client = await OffloadClient(params, transport=client_end).connect()
    await client.upload_keys(galois=ctx.make_galois_keys([1]))
    for seq in range(n_requests):
        ct = ctx.encrypt_symmetric([seq + 1, 0])
        await client.request("chaos/count", [ct], {"seq": seq})
    await client.close()
    await server.stop()
    serve_task.cancel()
    return ledger


async def chaos_soak(params: Optional[EncryptionParameters] = None, *,
                     n_sessions: int = 8, n_requests: int = 6,
                     seed: int = 2026, plan: FaultPlan = DEFAULT_PLAN,
                     concurrency: int = 4, request_timeout: float = 0.25,
                     max_retries: int = 60, resume_grace_s: float = 5.0,
                     ) -> SoakReport:
    """Run N concurrent sessions through seeded fault schedules and audit
    the end state.  Deterministic in its *decisions* for a given seed (the
    fault schedule is a pure function of seed and frame index); the report
    lists every violated invariant in ``failures``.
    """
    if params is None:
        params = small_test_parameters(SchemeType.BFV, poly_degree=1024,
                                       plain_bits=16, data_bits=(30, 30))
    report = SoakReport(n_sessions=n_sessions, n_requests=n_requests,
                        seed=seed)
    started = time.monotonic()

    server = OffloadServer(params, queue_limit=16, concurrency=concurrency,
                           resume_grace_s=resume_grace_s, dedupe_window=128)
    server.register("chaos/count", _counting_echo)
    host, port = await server.start()

    transports: List[FaultyTransport] = []
    ledgers: List[CostLedger] = []
    clients: List[OffloadClient] = []

    async def one_session(i: int) -> List[str]:
        failures: List[str] = []
        ctx = BfvContext(params, seed=9000 + i)
        ledger = CostLedger()
        ledgers.append(ledger)
        session_transports: List[FaultyTransport] = []
        conn_count = 0

        async def factory() -> Transport:
            nonlocal conn_count
            conn_count += 1
            inner = await TcpTransport.connect(host, port, retries=5,
                                               backoff_s=0.02)
            faulty = FaultyTransport(
                inner, plan,
                seed=f"{seed}:session{i}:conn{conn_count}",
                armed=conn_count > 1,  # first connection provisions clean
                ledger=ledger)
            session_transports.append(faulty)
            transports.append(faulty)
            return faulty

        client = OffloadClient(params, host, port,
                               transport_factory=factory,
                               request_timeout=request_timeout,
                               max_retries=max_retries, backoff_s=0.02)
        clients.append(client)
        await client.connect()
        await client.upload_keys(galois=ctx.make_galois_keys([1]))
        session_transports[0].armed = True  # provisioning done: go hostile
        try:
            for seq in range(n_requests):
                vec = [seq + 1, 0]
                ct = ctx.encrypt_symmetric(vec)
                out, meta = await client.request("chaos/count", [ct],
                                                 {"seq": seq})
                if meta.get("n") != seq + 1:
                    failures.append(
                        f"session {i}: request {seq} saw state n={meta.get('n')}"
                        f", expected {seq + 1} (duplicate or lost execution)")
                if len(out) != 1 or list(ctx.decrypt(out[0])[:2]) != vec:
                    failures.append(
                        f"session {i}: request {seq} returned a wrong result")
        finally:
            for t in session_transports:
                t.armed = False  # clean goodbye
            # If the last fault severed the link after the final result,
            # reattach once so the BYE lands and the session dies cleanly
            # instead of lingering until the grace period reaps it.
            if client._conn_error is not None:
                try:
                    await client.resume()
                except Exception:  # noqa: BLE001 — best-effort goodbye
                    pass
            if client._pending:
                failures.append(
                    f"session {i}: {len(client._pending)} leaked pending "
                    f"future(s)")
                report.leaked_futures += len(client._pending)
            await client.close()
        return failures

    results = await asyncio.gather(
        *(one_session(i) for i in range(n_sessions)), return_exceptions=True)
    for i, res in enumerate(results):
        if isinstance(res, BaseException):
            report.failures.append(f"session {i} crashed: {res!r}")
        else:
            report.failures.extend(res)

    # Fault-free oracle: byte-exact ledger target (same workload shape).
    oracle = await _oracle_session(params, BfvContext(params, seed=8999),
                                   n_requests)
    report.oracle_bytes_up = oracle.bytes_up
    report.oracle_bytes_down = oracle.bytes_down
    for i, ledger in enumerate(ledgers):
        if (ledger.bytes_up != oracle.bytes_up
                or ledger.bytes_down != oracle.bytes_down
                or ledger.rounds != oracle.rounds):
            report.failures.append(
                f"session {i}: ledger {ledger.bytes_up}B up / "
                f"{ledger.bytes_down}B down / {ledger.rounds} round(s) "
                f"!= oracle {oracle.bytes_up}B / {oracle.bytes_down}B / "
                f"{oracle.rounds} (retries were double-charged)")
    report.bytes_up = sum(ledger.bytes_up for ledger in ledgers)
    report.bytes_down = sum(ledger.bytes_down for ledger in ledgers)

    # Server-side end state: exactly-once execution, no re-provisioning.
    snap = server.metrics.snapshot()
    report.logical_requests = n_sessions * n_requests
    report.handler_invocations = snap["handler_invocations"]
    report.duplicates_suppressed = snap["duplicates_suppressed"]
    report.results_replayed = snap["results_replayed"]
    report.resumes = snap["sessions_resumed"]
    report.reaped = snap["sessions_reaped"]
    report.key_uploads = sum(m["key_uploads"]
                             for m in snap["sessions"].values())
    report.retries = sum(c.stats.retries for c in clients)
    if report.handler_invocations != report.logical_requests:
        report.failures.append(
            f"exactly-once violated: {report.handler_invocations} handler "
            f"invocation(s) for {report.logical_requests} logical request(s)")
    if report.key_uploads != n_sessions:
        report.failures.append(
            f"{report.key_uploads} key upload(s) for {n_sessions} "
            f"session(s): resume re-provisioned keys")

    # Leak audit: everything the soak created must be gone.
    deadline = time.monotonic() + 2.0
    while (server._sessions or server._worker_tasks) \
            and time.monotonic() < deadline:
        await asyncio.sleep(0.02)
    report.leaked_sessions = len(server._sessions)
    report.leaked_workers = len(server._worker_tasks)
    if report.leaked_sessions:
        report.failures.append(
            f"{report.leaked_sessions} session(s) still registered after "
            f"all clients said BYE")
    if report.leaked_workers:
        report.failures.append(
            f"{report.leaked_workers} worker task(s) still alive")
    await server.stop()

    for t in transports:
        for k, v in t.fault_counts().items():
            report.fault_counts[k] = report.fault_counts.get(k, 0) + v
    report.elapsed_s = time.monotonic() - started
    return report


def run_chaos_soak(**kwargs) -> SoakReport:
    """Synchronous wrapper around :func:`chaos_soak`."""
    return asyncio.run(chaos_soak(**kwargs))


# ---------------------------------------------------------------------------
# Fleet soak: worker-kill chaos over a sharded FleetServer
# ---------------------------------------------------------------------------

def _logged_counting_echo(session, request):
    """The counting echo plus an append-only per-process execution log.

    Fleet workers are killed mid-soak, so their in-memory exactly-once
    counters die with them.  The log file — one per worker process, named
    by pid so distinct generations never collide — is the cross-death
    audit: one line per handler execution, keyed by the request's logical
    ``uid`` (which, unlike the per-connection request id, survives
    failover to a fresh session).
    """
    log_dir = session.server.op_config.get("exec_log_dir")
    uid = request.meta.get("uid")
    if log_dir and uid is not None:
        path = os.path.join(log_dir, f"exec-{os.getpid()}.log")
        with open(path, "a", encoding="ascii") as fh:
            fh.write(f"{uid}\n")
    return _counting_echo(session, request)


def install_chaos_ops(server) -> None:
    """Worker installer (``repro.runtime.chaos:install_chaos_ops``)."""
    server.register("chaos/count", _logged_counting_echo)


async def fleet_chaos_soak(params: Optional[EncryptionParameters] = None, *,
                           n_workers: int = 2, n_sessions: int = 4,
                           n_requests: int = 10, seed: int = 2027,
                           kill_workers: int = 1, kill_fate: str = "idle",
                           eval_workers: int = 0,
                           session_cap: Optional[int] = None,
                           request_timeout: float = 2.0,
                           max_retries: int = 40,
                           exec_log_dir: Optional[str] = None,
                           ) -> SoakReport:
    """Kill workers under live sharded traffic and audit exactly-once.

    N failover-enabled clients run the counting workload against a
    :class:`~repro.runtime.fleet.FleetServer`; once a third of the logical
    requests have completed, workers are killed (``kill_fate="idle"`` dies
    between requests, preserving accounting) and the supervisor respawns
    them.  The audit then asserts, across all worker generations:

    * **exactly-once**: every logical ``uid`` appears exactly once in the
      union of the per-process execution logs — no lost or duplicated
      work across worker death and client failover (``kill_fate="hard"``
      relaxes this to at-least-once: a crash between handler execution
      and the RESULT frame legitimately re-executes on replay);
    * **ledger parity**: every client's :class:`CostLedger` is
      byte-identical to a fault-free single-process oracle run — retries,
      resumes, and failover key replays all cost nothing;
    * **supervision**: every kill produced a worker restart, and at least
      one client actually exercised the failover path.
    """
    if params is None:
        params = small_test_parameters(SchemeType.BFV, poly_degree=1024,
                                       plain_bits=16, data_bits=(30, 30))
    from repro.runtime.fleet import FleetServer

    report = SoakReport(n_sessions=n_sessions, n_requests=n_requests,
                        seed=seed)
    report.n_workers = n_workers
    started = time.monotonic()
    total = n_sessions * n_requests
    own_log_dir = exec_log_dir is None
    log_dir = exec_log_dir or tempfile.mkdtemp(prefix="choco-fleet-soak-")

    fleet = FleetServer(
        params, n_workers,
        installers=("repro.runtime.chaos:install_chaos_ops",),
        eval_workers=eval_workers,
        session_cap=session_cap,
        queue_limit=16, concurrency=1,
        resume_grace_s=10.0, dedupe_window=128,
        op_config={"exec_log_dir": log_dir})
    host, port = await fleet.start()

    clients: List[OffloadClient] = []
    ledgers: List[CostLedger] = []
    completions = [0]
    # Sessions hold their final request until every kill has landed, so the
    # killed worker's sessions always have traffic left to drive failover
    # (otherwise a fast run can retire all of a victim's requests before
    # the kill, and the soak's failover audit races).
    kills_done = asyncio.Event()
    if not kill_workers:
        kills_done.set()

    async def killer() -> None:
        try:
            for k in range(kill_workers):
                threshold = max(1, (k + 1) * total // (kill_workers + 2))
                while completions[0] < threshold:
                    await asyncio.sleep(0.01)
                index = k % n_workers
                # Poll first so the dying generation's work is retired into
                # the fleet totals rather than forgotten.
                await fleet.refresh_metrics()
                generation = await fleet.kill_worker(index, kill_fate)
                await fleet.wait_worker_restart(index, generation)
        finally:
            kills_done.set()

    async def one_session(i: int) -> List[str]:
        failures: List[str] = []
        ctx = BfvContext(params, seed=9100 + i)
        ledger = CostLedger()
        ledgers.append(ledger)

        async def factory() -> Transport:
            inner = await TcpTransport.connect(host, port, retries=8,
                                               backoff_s=0.02)
            # Unarmed FaultyTransport: a pure ledger-accounting shim — the
            # only chaos in this soak is worker death itself.
            return FaultyTransport(inner, FaultPlan(), armed=False,
                                   ledger=ledger)

        client = OffloadClient(params, host, port,
                               transport_factory=factory,
                               request_timeout=request_timeout,
                               max_retries=max_retries, backoff_s=0.02,
                               failover=True)
        clients.append(client)
        await client.connect()
        await client.upload_keys(galois=ctx.make_galois_keys([1]))
        try:
            for seq in range(n_requests):
                if seq == n_requests - 1:
                    await asyncio.wait_for(kills_done.wait(), timeout=60.0)
                vec = [seq + 1, 0]
                ct = ctx.encrypt_symmetric(vec)
                out, _meta = await client.request(
                    "chaos/count", [ct],
                    {"uid": f"s{i}q{seq}", "seq": seq})
                if len(out) != 1 or list(ctx.decrypt(out[0])[:2]) != vec:
                    failures.append(
                        f"session {i}: request {seq} returned a wrong "
                        f"result")
                completions[0] += 1
        finally:
            await client.close()
        return failures

    killer_task = asyncio.ensure_future(killer())
    results = await asyncio.gather(
        *(one_session(i) for i in range(n_sessions)),
        return_exceptions=True)
    for i, res in enumerate(results):
        if isinstance(res, BaseException):
            report.failures.append(f"session {i} crashed: {res!r}")
        else:
            report.failures.extend(res)
    if report.failures:
        killer_task.cancel()
        await asyncio.gather(killer_task, return_exceptions=True)
    else:
        try:
            await asyncio.wait_for(killer_task, timeout=60.0)
        except asyncio.TimeoutError:
            report.failures.append(
                "worker kill/restart schedule never completed")

    # ---------------------------------------------------------- the audit
    fleet_snap = await fleet.refresh_metrics()
    report.per_worker = fleet_snap["per_worker"]
    report.worker_restarts = fleet.metrics.worker_restarts
    report.admission_rejections = fleet.metrics.admission_rejections
    report.resumes = sum(w.get("metrics", {}).get("sessions_resumed", 0)
                         for w in report.per_worker)
    report.failovers = sum(c.stats.failovers for c in clients)
    report.key_reuploads = sum(c.stats.key_reuploads for c in clients)
    report.retries = sum(c.stats.retries for c in clients)
    report.logical_requests = total

    # Exactly-once across worker generations, from the execution logs.
    counts: Counter = Counter()
    for name in sorted(os.listdir(log_dir)):
        if not name.startswith("exec-"):
            continue
        with open(os.path.join(log_dir, name), encoding="ascii") as fh:
            for line in fh:
                uid = line.strip()
                if uid:
                    counts[uid] += 1
    report.handler_invocations = sum(counts.values())
    expected = {f"s{i}q{seq}"
                for i in range(n_sessions) for seq in range(n_requests)}
    missing = sorted(expected - counts.keys())
    extra = sorted(counts.keys() - expected)
    dupes = sorted(uid for uid, c in counts.items() if c > 1)
    if missing:
        report.failures.append(
            f"exactly-once violated: {len(missing)} request(s) never "
            f"executed (e.g. {missing[:3]})")
    if extra:
        report.failures.append(
            f"execution log names {len(extra)} unknown request(s) "
            f"(e.g. {extra[:3]})")
    if dupes and kill_fate != "hard":
        # A hard kill can crash a worker after a handler ran but before
        # its RESULT left the process; the replacement worker legitimately
        # re-executes on replay (at-least-once).  The graceful "idle" fate
        # dies only between requests, so there exactly-once must hold.
        report.failures.append(
            f"exactly-once violated: {len(dupes)} request(s) executed "
            f"more than once (e.g. {dupes[:3]})")

    # Byte-identical ledger parity with a fault-free single-process run.
    oracle = await _oracle_session(params, BfvContext(params, seed=8999),
                                   n_requests)
    report.oracle_bytes_up = oracle.bytes_up
    report.oracle_bytes_down = oracle.bytes_down
    for i, ledger in enumerate(ledgers):
        if (ledger.bytes_up != oracle.bytes_up
                or ledger.bytes_down != oracle.bytes_down
                or ledger.rounds != oracle.rounds):
            report.failures.append(
                f"session {i}: ledger {ledger.bytes_up}B up / "
                f"{ledger.bytes_down}B down / {ledger.rounds} round(s) "
                f"!= oracle {oracle.bytes_up}B / {oracle.bytes_down}B / "
                f"{oracle.rounds} (failover was not transfer-free)")
    report.bytes_up = sum(ledger.bytes_up for ledger in ledgers)
    report.bytes_down = sum(ledger.bytes_down for ledger in ledgers)

    if not report.failures and kill_workers:
        if report.worker_restarts < kill_workers:
            report.failures.append(
                f"{report.worker_restarts} worker restart(s) for "
                f"{kill_workers} kill(s)")
        if report.failovers < 1:
            report.failures.append(
                "no client exercised the failover path despite a worker "
                "kill")

    await fleet.stop()
    if own_log_dir:
        shutil.rmtree(log_dir, ignore_errors=True)
    report.elapsed_s = time.monotonic() - started
    return report


def run_fleet_chaos_soak(**kwargs) -> SoakReport:
    """Synchronous wrapper around :func:`fleet_chaos_soak`."""
    return asyncio.run(fleet_chaos_soak(**kwargs))
