"""Sharded multi-worker serving fleet for the offload runtime.

One :class:`~repro.runtime.server.OffloadServer` process tops out at one
core: the GIL serializes its HE kernels and a single asyncio loop carries
every session.  A :class:`FleetServer` scales out instead of up — a
front-end **router** process accepts CHOF connections and relays each one
to a shared-nothing **worker** process, each worker being a full
``OffloadServer`` (optionally with its own
:class:`~repro.runtime.evalpool.EvalPool`) listening on a loopback port.

The sharding trick is in the session ids.  Worker *i* of *n* allocates ids
from the arithmetic progression ``start=i+1, step=n``, so the owner of any
session is the pure function ``(session_id - 1) % n`` — sticky routing
needs no shared table, no coordination, and survives router restarts for
free.  A ``HELLO`` (new session) goes to the least-loaded live worker; a
``RESUME`` is routed to the owner computed from its session id.  After the
first frame the router is a dumb byte pump: it never parses ciphertexts
and adds no per-request work.

Failure handling composes with the v2 protocol instead of duplicating it:

* A worker death closes its relayed connections; clients RESUME, the
  router routes the RESUME to the (respawned, blank) owner, the worker
  answers ``RESUME_REJECTED``, and a failover-enabled client opens a fresh
  session and replays its cached keys (see ``OffloadClient(failover=True)``).
  Exactly-once is preserved end to end because request ids are idempotency
  keys and nothing re-executes without the client resubmitting.
* Admission control is fleet-wide: beyond ``session_cap`` concurrently
  connected sessions a ``HELLO`` is answered with ``BUSY`` (retry-after
  hint included) and the connection is closed.  RESUMEs are always
  admitted — reattachment never grows the fleet.
* A supervisor task respawns dead workers (a fresh *generation* on a fresh
  port) and retires the dead generation's last metrics snapshot into
  :class:`~repro.runtime.metrics.FleetMetrics`, so fleet totals never
  forget work a killed worker already served.

Workers are driven over a control pipe (``snapshot`` / ``kill_idle`` /
``stop``); ``kill_idle`` is the chaos fate the fleet soak uses — the worker
``os._exit(17)``-s at the next instant no handler is executing and no
queue holds work, which kills it *between* requests and lets the soak
assert exactly-once without racing a half-executed handler.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.hecore.params import EncryptionParameters
from repro.hecore.serialize import deserialize_params, serialize_params
from repro.runtime.evalpool import (
    EvalPool,
    close_inherited_sockets,
    pooled_op_names,
    resolve_spec,
)
from repro.runtime.framing import (
    MAX_FRAME_BYTES,
    Busy,
    Error,
    ErrorCode,
    FrameError,
    MessageType,
    Resume,
    encode_frame,
    read_frame,
)
from repro.runtime.metrics import FleetMetrics
from repro.runtime.server import OffloadServer

logger = logging.getLogger("repro.runtime.fleet")

#: Exit code of a worker that honored a ``kill_idle`` chaos fate.
IDLE_KILL_EXIT_CODE = 17

_SPAWN_TIMEOUT_S = 60.0


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs, as picklable primitives.

    No live HE objects cross the process boundary: parameters travel as a
    :func:`~repro.hecore.serialize.serialize_params` blob and operation
    registries travel as ``"module:attr"`` installer specs resolved inside
    the worker (so the fleet works under both ``fork`` and ``spawn``).
    """

    index: int
    stride: int
    params_blob: bytes
    installers: Tuple[str, ...] = ()
    pooled_installers: Tuple[str, ...] = ()
    eval_workers: int = 0
    queue_limit: int = 16
    concurrency: int = 1
    retry_after_ms: int = 50
    keystore_limit: Optional[int] = None
    resume_grace_s: float = 30.0
    dedupe_window: int = 64
    idle_timeout_s: Optional[float] = None
    banner: str = "choco-fleet"
    op_config: Dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Worker process side
# ---------------------------------------------------------------------------

def _worker_main(conn, config: WorkerConfig) -> None:
    """Process entry point: run one sharded worker until told to stop."""
    # A worker respawned mid-soak forks off a router that is actively
    # relaying traffic; the inherited socket duplicates would hold every
    # in-flight client connection half-open after the router closes its
    # side (no FIN reaches the client, which then blocks forever).  Drop
    # them before serving anything.
    close_inherited_sockets(keep=(conn.fileno(),))
    try:
        asyncio.run(_worker_serve(conn, config))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass


async def _worker_serve(conn, config: WorkerConfig) -> None:
    params = deserialize_params(config.params_blob)
    eval_pool = None
    if config.eval_workers > 0 and config.pooled_installers:
        eval_pool = EvalPool(params, config.eval_workers,
                             config.pooled_installers)
    server = OffloadServer(
        params,
        queue_limit=config.queue_limit,
        concurrency=config.concurrency,
        retry_after_ms=config.retry_after_ms,
        banner=f"{config.banner}/w{config.index}",
        dedupe_window=config.dedupe_window,
        resume_grace_s=config.resume_grace_s,
        idle_timeout_s=config.idle_timeout_s,
        session_id_start=config.index + 1,
        session_id_step=config.stride,
        keystore_limit=config.keystore_limit,
        eval_pool=eval_pool,
        op_config=dict(config.op_config),
    )
    for spec in config.installers:
        resolve_spec(spec)(server)
    if eval_pool is not None:
        for op in pooled_op_names(config.pooled_installers):
            server.register_pooled(op)

    _host, port = await server.start("127.0.0.1", 0)
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    kill_flag = asyncio.Event()
    send_lock = threading.Lock()

    async def _snapshot() -> Dict:
        queue_depth = sum(len(s.queue) for s in server._sessions.values())
        return {
            "worker": config.index,
            "pid": os.getpid(),
            "port": port,
            "sessions": len(server._sessions),
            "queue_depth": queue_depth,
            "metrics": server.metrics.snapshot(),
            "eval_pool": (eval_pool.snapshot()
                          if eval_pool is not None else None),
        }

    def _control_reader() -> None:
        """Blocking pipe reader; EOF (router died) means shut down."""
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                loop.call_soon_threadsafe(stop_event.set)
                return
            cmd = msg[0]
            if cmd == "stop":
                loop.call_soon_threadsafe(stop_event.set)
                return
            if cmd == "snapshot":
                fut = asyncio.run_coroutine_threadsafe(_snapshot(), loop)
                try:
                    snap = fut.result(timeout=10.0)
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    snap = {"worker": config.index, "error": str(exc)}
                with send_lock:
                    try:
                        conn.send(("snapshot", snap))
                    except (BrokenPipeError, OSError):
                        loop.call_soon_threadsafe(stop_event.set)
                        return
            elif cmd == "kill_idle":
                loop.call_soon_threadsafe(kill_flag.set)

    async def _idle_killer() -> None:
        """Chaos fate: die *between* requests, never inside one.

        The idle check and the exit happen with no await between them, so
        the decision is atomic with respect to the event loop: no handler
        is mid-flight and no accepted request is silently dropped.
        """
        await kill_flag.wait()
        while True:
            idle = not any(s.executing or s.queue
                           for s in server._sessions.values())
            if idle:
                os._exit(IDLE_KILL_EXIT_CODE)
            await asyncio.sleep(0.005)

    reader_thread = threading.Thread(
        target=_control_reader, name=f"fleet-ctl-{config.index}", daemon=True)
    reader_thread.start()
    killer_task = asyncio.ensure_future(_idle_killer())
    with send_lock:
        conn.send(("ready", port))

    try:
        await stop_event.wait()
    finally:
        killer_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await killer_task
        await server.stop()
        if eval_pool is not None:
            await eval_pool.close()
        with contextlib.suppress(OSError):
            conn.close()


# ---------------------------------------------------------------------------
# Router side
# ---------------------------------------------------------------------------

class WorkerHandle:
    """Router-side view of one live worker generation."""

    def __init__(self, index: int, generation: int, process, conn,
                 port: int):
        self.index = index
        self.generation = generation
        self.process = process
        self.conn = conn
        self.port = port
        self.active_conns = 0
        self._lock = asyncio.Lock()

    def alive(self) -> bool:
        return self.process.is_alive()

    async def control(self, msg: tuple, timeout: float = 10.0):
        """One request/reply roundtrip on the control pipe."""
        async with self._lock:
            return await asyncio.to_thread(self._roundtrip, msg, timeout)

    def _roundtrip(self, msg: tuple, timeout: float):
        self.conn.send(msg)
        if not self.conn.poll(timeout):
            raise RuntimeError(
                f"worker {self.index} control timeout after {timeout}s")
        return self.conn.recv()

    async def send(self, msg: tuple) -> None:
        """Fire-and-forget control message (kill fates have no reply)."""
        async with self._lock:
            await asyncio.to_thread(self.conn.send, msg)

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self.conn.close()


class FleetServer:
    """Front-end router plus N shared-nothing worker processes."""

    def __init__(self, params: EncryptionParameters, n_workers: int = 2, *,
                 installers: Tuple[str, ...] = (),
                 pooled_installers: Tuple[str, ...] = (),
                 eval_workers: int = 0,
                 session_cap: Optional[int] = None,
                 queue_limit: int = 16, concurrency: int = 1,
                 retry_after_ms: int = 50,
                 keystore_limit: Optional[int] = None,
                 resume_grace_s: float = 30.0,
                 dedupe_window: int = 64,
                 idle_timeout_s: Optional[float] = None,
                 banner: str = "choco-fleet",
                 op_config: Optional[Dict[str, Any]] = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        if n_workers < 1:
            raise ValueError("a fleet needs at least one worker")
        if session_cap is not None and session_cap < 1:
            raise ValueError("session_cap must be at least 1 (or None)")
        self.params = params
        self.n_workers = n_workers
        self.installers = tuple(installers)
        self.pooled_installers = tuple(pooled_installers)
        self.eval_workers = eval_workers
        self.session_cap = session_cap
        self.queue_limit = queue_limit
        self.concurrency = concurrency
        self.retry_after_ms = retry_after_ms
        self.keystore_limit = keystore_limit
        self.resume_grace_s = resume_grace_s
        self.dedupe_window = dedupe_window
        self.idle_timeout_s = idle_timeout_s
        self.banner = banner
        self.op_config = dict(op_config or {})
        self.max_frame_bytes = max_frame_bytes
        # Serializing up front also validates the params are spec-complete
        # enough for workers to rebuild them bit-identically.
        self._params_blob = serialize_params(params)
        self.metrics = FleetMetrics()
        self._mp = _mp_context()
        self._workers: List[Optional[WorkerHandle]] = [None] * n_workers
        self._generation = 0
        self._admitted = 0
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._supervisor_task: Optional[asyncio.Task] = None
        self._closing = False
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------ lifecycle
    async def start(self, host: str = "127.0.0.1", port: int = 0,
                    ) -> Tuple[str, int]:
        """Spawn the workers, then listen; returns the router's endpoint."""
        for index in range(self.n_workers):
            self._workers[index] = await self._spawn_worker(index)
        self._tcp_server = await asyncio.start_server(
            self._on_connection, host, port)
        sockname = self._tcp_server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._supervisor_task = asyncio.ensure_future(self._supervisor())
        return self.host, self.port

    async def stop(self) -> None:
        self._closing = True
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._supervisor_task
            self._supervisor_task = None
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for handle in self._workers:
            if handle is None:
                continue
            with contextlib.suppress(Exception):
                await handle.send(("stop",))
        for handle in self._workers:
            if handle is None:
                continue
            await asyncio.to_thread(handle.process.join, 5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                await asyncio.to_thread(handle.process.join, 2.0)
            handle.close()
        self._workers = [None] * self.n_workers

    def _worker_config(self, index: int) -> WorkerConfig:
        return WorkerConfig(
            index=index, stride=self.n_workers,
            params_blob=self._params_blob,
            installers=self.installers,
            pooled_installers=self.pooled_installers,
            eval_workers=self.eval_workers,
            queue_limit=self.queue_limit,
            concurrency=self.concurrency,
            retry_after_ms=self.retry_after_ms,
            keystore_limit=self.keystore_limit,
            resume_grace_s=self.resume_grace_s,
            dedupe_window=self.dedupe_window,
            idle_timeout_s=self.idle_timeout_s,
            banner=self.banner,
            op_config=self.op_config,
        )

    async def _spawn_worker(self, index: int) -> WorkerHandle:
        generation = self._generation
        self._generation += 1
        return await asyncio.to_thread(self._spawn_worker_sync, index,
                                       generation)

    def _spawn_worker_sync(self, index: int,
                           generation: int) -> WorkerHandle:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_worker_main,
            args=(child_conn, self._worker_config(index)),
            daemon=False,  # workers may own eval-pool subprocess children
            name=f"choco-worker-{index}.g{generation}")
        process.start()
        child_conn.close()
        if not parent_conn.poll(_SPAWN_TIMEOUT_S):
            process.terminate()
            raise RuntimeError(f"worker {index} never reported ready")
        msg = parent_conn.recv()
        if msg[0] != "ready":
            process.terminate()
            raise RuntimeError(
                f"worker {index} sent {msg[0]!r} instead of ready")
        return WorkerHandle(index, generation, process, parent_conn, msg[1])

    async def _supervisor(self) -> None:
        """Respawn dead workers; retire their metrics first."""
        while True:
            await asyncio.sleep(0.05)
            for index in range(self.n_workers):
                handle = self._workers[index]
                if handle is None or handle.alive():
                    continue
                logger.warning(
                    "fleet worker %d (gen %d, pid %s) died with exit code "
                    "%s; respawning", index, handle.generation,
                    handle.process.pid, handle.process.exitcode)
                handle.close()
                self.metrics.retire_worker(index)
                self.metrics.worker_restarts += 1
                self._workers[index] = None
                try:
                    self._workers[index] = await self._spawn_worker(index)
                except Exception:  # noqa: BLE001 - retried next sweep
                    logger.exception("fleet worker %d respawn failed", index)

    # -------------------------------------------------------------- routing
    def _pick_for_hello(self) -> Optional[WorkerHandle]:
        """Least-loaded live worker (ties break toward the lowest index)."""
        best = None
        for handle in self._workers:
            if handle is None or not handle.alive():
                continue
            if best is None or handle.active_conns < best.active_conns:
                best = handle
        return best

    def owner_index(self, session_id: int) -> int:
        """Sticky routing: the worker whose id progression minted *sid*."""
        return (session_id - 1) % self.n_workers

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.metrics.connections_total += 1
        handle: Optional[WorkerHandle] = None
        admitted = False
        counted = False
        try:
            try:
                mtype, flags, payload = await read_frame(
                    reader, self.max_frame_bytes)
            except (ConnectionError, FrameError):
                return
            if mtype is MessageType.HELLO:
                if (self.session_cap is not None
                        and self._admitted >= self.session_cap):
                    self.metrics.admission_rejections += 1
                    await self._reply(writer, MessageType.BUSY, Busy(
                        0, self.retry_after_ms,
                        min(self._admitted, 0xFFFF)).pack())
                    return
                handle = self._pick_for_hello()
                if handle is None:
                    self.metrics.admission_rejections += 1
                    await self._reply(writer, MessageType.BUSY, Busy(
                        0, self.retry_after_ms, 0).pack())
                    return
                self.metrics.sessions_routed += 1
                admitted = True
                self._admitted += 1
                # Count the pick immediately (no await in between) so
                # concurrent HELLOs spread instead of dog-piling one worker.
                handle.active_conns += 1
                counted = True
            elif mtype is MessageType.RESUME:
                try:
                    resume = Resume.unpack(payload)
                except FrameError as exc:
                    await self._reply(writer, MessageType.ERROR, Error(
                        0, ErrorCode.BAD_FRAME, str(exc)).pack())
                    return
                handle = self._workers[self.owner_index(resume.session_id)]
                if handle is None or not handle.alive():
                    # The owner is down right now; the client's failover
                    # path treats this exactly like the respawned worker's
                    # own rejection: fresh HELLO, new session.
                    self.metrics.resumes_bounced += 1
                    await self._reply(writer, MessageType.ERROR, Error(
                        0, ErrorCode.RESUME_REJECTED,
                        f"worker for session {resume.session_id} is "
                        f"unavailable").pack())
                    return
                self.metrics.resumes_routed += 1
                handle.active_conns += 1
                counted = True
            else:
                await self._reply(writer, MessageType.ERROR, Error(
                    0, ErrorCode.BAD_FRAME,
                    f"expected HELLO or RESUME, got {mtype.name}").pack())
                return
            await self._relay(handle, mtype, flags, payload, reader, writer)
        finally:
            if counted and handle is not None:
                handle.active_conns -= 1
            if admitted:
                self._admitted -= 1
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, mtype: MessageType,
                     payload: bytes) -> None:
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(encode_frame(mtype, payload))
            await writer.drain()

    async def _relay(self, handle: WorkerHandle, mtype: MessageType,
                     flags: int, payload: bytes,
                     client_reader: asyncio.StreamReader,
                     client_writer: asyncio.StreamWriter) -> None:
        """Forward the sniffed first frame, then pump raw bytes both ways."""
        try:
            backend_reader, backend_writer = await asyncio.open_connection(
                "127.0.0.1", handle.port)
        except OSError:
            await self._reply(client_writer, MessageType.ERROR, Error(
                0, ErrorCode.RESUME_REJECTED
                if mtype is MessageType.RESUME else ErrorCode.BAD_FRAME,
                "fleet worker unreachable").pack())
            return
        self.metrics.connections_active += 1
        try:
            backend_writer.write(encode_frame(mtype, payload, flags))
            await backend_writer.drain()
            up = asyncio.ensure_future(
                self._pipe(client_reader, backend_writer))
            down = asyncio.ensure_future(
                self._pipe(backend_reader, client_writer))
            # Either side closing ends the relay; the other pipe is torn
            # down by closing both transports in the finally below.
            done, pending = await asyncio.wait(
                {up, down}, return_when=asyncio.FIRST_COMPLETED)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            self.metrics.connections_active -= 1
            backend_writer.close()
            with contextlib.suppress(Exception):
                await backend_writer.wait_closed()

    @staticmethod
    async def _pipe(reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            return

    # -------------------------------------------------------------- control
    def worker(self, index: int) -> Optional[WorkerHandle]:
        return self._workers[index]

    async def refresh_metrics(self) -> Dict:
        """Poll every live worker's snapshot; returns the fleet aggregate."""
        for handle in list(self._workers):
            if handle is None or not handle.alive():
                continue
            try:
                reply = await handle.control(("snapshot",))
            except Exception:  # noqa: BLE001 - a dying worker is retired
                continue      # by the supervisor, not the poller
            if reply and reply[0] == "snapshot":
                snap = dict(reply[1])
                snap["generation"] = handle.generation
                self.metrics.update_worker(handle.index, snap)
        return self.metrics.snapshot()

    async def kill_worker(self, index: int, fate: str = "idle") -> int:
        """Chaos entry point: kill worker *index*; returns its generation.

        ``fate="idle"`` asks the worker to ``os._exit`` at the next moment
        no handler is executing and no queue holds work (preserves
        exactly-once accounting); ``fate="hard"`` SIGKILLs immediately
        (in-flight work is lost and must be replayed by clients).
        """
        handle = self._workers[index]
        if handle is None:
            raise RuntimeError(f"worker {index} is not running")
        generation = handle.generation
        if fate == "idle":
            await handle.send(("kill_idle",))
        elif fate == "hard":
            handle.process.kill()
        else:
            raise ValueError(f"unknown worker fate {fate!r}")
        return generation

    async def wait_worker_restart(self, index: int, old_generation: int,
                                  timeout: float = 30.0) -> WorkerHandle:
        """Block until the supervisor has respawned worker *index*."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            handle = self._workers[index]
            if (handle is not None and handle.generation > old_generation
                    and handle.alive()):
                return handle
            await asyncio.sleep(0.02)
        raise TimeoutError(
            f"worker {index} did not restart within {timeout}s")
