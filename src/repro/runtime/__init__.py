"""repro.runtime — the asyncio offload-serving runtime.

Real sessions, framing, fair scheduling, and backpressure over the CHOCO
wire format: an :class:`OffloadServer` serves HE compute to many
:class:`OffloadClient` sessions over TCP or over an in-memory
:class:`SimulatedLink` that drives the analytical cost model.  The
protocol survives hostile networks: idempotent compute (exactly-once
handler execution under retries), ``RESUME`` session reattachment, and
``PING``/``PONG`` heartbeats — all reproducibly testable with the seeded
fault injection in :mod:`repro.runtime.chaos`.
"""

from repro.runtime.chaos import (
    DEFAULT_PLAN,
    FaultEvent,
    FaultPlan,
    FaultyTransport,
    SoakReport,
    chaos_soak,
    fleet_chaos_soak,
    run_chaos_soak,
    run_fleet_chaos_soak,
)
from repro.runtime.client import (
    ClientStats,
    OffloadClient,
    OffloadError,
    OffloadTimeout,
    ServerBusy,
)
from repro.runtime.evalpool import EvalPool, pooled_op_names, resolve_spec
from repro.runtime.fleet import FleetServer, WorkerConfig, WorkerHandle
from repro.runtime.framing import (
    FRAME_MAGIC,
    FRAME_VERSION,
    HEADER_SIZE,
    MAX_FRAME_BYTES,
    ErrorCode,
    FrameError,
    KeyKind,
    MessageType,
    decode_frame,
    encode_frame,
    read_frame,
)
from repro.runtime.metrics import (
    FleetMetrics,
    RuntimeMetrics,
    SessionMetrics,
    percentile,
)
from repro.runtime.server import (
    ComputeRequest,
    MissingEvaluationKey,
    OffloadServer,
    ServerSession,
    build_restricted_context,
)
from repro.runtime.transport import SimulatedLink, TcpTransport, Transport

__all__ = [
    "ClientStats",
    "ComputeRequest",
    "DEFAULT_PLAN",
    "ErrorCode",
    "EvalPool",
    "FaultEvent",
    "FaultPlan",
    "FaultyTransport",
    "FleetMetrics",
    "FleetServer",
    "FrameError",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "HEADER_SIZE",
    "KeyKind",
    "MAX_FRAME_BYTES",
    "MessageType",
    "MissingEvaluationKey",
    "OffloadClient",
    "OffloadError",
    "OffloadServer",
    "OffloadTimeout",
    "RuntimeMetrics",
    "ServerBusy",
    "ServerSession",
    "SessionMetrics",
    "SimulatedLink",
    "SoakReport",
    "TcpTransport",
    "Transport",
    "WorkerConfig",
    "WorkerHandle",
    "build_restricted_context",
    "chaos_soak",
    "decode_frame",
    "encode_frame",
    "fleet_chaos_soak",
    "percentile",
    "pooled_op_names",
    "read_frame",
    "resolve_spec",
    "run_chaos_soak",
    "run_fleet_chaos_soak",
]
