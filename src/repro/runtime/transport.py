"""Transports for the offload runtime: real TCP and the simulated radio.

Two implementations of one small interface:

* :class:`TcpTransport` — frames over an asyncio TCP stream.  Loopback-
  capable, so the full client/server runtime is exercised in tests and in
  the two-terminal ``repro serve`` / ``repro offload`` demo.
* :class:`SimulatedLink` — an in-memory duplex pair that still encodes and
  decodes every frame (the wire format is exercised byte for byte) but
  *accounts* transfers into the existing analytical model: logical
  ciphertext bytes and rounds go through :meth:`CostLedger.charge_upload` /
  :meth:`CostLedger.charge_download`, exactly as the in-process
  :class:`ClientAidedSession` charges them, and a
  :class:`~repro.platforms.radio.BluetoothLink` converts the ledger into
  link time/energy.  Every analytical experiment therefore works unchanged
  on top of the served path.

Both transports also count *physical* frame bytes (`bytes_sent` /
`bytes_received`), which the metrics layer reports alongside the logical
accounting.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.platforms.radio import BluetoothLink
from repro.runtime.framing import (
    MAX_FRAME_BYTES,
    MessageType,
    decode_frame,
    encode_frame,
    read_frame,
)


class Transport:
    """A framed, ordered, bidirectional message channel."""

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self.bytes_sent = 0
        self.bytes_received = 0

    async def send_frame(self, mtype: MessageType, payload: bytes = b"",
                         flags: int = 0) -> None:
        raise NotImplementedError

    async def send_raw(self, data: bytes) -> None:
        """Put raw bytes on the wire, bypassing frame encoding.

        Exists so fault injectors (:mod:`repro.runtime.chaos`) can emit
        corrupted or truncated frames; regular code never calls it.
        """
        raise NotImplementedError

    async def recv_frame(self) -> Tuple[MessageType, int, bytes]:
        raise NotImplementedError

    async def close(self) -> None:
        raise NotImplementedError

    @property
    def peer_name(self) -> str:
        return "?"

    # ---------------------------------------------------------- accounting
    # Logical-byte hooks driven by the client layer; the TCP transport
    # ignores them (its cost is real), the SimulatedLink forwards them to
    # the analytical CostLedger.
    def account_upload(self, logical_bytes: int) -> None:
        pass

    def account_download(self, logical_bytes: int) -> None:
        pass


class TcpTransport(Transport):
    """Frames over an asyncio TCP stream."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        super().__init__(max_frame_bytes)
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      retries: int = 3, backoff_s: float = 0.1,
                      max_frame_bytes: int = MAX_FRAME_BYTES,
                      ) -> "TcpTransport":
        """Open a connection, retrying with exponential backoff."""
        delay = backoff_s
        for attempt in range(retries + 1):
            try:
                reader, writer = await asyncio.open_connection(host, port)
                return cls(reader, writer, max_frame_bytes)
            except OSError:
                if attempt == retries:
                    raise
                await asyncio.sleep(delay)
                delay *= 2
        raise AssertionError("unreachable")

    @property
    def peer_name(self) -> str:
        peer = self._writer.get_extra_info("peername")
        return f"{peer[0]}:{peer[1]}" if peer else "tcp:?"

    async def send_frame(self, mtype: MessageType, payload: bytes = b"",
                         flags: int = 0) -> None:
        frame = encode_frame(mtype, payload, flags)
        self._writer.write(frame)
        self.bytes_sent += len(frame)
        await self._writer.drain()

    async def send_raw(self, data: bytes) -> None:
        self._writer.write(data)
        self.bytes_sent += len(data)
        await self._writer.drain()

    async def recv_frame(self) -> Tuple[MessageType, int, bytes]:
        mtype, flags, payload = await read_frame(self._reader,
                                                 self.max_frame_bytes)
        self.bytes_received += len(payload) + 12
        return mtype, flags, payload

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class SimulatedLink(Transport):
    """In-memory transport endpoint that drives the analytical cost model.

    Create both ends with :meth:`pair`; hand the server end to
    :meth:`OffloadServer.serve_transport` and the client end to an
    :class:`OffloadClient`.  Frames still round-trip through
    ``encode_frame``/``decode_frame`` so malformed-message handling and
    byte counts are as real as on TCP; only the socket is simulated.
    """

    def __init__(self, inbox: "asyncio.Queue", outbox: "asyncio.Queue",
                 name: str, ledger=None,
                 radio: Optional[BluetoothLink] = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        super().__init__(max_frame_bytes)
        self._inbox = inbox
        self._outbox = outbox
        self._name = name
        self._closed = False
        #: Analytical accounting target (client end only, usually).
        self.ledger = ledger
        self.radio = radio or BluetoothLink()

    @classmethod
    def pair(cls, ledger=None, radio: Optional[BluetoothLink] = None,
             max_frame_bytes: int = MAX_FRAME_BYTES,
             ) -> Tuple["SimulatedLink", "SimulatedLink"]:
        """A connected (client_end, server_end) pair of simulated links."""
        a_to_b: asyncio.Queue = asyncio.Queue()
        b_to_a: asyncio.Queue = asyncio.Queue()
        client = cls(b_to_a, a_to_b, "sim-client", ledger=ledger, radio=radio,
                     max_frame_bytes=max_frame_bytes)
        server = cls(a_to_b, b_to_a, "sim-server",
                     max_frame_bytes=max_frame_bytes)
        return client, server

    @property
    def peer_name(self) -> str:
        return self._name

    async def send_frame(self, mtype: MessageType, payload: bytes = b"",
                         flags: int = 0) -> None:
        if self._closed:
            raise ConnectionError("simulated link is closed")
        frame = encode_frame(mtype, payload, flags)
        self.bytes_sent += len(frame)
        await self._outbox.put(frame)

    async def send_raw(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionError("simulated link is closed")
        self.bytes_sent += len(data)
        await self._outbox.put(data)

    async def recv_frame(self) -> Tuple[MessageType, int, bytes]:
        frame = await self._inbox.get()
        if frame is None:
            raise ConnectionError("peer closed the simulated link")
        self.bytes_received += len(frame)
        return decode_frame(frame, self.max_frame_bytes)

    async def close(self) -> None:
        if not self._closed:
            self._closed = True
            await self._outbox.put(None)

    # ---------------------------------------------------------- accounting
    def account_upload(self, logical_bytes: int) -> None:
        if self.ledger is not None:
            self.ledger.charge_upload(logical_bytes)

    def account_download(self, logical_bytes: int) -> None:
        if self.ledger is not None:
            self.ledger.charge_download(logical_bytes)

    def link_time_s(self) -> float:
        """Simulated radio time for everything charged so far."""
        if self.ledger is None:
            return 0.0
        return self.radio.session_time(self.ledger.total_bytes,
                                       self.ledger.rounds)

    def link_energy_j(self) -> float:
        """Simulated client radio energy for everything charged so far."""
        if self.ledger is None:
            return 0.0
        return self.radio.transfer_energy(self.ledger.total_bytes)
