"""The offload client: connect, handshake, upload keys, request compute.

:class:`OffloadClient` speaks the frame protocol over any
:class:`~repro.runtime.transport.Transport`.  One background *pump* task
reads frames off the connection and resolves per-request futures, so many
requests can be in flight concurrently (the server schedules them fairly).

Reliability knobs match what a battery-powered client needs:

* connection retries with exponential backoff (in ``TcpTransport.connect``),
* per-request timeouts, retried with exponential backoff up to
  ``max_retries`` before surfacing :class:`OffloadTimeout`,
* ``BUSY`` backpressure honored by waiting the server's ``retry_after`` hint
  before re-submitting (surfacing :class:`ServerBusy` when retries run out),
* seed-compressed symmetric uploads by default (``compress_seed=True``) —
  the paper's halve-the-upload optimization (§4.3) applies on the wire
  exactly as in the analytical model.

Transfer accounting goes through ``transport.account_upload`` /
``account_download`` with *logical* ciphertext bytes
(:meth:`Ciphertext.size_bytes`), so a :class:`SimulatedLink` reproduces the
in-process :class:`CostLedger` numbers exactly.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.hecore.ciphertext import Ciphertext
from repro.hecore.params import EncryptionParameters
from repro.hecore.serialize import (
    deserialize_ciphertext,
    serialize_ciphertext,
    serialize_galois_keys,
    serialize_public_key,
    serialize_relin_key,
)
from repro.runtime.framing import (
    MAX_FRAME_BYTES,
    Busy,
    Compute,
    Error,
    ErrorCode,
    FrameError,
    Hello,
    HelloAck,
    KeyAck,
    KeyUpload,
    KeyKind,
    MessageType,
    Result,
)
from repro.runtime.transport import TcpTransport, Transport


class OffloadError(RuntimeError):
    """The server answered with a typed protocol error."""

    def __init__(self, message: str, code: Optional[ErrorCode] = None):
        super().__init__(message)
        self.code = code


class OffloadTimeout(OffloadError):
    """A request exhausted its timeout retries without a reply."""


class ServerBusy(OffloadError):
    """The server's queue stayed full through every retry."""

    def __init__(self, message: str, retry_after_ms: int = 0):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class OffloadClient:
    """One session against an :class:`OffloadServer`."""

    def __init__(self, params: EncryptionParameters,
                 host: Optional[str] = None, port: Optional[int] = None, *,
                 transport: Optional[Transport] = None,
                 request_timeout: float = 30.0, max_retries: int = 4,
                 backoff_s: float = 0.05, connect_retries: int = 3,
                 compress_seed: bool = True,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        if transport is None and (host is None or port is None):
            raise ValueError("need either host/port or an explicit transport")
        self.params = params
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.connect_retries = connect_retries
        self.compress_seed = compress_seed
        self.max_frame_bytes = max_frame_bytes
        self.transport = transport
        self.session_id: Optional[int] = None
        self.server_queue_limit: Optional[int] = None
        self.server_concurrency: Optional[int] = None
        self.banner: Optional[str] = None
        self._rid = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._key_waiters: Dict[KeyKind, asyncio.Future] = {}
        self._pump_task: Optional[asyncio.Task] = None
        self._conn_error: Optional[Exception] = None
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    async def connect(self) -> "OffloadClient":
        """Open the transport, handshake, and start the reader pump."""
        if self.transport is None:
            self.transport = await TcpTransport.connect(
                self.host, self.port, retries=self.connect_retries,
                backoff_s=self.backoff_s,
                max_frame_bytes=self.max_frame_bytes)
        hello = Hello.from_params(self.params)
        await self.transport.send_frame(MessageType.HELLO, hello.pack())
        mtype, _flags, payload = await self.transport.recv_frame()
        if mtype is MessageType.ERROR:
            err = Error.unpack(payload)
            raise OffloadError(f"handshake rejected: {err.message}", err.code)
        if mtype is not MessageType.HELLO_ACK:
            raise OffloadError(f"expected HELLO_ACK, got {mtype.name}")
        ack = HelloAck.unpack(payload)
        self.session_id = ack.session_id
        self.server_queue_limit = ack.queue_limit
        self.server_concurrency = ack.concurrency
        self.banner = ack.banner
        self._pump_task = asyncio.ensure_future(self._pump())
        return self

    async def close(self) -> None:
        """Send BYE (best effort) and tear the connection down."""
        if self._closed:
            return
        self._closed = True
        if self.transport is not None:
            try:
                await self.transport.send_frame(MessageType.BYE)
            except (ConnectionError, OSError):
                pass
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        if self.transport is not None:
            await self.transport.close()
        self._fail_waiters(OffloadError("connection closed"))

    async def __aenter__(self) -> "OffloadClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------ the pump
    async def _pump(self) -> None:
        try:
            while True:
                mtype, _flags, payload = await self.transport.recv_frame()
                if mtype is MessageType.RESULT:
                    result = Result.unpack(payload)
                    self._resolve(result.request_id, ("result", result))
                elif mtype is MessageType.BUSY:
                    busy = Busy.unpack(payload)
                    self._resolve(busy.request_id, ("busy", busy))
                elif mtype is MessageType.KEY_ACK:
                    ack = KeyAck.unpack(payload)
                    waiter = self._key_waiters.pop(ack.kind, None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result(ack)
                elif mtype is MessageType.ERROR:
                    err = Error.unpack(payload)
                    if err.request_id and err.request_id in self._pending:
                        self._resolve(err.request_id, ("error", err))
                    else:
                        raise OffloadError(
                            f"server error [{err.code.name}]: {err.message}",
                            err.code)
                elif mtype is MessageType.BYE:
                    raise ConnectionError("server said BYE")
                # Anything else is a server bug; ignore rather than dying.
        except asyncio.CancelledError:
            raise
        except (ConnectionError, FrameError, OffloadError) as exc:
            self._conn_error = exc
            self._fail_waiters(exc)

    def _resolve(self, request_id: int, value) -> None:
        future = self._pending.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(value)

    def _fail_waiters(self, exc: Exception) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()
        for future in list(self._key_waiters.values()):
            if not future.done():
                future.set_exception(exc)
        self._key_waiters.clear()

    def _check_alive(self) -> None:
        if self._closed:
            raise OffloadError("client is closed")
        if self._conn_error is not None:
            raise OffloadError(f"connection lost: {self._conn_error}")

    # ------------------------------------------------------------- key sync
    async def upload_keys(self, public=None, relin=None, galois=None) -> None:
        """Upload evaluation keys (the offline provisioning phase).

        Key uploads are *not* charged to the transfer ledger — matching the
        in-process protocol, which treats key/database provisioning as the
        offline phase outside the per-inference costs (§5.2).
        """
        uploads = []
        if public is not None:
            uploads.append((KeyKind.PUBLIC, serialize_public_key(public)))
        if relin is not None:
            uploads.append((KeyKind.RELIN, serialize_relin_key(relin)))
        if galois is not None:
            uploads.append((KeyKind.GALOIS, serialize_galois_keys(galois)))
        for kind, blob in uploads:
            self._check_alive()
            waiter = asyncio.get_running_loop().create_future()
            self._key_waiters[kind] = waiter
            await self.transport.send_frame(
                MessageType.KEY_UPLOAD, KeyUpload(kind, blob).pack())
            try:
                await asyncio.wait_for(waiter, self.request_timeout)
            except asyncio.TimeoutError:
                self._key_waiters.pop(kind, None)
                raise OffloadTimeout(
                    f"no KEY_ACK for {kind.name} key within "
                    f"{self.request_timeout}s")

    # -------------------------------------------------------------- compute
    async def request(self, op: str, cts: Iterable[Ciphertext] = (),
                      meta: Optional[dict] = None, *,
                      timeout: Optional[float] = None,
                      retries: Optional[int] = None,
                      account: bool = True,
                      ) -> Tuple[List[Ciphertext], dict]:
        """Submit one compute request; returns (result_cts, result_meta).

        Serialization happens once; every (re)submission reuses the blobs.
        ``BUSY`` replies wait out the server's retry-after hint; timeouts
        back off exponentially.  ``account=False`` skips ledger accounting
        (for provisioning uploads that the analytical model treats as
        offline).
        """
        self._check_alive()
        timeout = self.request_timeout if timeout is None else timeout
        retries = self.max_retries if retries is None else retries
        cts = list(cts)
        blobs = tuple(serialize_ciphertext(ct, compress_seed=self.compress_seed)
                      for ct in cts)
        logical_up = [ct.size_bytes() for ct in cts]
        delay = self.backoff_s
        last_busy: Optional[Busy] = None
        for attempt in range(retries + 1):
            self._check_alive()
            request_id = next(self._rid)
            future = asyncio.get_running_loop().create_future()
            self._pending[request_id] = future
            payload = Compute(request_id, op, dict(meta or {}), blobs).pack()
            if account:
                for nbytes in logical_up:
                    self.transport.account_upload(nbytes)
            await self.transport.send_frame(MessageType.COMPUTE, payload)
            try:
                kind, reply = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                self._pending.pop(request_id, None)
                if attempt == retries:
                    raise OffloadTimeout(
                        f"request {op!r} timed out after {attempt + 1} "
                        f"attempt(s) of {timeout}s")
                await asyncio.sleep(delay)
                delay *= 2
                continue
            if kind == "result":
                out_cts = [deserialize_ciphertext(blob, self.params)
                           for blob in reply.blobs]
                if account:
                    for ct in out_cts:
                        self.transport.account_download(ct.size_bytes())
                return out_cts, reply.meta
            if kind == "busy":
                last_busy = reply
                if attempt == retries:
                    break
                wait_s = max(reply.retry_after_ms / 1000.0, delay)
                await asyncio.sleep(wait_s)
                delay *= 2
                continue
            err: Error = reply
            raise OffloadError(
                f"request {op!r} failed [{err.code.name}]: {err.message}",
                err.code)
        raise ServerBusy(
            f"server busy: request {op!r} rejected "
            f"{retries + 1} time(s)",
            last_busy.retry_after_ms if last_busy else 0)
