"""The offload client: connect, handshake, upload keys, request compute.

:class:`OffloadClient` speaks the frame protocol over any
:class:`~repro.runtime.transport.Transport`.  One background *pump* task
reads frames off the connection and resolves per-request futures, so many
requests can be in flight concurrently (the server schedules them fairly).

Reliability knobs match what a battery-powered client on a lossy link
needs:

* connection retries with exponential backoff (in ``TcpTransport.connect``),
* per-request timeouts, retried with exponential backoff up to
  ``max_retries`` before surfacing :class:`OffloadTimeout`,
* **idempotent retries**: one ``request_id`` per *logical* request, reused
  verbatim by every resubmission, so the server's dedupe window can replay
  a lost ``RESULT`` instead of executing the handler twice,
* **reconnect and replay**: when the connection dies mid-request the client
  opens a fresh transport, presents its resume token (``RESUME``), and
  resubmits the same request ids — the server-side session (keystore,
  state, dedupe window) survives, so megabytes of Galois keys are never
  re-uploaded,
* ``PING``/``PONG`` heartbeats (``heartbeat_s``) that detect a dead peer
  between requests instead of at the next timeout,
* ``BUSY`` backpressure honored by waiting the server's ``retry_after`` hint
  before re-submitting (surfacing :class:`ServerBusy` when retries run out),
* seed-compressed symmetric uploads by default (``compress_seed=True``) —
  the paper's halve-the-upload optimization (§4.3) applies on the wire
  exactly as in the analytical model.

Transfer accounting goes through ``transport.account_upload`` /
``account_download`` with *logical* ciphertext bytes
(:meth:`Ciphertext.size_bytes`), charged **once per logical request** no
matter how many times the frames are retried — a :class:`SimulatedLink`
therefore reproduces the in-process :class:`CostLedger` numbers exactly,
faults or no faults.

Connection-level ``ERROR`` frames that arrive mid-session (``request_id ==
0``, e.g. the server's "unexpected frame" complaint) do **not** kill the
pump or the in-flight requests: they are recorded and surfaced as an
:class:`OffloadError` on the *next* API call.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Awaitable,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.hecore.ciphertext import Ciphertext
from repro.hecore.params import EncryptionParameters
from repro.hecore.serialize import (
    deserialize_ciphertext,
    serialize_ciphertext,
    serialize_galois_keys,
    serialize_public_key,
    serialize_relin_key,
)
from repro.runtime.framing import (
    MAX_FRAME_BYTES,
    Busy,
    Compute,
    Error,
    ErrorCode,
    FrameError,
    Hello,
    HelloAck,
    KeyAck,
    KeyUpload,
    KeyKind,
    MessageType,
    Ping,
    Pong,
    Result,
    Resume,
    ResumeAck,
)
from repro.runtime.transport import TcpTransport, Transport

#: A coroutine factory producing a fresh connected transport; used for the
#: initial connection and for every reconnect-and-resume.
TransportFactory = Callable[[], Awaitable[Transport]]


class OffloadError(RuntimeError):
    """The server answered with a typed protocol error."""

    def __init__(self, message: str, code: Optional[ErrorCode] = None):
        super().__init__(message)
        self.code = code


class OffloadTimeout(OffloadError):
    """A request exhausted its timeout retries without a reply."""


class ServerBusy(OffloadError):
    """The server's queue stayed full through every retry."""

    def __init__(self, message: str, retry_after_ms: int = 0):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


@dataclass
class ClientStats:
    """Client-side reliability counters (one instance per client)."""

    attempts: int = 0        # COMPUTE frames sent (incl. resubmissions)
    retries: int = 0         # resubmissions of an already-sent request id
    timeouts: int = 0        # attempts that timed out waiting for a reply
    busy_waits: int = 0      # BUSY replies honored with a backoff wait
    resumes: int = 0         # successful RESUME reattachments
    failovers: int = 0       # fresh sessions opened after a rejected RESUME
    key_reuploads: int = 0   # KEYS_EVICTED signals answered with re-uploads
    reconnect_failures: int = 0
    pings_sent: int = 0
    pongs_received: int = 0
    session_errors: int = 0  # anonymous ERROR frames recorded, not fatal
    half_open_resets: int = 0  # connections declared dead after silent timeouts

    def snapshot(self) -> Dict:
        return dict(self.__dict__)


class OffloadClient:
    """One session against an :class:`OffloadServer`."""

    def __init__(self, params: EncryptionParameters,
                 host: Optional[str] = None, port: Optional[int] = None, *,
                 transport: Optional[Transport] = None,
                 transport_factory: Optional[TransportFactory] = None,
                 request_timeout: float = 30.0, max_retries: int = 4,
                 backoff_s: float = 0.05, max_backoff_s: float = 2.0,
                 suspect_after: int = 2, connect_retries: int = 3,
                 compress_seed: bool = True,
                 auto_resume: bool = True,
                 failover: bool = False,
                 on_failover: Optional[Callable[["OffloadClient"],
                                               object]] = None,
                 heartbeat_s: Optional[float] = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        if (transport is None and transport_factory is None
                and (host is None or port is None)):
            raise ValueError(
                "need host/port, an explicit transport, or a factory")
        self.params = params
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        #: Retry backoff doubles per attempt but never past this ceiling —
        #: an uncapped exponential turns a retry budget of 40 into hours.
        self.max_backoff_s = max_backoff_s
        #: Consecutive silent timeouts on one connection before the client
        #: declares it half-open and reconnects.  A NAT, a proxy, or a fork
        #: that duplicated the peer's socket can leave a TCP connection
        #: writable-but-unread forever; without this the retry loop would
        #: resubmit into the void and never trigger RESUME/failover.
        self.suspect_after = max(1, suspect_after)
        self.connect_retries = connect_retries
        self.compress_seed = compress_seed
        self.auto_resume = auto_resume
        #: When a RESUME is rejected (the owning fleet worker died and took
        #: the session with it), fall back to a fresh HELLO handshake and
        #: re-provision cached keys instead of failing the session.
        self.failover = failover or on_failover is not None
        #: Application hook invoked after a successful failover handshake,
        #: for rebuilding server-side session state (may be a coroutine).
        self.on_failover = on_failover
        self.heartbeat_s = heartbeat_s
        self.max_frame_bytes = max_frame_bytes
        self.transport = transport
        self._transport_factory = transport_factory
        self.session_id: Optional[int] = None
        self.server_queue_limit: Optional[int] = None
        self.server_concurrency: Optional[int] = None
        self.banner: Optional[str] = None
        self.resume_token: Optional[bytes] = None
        self.grace_period_ms: int = 0
        self.stats = ClientStats()
        #: Serialized key blobs by kind, exactly as uploaded (Galois blobs
        #: accumulate).  This is what KEYS_EVICTED re-uploads and failover
        #: re-provisioning replay — keys are regenerated from bytes, never
        #: from the secret key, so the cache mirrors the server verbatim.
        self._key_blob_cache: Dict[KeyKind, List[bytes]] = {}
        #: A failover handshake succeeded but key re-provisioning was cut
        #: short; the next successful reattach finishes the job.
        self._reprovision_needed = False
        self._rid = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._key_waiters: Dict[KeyKind, Deque[asyncio.Future]] = {}
        self._pump_task: Optional[asyncio.Task] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._resume_lock = asyncio.Lock()
        self._conn_error: Optional[Exception] = None
        self._session_errors: Deque[Error] = deque(maxlen=16)
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    async def _new_transport(self) -> Transport:
        if self._transport_factory is not None:
            return await self._transport_factory()
        if self.host is None or self.port is None:
            raise OffloadError(
                "cannot open a new connection: no host/port or factory")
        return await TcpTransport.connect(
            self.host, self.port, retries=self.connect_retries,
            backoff_s=self.backoff_s, max_frame_bytes=self.max_frame_bytes)

    async def connect(self) -> "OffloadClient":
        """Open the transport, handshake, and start the reader pump.

        A ``BUSY`` answer to ``HELLO`` is fleet admission control (the
        session cap is reached): the client honors ``retry_after_ms`` and
        retries on a fresh connection, surfacing :class:`ServerBusy` when
        ``max_retries`` run out.
        """
        delay = self.backoff_s
        for attempt in range(self.max_retries + 1):
            if self.transport is None:
                self.transport = await self._new_transport()
            hello = Hello.from_params(self.params)
            await self.transport.send_frame(MessageType.HELLO, hello.pack())
            mtype, _flags, payload = await self.transport.recv_frame()
            if mtype is not MessageType.BUSY:
                break
            busy = Busy.unpack(payload)
            self.stats.busy_waits += 1
            await self.transport.close()
            self.transport = None
            reconnectable = (self._transport_factory is not None
                             or (self.host is not None
                                 and self.port is not None))
            if attempt == self.max_retries or not reconnectable:
                raise ServerBusy(
                    f"admission rejected: fleet at capacity "
                    f"({attempt + 1} attempt(s))", busy.retry_after_ms)
            await asyncio.sleep(max(busy.retry_after_ms / 1000.0, delay))
            delay = min(delay * 2, self.max_backoff_s)
        if mtype is MessageType.ERROR:
            err = Error.unpack(payload)
            raise OffloadError(f"handshake rejected: {err.message}", err.code)
        if mtype is not MessageType.HELLO_ACK:
            raise OffloadError(f"expected HELLO_ACK, got {mtype.name}")
        ack = HelloAck.unpack(payload)
        self.session_id = ack.session_id
        self.server_queue_limit = ack.queue_limit
        self.server_concurrency = ack.concurrency
        self.banner = ack.banner
        self.resume_token = ack.resume_token or None
        self.grace_period_ms = ack.grace_ms
        self._pump_task = asyncio.ensure_future(self._pump())
        if self.heartbeat_s is not None and self.heartbeat_s > 0:
            self._heartbeat_task = asyncio.ensure_future(self._heartbeat())
        return self

    async def close(self) -> None:
        """Send BYE (best effort) and tear the connection down."""
        if self._closed:
            return
        self._closed = True
        for task in (self._heartbeat_task, self._pump_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._heartbeat_task = None
        self._pump_task = None
        if self.transport is not None:
            if self._conn_error is None:
                try:
                    await self.transport.send_frame(MessageType.BYE)
                except (ConnectionError, OSError):
                    pass
            await self.transport.close()
        self._fail_waiters(OffloadError("connection closed"))

    async def __aenter__(self) -> "OffloadClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------ the pump
    async def _pump(self) -> None:
        try:
            while True:
                mtype, _flags, payload = await self.transport.recv_frame()
                if mtype is MessageType.RESULT:
                    result = Result.unpack(payload)
                    self._resolve(result.request_id, ("result", result))
                elif mtype is MessageType.BUSY:
                    busy = Busy.unpack(payload)
                    self._resolve(busy.request_id, ("busy", busy))
                elif mtype is MessageType.KEY_ACK:
                    ack = KeyAck.unpack(payload)
                    waiters = self._key_waiters.get(ack.kind)
                    while waiters:
                        waiter = waiters.popleft()
                        if not waiter.done():
                            waiter.set_result(ack)
                            break
                elif mtype is MessageType.PONG:
                    self.stats.pongs_received += 1
                elif mtype is MessageType.ERROR:
                    err = Error.unpack(payload)
                    if err.request_id and err.request_id in self._pending:
                        self._resolve(err.request_id, ("error", err))
                    else:
                        # Connection-scoped (request_id == 0) or stale error:
                        # record it for the next API call instead of killing
                        # the pump and every in-flight request with it.
                        self.stats.session_errors += 1
                        self._session_errors.append(err)
                elif mtype is MessageType.BYE:
                    raise ConnectionError("server said BYE")
                # Anything else is a server bug; ignore rather than dying.
        except asyncio.CancelledError:
            raise
        except (ConnectionError, FrameError, OSError) as exc:
            self._conn_error = exc
            self._fail_waiters(exc)

    async def _heartbeat(self) -> None:
        nonce = itertools.count(1)
        while True:
            await asyncio.sleep(self.heartbeat_s)
            if self._conn_error is not None:
                continue  # a reconnect (or the next request) will recover
            try:
                await self.transport.send_frame(
                    MessageType.PING, Ping(next(nonce)).pack())
                self.stats.pings_sent += 1
            except (ConnectionError, OSError) as exc:
                if self._conn_error is None:
                    self._conn_error = exc

    def _resolve(self, request_id: int, value) -> None:
        future = self._pending.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result(value)

    @staticmethod
    def _abandon(future: Optional[asyncio.Future]) -> None:
        """Drop a future no one will await again.  The pump may have failed
        it concurrently (``_fail_waiters``); mark that exception retrieved
        so the event loop doesn't log it at garbage collection."""
        if future is not None and future.done() and not future.cancelled():
            future.exception()

    def _fail_waiters(self, exc: Exception) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()
        for waiters in self._key_waiters.values():
            for future in waiters:
                if not future.done():
                    future.set_exception(exc)
            waiters.clear()

    def _check_closed(self) -> None:
        if self._closed:
            raise OffloadError("client is closed")

    def _raise_session_error(self) -> None:
        """Surface a recorded connection-scoped ERROR frame, once."""
        if self._session_errors:
            err = self._session_errors.popleft()
            raise OffloadError(
                f"server error [{err.code.name}]: {err.message}", err.code)

    @property
    def session_error(self) -> Optional[Error]:
        """The oldest unraised connection-scoped error, if any (peek)."""
        return self._session_errors[0] if self._session_errors else None

    # --------------------------------------------------------- resumption
    def _can_resume(self) -> bool:
        return (self.auto_resume and self.resume_token is not None
                and (self._transport_factory is not None
                     or (self.host is not None and self.port is not None)))

    async def resume(self) -> None:
        """Reconnect and reattach to the server-side session.

        Safe to call concurrently (serialized internally); a no-op when the
        connection is healthy.  Raises :class:`OffloadError` when the server
        rejects the token or every reconnect attempt fails.
        """
        async with self._resume_lock:
            if self._closed:
                raise OffloadError("client is closed")
            if self._conn_error is None:
                return
            if self.resume_token is None or self.session_id is None:
                raise OffloadError(
                    f"connection lost: {self._conn_error} "
                    f"(no resume token to reattach with)")
            if self._pump_task is not None:
                self._pump_task.cancel()
                try:
                    await self._pump_task
                except asyncio.CancelledError:
                    pass
                self._pump_task = None
            if self.transport is not None:
                await self.transport.close()
            delay = self.backoff_s
            last_exc: Optional[Exception] = None
            for attempt in range(self.max_retries + 1):
                transport: Optional[Transport] = None
                try:
                    transport = await self._new_transport()
                    await transport.send_frame(
                        MessageType.RESUME,
                        Resume(self.session_id, self.resume_token).pack())
                    mtype, _flags, payload = await asyncio.wait_for(
                        transport.recv_frame(), self.request_timeout)
                except (ConnectionError, OSError, FrameError,
                        asyncio.TimeoutError) as exc:
                    last_exc = exc
                    if transport is not None:
                        await transport.close()
                    if attempt < self.max_retries:
                        await asyncio.sleep(delay)
                        delay = min(delay * 2, self.max_backoff_s)
                    continue
                if mtype is MessageType.ERROR:
                    err = Error.unpack(payload)
                    await transport.close()
                    if (err.code is ErrorCode.RESUME_REJECTED
                            and self.failover):
                        # The owning worker lost the session (killed and
                        # restarted, or the grace period lapsed): open a
                        # fresh session and re-provision from the cache.
                        try:
                            await self._failover()
                            return
                        except (ConnectionError, OSError, FrameError,
                                asyncio.TimeoutError) as exc:
                            last_exc = exc
                            if attempt < self.max_retries:
                                await asyncio.sleep(delay)
                                delay = min(delay * 2, self.max_backoff_s)
                            continue
                    self.stats.reconnect_failures += 1
                    raise OffloadError(
                        f"resume rejected: {err.message}", err.code)
                if mtype is not MessageType.RESUME_ACK:
                    last_exc = OffloadError(
                        f"expected RESUME_ACK, got {mtype.name}")
                    await transport.close()
                    continue
                ResumeAck.unpack(payload)  # validates the frame
                self.transport = transport
                self._conn_error = None
                self._pump_task = asyncio.ensure_future(self._pump())
                self.stats.resumes += 1
                if self._reprovision_needed:
                    # A previous failover was cut short mid-provisioning;
                    # finish it now (Galois re-uploads merge server-side).
                    await self._reupload_cached_keys(ensure_live=False)
                    self._reprovision_needed = False
                return
            self.stats.reconnect_failures += 1
            raise OffloadError(
                f"resume failed after {self.max_retries + 1} attempt(s): "
                f"{last_exc}")

    async def _failover(self) -> None:
        """Fresh-session fallback after a rejected RESUME (one attempt).

        Performs a full HELLO handshake on a new connection, adopts the new
        session id and resume token, restarts the pump, replays every
        cached key blob (uncharged — provisioning is the offline phase,
        exactly like the originals), then invokes ``on_failover`` so the
        application can rebuild server-side state.  In-flight request ids
        stay valid: their retry loops resubmit against the new session.
        Called under ``_resume_lock``; raises connection-class errors so
        the resume retry loop treats a failed attempt as retryable.
        """
        transport = await self._new_transport()
        try:
            await transport.send_frame(
                MessageType.HELLO, Hello.from_params(self.params).pack())
            mtype, _flags, payload = await asyncio.wait_for(
                transport.recv_frame(), self.request_timeout)
        except BaseException:
            await transport.close()
            raise
        if mtype is MessageType.BUSY:
            busy = Busy.unpack(payload)
            self.stats.busy_waits += 1
            await transport.close()
            await asyncio.sleep(max(busy.retry_after_ms / 1000.0,
                                    self.backoff_s))
            raise ConnectionError("fleet at capacity during failover")
        if mtype is MessageType.ERROR:
            err = Error.unpack(payload)
            await transport.close()
            self.stats.reconnect_failures += 1
            raise OffloadError(
                f"failover handshake rejected: {err.message}", err.code)
        if mtype is not MessageType.HELLO_ACK:
            await transport.close()
            raise ConnectionError(
                f"failover expected HELLO_ACK, got {mtype.name}")
        ack = HelloAck.unpack(payload)
        self.session_id = ack.session_id
        self.server_queue_limit = ack.queue_limit
        self.server_concurrency = ack.concurrency
        self.banner = ack.banner
        self.resume_token = ack.resume_token or None
        self.grace_period_ms = ack.grace_ms
        self.transport = transport
        self._conn_error = None
        self._pump_task = asyncio.ensure_future(self._pump())
        self.stats.failovers += 1
        self._reprovision_needed = True
        await self._reupload_cached_keys(ensure_live=False)
        self._reprovision_needed = False
        if self.on_failover is not None:
            result = self.on_failover(self)
            if asyncio.iscoroutine(result):
                await result

    async def _ensure_live(self) -> None:
        """Raise, or transparently resume, when the connection is down."""
        if self._conn_error is None:
            return
        if not self._can_resume():
            raise OffloadError(f"connection lost: {self._conn_error}")
        await self.resume()

    # ------------------------------------------------------------- key sync
    async def upload_keys(self, public=None, relin=None, galois=None) -> None:
        """Upload evaluation keys (the offline provisioning phase).

        Key uploads are *not* charged to the transfer ledger — matching the
        in-process protocol, which treats key/database provisioning as the
        offline phase outside the per-inference costs (§5.2).  Each upload
        follows the client's retry policy (timeout + exponential backoff up
        to ``max_retries``); concurrent uploads of the same kind are safe —
        acknowledgements are matched to waiters first-in first-out.
        """
        self._check_closed()
        self._raise_session_error()
        uploads = []
        if public is not None:
            uploads.append((KeyKind.PUBLIC, serialize_public_key(public)))
        if relin is not None:
            uploads.append((KeyKind.RELIN, serialize_relin_key(relin)))
        if galois is not None:
            uploads.append((KeyKind.GALOIS, serialize_galois_keys(galois)))
        for kind, blob in uploads:
            self._remember_key_blob(kind, blob)
            await self._upload_blob(kind, blob)

    def _remember_key_blob(self, kind: KeyKind, blob: bytes) -> None:
        """Cache the blob for KEYS_EVICTED / failover re-provisioning.

        Galois uploads are incremental server-side, so their blobs
        accumulate; public and relin uploads replace the previous blob.
        """
        if kind is KeyKind.GALOIS:
            self._key_blob_cache.setdefault(kind, []).append(blob)
        else:
            self._key_blob_cache[kind] = [blob]

    async def _reupload_cached_keys(self, *, charge: bool = False,
                                    ensure_live: bool = True) -> None:
        """Replay every cached key blob to the current session.

        ``charge=True`` bills the ledger the blob bytes once per call —
        the KEYS_EVICTED path, where re-upload traffic is a real online
        cost the eviction caused.  Failover re-provisioning stays
        uncharged, like the original offline uploads it replays.
        """
        for kind, blobs in list(self._key_blob_cache.items()):
            for blob in blobs:
                if charge:
                    self.transport.account_upload(len(blob))
                await self._upload_blob(kind, blob, ensure_live=ensure_live)

    async def _upload_blob(self, kind: KeyKind, blob: bytes, *,
                           ensure_live: bool = True) -> None:
        """One key blob with the client's retry policy.

        ``ensure_live=False`` is the re-provisioning path, called while
        ``_resume_lock`` is already held: connection failures re-raise for
        the caller's retry loop instead of recursing into ``resume()``.
        """
        delay = self.backoff_s
        payload = KeyUpload(kind, blob).pack()
        silent_timeouts = 0
        for attempt in range(self.max_retries + 1):
            self._check_closed()
            if ensure_live:
                await self._ensure_live()
            waiter = asyncio.get_running_loop().create_future()
            self._key_waiters.setdefault(kind, deque()).append(waiter)
            try:
                await self.transport.send_frame(
                    MessageType.KEY_UPLOAD, payload)
                await asyncio.wait_for(waiter, self.request_timeout)
                return
            except asyncio.TimeoutError:
                self._discard_key_waiter(kind, waiter)
                if attempt == self.max_retries:
                    raise OffloadTimeout(
                        f"no KEY_ACK for {kind.name} key within "
                        f"{self.request_timeout}s "
                        f"({attempt + 1} attempt(s))")
                silent_timeouts += 1
                if (ensure_live and silent_timeouts >= self.suspect_after
                        and self._conn_error is None
                        and self._can_resume()):
                    # Same half-open defense as request(): writes land,
                    # replies never come — reconnect instead of resending.
                    self.stats.half_open_resets += 1
                    self._conn_error = ConnectionError(
                        f"suspected half-open connection: "
                        f"{silent_timeouts} consecutive KEY_ACK timeouts")
                    silent_timeouts = 0
                await asyncio.sleep(delay)
                delay = min(delay * 2, self.max_backoff_s)
            except (ConnectionError, OSError, FrameError) as exc:
                self._discard_key_waiter(kind, waiter)
                if self._conn_error is None:
                    self._conn_error = exc
                if not ensure_live:
                    raise
                if attempt == self.max_retries or not self._can_resume():
                    raise OffloadError(
                        f"connection lost during {kind.name} key "
                        f"upload: {exc}")
                await asyncio.sleep(delay)
                delay = min(delay * 2, self.max_backoff_s)

    def _discard_key_waiter(self, kind: KeyKind,
                            waiter: asyncio.Future) -> None:
        waiters = self._key_waiters.get(kind)
        if waiters is not None:
            try:
                waiters.remove(waiter)
            except ValueError:
                pass  # already drained by _fail_waiters
        self._abandon(waiter)

    # -------------------------------------------------------------- compute
    async def request(self, op: str, cts: Iterable[Ciphertext] = (),
                      meta: Optional[dict] = None, *,
                      timeout: Optional[float] = None,
                      retries: Optional[int] = None,
                      account: bool = True,
                      ) -> Tuple[List[Ciphertext], dict]:
        """Submit one compute request; returns (result_cts, result_meta).

        One ``request_id`` is allocated per *logical* request and reused by
        every resubmission — timeouts, ``BUSY`` backoff, and reconnects all
        replay the same id, which the server dedupes (exactly-once handler
        execution).  Serialization happens once; every (re)submission reuses
        the blobs.  The transfer ledger is charged once, up front, per
        logical request — retries are a transport artifact the analytical
        model never sees.  ``account=False`` skips ledger accounting (for
        provisioning uploads that the analytical model treats as offline).
        """
        self._check_closed()
        self._raise_session_error()
        timeout = self.request_timeout if timeout is None else timeout
        retries = self.max_retries if retries is None else retries
        cts = list(cts)
        blobs = tuple(serialize_ciphertext(ct, compress_seed=self.compress_seed)
                      for ct in cts)
        request_id = next(self._rid)
        payload = Compute(request_id, op, dict(meta or {}), blobs).pack()
        if account:
            for ct in cts:
                self.transport.account_upload(ct.size_bytes())
        delay = self.backoff_s
        last_busy: Optional[Busy] = None
        silent_timeouts = 0
        for attempt in range(retries + 1):
            self._check_closed()
            await self._ensure_live()
            future = asyncio.get_running_loop().create_future()
            self._pending[request_id] = future
            self.stats.attempts += 1
            if attempt:
                self.stats.retries += 1
            try:
                await self.transport.send_frame(MessageType.COMPUTE, payload)
                kind, reply = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                self._pending.pop(request_id, None)
                self._abandon(future)
                self.stats.timeouts += 1
                if attempt == retries:
                    raise OffloadTimeout(
                        f"request {op!r} timed out after {attempt + 1} "
                        f"attempt(s) of {timeout}s")
                silent_timeouts += 1
                if (silent_timeouts >= self.suspect_after
                        and self._conn_error is None
                        and self._can_resume()):
                    # The connection accepts writes but nothing ever comes
                    # back — a half-open TCP link (dead peer, proxy holding
                    # our socket open).  Declare it lost so the next
                    # attempt reconnects via RESUME/failover instead of
                    # resubmitting into the void forever.
                    self.stats.half_open_resets += 1
                    self._conn_error = ConnectionError(
                        f"suspected half-open connection: "
                        f"{silent_timeouts} consecutive request timeouts")
                    silent_timeouts = 0
                await asyncio.sleep(delay)
                delay = min(delay * 2, self.max_backoff_s)
                continue
            except (ConnectionError, OSError, FrameError) as exc:
                self._pending.pop(request_id, None)
                self._abandon(future)
                if self._conn_error is None:
                    self._conn_error = exc
                if attempt == retries or not self._can_resume():
                    raise OffloadError(
                        f"request {op!r}: connection lost: {exc}")
                await asyncio.sleep(delay)
                delay = min(delay * 2, self.max_backoff_s)
                continue
            silent_timeouts = 0  # any reply proves the connection is live
            if kind == "result":
                out_cts = [deserialize_ciphertext(blob, self.params)
                           for blob in reply.blobs]
                if account:
                    for ct in out_cts:
                        self.transport.account_download(ct.size_bytes())
                return out_cts, reply.meta
            if kind == "busy":
                last_busy = reply
                self.stats.busy_waits += 1
                if attempt == retries:
                    break
                wait_s = max(reply.retry_after_ms / 1000.0, delay)
                await asyncio.sleep(wait_s)
                delay = min(delay * 2, self.max_backoff_s)
                continue
            err: Error = reply
            if (err.code is ErrorCode.KEYS_EVICTED
                    and self._key_blob_cache and attempt < retries):
                # The server's key-store LRU dropped our keys while idle.
                # Re-provision from the cache — charged once per eviction
                # event, retries within the upload are free — and resubmit
                # the same request id (nothing executed server-side).
                self.stats.key_reuploads += 1
                await self._reupload_cached_keys(charge=account)
                continue
            raise OffloadError(
                f"request {op!r} failed [{err.code.name}]: {err.message}",
                err.code)
        raise ServerBusy(
            f"server busy: request {op!r} rejected "
            f"{retries + 1} time(s)",
            last_busy.retry_after_ms if last_busy else 0)
