"""Static noise-budget estimation (no cryptography executed).

Client-aided scheduling needs to know *before running* whether an encrypted
segment fits the noise budget — that's how CHOCO selects parameters (§3.2)
and how the PageRank schedules of Figure 13 are priced.  This estimator
mirrors the empirical model of :mod:`repro.core.paramsearch` at the
granularity of individual operations, so a planned operation sequence can
be budget-checked in microseconds instead of seconds of real HE.

Validated against measured budgets in ``tests/test_noise_estimator.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.hecore.params import EncryptionParameters, SchemeType

#: Fresh-budget constant: budget ≈ log2(q_data) − 2·log2(t) − FRESH_OFFSET.
#: Calibrated to THIS library's measured fresh budgets (SEAL's constant is
#: ~8 bits more pessimistic; repro.core.paramsearch keeps the conservative
#: value because parameter selection should match SEAL-class systems).
FRESH_OFFSET_BITS = 0

#: Bits one rotation's key-switching contributes (two special primes).
ROTATION_BITS = 2

#: Safety slack applied by :meth:`NoiseEstimate.is_safe`.
SAFETY_BITS = 3

#: Rounding guard for a modulus switch: the divide-and-round step leaves
#: noise of roughly ``t * ||s||_1`` absolute magnitude, so the budget after
#: a switch cannot exceed ``live_bits - t_bits - log2(N) - guard``.
MOD_SWITCH_GUARD_BITS = 1.0

#: Documented slack for whole-program predictions
#: (:meth:`NoiseEstimator.budget_after` vs measured budgets).  The model
#: charges every plaintext multiply its worst-case ``t``-sized multiplier;
#: real kernels multiply by small constants and keep more budget, so the
#: prediction errs low by up to this many bits — never high by more than
#: :data:`SAFETY_BITS`.
PROGRAM_SLACK_BITS = 16


@dataclass(frozen=True)
class NoiseEstimate:
    """A predicted invariant-noise budget, in bits."""

    budget_bits: float
    params: EncryptionParameters
    #: Bits of the *live* data modulus (after planner limb drops); ``None``
    #: means the full data base is live.
    q_bits_live: Optional[float] = None

    def is_safe(self, slack: float = SAFETY_BITS) -> bool:
        """Whether decryption is predicted to succeed with margin."""
        return self.budget_bits >= slack

    def spent(self, fresh: "NoiseEstimate") -> float:
        return fresh.budget_bits - self.budget_bits


class NoiseEstimator:
    """Per-operation budget arithmetic for one BFV parameter set."""

    def __init__(self, params: EncryptionParameters):
        if params.scheme is not SchemeType.BFV:
            raise ValueError("the static estimator models BFV budgets")
        self.params = params
        self.t_bits = params.plain_modulus.bit_length()
        self.q_bits = params.data_base.bit_size
        self.log_n = math.log2(params.poly_degree)

    # ------------------------------------------------------------ states
    def fresh(self) -> NoiseEstimate:
        budget = self.q_bits - 2 * self.t_bits - FRESH_OFFSET_BITS
        return NoiseEstimate(budget_bits=float(max(0, budget)), params=self.params)

    # --------------------------------------------------------- transitions
    def _spend(self, est: NoiseEstimate, bits: float) -> NoiseEstimate:
        return replace(est, budget_bits=max(0.0, est.budget_bits - bits))

    def after_add(self, est: NoiseEstimate,
                  other: Optional[NoiseEstimate] = None) -> NoiseEstimate:
        """Adding ciphertexts: noise adds — at most one bit at the max."""
        floor = min(est.budget_bits,
                    other.budget_bits if other else est.budget_bits)
        return replace(est, budget_bits=max(0.0, floor - 1))

    def after_add_plain(self, est: NoiseEstimate) -> NoiseEstimate:
        return self._spend(est, 0.5)

    def after_rotation(self, est: NoiseEstimate) -> NoiseEstimate:
        return self._spend(est, ROTATION_BITS)

    def after_hoisted_rotations(self, est: NoiseEstimate,
                                count: int) -> NoiseEstimate:
        """*count* rotations of one ciphertext sharing a hoisted decompose.

        Each rotation adds the same key-switch term as the naive path (the
        shared centered decompose changes where the digits are computed, not
        their magnitude), and the fused rotate-and-sum primitives combine
        all rotated copies before the single rescale — so the growth is one
        rotation's key-switch bits plus log2(count + 1) accumulation bits,
        not ``count * ROTATION_BITS``.
        """
        if count <= 0:
            return est
        return self._spend(est, ROTATION_BITS + math.log2(count + 1))

    def after_multiply_plain(self, est: NoiseEstimate) -> NoiseEstimate:
        """Plain multiply scales noise by ~||encoded plaintext||: t·sqrt(N)."""
        return self._spend(est, self.t_bits + self.log_n / 2)

    def after_masked_permutation(self, est: NoiseEstimate) -> NoiseEstimate:
        """Figure 4A: two rotations + two masking multiplies + one add.

        The two masked halves are disjoint, so their noise combines like a
        single masking multiply plus the rotations.
        """
        est = self.after_rotation(self.after_rotation(est))
        est = self.after_multiply_plain(est)
        return self.after_add(est)

    def after_multiply(self, est: NoiseEstimate) -> NoiseEstimate:
        """Ciphertext multiply: the Table 1 'large' growth."""
        return self._spend(est, self.t_bits + self.log_n + 8)

    def after_mod_switch(self, est: NoiseEstimate,
                         dropped_bits: float) -> NoiseEstimate:
        """Dropping *dropped_bits* of trailing data residue.

        BFV mod-switch preserves the invariant-noise *ratio* — both the
        noise and ``q`` divide by the dropped prime — so the budget carries
        over, capped by the rounding floor of the smaller modulus:
        ``live_bits - t_bits - log2(N) - guard`` (the divide-and-round step
        leaves ``~t·||s||_1`` of absolute noise behind).
        """
        live = (self.q_bits if est.q_bits_live is None
                else est.q_bits_live) - dropped_bits
        ceiling = live - self.t_bits - self.log_n - MOD_SWITCH_GUARD_BITS
        budget = min(est.budget_bits, max(0.0, ceiling))
        return replace(est, budget_bits=budget, q_bits_live=live)

    # ------------------------------------------------------------ planning
    def budget_after_conv(self, taps: int, shifts: int) -> NoiseEstimate:
        """A rotationally-redundant convolution: parallel rotations of the
        fresh input, one weight multiply each, log-tree accumulation."""
        est = self.after_multiply_plain(self.after_rotation(self.fresh()))
        accumulation = math.ceil(math.log2(max(taps * shifts, 2)))
        return self._spend(est, accumulation)

    def segment_is_feasible(self, plain_mult_depth: int, rotations: int,
                            masked_permutations: int = 0) -> bool:
        """Whether an encrypted segment finishes with budget to spare."""
        est = self.fresh()
        for _ in range(masked_permutations):
            est = self.after_masked_permutation(est)
        # Rotations within a linear op act on fresh copies in parallel and
        # are then summed: one rotation of depth plus log2(count) additions.
        est = self._spend(est, ROTATION_BITS + math.log2(rotations + 1))
        for _ in range(plain_mult_depth):
            est = self.after_multiply_plain(est)
        return est.is_safe()

    # ------------------------------------------------------------ programs
    def budget_after(self, program) -> dict:
        """Predicted budget for every output of a ciphertext IR program.

        Walks a :class:`repro.core.ir.IrProgram` (duck-typed: ``nodes`` with
        ``kind``/``args``/``terms``/``width``, plus ``outputs``) applying
        the per-operation transitions, including planner-inserted
        ``mod_switch`` limb drops.  Returns ``{output_name: NoiseEstimate}``.

        Predictions are conservative: measured budgets exceed them by up to
        :data:`PROGRAM_SLACK_BITS` (the model assumes worst-case ``t``-sized
        plaintext multipliers), and a prediction that ``is_safe()`` must
        decrypt — asserted over randomized DAGs in
        ``tests/test_noise_estimator.py``.
        """
        nodes = program.nodes
        limb_bits = [int(p).bit_length()
                     for p in self.params.data_base.moduli]
        # est[nid] -> (NoiseEstimate | None for consts, live limb count)
        state: dict = {}
        stack = list(program.outputs.values())
        while stack:
            nid = stack[-1]
            if nid in state:
                stack.pop()
                continue
            node = nodes[nid]
            deps = list(node.args) + [cid for _, cid in node.terms]
            missing = [a for a in deps if a not in state]
            if missing:
                stack.extend(missing)
                continue
            state[nid] = self._after_node(node, nodes, state, limb_bits)
            stack.pop()
        return {name: state[nid][0]
                for name, nid in program.outputs.items()}

    def _after_node(self, node, nodes, state, limb_bits):
        """One (estimate, live-limb-count) transition for *node*."""
        kind = node.kind
        full = len(limb_bits)
        if kind == "const":
            return None, full
        if kind in ("input", "encrypt", "recrypt_boundary"):
            return self.fresh(), full
        ct_states = [state[a] for a in node.args
                     if state[a][0] is not None]
        est, live = ct_states[0] if ct_states else (self.fresh(), full)
        live = min(lv for _, lv in ct_states) if ct_states else full
        if kind == "mod_switch":
            return self.after_mod_switch(est, limb_bits[live - 1]), live - 1
        if kind in ("decrypt", "neg", "rescale"):
            return est, live
        if kind == "rotate":
            return self.after_rotation(est), live
        if kind == "rotate_sum":
            rounds = max(1, math.ceil(math.log2(max(node.width, 2))))
            est = self.after_hoisted_rotations(est, rounds)
            return self._spend(est, rounds), live
        if kind == "weighted_sum":
            count = max(1, len(node.terms))
            est = self.after_hoisted_rotations(est, count)
            est = self.after_multiply_plain(est)
            return self._spend(est, math.ceil(math.log2(count + 1))), live
        has_const = any(nodes[a].kind == "const" for a in node.args)
        if kind in ("add", "sub"):
            if has_const:
                return self.after_add_plain(est), live
            other = ct_states[1][0] if len(ct_states) > 1 else None
            return self.after_add(est, other), live
        if kind == "mul":
            if has_const or len(ct_states) < 2:
                return self.after_multiply_plain(est), live
            floor = min(e.budget_bits for e, _ in ct_states)
            est = replace(est, budget_bits=floor)
            return self.after_multiply(est), live
        raise ValueError(f"unknown IR node kind {kind!r}")
