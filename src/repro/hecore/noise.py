"""Static noise-budget estimation (no cryptography executed).

Client-aided scheduling needs to know *before running* whether an encrypted
segment fits the noise budget — that's how CHOCO selects parameters (§3.2)
and how the PageRank schedules of Figure 13 are priced.  This estimator
mirrors the empirical model of :mod:`repro.core.paramsearch` at the
granularity of individual operations, so a planned operation sequence can
be budget-checked in microseconds instead of seconds of real HE.

Validated against measured budgets in ``tests/test_noise_estimator.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.hecore.params import EncryptionParameters, SchemeType

#: Fresh-budget constant: budget ≈ log2(q_data) − 2·log2(t) − FRESH_OFFSET.
#: Calibrated to THIS library's measured fresh budgets (SEAL's constant is
#: ~8 bits more pessimistic; repro.core.paramsearch keeps the conservative
#: value because parameter selection should match SEAL-class systems).
FRESH_OFFSET_BITS = 0

#: Bits one rotation's key-switching contributes (two special primes).
ROTATION_BITS = 2

#: Safety slack applied by :meth:`NoiseEstimate.is_safe`.
SAFETY_BITS = 3


@dataclass(frozen=True)
class NoiseEstimate:
    """A predicted invariant-noise budget, in bits."""

    budget_bits: float
    params: EncryptionParameters

    def is_safe(self, slack: float = SAFETY_BITS) -> bool:
        """Whether decryption is predicted to succeed with margin."""
        return self.budget_bits >= slack

    def spent(self, fresh: "NoiseEstimate") -> float:
        return fresh.budget_bits - self.budget_bits


class NoiseEstimator:
    """Per-operation budget arithmetic for one BFV parameter set."""

    def __init__(self, params: EncryptionParameters):
        if params.scheme is not SchemeType.BFV:
            raise ValueError("the static estimator models BFV budgets")
        self.params = params
        self.t_bits = params.plain_modulus.bit_length()
        self.q_bits = params.data_base.bit_size
        self.log_n = math.log2(params.poly_degree)

    # ------------------------------------------------------------ states
    def fresh(self) -> NoiseEstimate:
        budget = self.q_bits - 2 * self.t_bits - FRESH_OFFSET_BITS
        return NoiseEstimate(budget_bits=float(max(0, budget)), params=self.params)

    # --------------------------------------------------------- transitions
    def _spend(self, est: NoiseEstimate, bits: float) -> NoiseEstimate:
        return replace(est, budget_bits=max(0.0, est.budget_bits - bits))

    def after_add(self, est: NoiseEstimate,
                  other: Optional[NoiseEstimate] = None) -> NoiseEstimate:
        """Adding ciphertexts: noise adds — at most one bit at the max."""
        floor = min(est.budget_bits,
                    other.budget_bits if other else est.budget_bits)
        return replace(est, budget_bits=max(0.0, floor - 1))

    def after_add_plain(self, est: NoiseEstimate) -> NoiseEstimate:
        return self._spend(est, 0.5)

    def after_rotation(self, est: NoiseEstimate) -> NoiseEstimate:
        return self._spend(est, ROTATION_BITS)

    def after_hoisted_rotations(self, est: NoiseEstimate,
                                count: int) -> NoiseEstimate:
        """*count* rotations of one ciphertext sharing a hoisted decompose.

        Each rotation adds the same key-switch term as the naive path (the
        shared centered decompose changes where the digits are computed, not
        their magnitude), and the fused rotate-and-sum primitives combine
        all rotated copies before the single rescale — so the growth is one
        rotation's key-switch bits plus log2(count + 1) accumulation bits,
        not ``count * ROTATION_BITS``.
        """
        if count <= 0:
            return est
        return self._spend(est, ROTATION_BITS + math.log2(count + 1))

    def after_multiply_plain(self, est: NoiseEstimate) -> NoiseEstimate:
        """Plain multiply scales noise by ~||encoded plaintext||: t·sqrt(N)."""
        return self._spend(est, self.t_bits + self.log_n / 2)

    def after_masked_permutation(self, est: NoiseEstimate) -> NoiseEstimate:
        """Figure 4A: two rotations + two masking multiplies + one add.

        The two masked halves are disjoint, so their noise combines like a
        single masking multiply plus the rotations.
        """
        est = self.after_rotation(self.after_rotation(est))
        est = self.after_multiply_plain(est)
        return self.after_add(est)

    def after_multiply(self, est: NoiseEstimate) -> NoiseEstimate:
        """Ciphertext multiply: the Table 1 'large' growth."""
        return self._spend(est, self.t_bits + self.log_n + 8)

    # ------------------------------------------------------------ planning
    def budget_after_conv(self, taps: int, shifts: int) -> NoiseEstimate:
        """A rotationally-redundant convolution: parallel rotations of the
        fresh input, one weight multiply each, log-tree accumulation."""
        est = self.after_multiply_plain(self.after_rotation(self.fresh()))
        accumulation = math.ceil(math.log2(max(taps * shifts, 2)))
        return self._spend(est, accumulation)

    def segment_is_feasible(self, plain_mult_depth: int, rotations: int,
                            masked_permutations: int = 0) -> bool:
        """Whether an encrypted segment finishes with budget to spare."""
        est = self.fresh()
        for _ in range(masked_permutations):
            est = self.after_masked_permutation(est)
        # Rotations within a linear op act on fresh copies in parallel and
        # are then summed: one rotation of depth plus log2(count) additions.
        est = self._spend(est, ROTATION_BITS + math.log2(rotations + 1))
        for _ in range(plain_mult_depth):
            est = self.after_multiply_plain(est)
        return est.is_safe()
