"""NTT-friendly prime generation and primitive-root search.

The NTT over ``Z_p[x]/(x^N + 1)`` requires a prime ``p ≡ 1 (mod 2N)`` so that
a primitive ``2N``-th root of unity exists.  SEAL ships a table of such
primes; we generate them on demand with a deterministic Miller–Rabin test
(exact for all 64-bit integers with the standard witness set).
"""

from __future__ import annotations

from typing import List

from repro.hecore.modmath import mod_pow

_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic primality test, exact for all integers below 2**64."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MILLER_RABIN_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_ntt_primes(bits: int, count: int, poly_degree: int) -> List[int]:
    """Return *count* distinct primes of *bits* bits with ``p ≡ 1 (mod 2N)``.

    Primes are returned in decreasing order starting just below ``2**bits``,
    matching SEAL's convention of packing the largest usable primes first.
    """
    if bits < 2:
        raise ValueError("prime bit size must be at least 2")
    modulus = 2 * poly_degree
    # Largest candidate of the requested bit size congruent to 1 mod 2N.
    candidate = (1 << bits) - 1
    candidate -= (candidate - 1) % modulus
    primes: List[int] = []
    while len(primes) < count:
        if candidate < (1 << (bits - 1)):
            raise ValueError(
                f"exhausted {bits}-bit primes congruent to 1 mod {modulus}; "
                f"found only {len(primes)} of {count}"
            )
        if is_prime(candidate):
            primes.append(candidate)
        candidate -= modulus
    return primes


def generate_plain_modulus(bits: int, poly_degree: int) -> int:
    """Return a batching-capable plaintext modulus of *bits* bits.

    Batching (packing one value per slot) needs ``t ≡ 1 (mod 2N)`` just like
    the ciphertext primes.
    """
    return generate_ntt_primes(bits, 1, poly_degree)[0]


def find_generator(p: int) -> int:
    """Find a generator of the multiplicative group of ``Z_p`` (p prime)."""
    order = p - 1
    factors = _factorize(order)
    for g in range(2, p):
        if all(mod_pow(g, order // f, p) != 1 for f in factors):
            return g
    raise ValueError(f"no generator found for {p}")


def primitive_root_of_unity(order: int, p: int) -> int:
    """Return a primitive *order*-th root of unity modulo prime *p*."""
    if (p - 1) % order != 0:
        raise ValueError(f"{order} does not divide {p} - 1")
    g = find_generator(p)
    root = mod_pow(g, (p - 1) // order, p)
    # Sanity: root^order == 1 and root^(order/2) == -1 for even orders.
    if mod_pow(root, order, p) != 1:
        raise AssertionError("root order check failed")
    if order % 2 == 0 and mod_pow(root, order // 2, p) != p - 1:
        raise AssertionError("root is not primitive")
    return root


def _factorize(n: int) -> List[int]:
    """Distinct prime factors of *n* by trial division (n fits in 64 bits)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors
