"""The BFV somewhat-homomorphic scheme (Brakerski / Fan-Vercauteren).

Implements the full operation set of Table 1 — encrypt, decrypt, plaintext
and ciphertext add, plaintext and ciphertext multiply, and rotation — plus
SEAL-style invariant-noise-budget measurement, which Table 4 of the paper is
built on.

Encryption follows the paper's Figure 5 pipeline: sample ``u`` (ternary) and
``e1, e2`` (error), multiply with the public keys over the full RNS base,
modulus-switch away the key primes, and only then add the scaled message
``Δm`` over the remaining ``k − 1`` residues.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.hecore import batchcrypt, hoisting, ntt
from repro.hecore.ciphertext import Ciphertext
from repro.hecore.keys import (
    GaloisKeys,
    KeyGenerator,
    RelinKeys,
    expand_uniform_poly,
    galois_element_for_conjugation,
    galois_element_for_step,
    switch_key,
)
from repro.hecore.params import EncryptionParameters, SchemeType
from repro.hecore.plaintext import Plaintext
from repro.hecore.polyring import RnsPoly, aux_base_for
from repro.hecore.random import BlakePrng
from repro.hecore.rns import centered_mod, scale_and_round


class BatchEncoder:
    """SIMD batching: N plaintext slots ↔ one polynomial modulo ``t``.

    Slots form a 2 × (N/2) matrix; rotation moves values within each row and
    conjugation swaps the rows, matching SEAL's ``BatchEncoder`` semantics.
    """

    def __init__(self, params: EncryptionParameters):
        if params.scheme is not SchemeType.BFV:
            raise ValueError("BatchEncoder is BFV-only")
        self.params = params
        self.modulus = params.plain_modulus
        n = params.poly_degree
        self._plan = ntt.get_stack_plan(n, (self.modulus,))
        # Slot i of row 0 evaluates the plaintext at psi^(3^i); row 1 at
        # psi^(-3^i).  The forward NTT yields m(psi^(2j+1)) at position j.
        m = 2 * n
        positions = np.empty(n, dtype=np.int64)
        power = 1
        for i in range(n // 2):
            positions[i] = (power - 1) // 2
            positions[n // 2 + i] = (m - power - 1) // 2
            power = (power * 3) % m
        self._positions = positions

    @property
    def slot_count(self) -> int:
        return self.params.poly_degree

    def encode(self, values: Sequence[int]) -> Plaintext:
        """Pack up to N integers (reduced mod t) into a plaintext."""
        n = self.params.poly_degree
        if len(values) > n:
            raise ValueError(f"too many values ({len(values)}) for {n} slots")
        slots = np.zeros(n, dtype=np.int64)
        slots[: len(values)] = np.mod(np.asarray(values, dtype=np.int64), self.modulus)
        evals = np.zeros(n, dtype=np.int64)
        evals[self._positions] = slots
        return Plaintext(self._plan.inverse(evals[None, :])[0], self.modulus)

    def encode_many(self, values_list: Sequence[Sequence[int]]) -> List[Plaintext]:
        """Encode M slot vectors with one stacked inverse NTT.

        Bit-identical to M :meth:`encode` calls (the stacked transform is
        bit-exact with the per-row one).
        """
        n = self.params.poly_degree
        m = len(values_list)
        if m == 0:
            return []
        evals = np.zeros((m, 1, n), dtype=np.int64)
        for i, values in enumerate(values_list):
            if len(values) > n:
                raise ValueError(f"too many values ({len(values)}) for {n} slots")
            evals[i, 0, self._positions[: len(values)]] = np.mod(
                np.asarray(values, dtype=np.int64), self.modulus
            )
        coeffs = self._plan.inverse_batch(evals)[:, 0, :]
        return [Plaintext(row, self.modulus) for row in coeffs]

    def decode(self, plaintext: Plaintext) -> np.ndarray:
        """Unpack a plaintext back into its N slot values."""
        evals = self._plan.forward(plaintext.coeffs[None, :])[0]
        return evals[self._positions]

    def decode_rows(self, coeff_rows: np.ndarray) -> np.ndarray:
        """Decode M coefficient rows ``(m, n)`` → slot rows ``(m, n)`` with
        one stacked forward NTT; bit-identical to M :meth:`decode` calls."""
        evals = self._plan.forward_batch(coeff_rows[:, None, :])[:, 0, :]
        return evals[:, self._positions]


class BfvContext:
    """Keys, encoder and evaluator for one BFV parameter set.

    The ``counts`` attribute tallies every HE operation executed, which the
    client-aided protocol layer multiplies by per-operation platform costs —
    the paper's own §5.2 methodology.
    """

    def __init__(self, params: EncryptionParameters, seed: Optional[object] = None):
        if params.scheme is not SchemeType.BFV:
            raise ValueError("BfvContext requires BFV parameters")
        self.params = params
        self.keygen = KeyGenerator(params, seed)
        self.encoder = BatchEncoder(params)
        self._prng = BlakePrng(seed).fork("bfv-encryptor") if seed is not None else BlakePrng()
        self._relin: Optional[RelinKeys] = None
        self._galois: Optional[GaloisKeys] = None
        self.counts: Counter = Counter()

    # --------------------------------------------------------------- keys
    def relin_keys(self) -> RelinKeys:
        if self._relin is None:
            self._relin = self.keygen.relin_keys()
        return self._relin

    def make_galois_keys(self, steps: Iterable[int], include_conjugation: bool = False):
        """Generate (or extend) rotation keys for the given step set.

        Elements already generated are reused as-is (same key objects, so
        their pre-stacked digit caches survive); only missing elements cost
        keygen work.
        """
        self._galois = self.keygen.galois_keys(
            steps, include_conjugation=include_conjugation,
            existing=self._galois)
        return self._galois

    # ------------------------------------------------------------ encoding
    def encode(self, values: Sequence[int]) -> Plaintext:
        return self.encoder.encode(values)

    def decode(self, plaintext: Plaintext) -> np.ndarray:
        return self.encoder.decode(plaintext)

    def _as_plaintexts(self, values_list: Sequence) -> List[Plaintext]:
        """Encode the raw entries of a mixed values/plaintexts batch with one
        stacked inverse NTT, passing pre-encoded plaintexts through."""
        plaintexts = [v if isinstance(v, Plaintext) else None
                      for v in values_list]
        raw = [v for v, pt in zip(values_list, plaintexts) if pt is None]
        if raw:
            encoded = iter(self.encoder.encode_many(raw))
            plaintexts = [pt if pt is not None else next(encoded)
                          for pt in plaintexts]
        return plaintexts

    # ------------------------------------------------------- encrypt/decrypt
    def encrypt(self, values, rng: Optional[BlakePrng] = None) -> Ciphertext:
        """Encrypt a slot vector (or a pre-encoded :class:`Plaintext`).

        *rng* overrides the context PRNG (used by the batch-equivalence
        property tests to replay :meth:`encrypt_many`'s fork schedule); the
        default draws from the context stream exactly as before.
        """
        plaintext = values if isinstance(values, Plaintext) else self.encode(values)
        self.counts["encrypt"] += 1
        params = self.params
        n = params.poly_degree
        full = params.full_base
        pk = self.keygen.public_key()
        rng = self._prng if rng is None else rng

        u = RnsPoly.from_signed_array(full, rng.sample_ternary(n)).to_ntt()
        e1 = RnsPoly.from_signed_array(full, rng.sample_error(n))
        e2 = RnsPoly.from_signed_array(full, rng.sample_error(n))
        c0 = (pk.p0 * u).from_ntt() + e1
        c1 = (pk.p1 * u).from_ntt() + e2
        # Modulus-switch away the key primes (Figure 5's Mod Switching stage).
        for _ in params.special_primes:
            c0 = c0.divide_and_round_by_last()
            c1 = c1.divide_and_round_by_last()
        # Scale the encoded message by Δ = floor(q/t) and add over k−1 residues.
        delta = params.data_base.modulus // params.plain_modulus
        m_poly = RnsPoly.from_signed_array(params.data_base, plaintext.coeffs)
        c0 = c0 + m_poly.scalar_multiply(delta)
        return Ciphertext(params, [c0, c1])

    def encrypt_many(self, values_list: Sequence,
                     rng: Optional[BlakePrng] = None) -> List[Ciphertext]:
        """Encrypt M slot vectors (or plaintexts) as one stacked batch.

        All randomness for the batch is drawn as ``(M, N)`` blocks from
        labeled forks of the context PRNG (``batch-encrypt`` → ``u`` /
        ``e1`` / ``e2``), so row ``i`` of each block equals the ``i``-th
        sequential draw from the same fork — the schedule the equivalence
        tests replay.  Both public-key products run through a single
        ``(2M·k, N)`` stacked NTT pair, and the mod-switch and Δ-scaling are
        one vectorized pass over the whole block.
        """
        plaintexts = self._as_plaintexts(values_list)
        m = len(plaintexts)
        if m == 0:
            return []
        self.counts["encrypt"] += m
        params = self.params
        n = params.poly_degree
        full = params.full_base
        pk = self.keygen.public_key()
        rng = self._prng.fork("batch-encrypt") if rng is None else rng

        u_all = rng.fork("u").sample_ternary((m, n))
        e1_all = rng.fork("e1").sample_error((m, n))
        e2_all = rng.fork("e2").sample_error((m, n))
        msg_all = np.stack([pt.coeffs for pt in plaintexts])
        delta = params.data_base.modulus // params.plain_modulus
        out: List[Ciphertext] = []
        # Sampling above is one (M, N) draw per stream; the kernel pipeline
        # below runs over cache-sized ciphertext tiles so each tile's blocks
        # stay resident from the NTT through the Δ-scaling.
        tile = batchcrypt.tile_size(full, n, parts=2)
        for start in range(0, m, tile):
            stop = min(start + tile, m)
            g = stop - start
            u = batchcrypt.signed_block(full, u_all[start:stop])
            e1 = batchcrypt.signed_block(full, e1_all[start:stop])
            e2 = batchcrypt.signed_block(full, e2_all[start:stop])
            # Raw butterfly-order sandwich: forward without the unscramble
            # gather, Shoup dyadic against the pre-permuted public key, and a
            # prescrambled inverse — the two permutation passes cancel.
            u_ntt = batchcrypt.forward_block(full, n, u, raw=True)
            # c0 and c1 products stacked into one (2g, k, n) block: a single
            # inverse transform covers both components of every ciphertext.
            prod = np.concatenate([
                batchcrypt.dyadic_block_raw(full, u_ntt, pk.p0),
                batchcrypt.dyadic_block_raw(full, u_ntt, pk.p1),
            ])
            block = batchcrypt.inverse_block(full, n, prod, raw=True)
            block = batchcrypt.add_blocks(full, block,
                                          np.concatenate([e1, e2]))
            base = full
            for _ in params.special_primes:
                base, block = batchcrypt.divide_and_round_by_last_block(
                    base, block)
            msg = batchcrypt.signed_block(base, msg_all[start:stop])
            c0 = batchcrypt.add_blocks(
                base, block[:g],
                batchcrypt.scalar_multiply_block(base, msg, delta))
            c0_polys = batchcrypt.split_polys(base, n, c0)
            c1_polys = batchcrypt.split_polys(base, n, block[g:])
            out.extend(Ciphertext(params, [p0, p1])
                       for p0, p1 in zip(c0_polys, c1_polys))
        return out

    def encrypt_symmetric(self, values, seed: Optional[bytes] = None,
                          rng: Optional[BlakePrng] = None) -> Ciphertext:
        """Symmetric (secret-key) encryption with a seed-expanded ``c1``.

        Fresh client uploads don't need public-key encryption: the client
        owns the secret key, and deriving the uniform component from a seed
        lets the wire format carry only ``c0`` plus 32 bytes (the
        seed-compression extension; see Ciphertext.size_bytes).
        """
        plaintext = values if isinstance(values, Plaintext) else self.encode(values)
        self.counts["encrypt"] += 1
        params = self.params
        n = params.poly_degree
        base = params.data_base
        rng = self._prng if rng is None else rng
        if seed is None:
            seed = rng.random_bytes(32)
        a = expand_uniform_poly(seed, base, n)
        e = RnsPoly.from_signed_array(base, rng.sample_error(n))
        s_ntt = self.keygen.secret_key().restricted_ntt(base, params.full_base)
        c0 = -(a.to_ntt() * s_ntt).from_ntt() + e
        delta = base.modulus // params.plain_modulus
        m_poly = RnsPoly.from_signed_array(base, plaintext.coeffs)
        c0 = c0 + m_poly.scalar_multiply(delta)
        return Ciphertext(params, [c0, a], seed=bytes(seed))

    def encrypt_symmetric_many(self, values_list: Sequence,
                               rng: Optional[BlakePrng] = None
                               ) -> List[Ciphertext]:
        """Seed-compressed symmetric encryption of M vectors as one batch.

        PRNG schedule: the 32-byte seeds come sequentially from the ``seed``
        fork of a ``batch-encrypt-symmetric`` fork, the error block as one
        ``(M, N)`` draw from its ``e`` fork.  The ``a·s`` products share one
        stacked forward/inverse NTT pair across the batch.
        """
        plaintexts = self._as_plaintexts(values_list)
        m = len(plaintexts)
        if m == 0:
            return []
        self.counts["encrypt"] += m
        params = self.params
        n = params.poly_degree
        base = params.data_base
        rng = (self._prng.fork("batch-encrypt-symmetric")
               if rng is None else rng)
        seed_rng = rng.fork("seed")
        seeds = [seed_rng.random_bytes(32) for _ in range(m)]
        e_all = rng.fork("e").sample_error((m, n))
        s_ntt = self.keygen.secret_key().restricted_ntt(base, params.full_base)
        delta = base.modulus // params.plain_modulus
        msg_all = np.stack([pt.coeffs for pt in plaintexts])
        out: List[Ciphertext] = []
        tile = batchcrypt.tile_size(base, n, parts=2)
        for start in range(0, m, tile):
            stop = min(start + tile, m)
            e = batchcrypt.signed_block(base, e_all[start:stop])
            a_block = np.stack([expand_uniform_poly(seed, base, n).data
                                for seed in seeds[start:stop]])
            a_ntt = batchcrypt.forward_block(base, n, a_block, raw=True)
            prod = batchcrypt.inverse_block(
                base, n, batchcrypt.dyadic_block_raw(base, a_ntt, s_ntt),
                raw=True)
            c0 = batchcrypt.add_blocks(
                base, batchcrypt.negate_block(base, prod), e)
            msg = batchcrypt.signed_block(base, msg_all[start:stop])
            c0 = batchcrypt.add_blocks(
                base, c0, batchcrypt.scalar_multiply_block(base, msg, delta))
            c0_polys = batchcrypt.split_polys(base, n, c0)
            a_polys = batchcrypt.split_polys(base, n, a_block)
            out.extend(
                Ciphertext(params, [p0, a], seed=bytes(seed))
                for p0, a, seed in zip(c0_polys, a_polys, seeds[start:stop]))
        return out

    def _raw_decrypt_poly(self, ct: Ciphertext) -> RnsPoly:
        """``[c0 + c1 s (+ c2 s^2)]_q`` in coefficient form over the level base."""
        params = self.params
        base = ct.level_base
        s_ntt = self.keygen.secret_key().restricted_ntt(base, params.full_base)
        acc = ct.components[0].from_ntt()
        s_power = s_ntt
        for comp in ct.components[1:]:
            acc = acc + (comp.to_ntt() * s_power).from_ntt()
            s_power = s_power * s_ntt
        return acc.from_ntt()

    def _raw_decrypt_ints(self, ct: Ciphertext) -> List[int]:
        """CRT-composed ``[c0 + c1 s (+ c2 s^2)]_q`` as canonical integers."""
        acc = self._raw_decrypt_poly(ct)
        return acc.base.compose(acc.data)

    def _scale_to_plain(self, base, block: np.ndarray) -> np.ndarray:
        """``round(t/q · x) mod t`` over an ``(m, k, n)`` residue block.

        The bigint-free RNS scaling (:meth:`RnsBase.scale_and_round_mod`);
        coefficients whose float correction lands inside the guard band are
        recomputed exactly — identical results either way, pinned by tests.
        """
        t = self.params.plain_modulus
        values, unsafe = base.scale_and_round_mod(block, t)
        if unsafe.any():
            q = base.modulus
            for mi, col in zip(*np.nonzero(unsafe)):
                x = base.compose(block[mi][:, [col]])
                values[mi, col] = scale_and_round(x, t, q)[0] % t
        return values

    def decrypt(self, ct: Ciphertext) -> np.ndarray:
        """Decrypt to the slot vector (Eq. 3: round(t/q ⋅ [c0 + c1 s]_q) mod t).

        Runs entirely in vectorized RNS arithmetic — no big-integer CRT
        composition; see :meth:`RnsBase.scale_and_round_mod`.
        """
        self.counts["decrypt"] += 1
        acc = self._raw_decrypt_poly(ct)
        coeffs = self._scale_to_plain(acc.base, acc.data[None])[0]
        return self.decode(Plaintext(coeffs, self.params.plain_modulus))

    def _decrypt_bigint(self, ct: Ciphertext) -> np.ndarray:
        """Exact big-integer reference decrypt (pre-RNS-scaling code path).

        Kept as the correctness oracle for the vectorized path and as the
        looped baseline of ``bench_client_crypto``; not ``counts``-charged.
        """
        params = self.params
        q = ct.level_base.modulus
        t = params.plain_modulus
        x = self._raw_decrypt_ints(ct)
        coeffs = np.array([v % t for v in scale_and_round(x, t, q)], dtype=np.int64)
        return self.decode(Plaintext(coeffs, t))

    def decrypt_many(self, cts: Sequence[Ciphertext]) -> List[np.ndarray]:
        """Decrypt M ciphertexts as stacked batches.

        Two-component ciphertexts sharing a level base form one ``(M, k, n)``
        block: a single stacked NTT pair for the ``c1·s`` products, one
        vectorized RNS scaling, and one stacked decode.  Odd ciphertexts
        (3-component, lone bases) fall back to :meth:`decrypt` individually.
        Results are bit-identical to looped :meth:`decrypt` calls.
        """
        results: List[Optional[np.ndarray]] = [None] * len(cts)
        groups = {}
        for i, ct in enumerate(cts):
            if len(ct) == 2:
                groups.setdefault(ct.level_base.moduli, []).append(i)
            else:
                results[i] = self.decrypt(ct)
        params = self.params
        n = params.poly_degree
        for indices in groups.values():
            base = cts[indices[0]].level_base
            s_ntt = self.keygen.secret_key().restricted_ntt(base, params.full_base)
            coeff_rows = []
            # Cache-sized ciphertext tiles: each tile's block stays resident
            # from the c1 forward transform through the RNS scaling.
            tile = batchcrypt.tile_size(base, n, parts=2)
            for start in range(0, len(indices), tile):
                chunk = indices[start:start + tile]
                c0 = batchcrypt.stack_components(
                    [cts[i].components[0] for i in chunk])
                c1 = batchcrypt.stack_components(
                    [cts[i].components[1] for i in chunk])
                prod = batchcrypt.inverse_block(
                    base, n,
                    batchcrypt.dyadic_block_raw(
                        base, batchcrypt.forward_block(base, n, c1, raw=True),
                        s_ntt),
                    raw=True)
                acc = batchcrypt.add_blocks(base, c0, prod)
                coeff_rows.append(self._scale_to_plain(base, acc))
            slots = self.encoder.decode_rows(np.concatenate(coeff_rows))
            for row, i in enumerate(indices):
                results[i] = slots[row]
            self.counts["decrypt"] += len(indices)
        return results

    def noise_budget(self, ct: Ciphertext) -> int:
        """Invariant noise budget in bits (SEAL's ``invariant_noise_budget``).

        Exhausting the budget (0 bits) renders the ciphertext undecryptable —
        the constraint Table 4 and rotational redundancy are about.

        Vectorized: a float CRT estimate of ``|t·x mod q| / q`` ranks the
        coefficients, and only the near-maximal candidates are composed to
        exact big integers for the bit-length — the estimate's error
        (``~k²·2⁻⁵³``) is orders of magnitude below the selection tolerance,
        so the returned budget is exact.
        """
        base = ct.level_base
        q = base.modulus
        t = self.params.plain_modulus
        acc = self._raw_decrypt_poly(ct)
        tcol = np.array([t % p for p in base.moduli], dtype=np.int64).reshape(-1, 1)
        tz = np.mod(acc.data * tcol, base.moduli_col)
        frac = base.fractional_positions(tz)
        dist = np.minimum(frac, 1.0 - frac)
        candidates = np.nonzero(dist >= dist.max() - 2.0 ** -40)[0]
        worst = max(abs(v) for v in base.compose_centered(tz[:, candidates]))
        if worst == 0:
            return q.bit_length() - 1
        budget = q.bit_length() - 1 - worst.bit_length()
        return max(0, budget)

    # ------------------------------------------------------------ evaluator
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.counts["add"] += 1
        if len(a) != len(b):
            raise ValueError("cannot add ciphertexts of different sizes")
        comps = [x + y for x, y in zip(a.components, b.components)]
        return Ciphertext(self.params, comps)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.counts["add"] += 1
        comps = [x - y for x, y in zip(a.components, b.components)]
        return Ciphertext(self.params, comps)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext(self.params, [-c for c in a.components])

    def add_plain(self, ct: Ciphertext, plaintext: Plaintext) -> Ciphertext:
        self.counts["add_plain"] += 1
        delta = ct.level_base.modulus // self.params.plain_modulus
        m_poly = RnsPoly.from_signed_array(ct.level_base, plaintext.coeffs)
        comps = [c.copy() for c in ct.components]
        comps[0] = comps[0] + m_poly.scalar_multiply(delta)
        return Ciphertext(self.params, comps)

    def multiply_plain(self, ct: Ciphertext, plaintext: Plaintext) -> Ciphertext:
        self.counts["multiply_plain"] += 1
        m_ntt = RnsPoly.from_signed_array(ct.level_base, plaintext.coeffs).to_ntt()
        comps = [(c.to_ntt() * m_ntt).from_ntt() for c in ct.components]
        return Ciphertext(self.params, comps)

    def multiply(self, a: Ciphertext, b: Ciphertext,
                 relinearize: bool = True) -> Ciphertext:
        """Ciphertext-ciphertext multiply (exact big-integer tensor + scale).

        The tensor product is computed exactly over Z via an auxiliary CRT
        base, scaled by t/q with correct rounding, and (by default)
        relinearized back to two components.
        """
        self.counts["multiply"] += 1
        if len(a) != 2 or len(b) != 2:
            raise ValueError("multiply expects 2-component ciphertexts")
        params = self.params
        base = a.level_base
        n = params.poly_degree
        q = base.modulus
        t = params.plain_modulus
        # One extra bit over the tensor-term bound covers the d1a + d1b sum.
        bound_bits = 2 * (q.bit_length() + 1) + n.bit_length() + 3

        ints = [c.to_int_coeffs(centered=True) for c in a.components]
        ints += [c.to_int_coeffs(centered=True) for c in b.components]
        # Lift each component into the auxiliary CRT base and transform it
        # once; the three tensor products then share the four forward NTTs
        # and combine dyadically (d1 sums in evaluation form, saving a
        # big-integer addition pass).
        aux = aux_base_for(n, bound_bits + 1)
        fa0, fa1, fb0, fb1 = (
            RnsPoly.from_int_coeffs(aux, v, n).to_ntt() for v in ints
        )
        d0 = (fa0 * fb0).to_int_coeffs(centered=True)
        d1 = (fa0 * fb1 + fa1 * fb0).to_int_coeffs(centered=True)
        d2 = (fa1 * fb1).to_int_coeffs(centered=True)

        comps = []
        for d in (d0, d1, d2):
            scaled = scale_and_round(d, t, q)
            comps.append(RnsPoly.from_int_coeffs(base, scaled, n))
        out = Ciphertext(params, comps)
        if relinearize:
            out = self.relinearize(out)
        return out

    def square(self, a: Ciphertext, relinearize: bool = True) -> Ciphertext:
        return self.multiply(a, a, relinearize=relinearize)

    def relinearize(self, ct: Ciphertext) -> Ciphertext:
        """Reduce a 3-component ciphertext back to 2 via the relin keys."""
        if len(ct) == 2:
            return ct
        if len(ct) != 3:
            raise ValueError("relinearize expects a 3-component ciphertext")
        self.counts["relinearize"] += 1
        u0, u1 = switch_key(ct.components[2].from_ntt(), self.relin_keys(), self.params)
        return Ciphertext(
            self.params,
            [ct.components[0] + u0, ct.components[1] + u1],
        )

    def mod_switch_down(self, ct: Ciphertext) -> Ciphertext:
        """Drop the last data residue, rescaling the ciphertext by 1/p.

        The invariant noise is (approximately) preserved — ``t·x/q`` is
        unchanged when both ``x`` and ``q`` divide by the dropped prime —
        at the cost of headroom: the budget ceiling falls by ~log2(p).
        A server can use this to shrink result ciphertexts before
        downloading them to the client (the ciphertext is about to be
        decrypted anyway, so the lost headroom is free).
        """
        if len(ct.level_base) < 2:
            raise ValueError("cannot drop the only remaining residue")
        self.counts["mod_switch"] += 1
        comps = [c.from_ntt().divide_and_round_by_last() for c in ct.components]
        return Ciphertext(self.params, comps)

    def align(self, a: Ciphertext, b: Ciphertext):
        """Bring two ciphertexts to a common chain for add/multiply.

        The deeper-chained operand is switched down; decrypted values are
        unchanged (the level planner uses this as its alignment primitive).
        """
        while len(a.level_base) > len(b.level_base):
            a = self.mod_switch_down(a)
        while len(b.level_base) > len(a.level_base):
            b = self.mod_switch_down(b)
        return a, b

    def rotate_rows(self, ct: Ciphertext, steps: int,
                    galois_keys: Optional[GaloisKeys] = None) -> Ciphertext:
        """Rotate each slot row left by *steps* (Table 1's Ciphertext Rotate)."""
        self.counts["rotate"] += 1
        g = galois_element_for_step(steps, self.params.poly_degree)
        return self._apply_galois(ct, g, galois_keys)

    def rotate_columns(self, ct: Ciphertext,
                       galois_keys: Optional[GaloisKeys] = None) -> Ciphertext:
        """Swap the two slot rows."""
        self.counts["rotate"] += 1
        g = galois_element_for_conjugation(self.params.poly_degree)
        return self._apply_galois(ct, g, galois_keys)

    def _apply_galois(self, ct: Ciphertext, galois_elt: int,
                      galois_keys: Optional[GaloisKeys]) -> Ciphertext:
        if galois_elt == 1:
            return ct.copy()
        keys = galois_keys or self._galois
        if keys is None:
            raise ValueError("rotation requires Galois keys")
        if len(ct) != 2:
            raise ValueError("relinearize before rotating")
        self.counts["naive_decompose"] += 1
        # apply_automorphism is form-agnostic (NTT form permutes evaluations
        # in place); switch_key converts to coefficient form itself.
        c0 = ct.components[0].apply_automorphism(galois_elt).from_ntt()
        c1 = ct.components[1].apply_automorphism(galois_elt)
        u0, u1 = switch_key(c1, keys.key_for(galois_elt), self.params)
        return Ciphertext(self.params, [c0 + u0, u1])

    # ------------------------------------------------- hoisted rotations
    def rotate_many(self, ct: Ciphertext, steps: Sequence[int],
                    galois_keys: Optional[GaloisKeys] = None,
                    include_conjugation: bool = False) -> List[Ciphertext]:
        """Rotate *ct* by every step in *steps*, sharing one hoisted
        key-switch decomposition; bit-exact with sequential
        :meth:`rotate_rows` calls (see :mod:`repro.hecore.hoisting`)."""
        return hoisting.rotate_many(self, ct, steps, galois_keys,
                                    include_conjugation=include_conjugation)

    def rotate_and_sum(self, ct: Ciphertext, width: int,
                       galois_keys: Optional[GaloisKeys] = None) -> Ciphertext:
        """Fused sum of the first *width* rotations of *ct* (power of two)."""
        return hoisting.rotate_and_sum(self, ct, width, galois_keys)

    def rotate_weighted_sum(self, ct: Ciphertext, terms,
                            galois_keys: Optional[GaloisKeys] = None
                            ) -> Ciphertext:
        """Fused diagonal matvec: ``sum(m (*) rotate(ct, s))`` over
        ``(step, Plaintext)`` *terms*, one hoisted decompose + one rescale."""
        coeff_terms = [(step, pt.coeffs) for step, pt in terms]
        return hoisting.rotate_weighted_sum(self, ct, coeff_terms, galois_keys)
