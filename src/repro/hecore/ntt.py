"""Iterative negacyclic Number Theoretic Transform.

The NTT is the workhorse of RLWE cryptography — it is also the computation
that prior hardware (HEAX, BFV FPGA designs) accelerates and that the
CHOCO-TACO polynomial-multiplication module implements with an iterative
butterfly dataflow.  This module provides the software implementation used by
the functional HE schemes.

Multiplication in ``Z_p[x]/(x^N + 1)`` (negacyclic convolution) uses the
standard psi-twist: scale coefficient *i* by ``psi**i`` (psi a primitive
``2N``-th root of unity), apply a cyclic NTT with ``omega = psi**2``, multiply
point-wise, invert, and unscale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.hecore.modmath import mod_inv, mod_mul, mod_pow
from repro.hecore.primes import primitive_root_of_unity


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that reorders an array into bit-reversed order."""
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


@dataclass(frozen=True)
class _StageTwiddles:
    """Per-stage twiddle factors for the iterative butterfly network."""

    length: int
    factors: np.ndarray  # shape (length // 2,)


class NttPlan:
    """Precomputed tables for negacyclic NTT/INTT over one prime.

    Plans are cached per ``(n, p)`` via :func:`get_plan`; creating one costs a
    primitive-root search plus table generation, after which every transform
    is a sequence of ``log2(n)`` vectorized butterfly passes.
    """

    def __init__(self, n: int, p: int):
        if n & (n - 1) or n < 2:
            raise ValueError(f"transform size {n} must be a power of two >= 2")
        if (p - 1) % (2 * n) != 0:
            raise ValueError(f"prime {p} is not NTT-friendly for degree {n}")
        self.n = n
        self.p = p
        self.psi = primitive_root_of_unity(2 * n, p)
        self.omega = mod_pow(self.psi, 2, p)
        self._bitrev = _bit_reverse_permutation(n)
        powers = np.arange(n, dtype=np.int64)
        self._psi_powers = self._power_table(self.psi, n)
        psi_inv = mod_inv(self.psi, p)
        n_inv = mod_inv(n, p)
        # Fold the 1/N scaling of the inverse transform into the psi unscale.
        self._psi_inv_scaled = mod_mul(self._power_table(psi_inv, n), np.int64(n_inv), p)
        self._fwd_stages = self._stage_tables(self.omega)
        self._inv_stages = self._stage_tables(mod_inv(self.omega, p))
        del powers

    def _power_table(self, base: int, count: int) -> np.ndarray:
        table = np.empty(count, dtype=np.int64)
        acc = 1
        for i in range(count):
            table[i] = acc
            acc = (acc * base) % self.p
        return table

    def _stage_tables(self, omega: int) -> List[_StageTwiddles]:
        stages = []
        length = 2
        while length <= self.n:
            step_root = mod_pow(omega, self.n // length, self.p)
            stages.append(
                _StageTwiddles(length=length, factors=self._power_table(step_root, length // 2))
            )
            length *= 2
        return stages

    def _butterflies(self, values: np.ndarray, stages: List[_StageTwiddles]) -> np.ndarray:
        p = self.p
        work = values[self._bitrev].astype(np.int64)
        for stage in stages:
            half = stage.length // 2
            blocks = work.reshape(-1, stage.length)
            even = blocks[:, :half].copy()
            odd = mod_mul(blocks[:, half:], stage.factors, p)
            blocks[:, :half] = np.mod(even + odd, p)
            blocks[:, half:] = np.mod(even - odd, p)
            work = blocks.reshape(-1)
        return work

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT of a length-``n`` coefficient vector."""
        twisted = mod_mul(coefficients.astype(np.int64), self._psi_powers, self.p)
        return self._butterflies(twisted, self._fwd_stages)

    def inverse(self, evaluations: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`."""
        untwisted = self._butterflies(evaluations.astype(np.int64), self._inv_stages)
        return mod_mul(untwisted, self._psi_inv_scaled, self.p)

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Product of two polynomials in ``Z_p[x]/(x^n + 1)``."""
        return self.inverse(mod_mul(self.forward(a), self.forward(b), self.p))


_PLAN_CACHE: Dict[Tuple[int, int], NttPlan] = {}


def get_plan(n: int, p: int) -> NttPlan:
    """Return (and cache) the :class:`NttPlan` for transform size *n* mod *p*."""
    key = (n, p)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = NttPlan(n, p)
        _PLAN_CACHE[key] = plan
    return plan


def negacyclic_multiply_naive(a: np.ndarray, b: np.ndarray, p: int) -> np.ndarray:
    """O(n^2) schoolbook negacyclic product, used as a test oracle."""
    n = len(a)
    result = np.zeros(n, dtype=np.int64)
    a = a.astype(np.int64) % p
    b = b.astype(np.int64) % p
    for i in range(n):
        if a[i] == 0:
            continue
        for j in range(n):
            k = i + j
            term = int(a[i]) * int(b[j])
            if k < n:
                result[k] = (result[k] + term) % p
            else:
                result[k - n] = (result[k - n] - term) % p
    return np.mod(result, p)
