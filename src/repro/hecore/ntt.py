"""Iterative negacyclic Number Theoretic Transform.

The NTT is the workhorse of RLWE cryptography — it is also the computation
that prior hardware (HEAX, BFV FPGA designs) accelerates and that the
CHOCO-TACO polynomial-multiplication module implements with an iterative
butterfly dataflow.  This module provides the software implementation used by
the functional HE schemes.

Two implementations coexist (docs/KERNELS.md has the full story):

* :class:`NttPlan` — the original scalar plan for a single residue row.
  Multiplication in ``Z_p[x]/(x^N + 1)`` (negacyclic convolution) uses the
  standard psi-twist: scale coefficient *i* by ``psi**i`` (psi a primitive
  ``2N``-th root of unity), apply a cyclic NTT with ``omega = psi**2``,
  multiply point-wise, invert, and unscale.  It is retained as the bit-exact
  reference oracle for the stacked kernels.
* :class:`NttStackPlan` — the production kernel.  It transforms all ``k``
  residue rows of a ``(k, N)`` RNS matrix in one set of 2-D butterfly passes
  (the per-residue parallelism CHOCO-TACO exploits in hardware), merges the
  negacyclic psi-twist into the per-stage twiddle tables (Longa–Naehrig
  style, eliminating the separate twist multiply), and replaces per-stage
  division-based ``np.mod`` with lazy conditional-subtract reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hecore.modmath import mod_inv, mod_mul, mod_pow
from repro.hecore.primes import primitive_root_of_unity


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that reorders an array into bit-reversed order."""
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


@dataclass(frozen=True)
class _StageTwiddles:
    """Per-stage twiddle factors for the iterative butterfly network."""

    length: int
    factors: np.ndarray  # shape (length // 2,)


class NttPlan:
    """Precomputed tables for negacyclic NTT/INTT over one prime.

    Plans are cached per ``(n, p)`` via :func:`get_plan`; creating one costs a
    primitive-root search plus table generation, after which every transform
    is a sequence of ``log2(n)`` vectorized butterfly passes.
    """

    def __init__(self, n: int, p: int):
        if n & (n - 1) or n < 2:
            raise ValueError(f"transform size {n} must be a power of two >= 2")
        if (p - 1) % (2 * n) != 0:
            raise ValueError(f"prime {p} is not NTT-friendly for degree {n}")
        self.n = n
        self.p = p
        self.psi = primitive_root_of_unity(2 * n, p)
        self.omega = mod_pow(self.psi, 2, p)
        self._bitrev = _bit_reverse_permutation(n)
        self._psi_powers = self._power_table(self.psi, n)
        psi_inv = mod_inv(self.psi, p)
        n_inv = mod_inv(n, p)
        # Fold the 1/N scaling of the inverse transform into the psi unscale.
        self._psi_inv_scaled = mod_mul(self._power_table(psi_inv, n), np.int64(n_inv), p)
        self._fwd_stages = self._stage_tables(self.omega)
        self._inv_stages = self._stage_tables(mod_inv(self.omega, p))

    def _power_table(self, base: int, count: int) -> np.ndarray:
        table = np.empty(count, dtype=np.int64)
        acc = 1
        for i in range(count):
            table[i] = acc
            acc = (acc * base) % self.p
        return table

    def _stage_tables(self, omega: int) -> List[_StageTwiddles]:
        stages = []
        length = 2
        while length <= self.n:
            step_root = mod_pow(omega, self.n // length, self.p)
            stages.append(
                _StageTwiddles(length=length, factors=self._power_table(step_root, length // 2))
            )
            length *= 2
        return stages

    def _butterflies(self, values: np.ndarray, stages: List[_StageTwiddles]) -> np.ndarray:
        p = self.p
        work = values[self._bitrev].astype(np.int64)
        for stage in stages:
            half = stage.length // 2
            blocks = work.reshape(-1, stage.length)
            even = blocks[:, :half].copy()
            odd = mod_mul(blocks[:, half:], stage.factors, p)
            blocks[:, :half] = np.mod(even + odd, p)
            blocks[:, half:] = np.mod(even - odd, p)
            work = blocks.reshape(-1)
        return work

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT of a length-``n`` coefficient vector."""
        twisted = mod_mul(coefficients.astype(np.int64), self._psi_powers, self.p)
        return self._butterflies(twisted, self._fwd_stages)

    def inverse(self, evaluations: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward`."""
        untwisted = self._butterflies(evaluations.astype(np.int64), self._inv_stages)
        return mod_mul(untwisted, self._psi_inv_scaled, self.p)

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Product of two polynomials in ``Z_p[x]/(x^n + 1)``."""
        return self.inverse(mod_mul(self.forward(a), self.forward(b), self.p))


_PLAN_CACHE: Dict[Tuple[int, int], NttPlan] = {}


def get_plan(n: int, p: int) -> NttPlan:
    """Return (and cache) the :class:`NttPlan` for transform size *n* mod *p*."""
    key = (n, p)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = NttPlan(n, p)
        _PLAN_CACHE[key] = plan
    return plan


def _power_table_stack(bases: Sequence[int], count: int, pcol: np.ndarray) -> np.ndarray:
    """``(k, count)`` table of ``bases[r] ** j mod p_r`` via binary exponentiation.

    ``count`` vectorized squarings/multiplies replace the per-element Python
    loop of :meth:`NttPlan._power_table`; all products stay below ``2**62``.
    """
    p = pcol.reshape(-1)
    result = np.ones((len(p), count), dtype=np.int64)
    square = np.mod(np.asarray(bases, dtype=np.int64), p)
    exponents = np.arange(count, dtype=np.int64)
    for bit in range(max(count - 1, 1).bit_length()):
        mask = ((exponents >> bit) & 1).astype(bool)
        if mask.any():
            result[:, mask] = (result[:, mask] * square[:, None]) % p[:, None]
        square = (square * square) % p
    return result


#: Lazy intermediates in the generic path stay below ``2 * p < 2**32`` and
#: their butterfly products below ``p**2 < 2**62`` — the int64-exactness
#: envelope.  The Shoup path keeps intermediates below ``4 * p < 2**32`` so
#: every uint64 product is exact (below ``2**64``).
LAZY_PRODUCT_BOUND = 1 << 62

#: Moduli below this bound use the division-free Shoup/Harvey kernels
#: (``4p`` must fit a 32-bit word).  Every modulus the library generates is
#: below it (``COMPUTE_LIMB_MAX_BITS`` caps limbs at 30 bits); wider moduli
#: fall back to a generic lazy kernel with one ``np.mod`` per stage.
SHOUP_MODULUS_BOUND = 1 << 30

_U32 = np.uint64(32)

#: Target payload per butterfly pass of the batch kernels.  Each stage
#: streams the whole ``(rows, n)`` int64 ping-pong buffers, so batches are
#: processed in row groups of roughly this many bytes to stay L2-resident
#: (measured: per-row cost rises ~1.5x once the pass outgrows the cache;
#: ~12 rows at n=4096 is the sweet spot on the reference machine).
_BATCH_CHUNK_BYTES = 3 << 17


class NttStackPlan:
    """Stacked negacyclic NTT/INTT over a whole RNS base at once.

    Operates on ``(k, N)`` residue matrices — one row per modulus — pushing
    all rows through each butterfly stage in a single 2-D numpy pass with
    per-row broadcast twiddles.  The psi-twist of the negacyclic transform is
    fused into the stage twiddle tables (the factor-tree / Longa–Naehrig
    formulation), and reduction is lazy: values live in ``[0, 4p)`` between
    stages, renormalized with conditional subtracts instead of division, and
    twiddle products are reduced with Shoup's precomputed-quotient trick
    (``q = x * floor(W * 2**32 / p) >> 32``; ``x*W - q*p < 2p``) so the
    butterfly network contains no division at all.

    Outputs are bit-exact with the per-row scalar :class:`NttPlan` (same
    primitive roots, same natural evaluation ordering: position ``j`` of row
    ``r`` holds the evaluation at ``psi_r ** (2j + 1)``).
    """

    def __init__(self, n: int, moduli: Sequence[int]):
        if n & (n - 1) or n < 2:
            raise ValueError(f"transform size {n} must be a power of two >= 2")
        self.moduli: Tuple[int, ...] = tuple(int(p) for p in moduli)
        if not self.moduli:
            raise ValueError("stack plan needs at least one modulus")
        for p in self.moduli:
            if (p - 1) % (2 * n) != 0:
                raise ValueError(f"prime {p} is not NTT-friendly for degree {n}")
        self.n = n
        k = len(self.moduli)
        self._pcol = np.array(self.moduli, dtype=np.int64).reshape(k, 1)
        # Same deterministic primitive-root search as NttPlan => same psi per
        # row => bit-identical outputs.
        self.psis: Tuple[int, ...] = tuple(
            primitive_root_of_unity(2 * n, p) for p in self.moduli
        )
        psi_pow = _power_table_stack(self.psis, 2 * n, self._pcol)

        # Stage twiddle exponents from the factor tree of x^n + 1: a block
        # with modulus (x^L - psi^r) splits into (x^{L/2} -+ psi^{r/2}), so
        # the butterfly twiddle is psi^{r/2} and the children carry exponents
        # r/2 and r/2 + n.  Leaves end up at the odd exponents 2j+1 in
        # bit-reversed order; the permutations below restore natural order.
        stage_exponents: List[np.ndarray] = []
        exponents = np.array([n], dtype=np.int64)
        while exponents.size < n:
            half = exponents >> 1
            stage_exponents.append(half)
            exponents = np.stack([half, half + n], axis=1).reshape(-1)
        leaf_slots = (exponents - 1) >> 1
        self._scramble = leaf_slots
        unscramble = np.empty(n, dtype=np.int64)
        unscramble[leaf_slots] = np.arange(n, dtype=np.int64)
        self._unscramble = unscramble
        self._fwd_twiddles = [psi_pow[:, e] for e in stage_exponents]
        self._inv_twiddles = [psi_pow[:, 2 * n - e] for e in stage_exponents]
        n_inv = np.array([mod_inv(n, p) for p in self.moduli], dtype=np.int64)
        self._n_inv_col = n_inv.reshape(k, 1)

        self._scratch_bufs = None
        self._use_shoup = max(self.moduli) < SHOUP_MODULUS_BOUND
        if self._use_shoup:
            self._p_u = self._pcol.astype(np.uint64)
            self._two_p_u = self._p_u * np.uint64(2)
            self._p_u3 = self._p_u[:, :, None]
            # Constant-geometry twiddle vectors: at stage s, butterfly pair i
            # uses the stage-s group twiddle with group index i mod 2**s, so
            # the (k, 2**s) stage table tiles into a periodic vector.  Tiling
            # up to a 256-wide chunk keeps the broadcast inner loops long even
            # in the early stages where the pattern period is tiny.
            chunk = min(256, max(n // 2, 1))
            self._fwd_tw_u, self._fwd_tw_q = zip(
                *(self._cg_tables(t, chunk) for t in self._fwd_twiddles)
            )
            self._inv_tw_u, self._inv_tw_q = zip(
                *(self._cg_tables(t, chunk) for t in self._inv_twiddles)
            )
            self._n_inv_u = self._n_inv_col.astype(np.uint64)
            self._n_inv_q = ((self._n_inv_col << 32) // self._pcol).astype(np.uint64)

    def _cg_tables(self, table: np.ndarray, chunk: int) -> Tuple[np.ndarray, np.ndarray]:
        """Tiled twiddles and Shoup quotients for one constant-geometry stage.

        Returns ``(W, floor(W * 2**32 / p))`` as ``(k, 1, T)`` uint64 arrays
        with ``T = max(pattern, chunk)`` so they broadcast over the stage work
        array viewed as ``(k, (n/2) / T, T)``.  ``W < p < 2**30`` keeps the
        shifted quotient computation int64-exact.
        """
        reps = max(chunk // table.shape[1], 1)
        tiled = np.tile(table, (1, reps))
        quotients = (tiled << 32) // self._pcol
        return (
            tiled[:, None, :].astype(np.uint64),
            quotients[:, None, :].astype(np.uint64),
        )

    def __len__(self) -> int:
        return len(self.moduli)

    @staticmethod
    def _lazy_reduce(values: np.ndarray, pc: np.ndarray) -> np.ndarray:
        """One conditional subtract: ``[0, 2p)`` → ``[0, p)`` without division."""
        return np.where(values >= pc, values - pc, values)

    @staticmethod
    def _lazy_reduce_u(values: np.ndarray, pc: np.ndarray) -> np.ndarray:
        """Unsigned conditional subtract: ``values - pc`` wraps above 2**63
        whenever ``values < pc``, so the element-wise minimum selects the
        reduced representative without a boolean mask."""
        return np.minimum(values, values - pc)

    def _check_shape(self, stack: np.ndarray) -> np.ndarray:
        stack = np.asarray(stack, dtype=np.int64)
        if stack.ndim != 2 or stack.shape != (len(self.moduli), self.n):
            raise ValueError(
                f"stack shape {stack.shape} != ({len(self.moduli)}, {self.n})"
            )
        return stack

    def _canonical(self, stack: np.ndarray) -> np.ndarray:
        """Rows reduced to ``[0, p)``; skips the division for canonical input.

        The canonicity test is a single unsigned comparison pass: viewed as
        uint64, negative int64 values wrap above ``2**63 > p``, so
        ``0 <= x < p`` collapses to ``x_u < p_u``.
        """
        work = self._check_shape(stack)
        if work.flags.c_contiguous:
            if bool((work.view(np.uint64) < self._pcol.view(np.uint64)).all()):
                return work
        elif bool((work >= 0).all()) and bool((work < self._pcol).all()):
            return work
        return np.mod(work, self._pcol)

    @property
    def scramble_order(self) -> np.ndarray:
        """Permutation taking standard evaluation order to the raw order the
        butterfly network produces (see :meth:`forward`'s ``unscramble``)."""
        return self._scramble

    def forward(self, stack: np.ndarray, check_bounds: bool = False,
                unscramble: bool = True,
                out: np.ndarray = None) -> np.ndarray:
        """Negacyclic forward NTT of every row of a ``(k, n)`` matrix.

        With ``check_bounds=True`` the kernel asserts the lazy-reduction
        invariants at every stage (used by the property tests; costs extra
        comparisons, so production callers leave it off).

        With ``unscramble=False`` the final gather into standard evaluation
        order is skipped: the rows come back permuted by
        :attr:`scramble_order`.  A pointwise product in that order fed to
        :meth:`inverse` with ``prescrambled=True`` cancels both permutation
        passes — the forward → dyadic → inverse sandwich of the batch
        encrypt/decrypt pipelines.
        """
        work = self._canonical(stack)
        if self._use_shoup:
            return self._forward_shoup(work, check_bounds, unscramble, out)
        return self._forward_generic(work, check_bounds, unscramble, out)

    def inverse(self, stack: np.ndarray, check_bounds: bool = False,
                prescrambled: bool = False,
                out: np.ndarray = None) -> np.ndarray:
        """Inverse of :meth:`forward` (Gentleman–Sande, fused 1/N scaling).

        ``prescrambled=True`` declares the input already permuted by
        :attr:`scramble_order` (i.e. produced by ``forward(...,
        unscramble=False)`` plus pointwise ops), skipping the entry gather.
        """
        work = self._canonical(stack)
        if self._use_shoup:
            return self._inverse_shoup(work, check_bounds, prescrambled, out)
        return self._inverse_generic(work, check_bounds, prescrambled, out)

    # ------------------------------------------------- Shoup (division-free)
    @staticmethod
    def _shoup_mulmod(x: np.ndarray, w: np.ndarray, wq: np.ndarray,
                      p: np.ndarray) -> np.ndarray:
        """``x * w mod p`` into the lazy range ``[0, 2p)``; needs ``x < 2**32``."""
        q = (x * wq) >> _U32
        return x * w - q * p

    # The Shoup kernels run the butterfly network in constant-geometry (Pease)
    # dataflow: every stage reads the pair (i, i + n/2) and writes it to
    # (2i, 2i + 1).  For the factor-tree network this pairing is exact at every
    # stage (pair i uses the stage-s group twiddle indexed i mod 2**s, and the
    # final layout is the identity), so each pass touches two contiguous
    # half-length blocks instead of the (k, m, L) group slices — whose inner
    # axis collapses to a handful of elements in the late stages and leaves
    # numpy's per-loop overhead dominating.

    def _scratch(self, k: int) -> Tuple[np.ndarray, ...]:
        """Reusable uint64 work buffers: two ping-pong arrays plus three
        half-width temporaries.  Owned by the (cached) plan so the butterfly
        loop allocates nothing per stage."""
        if self._scratch_bufs is None or self._scratch_bufs[0].shape[0] != k:
            hn = max(self.n // 2, 1)
            self._scratch_bufs = (
                np.empty((k, self.n), dtype=np.uint64),
                np.empty((k, self.n), dtype=np.uint64),
                np.empty((k, hn), dtype=np.uint64),
                np.empty((k, hn), dtype=np.uint64),
                np.empty((k, hn), dtype=np.uint64),
            )
        return self._scratch_bufs

    def _forward_shoup(self, work: np.ndarray, check_bounds: bool,
                       unscramble: bool = True,
                       out: np.ndarray = None) -> np.ndarray:
        k = work.shape[0]
        hn = self.n // 2
        zin, zout, xb, qb, tb = self._scratch(k)
        np.copyto(zin, work, casting="unsafe")
        two_p = self._two_p_u
        four_p = two_p * np.uint64(2)
        for s, (w, wq) in enumerate(zip(self._fwd_tw_u, self._fwd_tw_q)):
            chunk = w.shape[2]
            if check_bounds:
                assert bool((zin < four_p).all()), \
                    "stage input exceeded the [0, 4p) lazy envelope"
            u = zin[:, :hn]
            v3 = zin.reshape(k, 2, hn // chunk, chunk)[:, 1]
            q3 = qb.reshape(k, hn // chunk, chunk)
            t3 = tb.reshape(k, hn // chunk, chunk)
            if s == 0:
                # Stage 0 input is canonical (< p), already inside [0, 2p).
                x = u
            else:
                np.subtract(u, two_p, out=xb)
                np.minimum(u, xb, out=xb)                  # [0, 2p)
                x = xb
            np.multiply(v3, wq, out=q3)
            q3 >>= _U32
            q3 *= self._p_u3
            np.multiply(v3, w, out=t3)
            t3 -= q3                                       # [0, 2p)
            if check_bounds:
                assert bool((x < two_p).all()) and bool((tb < two_p).all())
            zo = zout.reshape(k, hn, 2)
            np.add(x, tb, out=zo[:, :, 0])                 # < 4p
            np.add(x, two_p, out=xb)
            np.subtract(xb, tb, out=zo[:, :, 1])           # < 4p
            zin, zout = zout, zin
        # Epilogue: two in-place conditional subtracts (4p -> 2p -> p), then a
        # single np.take gather into the int64 result.  The take reads the
        # scratch buffer reinterpreted as int64 -- values are < p < 2**63, so
        # the bit patterns coincide and no separate astype pass is needed.
        np.subtract(zin, two_p, out=zout)
        np.minimum(zin, zout, out=zin)
        np.subtract(zin, self._p_u, out=zout)
        np.minimum(zin, zout, out=zin)
        result = out if out is not None else np.empty((k, self.n), dtype=np.int64)
        if unscramble:
            np.take(zin.view(np.int64), self._unscramble, axis=1, out=result)
        else:
            # Raw butterfly order: a contiguous copy out of the scratch buffer
            # replaces the gather (the caller holds :attr:`scramble_order`).
            np.copyto(result, zin.view(np.int64))
        return result

    def _inverse_shoup(self, work: np.ndarray, check_bounds: bool,
                       prescrambled: bool = False,
                       out: np.ndarray = None) -> np.ndarray:
        k = work.shape[0]
        hn = self.n // 2
        zin, zout, xb, qb, db = self._scratch(k)
        # Gather straight into the uint64 work buffer viewed as int64 (the
        # canonical inputs are < p < 2**63, so the bit patterns coincide);
        # np.take with ``out=`` avoids the fancy-indexing temporary.  Input
        # already in raw butterfly order skips the gather entirely.
        if prescrambled:
            np.copyto(zin.view(np.int64), work)
        else:
            np.take(work, self._scramble, axis=1, out=zin.view(np.int64))
        two_p = self._two_p_u
        for w, wq in zip(reversed(self._inv_tw_u), reversed(self._inv_tw_q)):
            chunk = w.shape[2]
            if check_bounds:
                assert bool((zin < two_p).all()), \
                    "stage input exceeded the [0, 2p) lazy envelope"
            zi = zin.reshape(k, hn, 2)
            a = zi[:, :, 0]
            b = zi[:, :, 1]
            zob = zout.reshape(k, 2, hn // chunk, chunk)
            d3 = db.reshape(k, hn // chunk, chunk)
            q3 = qb.reshape(k, hn // chunk, chunk)
            np.add(a, b, out=xb)                           # < 4p
            np.add(a, two_p, out=db)
            db -= b                                        # (0, 4p) < 2**32
            np.subtract(xb, two_p, out=zout[:, :hn])
            np.minimum(xb, zout[:, :hn], out=zout[:, :hn])  # [0, 2p)
            np.multiply(d3, wq, out=q3)
            q3 >>= _U32
            q3 *= self._p_u3
            d3 *= w
            np.subtract(d3, q3, out=zob[:, 1])             # [0, 2p)
            if check_bounds:
                assert bool((zout < two_p).all())
            zin, zout = zout, zin
        # Fused 1/N scaling: inputs < 2p < 2**32, Shoup result < 2p.
        np.multiply(zin, self._n_inv_q, out=zout)
        zout >>= _U32
        zout *= self._p_u
        zin *= self._n_inv_u
        zin -= zout                                        # [0, 2p)
        np.subtract(zin, self._p_u, out=zout)
        np.minimum(zin, zout, out=zin)
        if out is None:
            return zin.astype(np.int64)
        np.copyto(out, zin.view(np.int64))
        return out

    # ------------------------------------------ generic (31-bit safe) kernels
    def _forward_generic(self, work: np.ndarray, check_bounds: bool,
                         unscramble: bool = True,
                         out: np.ndarray = None) -> np.ndarray:
        k = work.shape[0]
        for tw in self._fwd_twiddles:
            m = tw.shape[1]
            blocks = work.reshape(k, m, -1)
            half = blocks.shape[2] // 2
            pc = self._pcol[:, :, None]
            even = self._lazy_reduce(blocks[:, :, :half], pc)
            odd = self._lazy_reduce(blocks[:, :, half:], pc)
            product = odd * tw[:, :, None]
            if check_bounds:
                assert int(blocks.max(initial=0)) < int(2 * self._pcol.max())
                assert int(product.max(initial=0)) < LAZY_PRODUCT_BOUND
            v = np.mod(product, pc)
            stage_out = np.empty_like(blocks)
            # Lazy butterflies: even + v < 2p and even - v + p in (0, 2p),
            # so the stage output needs no division.
            stage_out[:, :, :half] = even + v
            stage_out[:, :, half:] = even - v + pc
            work = stage_out.reshape(k, -1)
        work = self._lazy_reduce(work, self._pcol)
        result = work if not unscramble else work[:, self._unscramble]
        if out is None:
            return result
        np.copyto(out, result)
        return out

    def _inverse_generic(self, work: np.ndarray, check_bounds: bool,
                         prescrambled: bool = False,
                         out: np.ndarray = None) -> np.ndarray:
        if not prescrambled:
            work = work[:, self._scramble]
        k = work.shape[0]
        for tw in reversed(self._inv_twiddles):
            m = tw.shape[1]
            blocks = work.reshape(k, m, -1)
            half = blocks.shape[2] // 2
            pc = self._pcol[:, :, None]
            u = self._lazy_reduce(blocks[:, :, :half], pc)
            v = self._lazy_reduce(blocks[:, :, half:], pc)
            diff = self._lazy_reduce(u - v + pc, pc)
            product = diff * tw[:, :, None]
            if check_bounds:
                assert int(blocks.max(initial=0)) < int(2 * self._pcol.max())
                assert int(product.max(initial=0)) < LAZY_PRODUCT_BOUND
            stage_out = np.empty_like(blocks)
            stage_out[:, :, :half] = u + v
            stage_out[:, :, half:] = np.mod(product, pc)
            work = stage_out.reshape(k, -1)
        # Entries are < 2p and n_inv < p, so the product stays int64-exact.
        if out is None:
            return np.mod(work * self._n_inv_col, self._pcol)
        return np.mod(work * self._n_inv_col, self._pcol, out=out)

    # --------------------------------------------------------- batch axis
    def batch_plan(self, batch: int) -> "NttStackPlan":
        """Plan over *batch* tiled copies of this plan's residue stack.

        Every kernel above is purely row-wise (tables broadcast along the
        ``k`` axis), so transforming ``batch`` stacks at once is exactly the
        plan whose moduli sequence is this one's repeated ``batch`` times.
        The tiled plan shares the module-level cache, so its twiddle tables
        and scratch buffers are built once per ``(n, moduli, batch)``.
        """
        if batch < 1:
            raise ValueError(f"batch size {batch} must be >= 1")
        if batch == 1:
            return self
        return get_stack_plan(self.n, self.moduli * batch)

    def _check_batch_shape(self, stacks: np.ndarray) -> np.ndarray:
        stacks = np.asarray(stacks, dtype=np.int64)
        if stacks.ndim != 3 or stacks.shape[1:] != (len(self.moduli), self.n):
            raise ValueError(
                f"batch shape {stacks.shape} != (B, {len(self.moduli)}, {self.n})"
            )
        return stacks

    def _batch_group(self, b: int) -> int:
        """Stacks per butterfly pass: the full batch only while the working
        set stays cache-resident.

        Every stage of the row-wise kernels streams the whole ``(rows, n)``
        ping-pong buffers, so once ``rows * n`` outgrows L2 the per-row cost
        climbs ~1.5x.  Large batches are therefore processed in groups whose
        row count stays near ``_BATCH_CHUNK_BYTES`` of payload; each group
        size maps to one cached tiled plan, so scratch buffers and twiddle
        tables are reused across calls regardless of the caller's batch size.
        """
        k = len(self.moduli)
        target_rows = max(k, _BATCH_CHUNK_BYTES // (8 * self.n))
        return max(1, min(b, target_rows // k))

    def _transform_batch(self, stacks: np.ndarray, inverse: bool,
                         check_bounds: bool, raw: bool = False) -> np.ndarray:
        stacks = self._check_batch_shape(stacks)
        b, k, n = stacks.shape
        kwargs = ({"prescrambled": raw} if inverse else {"unscramble": not raw})
        group = self._batch_group(b)
        if group >= b:
            plan = self.batch_plan(b)
            kernel = plan.inverse if inverse else plan.forward
            return kernel(stacks.reshape(b * k, n), check_bounds,
                          **kwargs).reshape(b, k, n)
        out = np.empty((b, k, n), dtype=np.int64)
        for start in range(0, b, group):
            stop = min(start + group, b)
            rows = stop - start
            plan = self.batch_plan(rows)
            kernel = plan.inverse if inverse else plan.forward
            # Writing the kernel epilogue straight into the output slice
            # (contiguous view) saves one full-block copy per group.
            kernel(stacks[start:stop].reshape(rows * k, n), check_bounds,
                   out=out[start:stop].reshape(rows * k, n), **kwargs)
        return out

    def forward_batch(self, stacks: np.ndarray, check_bounds: bool = False,
                      unscramble: bool = True) -> np.ndarray:
        """Forward NTT of a ``(B, k, n)`` batch of residue stacks.

        Bit-exact with ``B`` separate :meth:`forward` calls, but the batch
        runs as cache-blocked ``(rows, n)`` passes through the butterfly
        network — the stacked kernel hoisted rotations use to transform every
        key-switch digit (and every rotation's accumulator) at once.
        ``unscramble=False`` keeps rows in raw butterfly order (see
        :meth:`forward`); the permutation is identical for every group
        because :attr:`scramble_order` depends only on ``n``.
        """
        return self._transform_batch(stacks, inverse=False,
                                     check_bounds=check_bounds,
                                     raw=not unscramble)

    def inverse_batch(self, stacks: np.ndarray, check_bounds: bool = False,
                      prescrambled: bool = False) -> np.ndarray:
        """Inverse of :meth:`forward_batch` (same cache-blocked passes)."""
        return self._transform_batch(stacks, inverse=True,
                                     check_bounds=check_bounds,
                                     raw=prescrambled)

    def dyadic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Point-wise product of two stacked evaluation matrices."""
        return np.mod(np.asarray(a, dtype=np.int64) * b, self._pcol)

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise product in ``Z_{p_r}[x]/(x^n + 1)`` for every residue row."""
        return self.inverse(self.dyadic_multiply(self.forward(a), self.forward(b)))


_STACK_PLAN_CACHE: Dict[Tuple[int, Tuple[int, ...]], NttStackPlan] = {}


def get_stack_plan(n: int, moduli: Sequence[int]) -> NttStackPlan:
    """Return (and cache) the :class:`NttStackPlan` for ``(n, moduli)``."""
    key = (n, tuple(int(p) for p in moduli))
    plan = _STACK_PLAN_CACHE.get(key)
    if plan is None:
        plan = NttStackPlan(n, key[1])
        _STACK_PLAN_CACHE[key] = plan
    return plan


def negacyclic_multiply_naive(a: np.ndarray, b: np.ndarray, p: int) -> np.ndarray:
    """O(n^2) schoolbook negacyclic product, used as a test oracle."""
    n = len(a)
    result = np.zeros(n, dtype=np.int64)
    a = a.astype(np.int64) % p
    b = b.astype(np.int64) % p
    for i in range(n):
        if a[i] == 0:
            continue
        for j in range(n):
            k = i + j
            term = int(a[i]) * int(b[j])
            if k < n:
                result[k] = (result[k] + term) % p
            else:
                result[k - n] = (result[k - n] - term) % p
    return np.mod(result, p)
