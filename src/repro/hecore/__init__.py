"""From-scratch RNS homomorphic encryption library (BFV and CKKS).

This subpackage is the substrate that the paper builds on top of Microsoft
SEAL.  It implements the full stack: vectorized modular arithmetic, NTT-
friendly prime generation, negacyclic NTT/INTT, RNS polynomial rings, a
BLAKE2b-based CSPRNG, key generation with special-prime key switching, and
the BFV and CKKS schemes with noise-budget tracking.
"""

from repro.hecore.params import (
    EncryptionParameters,
    SchemeType,
    PARAMETER_SET_A,
    PARAMETER_SET_B,
    PARAMETER_SET_C,
    seal_default_parameters,
)
from repro.hecore.keys import KeyGenerator, SecretKey, PublicKey, RelinKeys, GaloisKeys
from repro.hecore.bfv import BfvContext, BatchEncoder
from repro.hecore.ckks import CkksContext, CkksEncoder
from repro.hecore.ciphertext import Ciphertext
from repro.hecore.plaintext import Plaintext

__all__ = [
    "EncryptionParameters",
    "SchemeType",
    "PARAMETER_SET_A",
    "PARAMETER_SET_B",
    "PARAMETER_SET_C",
    "seal_default_parameters",
    "KeyGenerator",
    "SecretKey",
    "PublicKey",
    "RelinKeys",
    "GaloisKeys",
    "BfvContext",
    "BatchEncoder",
    "CkksContext",
    "CkksEncoder",
    "Ciphertext",
    "Plaintext",
]
