"""Halevi–Shoup hoisted rotations and fused multi-rotation kernels.

A naive slot rotation pays a full key switch: decompose the ciphertext's
second component into RNS digits, lift each digit to the extended
(current + special) base, forward-NTT every lifted digit, inner-product with
the Galois key, inverse-NTT, and rescale away the special primes.  When many
rotations apply to the *same* ciphertext — the diagonal matvec, the
rotate-and-sum distance reductions, PageRank's packing refresh — everything
up to the inner product is identical across rotations except for the Galois
automorphism.

Hoisting (Halevi–Shoup, "Faster Homomorphic Linear Transformations in
HElib") reorders the pipeline so the expensive half runs once:

* the digit decomposition uses a CENTERED lift (see
  :func:`~repro.hecore.keys.decompose_for_keyswitch`), which commutes
  exactly with the automorphism's sign flips, so decomposing first and
  permuting later is bit-identical to permuting first;
* in NTT form the automorphism is a pure column permutation, so each
  rotation costs one gather + one dyadic inner product over the
  pre-transformed digit block;
* the per-rotation inner products run as one stacked numpy kernel over all
  (rotation x residue) pairs, and the inverse transforms of a whole batch of
  rotations run as one :meth:`NttStackPlan.inverse_batch` pass.

On top of :class:`HoistedRotator` this module provides the fused
primitives consumed across the eval hot path:

* :func:`rotate_many` — any set of rotations of one ciphertext, bit-exact
  with sequential ``rotate_rows`` calls;
* :func:`rotate_and_sum` — the all-prefix rotation sum used by the distance
  kernels, with NTT-domain accumulation (one inverse transform + one
  special-prime rescale for the whole span) and a baby-step/giant-step
  split for wide spans;
* :func:`rotate_weighted_sum` — the diagonal-matvec kernel: plaintext
  diagonals multiply each rotation in the NTT domain and the whole sum pays
  a single inverse transform + rescale.

Everything is server-local: ciphertext and key wire formats are unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.hecore import ntt
from repro.hecore.ciphertext import Ciphertext
from repro.hecore.keys import (
    GaloisKeys,
    decompose_for_keyswitch,
    galois_element_for_conjugation,
    galois_element_for_step,
    keyswitch_ext_base,
    keyswitch_inner_product,
    keyswitch_rows,
)
from repro.hecore.polyring import RnsPoly

#: rotate_and_sum spans up to this width run flat (one hoisted decompose,
#: width-1 cheap rotations); wider spans split baby-step/giant-step so the
#: cheap-rotation count stays ~2*sqrt(width) at the cost of one extra
#: decompose.
FLAT_SUM_LIMIT = 32

_PERM_CACHE: Dict[Tuple[int, int], np.ndarray] = {}

_COEFF_PERM_CACHE: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}

_RESCALE_CACHE: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]] = {}


def coeff_automorphism_perm(n: int, galois_elt: int) -> Tuple[np.ndarray,
                                                              np.ndarray]:
    """Gather form of x -> x^g on coefficient vectors: ``(source, sign)``.

    ``auto(a)[j] == sign[j] * a[source[j]]`` modulo each prime — the exact
    inverse of the scatter in :meth:`RnsPoly.apply_automorphism`, cached per
    ``(n, g)``.  Gather form lets hoisted span sums accumulate every
    rotation's first component with one fancy index + signed sum, no
    NTT round trip.
    """
    galois_elt = galois_elt % (2 * n)
    key = (n, galois_elt)
    cached = _COEFF_PERM_CACHE.get(key)
    if cached is None:
        indices = (np.arange(n, dtype=np.int64) * galois_elt) % (2 * n)
        negate = indices >= n
        targets = np.where(negate, indices - n, indices)
        source = np.empty(n, dtype=np.int64)
        source[targets] = np.arange(n, dtype=np.int64)
        sign = np.empty(n, dtype=np.int64)
        sign[targets] = np.where(negate, -1, 1)
        cached = (source, sign)
        _COEFF_PERM_CACHE[key] = cached
    return cached


def _rescale_constants(base, drops: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-stage ``(last_prime, P^-1 mod p)`` columns for dropping the last
    *drops* primes of *base*, cached per moduli tuple."""
    from repro.hecore.modmath import mod_inv

    key = tuple(int(p) for p in base.moduli) + (int(drops),)
    cached = _RESCALE_CACHE.get(key)
    if cached is None:
        moduli = [int(p) for p in base.moduli]
        lasts = np.array(moduli[-drops:][::-1], dtype=np.int64)
        inv_cols = []
        for stage in range(drops):
            last = moduli[-1 - stage]
            remaining = moduli[: len(moduli) - 1 - stage]
            inv_cols.append(np.array(
                [mod_inv(last % p, p) for p in remaining],
                dtype=np.int64).reshape(-1, 1))
        cached = (lasts, inv_cols)
        _RESCALE_CACHE[key] = cached
    return cached


def _rescale_batch(coeff: np.ndarray, base, drops: int) -> np.ndarray:
    """Vectorized :meth:`RnsPoly.divide_and_round_by_last` over a
    ``(B, k, n)`` coefficient batch, dropping the last *drops* primes.

    Bit-exact with *drops* sequential per-polynomial divisions, but every
    batch entry shares one numpy sweep per dropped prime and the modular
    inverses are computed once per base instead of per call.
    """
    from repro.hecore.modmath import center

    lasts, inv_cols = _rescale_constants(base, drops)
    moduli = [int(p) for p in base.moduli]
    for stage in range(drops):
        last = int(lasts[stage])
        tcol = np.array(moduli[: len(moduli) - 1 - stage],
                        dtype=np.int64).reshape(-1, 1)
        remainder = center(coeff[:, -1, :], last)
        diff = coeff[:, :-1, :] - np.mod(remainder[:, None, :], tcol)
        diff = np.where(diff < 0, diff + tcol, diff)
        coeff = np.mod(diff * inv_cols[stage], tcol)
    return coeff


def ntt_permutation(n: int, galois_elt: int) -> np.ndarray:
    """Column permutation implementing x -> x^g on NTT-form evaluations.

    Position ``j`` holds the evaluation at ``psi^(2j+1)``; the automorphism
    moves it to the position whose odd exponent is ``(2j+1)*g mod 2n`` —
    the same index arithmetic as :meth:`RnsPoly.apply_automorphism`, cached
    per ``(n, g)`` so hoisted paths pay the modular index computation once.
    """
    galois_elt = galois_elt % (2 * n)
    key = (n, galois_elt)
    perm = _PERM_CACHE.get(key)
    if perm is None:
        sources = ((2 * np.arange(n, dtype=np.int64) + 1) * galois_elt) % (2 * n)
        perm = (sources - 1) >> 1
        _PERM_CACHE[key] = perm
    return perm


def _resolve_keys(ctx, galois_keys: Optional[GaloisKeys]) -> GaloisKeys:
    keys = galois_keys or getattr(ctx, "_galois", None)
    if keys is None:
        raise ValueError("rotation requires Galois keys")
    return keys


def _steps_available(keys: Optional[GaloisKeys], steps, n: int) -> bool:
    if keys is None:
        return False
    return all(
        g == 1 or g in keys
        for g in (galois_element_for_step(s, n) for s in steps)
    )


class HoistedRotator:
    """Shares one key-switch digit decomposition across every rotation of a
    single ciphertext.

    Construction runs the hoisted (expensive) half — centered digit
    decomposition, lift to the extended base, one batched forward NTT —
    and each subsequent Galois element costs a cached column permutation
    plus one stacked dyadic inner product with the pre-stacked key digits.
    Results are bit-exact with the naive per-rotation path.
    """

    def __init__(self, ctx, ct: Ciphertext,
                 galois_keys: Optional[GaloisKeys] = None):
        if len(ct) != 2:
            raise ValueError("relinearize before rotating")
        self.ctx = ctx
        self.ct = ct
        self.keys = _resolve_keys(ctx, galois_keys)
        self.params = ctx.params
        self.n = self.params.poly_degree
        self.current = ct.level_base
        self.ext_base = keyswitch_ext_base(self.current, self.params)
        self.rows = keyswitch_rows(self.current, self.params)
        self.plan = ntt.get_stack_plan(self.n, self.ext_base.moduli)
        # The hoisted half, paid once per ciphertext.
        self.digits_ntt = decompose_for_keyswitch(
            ct.components[1].from_ntt(), self.ext_base)
        ctx.counts["hoisted_decompose"] += 1

    # ------------------------------------------------------------ kernels
    def inner_product(self, galois_elt: int) -> np.ndarray:
        """``(2, k_ext, n)`` NTT-form key-switch accumulator for one element.

        Permuting the pre-transformed digits equals decomposing the
        automorphed ciphertext (the centered lift commutes with the
        automorphism), so this is the entire per-rotation cost before the
        inverse transform.
        """
        perm = ntt_permutation(self.n, galois_elt)
        permuted = self.digits_ntt[:, :, perm]
        key_block = self.keys.key_for(galois_elt).stacked_digits(
            self.rows, len(self.current))
        return keyswitch_inner_product(permuted, key_block, self.ext_base)

    def _gathered_digits(self, galois_elts: Sequence[int]) -> np.ndarray:
        """``(R, L, k_ext, n)`` contiguous gather of the decomposed digits
        through every element's cached NTT permutation."""
        n_digits, k_ext, _ = self.digits_ntt.shape
        perms = np.stack([ntt_permutation(self.n, g) for g in galois_elts])
        return self.digits_ntt[
            np.arange(n_digits)[None, :, None, None],
            np.arange(k_ext)[None, None, :, None],
            perms[:, None, None, :],
        ]

    def inner_product_many(self, galois_elts: Sequence[int]) -> np.ndarray:
        """``(R, 2, k_ext, n)`` key-switch accumulators, one numpy pass.

        The decomposed digits are gathered through every element's cached
        NTT permutation at once, multiplied against the pre-stacked
        multi-key block (:meth:`GaloisKeys.stacked_block`), and reduced
        with the same lazy digit sum as the single-element path — no
        per-rotation numpy dispatch at all.
        """
        # Broadcast fancy index writes the gather R-major and contiguous in
        # one pass (a plain axis gather would land (L, k, R, n) and need a
        # copy to flatten).
        permuted = self._gathered_digits(galois_elts)   # (R, L, k, n)
        keys = self.keys.stacked_block(galois_elts, self.rows,
                                       len(self.current))
        pcol = self.ext_base.moduli_col
        n_digits = permuted.shape[1]
        if n_digits <= 8 and int(pcol.max()) <= (1 << 30):
            # Lazy digit sum (exact for <= 8 thirty-bit digit products),
            # accumulated in place so the (R, L, 2, k, n) product tensor is
            # never materialized.
            acc = permuted[:, 0, None] * keys[:, 0]     # (R, 2, k, n)
            for l in range(1, n_digits):
                acc += permuted[:, l, None] * keys[:, l]
            return np.mod(acc, pcol)
        products = permuted[:, :, None] * keys          # (R, L, 2, k, n)
        return np.mod(np.mod(products, pcol).sum(axis=1), pcol)

    def inner_product_sum(self, galois_elts: Sequence[int]) -> np.ndarray:
        """``(2, k_ext, n)`` sum of every element's key-switch accumulator.

        The span-sum kernel: all (rotation x digit) products collapse through
        fused multiply-accumulate (einsum) without materializing per-rotation
        results.  Chunks of eight 30-bit digit products stay within the
        int64 lazy-reduction bound, so the result is bit-exact with summing
        :meth:`inner_product_many` over the batch.
        """
        gathered = self._gathered_digits(galois_elts)   # (R, L, k, n)
        n_digits, k_ext = gathered.shape[1], gathered.shape[2]
        m = len(galois_elts) * n_digits
        flat = gathered.reshape(m, k_ext, self.n)
        keys = self.keys.stacked_block(
            galois_elts, self.rows, len(self.current))
        key_flat = keys.reshape(m, 2, k_ext, self.n)
        pcol = self.ext_base.moduli_col
        if int(pcol.max()) <= (1 << 30):
            acc = None
            for lo in range(0, m, 8):
                part = np.mod(np.einsum('mkn,mckn->ckn', flat[lo:lo + 8],
                                        key_flat[lo:lo + 8]), pcol)
                acc = part if acc is None else acc + part
            return np.mod(acc, pcol)
        products = np.mod(flat[:, None] * key_flat, pcol)
        return np.mod(products.sum(axis=0), pcol)

    def _rescale(self, poly: RnsPoly) -> RnsPoly:
        for _ in range(len(self.params.special_primes)):
            poly = poly.divide_and_round_by_last()
        return poly

    def finish_batch(self, accs: np.ndarray) -> List[Tuple[RnsPoly, RnsPoly]]:
        """Inverse-transform + special-prime rescale of ``(R, 2, k_ext, n)``
        accumulators; the inverse NTTs of the whole rotation batch run as a
        single ``(2R*k_ext, n)`` stacked pass, and the rescale divides every
        component in one vectorized sweep per special prime."""
        r = accs.shape[0]
        k_ext = len(self.ext_base)
        coeff = self.plan.inverse_batch(accs.reshape(r * 2, k_ext, self.n))
        rescaled = _rescale_batch(coeff, self.ext_base,
                                  len(self.params.special_primes))
        return [
            (RnsPoly(self.current, self.n, rescaled[2 * i], is_ntt=False),
             RnsPoly(self.current, self.n, rescaled[2 * i + 1], is_ntt=False))
            for i in range(r)
        ]

    # --------------------------------------------------------- public API
    def apply_many(self, galois_elts: Sequence[int]) -> List[Ciphertext]:
        """One ciphertext per Galois element, sharing the hoisted decompose."""
        out: List[Optional[Ciphertext]] = [None] * len(galois_elts)
        live: List[Tuple[int, int]] = []
        for i, g in enumerate(galois_elts):
            if g == 1:
                out[i] = self.ct.copy()
            else:
                live.append((i, g))
        if live:
            accs = self.inner_product_many([g for _, g in live])
            for (i, g), (u0, u1) in zip(live, self.finish_batch(accs)):
                c0 = self.ct.components[0].apply_automorphism(g).from_ntt()
                out[i] = Ciphertext(self.params, [c0 + u0, u1],
                                    scale=self.ct.scale)
        return out

    def apply_galois(self, galois_elt: int) -> Ciphertext:
        return self.apply_many([galois_elt])[0]

    def rotate(self, steps: int) -> Ciphertext:
        return self.apply_galois(galois_element_for_step(steps, self.n))

    def rotate_many(self, steps: Sequence[int]) -> List[Ciphertext]:
        return self.apply_many(
            [galois_element_for_step(s, self.n) for s in steps])

    def conjugate(self) -> Ciphertext:
        return self.apply_galois(galois_element_for_conjugation(self.n))


def rotate_many(ctx, ct: Ciphertext, steps: Sequence[int],
                galois_keys: Optional[GaloisKeys] = None,
                include_conjugation: bool = False) -> List[Ciphertext]:
    """Rotate *ct* by every step in *steps* with one hoisted decompose.

    Bit-exact with sequential ``rotate_rows``/``rotate`` calls.  With
    *include_conjugation* an extra conjugated (rows-swapped) ciphertext is
    appended after the rotations.
    """
    rotator = HoistedRotator(ctx, ct, galois_keys)
    elements = [galois_element_for_step(s, rotator.n) for s in steps]
    if include_conjugation:
        elements.append(galois_element_for_conjugation(rotator.n))
    ctx.counts["rotate"] += len(elements)
    return rotator.apply_many(elements)


# ---------------------------------------------------------------------------
# Fused rotate-and-sum
# ---------------------------------------------------------------------------

def _sum_span_steps(width: int) -> Tuple[List[int], List[int]]:
    """Step sets for the (up to two) hoisted phases of a width-sum."""
    if width <= FLAT_SUM_LIMIT:
        return list(range(1, width)), []
    baby = 1 << ((width.bit_length() - 1 + 1) // 2)
    return (list(range(1, baby)),
            [j * baby for j in range(1, width // baby)])


def rotate_and_sum_steps(width: int) -> Set[int]:
    """Galois-key steps :func:`rotate_and_sum` wants for *width*.

    Includes both the hoisted step set (baby steps plus giant multiples for
    wide spans) and the power-of-two ladder of the log-tree fallback, so one
    key upload serves either path.
    """
    width = int(width)
    if width <= 1:
        return set()
    steps = {width >> k for k in range(1, width.bit_length())} - {0}
    phase1, phase2 = _sum_span_steps(width)
    steps.update(phase1)
    steps.update(phase2)
    return steps


def _hoisted_span_sum(ctx, ct: Ciphertext, steps: Sequence[int],
                      keys: GaloisKeys) -> Ciphertext:
    """``ct + sum(rotate(ct, s) for s in steps)`` with one hoisted decompose.

    All rotations' key-switch products accumulate over the extended base in
    the NTT domain, so the whole span pays ONE inverse transform pair and
    ONE special-prime rescale.  The ``c0`` parts stay in the coefficient
    domain: every rotation is a cached signed gather
    (:func:`coeff_automorphism_perm`), the gathered columns sum lazily in
    int64, and one final mod recovers the canonical sum — no NTT round
    trip at all.
    """
    rotator = HoistedRotator(ctx, ct, keys)
    n = rotator.n
    elements = [galois_element_for_step(s, n) for s in steps]
    live = [g for g in elements if g != 1]
    identity_extra = len(elements) - len(live)
    ctx.counts["rotate"] += len(live)

    current = ct.level_base
    cur_pcol = current.moduli_col
    c0 = ct.components[0].from_ntt()
    c1 = ct.components[1].from_ntt()
    c1_sum = c1
    for _ in range(identity_extra):
        c1_sum = c1_sum + c1
    # Canonical residues are < 2**30; a span sums far fewer than 2**33
    # terms, so the whole accumulation is exact in int64 with one final mod.
    acc0 = (1 + identity_extra) * c0.data
    if live:
        gathers = [coeff_automorphism_perm(n, g) for g in live]
        sources = np.stack([src for src, _ in gathers])
        signs = np.stack([sign for _, sign in gathers])
        acc0 = acc0 + np.einsum('krn,rn->kn', c0.data[:, sources], signs)
    c0_sum = RnsPoly(current, n, np.mod(acc0, cur_pcol), is_ntt=False)
    if not live:
        return Ciphertext(rotator.params, [c0_sum, c1_sum], scale=ct.scale)

    acc = rotator.inner_product_sum(live)           # (2, k_ext, n)
    ((u0, u1),) = rotator.finish_batch(acc[None])
    return Ciphertext(rotator.params, [c0_sum + u0, c1_sum + u1],
                      scale=ct.scale)


def rotate_and_sum(ctx, ct: Ciphertext, width: int,
                   galois_keys: Optional[GaloisKeys] = None) -> Ciphertext:
    """Sum of ``rotate(ct, i)`` for ``i in range(width)`` (power-of-two span).

    Every width-aligned window of slots ends up holding the window total in
    each of its positions — the same all-prefix semantics as the log-tree
    ``rotate_and_accumulate``, which remains the fallback when the session
    only holds the power-of-two key ladder.  With the hoisted step set
    available (see :func:`rotate_and_sum_steps`) the span runs as one or two
    hoisted phases: flat up to ``FLAT_SUM_LIMIT``, baby-step/giant-step
    beyond it (two decomposes + ~2*sqrt(width) cheap rotations, versus
    log2(width) full key switches for the tree).
    """
    width = int(width)
    if width <= 1:
        return ct
    if width & (width - 1):
        raise ValueError(f"rotate_and_sum width {width} must be a power of two")
    keys = galois_keys or getattr(ctx, "_galois", None)
    n = ctx.params.poly_degree
    phase1, phase2 = _sum_span_steps(width)
    if _steps_available(keys, phase1 + phase2, n):
        out = _hoisted_span_sum(ctx, ct, phase1, keys)
        if phase2:
            out = _hoisted_span_sum(ctx, out, phase2, keys)
        return out
    # Log-tree fallback: rotates the updated accumulator each level, so no
    # decompose can be shared — but it only needs the power-of-two keys.
    rotate = getattr(ctx, "rotate_rows", None) or ctx.rotate
    step = width // 2
    while step >= 1:
        ct = ctx.add(ct, rotate(ct, step, keys))
        step //= 2
    return ct


# ---------------------------------------------------------------------------
# Fused diagonal matvec (rotate, plain-multiply, accumulate — all in NTT form)
# ---------------------------------------------------------------------------

class WeightedSumSpan:
    """A reusable ``sum(m_j (*) rotate(ct, s_j))`` span with cached tables.

    The plaintext side of a weighted rotation span is static: the Galois
    elements, the coefficient automorphism permutations, and — crucially —
    the forward-NTT transforms of every diagonal over both the current and
    the extended RNS base depend only on the terms and the ciphertext's
    modulus chain, not on the ciphertext.  A span instance computes them
    once per modulus chain and replays them on every call; the IR
    scheduler keeps one span per fused ``weighted_sum`` node, so steady-
    state matvecs pay zero plaintext transform work.

    Cache misses charge ``ctx.counts['ntt_forward']`` and hits charge
    ``ntt_elided`` (units: residue-row transforms), making the residency
    telemetry visible to the cost ledger and the benches.
    """

    def __init__(self, terms: Sequence[Tuple[int, np.ndarray]]):
        if not terms:
            raise ValueError("WeightedSumSpan needs at least one term")
        self.terms = [(int(step), np.asarray(coeffs, dtype=np.int64))
                      for step, coeffs in terms]
        self._tables: dict = {}

    def steps(self) -> set:
        return {step for step, _ in self.terms if step}

    def _resolved(self, ctx, rotator, current):
        key = tuple(int(p) for p in current.moduli)
        table = self._tables.get(key)
        if table is not None:
            ctx.counts["ntt_elided"] += table["rows"]
            return table
        n = rotator.n
        cur_pcol = current.moduli_col
        plan_cur = ntt.get_stack_plan(n, current.moduli)
        resolved = [(galois_element_for_step(step, n), coeffs)
                    for step, coeffs in self.terms]
        live = [(g, coeffs) for g, coeffs in resolved if g != 1]
        identity = [coeffs for g, coeffs in resolved if g == 1]
        table = {"elements": [g for g, _ in live],
                 "n_identity": len(identity),
                 "m_id": None, "m_cur": None, "m_ext": None, "perms": None,
                 "rows": 0}
        if identity:
            table["m_id"] = plan_cur.forward_batch(
                np.mod(np.stack(identity)[:, None, :], cur_pcol))
            table["rows"] += len(identity) * len(current)
        if live:
            coeff_stack = np.stack([coeffs for _, coeffs in live])[:, None, :]
            # Batched plaintext transforms: every diagonal over the current
            # base and the extended base in two stacked passes.
            table["m_cur"] = plan_cur.forward_batch(
                np.mod(coeff_stack, cur_pcol))
            table["m_ext"] = rotator.plan.forward_batch(
                np.mod(coeff_stack, rotator.ext_base.moduli_col))
            table["perms"] = np.stack(
                [ntt_permutation(n, g) for g in table["elements"]])
            table["rows"] += len(live) * (len(current)
                                          + len(rotator.ext_base))
        ctx.counts["ntt_forward"] += table["rows"]
        self._tables[key] = table
        return table

    def __call__(self, ctx, ct: Ciphertext,
                 galois_keys: Optional[GaloisKeys] = None) -> Ciphertext:
        rotator = HoistedRotator(ctx, ct, galois_keys)
        n = rotator.n
        current = ct.level_base
        ext_pcol = rotator.ext_base.moduli_col
        cur_pcol = current.moduli_col
        plan_cur = ntt.get_stack_plan(n, current.moduli)
        table = self._resolved(ctx, rotator, current)
        elements = table["elements"]
        ctx.counts["multiply_plain"] += len(self.terms)
        ctx.counts["rotate"] += len(elements)

        c0_ntt = ct.components[0].to_ntt().data
        acc_cur0 = np.zeros((len(current), n), dtype=np.int64)
        acc_cur1 = None
        if table["n_identity"]:
            c1_ntt = ct.components[1].to_ntt().data
            acc_cur1 = np.zeros_like(acc_cur0)
            for m_cur_ntt in table["m_id"]:
                acc_cur0 += np.mod(m_cur_ntt * c0_ntt, cur_pcol)
                acc_cur1 += np.mod(m_cur_ntt * c1_ntt, cur_pcol)
        if elements:
            # (R, 2, k_ext, n) key-switch accumulators, weighted per-diagonal
            # and reduced across the batch in one pass.
            ks = rotator.inner_product_many(elements)
            acc_ext = np.mod(
                np.mod(ks * table["m_ext"][:, None], ext_pcol).sum(axis=0),
                ext_pcol)
            c0_perm = np.moveaxis(c0_ntt[:, table["perms"]], 1, 0)  # (R, k, n)
            acc_cur0 += np.mod(c0_perm * table["m_cur"], cur_pcol).sum(axis=0)

        c0_out = RnsPoly(current, n,
                         plan_cur.inverse(np.mod(acc_cur0, cur_pcol)),
                         is_ntt=False)
        c1_out = None
        if acc_cur1 is not None:
            c1_out = RnsPoly(current, n,
                             plan_cur.inverse(np.mod(acc_cur1, cur_pcol)),
                             is_ntt=False)
        if elements:
            ((u0, u1),) = rotator.finish_batch(acc_ext[None])
            c0_out = c0_out + u0
            c1_out = u1 if c1_out is None else c1_out + u1
        if c1_out is None:
            c1_out = RnsPoly.zero(current, n, is_ntt=False)
        return Ciphertext(rotator.params, [c0_out, c1_out], scale=ct.scale)


def rotate_weighted_sum(ctx, ct: Ciphertext,
                        terms: Sequence[Tuple[int, np.ndarray]],
                        galois_keys: Optional[GaloisKeys] = None) -> Ciphertext:
    """``sum(m_j (*) rotate(ct, s_j))`` with one hoisted decompose.

    *terms* are ``(step, coeffs)`` pairs, *coeffs* the encoded plaintext's
    signed coefficient vector (a BFV ``Plaintext.coeffs``).  This is the
    diagonal-matvec inner loop: each term costs the cached NTT permutation,
    one stacked inner product, and two dyadic multiplies; the inverse
    transforms and the special-prime rescale are paid once for the whole
    sum.  The permuted ``c0`` components never leave the NTT domain — they
    multiply the diagonal and accumulate as ``(k, n)`` dyadic kernels.

    Decrypts identically to the naive rotate-multiply-add chain (the
    plaintext algebra is the same; only rounding-level noise placement
    differs), with strictly less noise accumulation in practice.

    One-shot convenience over :class:`WeightedSumSpan`; repeated calls on
    the same terms should hold a span to reuse its plaintext NTT tables.
    """
    return WeightedSumSpan(terms)(ctx, ct, galois_keys)
