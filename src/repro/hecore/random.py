"""Deterministic cryptographic-style randomness for HE sampling.

The paper's accelerator devotes a module to a Blake3 PRNG feeding ternary and
normal samplers (§4.2); SEAL itself uses a Blake2 extendable stream.  Blake3
is not in the Python standard library, so this module derives seeds with
BLAKE2b and expands them with numpy's PCG64 — preserving determinism,
reproducibility, and the sampler distributions, which is what the functional
scheme and the accelerator's bandwidth model depend on (see DESIGN.md
substitution table).
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

#: Standard deviation of the RLWE error distribution, matching SEAL's default.
ERROR_STDDEV = 3.2

#: Hard bound used when clipping error samples (SEAL uses 6 sigma).
ERROR_BOUND = int(6 * ERROR_STDDEV)


class BlakePrng:
    """BLAKE2b-seeded deterministic pseudo-random generator.

    Parameters
    ----------
    seed:
        Any bytes-like or integer seed.  ``None`` draws entropy from the OS.
    """

    def __init__(self, seed: Optional[object] = None):
        if seed is None:
            material = np.random.SeedSequence().entropy.to_bytes(16, "little")
        elif isinstance(seed, int):
            material = seed.to_bytes((seed.bit_length() + 8) // 8 or 1, "little", signed=False)
        elif isinstance(seed, (bytes, bytearray)):
            material = bytes(seed)
        else:
            material = repr(seed).encode()
        digest = hashlib.blake2b(material, digest_size=32).digest()
        self._generator = np.random.Generator(np.random.PCG64(int.from_bytes(digest, "little")))

    def fork(self, label: str) -> "BlakePrng":
        """Derive an independent child stream for *label* (domain separation)."""
        return BlakePrng(self.random_bytes(16) + label.encode())

    def random_bytes(self, n: int) -> bytes:
        """*n* pseudo-random bytes."""
        return self._generator.bytes(n)

    def sample_uniform(self, n: int, modulus: int) -> np.ndarray:
        """*n* residues uniform in ``[0, modulus)``."""
        return self._generator.integers(0, modulus, size=n, dtype=np.int64)

    def sample_ternary(self, n: int) -> np.ndarray:
        """*n* values uniform over {−1, 0, 1} — the secret/``u`` distribution."""
        return self._generator.integers(-1, 2, size=n, dtype=np.int64)

    def sample_error(self, n: int, stddev: float = ERROR_STDDEV) -> np.ndarray:
        """*n* discrete-Gaussian-style error values (rounded normal, clipped)."""
        raw = np.rint(self._generator.normal(0.0, stddev, size=n)).astype(np.int64)
        bound = max(1, int(6 * stddev))
        return np.clip(raw, -bound, bound)
