"""Deterministic cryptographic-style randomness for HE sampling.

The paper's accelerator devotes a module to a Blake3 PRNG feeding ternary and
normal samplers (§4.2); SEAL itself uses a Blake2 extendable stream.  Blake3
is not in the Python standard library, so this module derives seeds with
BLAKE2b and expands them with numpy's PCG64 — preserving determinism,
reproducibility, and the sampler distributions, which is what the functional
scheme and the accelerator's bandwidth model depend on (see DESIGN.md
substitution table).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple, Union

import numpy as np

#: Sampler sizes: a single length ``n`` or a shape tuple such as ``(m, n)``
#: for batch draws.  A ``(m, n)`` draw consumes the generator stream exactly
#: like ``m`` sequential ``(n,)`` draws (PCG64 fills row-major), which is what
#: the batched client-crypto PRNG fork schedule relies on.
Size = Union[int, Tuple[int, ...]]

#: Standard deviation of the RLWE error distribution, matching SEAL's default.
ERROR_STDDEV = 3.2

#: Hard bound used when clipping error samples (SEAL uses 6 sigma).
ERROR_BOUND = int(6 * ERROR_STDDEV)


class BlakePrng:
    """BLAKE2b-seeded deterministic pseudo-random generator.

    Parameters
    ----------
    seed:
        Any bytes-like or integer seed.  ``None`` draws entropy from the OS.
    """

    def __init__(self, seed: Optional[object] = None):
        if seed is None:
            material = np.random.SeedSequence().entropy.to_bytes(16, "little")
        elif isinstance(seed, int):
            material = seed.to_bytes((seed.bit_length() + 8) // 8 or 1, "little", signed=False)
        elif isinstance(seed, (bytes, bytearray)):
            material = bytes(seed)
        else:
            material = repr(seed).encode()
        digest = hashlib.blake2b(material, digest_size=32).digest()
        self._generator = np.random.Generator(np.random.PCG64(int.from_bytes(digest, "little")))

    def fork(self, label: str) -> "BlakePrng":
        """Derive an independent child stream for *label* (domain separation)."""
        return BlakePrng(self.random_bytes(16) + label.encode())

    def random_bytes(self, n: int) -> bytes:
        """*n* pseudo-random bytes."""
        return self._generator.bytes(n)

    def sample_uniform(self, size: Size, modulus: int) -> np.ndarray:
        """Residues uniform in ``[0, modulus)``; *size* is a length or shape."""
        return self._generator.integers(0, modulus, size=size, dtype=np.int64)

    def sample_ternary(self, size: Size) -> np.ndarray:
        """Values uniform over {−1, 0, 1} — the secret/``u`` distribution."""
        return self._generator.integers(-1, 2, size=size, dtype=np.int64)

    def sample_error(self, size: Size, stddev: float = ERROR_STDDEV) -> np.ndarray:
        """Discrete-Gaussian-style error values (rounded normal, clipped)."""
        raw = np.rint(self._generator.normal(0.0, stddev, size=size)).astype(np.int64)
        bound = max(1, int(6 * stddev))
        return np.clip(raw, -bound, bound)
