"""Key generation and special-prime key switching.

Implements the full SEAL-style key hierarchy: ternary secret keys, RLWE
public keys (the ``P0, P1`` of the paper's Eq. 2), relinearization keys (for
ciphertext multiplication) and Galois keys (for slot rotation — Table 1's
"Ciphertext Rotate").

Key switching uses RNS digit decomposition with a special-prime product ``P``
(SEAL's hybrid method): each digit of the target polynomial multiplies a key
that encrypts ``P · s_src`` concentrated on that digit's residue, and the
accumulated result is scaled down by ``1/P``, keeping the added noise small.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.hecore import ntt
from repro.hecore.modmath import mod_add
from repro.hecore.params import EncryptionParameters, SPECIAL_PRIME_COUNT
from repro.hecore.polyring import RnsPoly
from repro.hecore.random import BlakePrng
from repro.hecore.rns import RnsBase


class SecretKey:
    """A ternary RLWE secret key over the full (data + special) base."""

    def __init__(self, poly: RnsPoly):
        self.poly = poly                      # coefficient form
        self.poly_ntt = poly.to_ntt()
        self._restricted: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], RnsPoly] = {}

    def restricted_ntt(self, base: RnsBase, full_base: RnsBase) -> RnsPoly:
        """The secret key in NTT form over a sub-base of the full base.

        Cached per ``(base, full_base)`` — decrypt calls this on every
        ciphertext, and rebuilding the row-sliced poly dominated small
        decrypts before the cache.
        """
        key = (base.moduli, full_base.moduli)
        cached = self._restricted.get(key)
        if cached is None:
            rows = [full_base.moduli.index(p) for p in base.moduli]
            cached = RnsPoly(base, self.poly.degree, self.poly_ntt.data[rows],
                             is_ntt=True)
            self._restricted[key] = cached
        return cached


class PublicKey:
    """The encryption key pair ``(P0, P1) = (-(a s + e), a)`` in NTT form."""

    def __init__(self, p0: RnsPoly, p1: RnsPoly):
        self.p0 = p0
        self.p1 = p1


class KeySwitchKey:
    """One key-switching key: a pair of NTT polys per data-residue digit."""

    def __init__(self, digits: List[Tuple[RnsPoly, RnsPoly]]):
        self.digits = digits
        #: Per-restriction stacked views of the digit polys, filled lazily by
        #: :meth:`stacked_digits` (and pre-seeded by deserialization, which
        #: lays key blobs out contiguously so the full-level entry is free).
        self._stacked: Dict[Tuple[Tuple[int, ...], int], np.ndarray] = {}

    def stacked_digits(self, rows: Sequence[int], count: int) -> np.ndarray:
        """Digits ``0..count-1`` restricted to base *rows*, as one block.

        Returns a ``(count, 2, len(rows), n)`` int64 array (NTT form): axis 0
        is the digit, axis 1 the key component, axis 2 the residue row.  The
        restriction is cached on the key, so every key switch at one modulus
        level — naive or hoisted — shares a single re-layout instead of
        re-gathering ``2 * count`` row subsets per call.
        """
        cache_key = (tuple(int(r) for r in rows), int(count))
        block = self._stacked.get(cache_key)
        if block is None:
            row_list = list(cache_key[0])
            block = np.stack([
                np.stack([k0.data[row_list], k1.data[row_list]])
                for k0, k1 in self.digits[:count]
            ])
            self._stacked[cache_key] = block
        return block

    def size_bytes(self, params: EncryptionParameters) -> int:
        """Serialized size under logical accounting (k residues, 8 B words)."""
        k = params.logical_residue_count
        return len(self.digits) * 2 * k * params.poly_degree * 8


class RelinKeys(KeySwitchKey):
    """Key-switching key from ``s^2`` back to ``s``."""


class GaloisKeys:
    """Key-switching keys for a set of Galois automorphisms (rotations)."""

    def __init__(self, keys: Dict[int, KeySwitchKey]):
        self.keys = keys
        #: Multi-element key blocks for hoisted batches, filled lazily by
        #: :meth:`stacked_block` and keyed by (elements, rows, digit count).
        self._stacked_blocks: Dict[Tuple, np.ndarray] = {}

    def __contains__(self, galois_elt: int) -> bool:
        return galois_elt in self.keys

    def key_for(self, galois_elt: int) -> KeySwitchKey:
        try:
            return self.keys[galois_elt]
        except KeyError:
            raise KeyError(
                f"no Galois key for element {galois_elt}; generate it with "
                f"KeyGenerator.galois_keys"
            ) from None

    def stacked_block(self, galois_elts: Sequence[int], rows: Sequence[int],
                      count: int) -> np.ndarray:
        """``(len(galois_elts), count, 2, len(rows), n)`` stacked key block.

        The hoisted batch kernels inner-product one decomposed ciphertext
        against EVERY requested element's key in a single numpy pass; this
        pre-stacks (and caches, per modulus level) the keys in that layout so
        repeated hoisted batches pay no per-rotation gathering.
        """
        key = (tuple(int(g) for g in galois_elts),
               tuple(int(r) for r in rows), int(count))
        block = self._stacked_blocks.get(key)
        if block is None:
            block = np.stack([
                self.key_for(g).stacked_digits(rows, count)
                for g in key[0]
            ])
            self._stacked_blocks[key] = block
        return block

    def size_bytes(self, params: EncryptionParameters) -> int:
        return sum(k.size_bytes(params) for k in self.keys.values())


def expand_uniform_poly(seed: bytes, base: RnsBase, degree: int) -> RnsPoly:
    """Deterministically expand a 32-byte seed into a uniform polynomial.

    Used for seed-compressed symmetric ciphertexts: instead of shipping the
    uniform component ``c1``, the sender ships the seed and the receiver
    regenerates ``c1`` — halving fresh-upload sizes.
    """
    prng = BlakePrng(bytes(seed))
    rows = [prng.sample_uniform(degree, p) for p in base.moduli]
    return RnsPoly(base, degree, np.stack(rows), is_ntt=False)


def galois_element_for_step(step: int, poly_degree: int) -> int:
    """Galois element implementing a rotation by *step* slots.

    Positive steps rotate the slot vector left (matching SEAL's
    ``rotate_rows``).  The generator 3 has order N/2 modulo 2N.
    """
    m = 2 * poly_degree
    order = poly_degree // 2
    step = step % order
    return pow(3, step, m)


def galois_element_for_conjugation(poly_degree: int) -> int:
    """Galois element swapping the two slot rows (BFV) / conjugating (CKKS)."""
    return 2 * poly_degree - 1


class KeyGenerator:
    """Deterministic key generation from a seed (for reproducible tests)."""

    def __init__(self, params: EncryptionParameters, seed: Optional[object] = None):
        self.params = params
        self._prng = BlakePrng(seed)
        n = params.poly_degree
        full = params.full_base
        s = RnsPoly.from_signed_array(full, self._prng.sample_ternary(n))
        self._secret = SecretKey(s)
        self._public = self._make_public_key()

    # ----------------------------------------------------------- primitives
    def _sample_uniform_ntt(self, base: RnsBase) -> RnsPoly:
        n = self.params.poly_degree
        rows = [self._prng.sample_uniform(n, p) for p in base.moduli]
        return RnsPoly(base, n, np.stack(rows), is_ntt=True)

    def _sample_error_ntt(self, base: RnsBase) -> RnsPoly:
        n = self.params.poly_degree
        return RnsPoly.from_signed_array(base, self._prng.sample_error(n)).to_ntt()

    def _make_public_key(self) -> PublicKey:
        full = self.params.full_base
        a = self._sample_uniform_ntt(full)
        e = self._sample_error_ntt(full)
        s_ntt = self._secret.poly_ntt
        p0 = -(a * s_ntt + e)
        return PublicKey(p0, a)

    # ------------------------------------------------------------- key API
    def secret_key(self) -> SecretKey:
        return self._secret

    def public_key(self) -> PublicKey:
        return self._public

    def _make_keyswitch_key(self, source_key_ntt: RnsPoly) -> KeySwitchKey:
        """Key-switching key from *source_key_ntt* (over full base) to s."""
        params = self.params
        full = params.full_base
        data_count = len(params.data_base)
        special_product = 1
        for p in params.special_primes:
            special_product *= p
        s_ntt = self._secret.poly_ntt
        digits = []
        for i in range(data_count):
            a_i = self._sample_uniform_ntt(full)
            e_i = self._sample_error_ntt(full)
            k0 = -(a_i * s_ntt + e_i)
            # Add P * s_src concentrated on residue i (NTT form is per-row
            # linear, so a row-local addition is valid).
            p_i = full.moduli[i]
            factor = np.int64(special_product % p_i)
            k0.data[i] = mod_add(
                k0.data[i],
                (factor * source_key_ntt.data[i]) % p_i,
                p_i,
            )
            digits.append((k0, a_i))
        return KeySwitchKey(digits)

    def relin_keys(self) -> RelinKeys:
        s_sq = self._secret.poly_ntt * self._secret.poly_ntt
        key = self._make_keyswitch_key(s_sq)
        return RelinKeys(key.digits)

    def galois_keys(self, steps: Iterable[int] = (), galois_elts: Iterable[int] = (),
                    include_conjugation: bool = False,
                    existing: Optional[GaloisKeys] = None) -> GaloisKeys:
        """Galois keys for the given rotation *steps* and/or raw elements.

        With *existing*, elements already present keep their generated keys
        (same :class:`KeySwitchKey` objects, so stacked caches survive) and
        only the missing ones are generated; the extended *existing* object
        is returned.
        """
        n = self.params.poly_degree
        elements = {galois_element_for_step(s, n) for s in steps}
        elements.update(galois_elts)
        if include_conjugation:
            elements.add(galois_element_for_conjugation(n))
        # The identity automorphism never needs a key-switch key (rotations
        # by step 0 are handled without key switching).
        elements.discard(1)
        keys = {} if existing is None else existing.keys
        for g in sorted(elements):
            if g in keys:
                continue
            # NTT-form automorphism: a pure index permutation, no INTT/NTT
            # round trip per Galois element.
            s_g = self._secret.poly_ntt.apply_automorphism(g)
            keys[g] = self._make_keyswitch_key(s_g)
        return existing if existing is not None else GaloisKeys(keys)


def keyswitch_ext_base(current: RnsBase, params: EncryptionParameters) -> RnsBase:
    """The extended base (current data moduli + special primes) of a switch."""
    return RnsBase(list(current.moduli) + list(params.special_primes))


def keyswitch_rows(current: RnsBase, params: EncryptionParameters) -> List[int]:
    """Full-base row indices of the extended base's residues."""
    full = params.full_base
    special_rows = [full.moduli.index(p) for p in params.special_primes]
    return list(range(len(current))) + special_rows


def decompose_for_keyswitch(target: RnsPoly, ext_base: RnsBase) -> np.ndarray:
    """Digit decomposition of *target*, lifted to *ext_base* and NTT'd.

    This is the expensive first half of every key switch — and the half
    Halevi–Shoup hoisting shares across rotations.  Returns an
    ``(L, k_ext, n)`` int64 block (digit ``i`` in slab ``i``, NTT form)
    produced by one batched forward transform.

    The lift is CENTERED: digit residues ``v in [0, p_i)`` are mapped to
    ``(-p_i/2, p_i/2]`` before reduction mod each extended modulus.  Negation
    commutes exactly with the centered lift (``c(p - v) = -c(v)``), so a
    Galois automorphism applied before or after decomposition yields
    bit-identical digits — the invariant that makes hoisted rotations
    byte-equal to the naive per-rotation path.  (It also shaves a little
    key-switch noise: centered digits are half the magnitude.)
    """
    if target.is_ntt:
        target = target.from_ntt()
    pcol = target.base.moduli_col
    centered = np.where(target.data > pcol >> 1, target.data - pcol, target.data)
    lifted = np.mod(centered[:, None, :], ext_base.moduli_col[None, :, :])
    plan = ntt.get_stack_plan(target.degree, ext_base.moduli)
    return plan.forward_batch(lifted)


def keyswitch_inner_product(digits_ntt: np.ndarray,
                            key_block: np.ndarray,
                            ext_base: RnsBase) -> np.ndarray:
    """Dyadic inner product of decomposed digits with one key's digit block.

    ``digits_ntt`` is ``(L, k_ext, n)`` (from :func:`decompose_for_keyswitch`,
    possibly permuted by a Galois element), ``key_block`` is the matching
    ``(L, 2, k_ext, n)`` from :meth:`KeySwitchKey.stacked_digits`.  Returns
    the ``(2, k_ext, n)`` NTT-form accumulator.

    Lazy reduction: each product is below ``2**60`` (30-bit moduli), so up
    to 8 digits sum exactly in int64 BEFORE any reduction — one mod for the
    whole inner product instead of one per digit.
    """
    pcol = ext_base.moduli_col
    products = digits_ntt[:, None] * key_block
    if len(digits_ntt) <= 8 and int(pcol.max()) <= (1 << 30):
        return np.mod(products.sum(axis=0), pcol)
    return np.mod(np.mod(products, pcol).sum(axis=0), pcol)


def switch_key(
    target: RnsPoly, ksk: KeySwitchKey, params: EncryptionParameters
) -> Tuple[RnsPoly, RnsPoly]:
    """Key-switch *target* (coefficient form, over the current data base).

    Returns ``(u0, u1)`` over the same base such that
    ``u0 + u1 * s ≈ target * s_src`` with small added noise.
    """
    if target.is_ntt:
        target = target.from_ntt()
    current = target.base
    n = params.poly_degree
    special = params.special_primes
    ext_base = keyswitch_ext_base(current, params)
    rows = keyswitch_rows(current, params)

    digits_ntt = decompose_for_keyswitch(target, ext_base)
    key_block = ksk.stacked_digits(rows, len(current))
    acc = keyswitch_inner_product(digits_ntt, key_block, ext_base)

    plan = ntt.get_stack_plan(n, ext_base.moduli)
    coeff = plan.inverse_batch(acc)
    u0 = RnsPoly(ext_base, n, coeff[0], is_ntt=False)
    u1 = RnsPoly(ext_base, n, coeff[1], is_ntt=False)
    for _ in range(len(special)):
        u0 = u0.divide_and_round_by_last()
        u1 = u1.divide_and_round_by_last()
    return u0, u1
