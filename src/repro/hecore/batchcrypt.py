"""Stacked (m, k, n) residue-block kernels for the batched client crypto.

The client-side cost CHOCO offloads is dominated by per-ciphertext work:
sampling, the forward/inverse NTTs and the Δ-scaling of encrypt, and the CRT
scaling of decrypt.  ``encrypt_many`` / ``decrypt_many`` (in :mod:`bfv` and
:mod:`ckks`) process M ciphertexts at once by stacking their residue
matrices into one ``(m, k, n)`` int64 block and pushing the whole block
through :class:`~repro.hecore.ntt.NttStackPlan`'s batch transforms — one
``(m*k, n)`` stacked NTT instead of M k-row ones, and every modular fixup a
single vectorized pass.

Every helper here replicates the corresponding :class:`RnsPoly` formula
verbatim (same conditional-subtract adds, same centered mod-switch
remainder), so batch results are bit-identical to the looped single-shot
path — the property tests in ``tests/test_batch_crypto.py`` pin this.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.hecore import ntt
from repro.hecore.modmath import center, mod_inv
from repro.hecore.polyring import RnsPoly
from repro.hecore.rns import RnsBase


#: Target bytes of residue payload per pipeline tile.  A looped single-shot
#: encrypt/decrypt keeps its whole (k, n) working set L2-resident across the
#: NTT → dyadic → fixup chain; a monolithic (M, k, n) block streams multi-MB
#: intermediates through every step and loses that locality.  The batch
#: engines therefore sample once up front (preserving the documented PRNG
#: block schedule) and then run the kernel pipeline over tiles of this many
#: bytes, so consecutive steps reuse cache-warm blocks.
_TILE_BYTES = 3 << 18


def tile_size(base: RnsBase, degree: int, parts: int = 1) -> int:
    """Ciphertexts per pipeline tile for blocks of ``parts`` components."""
    per_ct = parts * len(base.moduli) * degree * 8
    return max(1, _TILE_BYTES // per_ct)


def signed_block(base: RnsBase, values: np.ndarray) -> np.ndarray:
    """``(m, n)`` small signed values → ``(m, k, n)`` canonical residues.

    The batch analogue of :meth:`RnsPoly.from_signed_array`.
    """
    return np.mod(values.astype(np.int64)[:, None, :], base.moduli_col)


def forward_block(base: RnsBase, degree: int, block: np.ndarray,
                  raw: bool = False) -> np.ndarray:
    """Stacked forward NTT over an ``(m, k, n)`` coefficient block.

    ``raw=True`` leaves the evaluations in raw butterfly order (no final
    unscramble gather) — pair with :func:`dyadic_block_raw` and
    ``inverse_block(..., raw=True)`` so the two permutation passes cancel.
    """
    return ntt.get_stack_plan(degree, base.moduli).forward_batch(
        block, unscramble=not raw)


def inverse_block(base: RnsBase, degree: int, block: np.ndarray,
                  raw: bool = False) -> np.ndarray:
    """Stacked inverse NTT over an ``(m, k, n)`` evaluation block.

    ``raw=True`` declares the input already in raw butterfly order.
    """
    return ntt.get_stack_plan(degree, base.moduli).inverse_batch(
        block, prescrambled=raw)


def dyadic_block(base: RnsBase, block: np.ndarray, poly: RnsPoly) -> np.ndarray:
    """Pointwise NTT-domain product of every block row with one poly.

    Plain mul-mod, exact in int64: both factors are canonical ``< 2**30``.
    Matches ``NttStackPlan.dyadic_multiply`` (``np.mod(a * b, p)``).
    """
    return np.mod(block * poly.data[None, :, :], base.moduli_col)


def raw_tables(poly: RnsPoly) -> Tuple[np.ndarray, np.ndarray]:
    """This NTT poly's residues in raw butterfly order, plus Shoup quotients.

    Cached on the poly (see ``RnsPoly._raw_tables``), so it must only be used
    on long-lived key material that is never mutated in place — the secret
    key's restricted forms and the public key components.  The Shoup table is
    ``None`` for moduli at or above :data:`ntt.SHOUP_MODULUS_BOUND` (no
    library parameter set reaches it; callers then fall back to ``np.mod``).
    """
    cached = poly._raw_tables
    if cached is None:
        plan = ntt.get_stack_plan(poly.degree, poly.base.moduli)
        data = np.ascontiguousarray(poly.data[:, plan.scramble_order])
        if max(poly.base.moduli) < ntt.SHOUP_MODULUS_BOUND:
            shoup = (data << 32) // poly.base.moduli_col
        else:
            shoup = None
        cached = (data, shoup)
        poly._raw_tables = cached
    return cached


def dyadic_block_raw(base: RnsBase, block: np.ndarray, poly: RnsPoly) -> np.ndarray:
    """Pointwise product with a cached key poly, both sides in raw butterfly
    order (``forward_block(..., raw=True)`` output).

    Uses Shoup's precomputed-quotient multiply — ``q = (x * floor(w * 2**32 /
    p)) >> 32``; ``x*w - q*p`` lands in ``[0, 2p)`` for canonical ``x`` — so
    the hot dyadic step contains no division.  One conditional subtract
    restores the canonical range, making the result bit-identical to
    :func:`dyadic_block` up to the (cancelled) permutation.
    """
    data, shoup = raw_tables(poly)
    if shoup is None:
        return np.mod(block * data[None, :, :], base.moduli_col)
    q = (block * shoup[None, :, :]) >> 32
    q *= base.moduli_col
    prod = block * data[None, :, :]
    prod -= q
    pu = prod.view(np.uint64)
    np.minimum(pu, pu - base.moduli_col.view(np.uint64), out=pu)
    return prod


def add_blocks(base: RnsBase, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise modular sum of canonical blocks (conditional subtract).

    The subtract is the unsigned-minimum trick from the NTT kernels: viewed
    as uint64, ``total - p`` wraps above ``2**63`` whenever ``total < p``, so
    an in-place elementwise minimum selects the reduced representative
    without a boolean mask or a second temporary.
    """
    total = a + b
    tu = total.view(np.uint64)
    np.minimum(tu, tu - base.moduli_col.view(np.uint64), out=tu)
    return total


def negate_block(base: RnsBase, block: np.ndarray) -> np.ndarray:
    """Elementwise modular negation of a canonical block."""
    return np.where(block == 0, 0, base.moduli_col - block)


def scalar_multiply_block(base: RnsBase, block: np.ndarray, scalar: int) -> np.ndarray:
    """Multiply every coefficient by a (possibly big) integer scalar."""
    scol = np.array([int(scalar) % p for p in base.moduli],
                    dtype=np.int64).reshape(-1, 1)
    return np.mod(block * scol, base.moduli_col)


def divide_and_round_by_last_block(
    base: RnsBase, block: np.ndarray
) -> Tuple[RnsBase, np.ndarray]:
    """Batch modulus switch: the :meth:`RnsPoly.divide_and_round_by_last`
    formula applied to a whole ``(m, k, n)`` block at once.

    Returns ``(dropped_base, (m, k-1, n) block)``.
    """
    last = base.moduli[-1]
    target = base.drop_last()
    tcol = target.moduli_col
    remainder = center(block[:, -1, :], last)
    inv_last_col = np.array(
        [mod_inv(last % p, p) for p in target.moduli], dtype=np.int64
    ).reshape(-1, 1)
    diff = block[:, :-1, :] - np.mod(remainder[:, None, :], tcol)
    diff = np.where(diff < 0, diff + tcol, diff)
    return target, np.mod(diff * inv_last_col, tcol)


def split_polys(
    base: RnsBase, degree: int, block: np.ndarray, is_ntt: bool = False
) -> List[RnsPoly]:
    """``(m, k, n)`` block → m independent :class:`RnsPoly` (contiguous copies,
    so downstream in-place ops on one ciphertext cannot alias its batchmates).
    """
    return [RnsPoly(base, degree, np.ascontiguousarray(row), is_ntt=is_ntt)
            for row in block]


def stack_components(polys: List[RnsPoly]) -> np.ndarray:
    """m coefficient-form polys over one base → ``(m, k, n)`` block."""
    return np.stack([p.from_ntt().data for p in polys])
