"""Security estimation for RLWE parameter sets.

The Homomorphic Encryption Standard tabulates, for each polynomial degree
``N`` and secret distribution, the largest total coefficient-modulus width
``log2 q`` at a given security level.  SEAL enforces the 128-bit column;
Table 3's parameter sets are "chosen to satisfy at least 128-bit security".

This module carries the ternary-secret table for 128/192/256-bit security,
with log-linear interpolation for intermediate moduli — enough to validate
any parameter set this repository constructs and to reason about the
security slack CHOCO's minimized parameters leave (smaller ``q`` at fixed
``N`` is *more* secure).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

#: Max log2(q) for ternary secrets at each (N, security level), per the
#: HE Standard tables.
MAX_LOG_Q: Dict[int, Dict[int, int]] = {
    1024: {128: 27, 192: 19, 256: 14},
    2048: {128: 54, 192: 37, 256: 29},
    4096: {128: 109, 192: 75, 256: 58},
    8192: {128: 218, 192: 152, 256: 118},
    16384: {128: 438, 192: 305, 256: 237},
    32768: {128: 881, 192: 611, 256: 476},
}

SECURITY_LEVELS = (128, 192, 256)


def max_coeff_modulus_bits(poly_degree: int, security: int = 128) -> int:
    """Largest permitted total log2(q) at *security* bits."""
    by_level = MAX_LOG_Q.get(poly_degree)
    if by_level is None:
        raise ValueError(f"no security data for N={poly_degree}")
    if security not in by_level:
        raise ValueError(f"unsupported security level {security}")
    return by_level[security]


def meets_security(poly_degree: int, total_coeff_bits: int,
                   security: int = 128) -> bool:
    """Whether (N, log2 q) meets *security* bits."""
    return total_coeff_bits <= max_coeff_modulus_bits(poly_degree, security)


def estimated_security_bits(poly_degree: int, total_coeff_bits: int) -> float:
    """Approximate security level of (N, log2 q) in bits.

    Interpolates/extrapolates the standard's table: at fixed N, security is
    roughly inversely proportional to ``log2 q`` (lattice attacks get easier
    as the modulus grows relative to the noise).
    """
    by_level = MAX_LOG_Q.get(poly_degree)
    if by_level is None:
        raise ValueError(f"no security data for N={poly_degree}")
    if total_coeff_bits <= 0:
        raise ValueError("modulus width must be positive")
    # lambda * log2(q) is approximately constant at fixed N.
    constant = sum(level * bits for level, bits in by_level.items()) / len(by_level)
    return constant / total_coeff_bits


def minimum_poly_degree(total_coeff_bits: int, security: int = 128) -> int:
    """Smallest standard N accommodating *total_coeff_bits* at *security*."""
    for n in sorted(MAX_LOG_Q):
        if max_coeff_modulus_bits(n, security) >= total_coeff_bits:
            return n
    raise ValueError(
        f"no standard degree supports log2(q)={total_coeff_bits} "
        f"at {security}-bit security"
    )


def security_margin_bits(poly_degree: int, total_coeff_bits: int,
                         security: int = 128) -> int:
    """Unused modulus budget: how much more q the parameters could carry."""
    return max_coeff_modulus_bits(poly_degree, security) - total_coeff_bits
