"""The CKKS approximate-arithmetic scheme (Cheon/Kim/Kim/Song).

CKKS packs N/2 complex (here: real) values via the canonical embedding and
supports fixed-point arithmetic with per-level rescaling.  CHOCO uses CKKS
for the distance-based algorithms (KNN, K-Means) and PageRank (§5.1), where
values are not integers.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.hecore import batchcrypt, hoisting
from repro.hecore.ciphertext import Ciphertext
from repro.hecore.keys import (
    GaloisKeys,
    KeyGenerator,
    RelinKeys,
    expand_uniform_poly,
    galois_element_for_conjugation,
    galois_element_for_step,
    switch_key,
)
from repro.hecore.params import EncryptionParameters, SchemeType
from repro.hecore.plaintext import CkksPlaintext
from repro.hecore.polyring import RnsPoly
from repro.hecore.random import BlakePrng
from repro.hecore.rns import RnsBase


class CkksEncoder:
    """Canonical-embedding encoder: N/2 slots ↔ a scaled integer polynomial."""

    def __init__(self, params: EncryptionParameters):
        if params.scheme is not SchemeType.CKKS:
            raise ValueError("CkksEncoder is CKKS-only")
        self.params = params
        n = params.poly_degree
        m = 2 * n
        # psi = exp(i*pi/N): primitive 2N-th complex root of unity.
        self._psi_powers = np.exp(1j * np.pi * np.arange(n) / n)
        # Slot i evaluates at psi^(3^i); position j holds psi^(2j+1).
        positions = np.empty(n // 2, dtype=np.int64)
        power = 1
        for i in range(n // 2):
            positions[i] = (power - 1) // 2
            power = (power * 3) % m
        self._positions = positions
        self._conj_positions = n - 1 - positions

    @property
    def slot_count(self) -> int:
        return self.params.poly_degree // 2

    def encode(self, values: Sequence[float], scale: Optional[float] = None,
               base: Optional[RnsBase] = None) -> CkksPlaintext:
        """Encode up to N/2 values at the given *scale* over *base*."""
        params = self.params
        scale = params.scale if scale is None else float(scale)
        base = params.data_base if base is None else base
        n = params.poly_degree
        if len(values) > n // 2:
            raise ValueError(f"too many values ({len(values)}) for {n // 2} slots")
        slots = np.zeros(n // 2, dtype=np.complex128)
        slots[: len(values)] = np.asarray(values, dtype=np.complex128)
        evals = np.zeros(n, dtype=np.complex128)
        evals[self._positions] = slots
        evals[self._conj_positions] = np.conj(slots)
        x = np.fft.fft(evals) / n
        coeffs = np.real(x * np.conj(self._psi_powers))
        scaled = [int(round(c * scale)) for c in coeffs]
        return CkksPlaintext(RnsPoly.from_int_coeffs(base, scaled, n), scale)

    def decode(self, plaintext: CkksPlaintext) -> np.ndarray:
        """Decode back to N/2 (complex) slot values."""
        ints = plaintext.poly.to_int_coeffs(centered=True)
        coeffs = np.array([float(v) for v in ints])
        return self.decode_rows(coeffs[None, :], plaintext.scale)[0]

    def decode_rows(self, coeff_rows: np.ndarray, scales) -> np.ndarray:
        """Decode M centered-coefficient rows ``(m, n)`` → slot rows
        ``(m, n/2)``; *scales* is a scalar or per-row array."""
        n = self.params.poly_degree
        scales = np.asarray(scales, dtype=np.float64).reshape(-1, 1)
        coeffs = coeff_rows / scales
        evals = n * np.fft.ifft(coeffs * self._psi_powers[None, :], axis=-1)
        return evals[:, self._positions]


class CkksContext:
    """Keys, encoder and evaluator for one CKKS parameter set."""

    def __init__(self, params: EncryptionParameters, seed: Optional[object] = None):
        if params.scheme is not SchemeType.CKKS:
            raise ValueError("CkksContext requires CKKS parameters")
        self.params = params
        self.keygen = KeyGenerator(params, seed)
        self.encoder = CkksEncoder(params)
        self._prng = BlakePrng(seed).fork("ckks-encryptor") if seed is not None else BlakePrng()
        self._relin: Optional[RelinKeys] = None
        self._galois: Optional[GaloisKeys] = None
        self.counts: Counter = Counter()

    # --------------------------------------------------------------- keys
    def relin_keys(self) -> RelinKeys:
        if self._relin is None:
            self._relin = self.keygen.relin_keys()
        return self._relin

    def make_galois_keys(self, steps: Iterable[int], include_conjugation: bool = False):
        """Generate (or extend) rotation keys; cached elements are reused."""
        self._galois = self.keygen.galois_keys(
            steps, include_conjugation=include_conjugation,
            existing=self._galois)
        return self._galois

    # ------------------------------------------------------------ encoding
    def encode(self, values: Sequence[float], scale: Optional[float] = None,
               base: Optional[RnsBase] = None) -> CkksPlaintext:
        return self.encoder.encode(values, scale=scale, base=base)

    def decode(self, plaintext: CkksPlaintext) -> np.ndarray:
        return self.encoder.decode(plaintext)

    # ------------------------------------------------------- encrypt/decrypt
    def encrypt(self, values, rng: Optional[BlakePrng] = None) -> Ciphertext:
        """Encrypt a value vector (or a pre-encoded :class:`CkksPlaintext`).

        *rng* overrides the context PRNG (used by the batch-equivalence
        property tests to replay :meth:`encrypt_many`'s fork schedule).
        """
        plaintext = values if isinstance(values, CkksPlaintext) else self.encode(values)
        self.counts["encrypt"] += 1
        params = self.params
        n = params.poly_degree
        full = params.full_base
        pk = self.keygen.public_key()
        rng = self._prng if rng is None else rng

        u = RnsPoly.from_signed_array(full, rng.sample_ternary(n)).to_ntt()
        e1 = RnsPoly.from_signed_array(full, rng.sample_error(n))
        e2 = RnsPoly.from_signed_array(full, rng.sample_error(n))
        c0 = (pk.p0 * u).from_ntt() + e1
        c1 = (pk.p1 * u).from_ntt() + e2
        for _ in params.special_primes:
            c0 = c0.divide_and_round_by_last()
            c1 = c1.divide_and_round_by_last()
        c0 = c0 + plaintext.poly
        return Ciphertext(params, [c0, c1], scale=plaintext.scale)

    def encrypt_many(self, values_list: Sequence,
                     rng: Optional[BlakePrng] = None) -> list:
        """Encrypt M value vectors (or plaintexts) as one stacked batch.

        Same structure and PRNG fork schedule as
        :meth:`BfvContext.encrypt_many` (``batch-encrypt`` → ``u`` / ``e1`` /
        ``e2`` forks, one ``(2M·k, N)`` stacked NTT pair, vectorized
        mod-switch); the encoded message is added directly instead of
        Δ-scaled.  Bit-identical to looped :meth:`encrypt` under the fork
        schedule.
        """
        plaintexts = [v if isinstance(v, CkksPlaintext) else self.encode(v)
                      for v in values_list]
        m = len(plaintexts)
        if m == 0:
            return []
        self.counts["encrypt"] += m
        params = self.params
        n = params.poly_degree
        full = params.full_base
        pk = self.keygen.public_key()
        rng = self._prng.fork("batch-encrypt") if rng is None else rng

        u_all = rng.fork("u").sample_ternary((m, n))
        e1_all = rng.fork("e1").sample_error((m, n))
        e2_all = rng.fork("e2").sample_error((m, n))
        msg_all = np.stack([pt.poly.data for pt in plaintexts])
        out: list = []
        # One (M, N) draw per stream above; cache-sized ciphertext tiles
        # below (see batchcrypt.tile_size).
        tile = batchcrypt.tile_size(full, n, parts=2)
        for start in range(0, m, tile):
            stop = min(start + tile, m)
            g = stop - start
            u = batchcrypt.signed_block(full, u_all[start:stop])
            e1 = batchcrypt.signed_block(full, e1_all[start:stop])
            e2 = batchcrypt.signed_block(full, e2_all[start:stop])
            # Raw butterfly-order sandwich (see bfv.encrypt_many): the
            # forward unscramble and inverse scramble gathers cancel, and the
            # dyadic runs in Shoup form against the pre-permuted public key.
            u_ntt = batchcrypt.forward_block(full, n, u, raw=True)
            prod = np.concatenate([
                batchcrypt.dyadic_block_raw(full, u_ntt, pk.p0),
                batchcrypt.dyadic_block_raw(full, u_ntt, pk.p1),
            ])
            block = batchcrypt.inverse_block(full, n, prod, raw=True)
            block = batchcrypt.add_blocks(full, block,
                                          np.concatenate([e1, e2]))
            base = full
            for _ in params.special_primes:
                base, block = batchcrypt.divide_and_round_by_last_block(
                    base, block)
            c0 = batchcrypt.add_blocks(base, block[:g], msg_all[start:stop])
            c0_polys = batchcrypt.split_polys(base, n, c0)
            c1_polys = batchcrypt.split_polys(base, n, block[g:])
            out.extend(
                Ciphertext(params, [p0, p1], scale=pt.scale)
                for p0, p1, pt in zip(c0_polys, c1_polys,
                                      plaintexts[start:stop]))
        return out

    def encrypt_symmetric(self, values, seed: Optional[bytes] = None,
                          rng: Optional[BlakePrng] = None) -> Ciphertext:
        """Symmetric (secret-key) encryption with a seed-expanded ``c1``.

        See :meth:`BfvContext.encrypt_symmetric`; the CKKS variant adds the
        scaled message directly (no Δ scaling).
        """
        plaintext = values if isinstance(values, CkksPlaintext) else self.encode(values)
        self.counts["encrypt"] += 1
        params = self.params
        n = params.poly_degree
        base = params.data_base
        rng = self._prng if rng is None else rng
        if seed is None:
            seed = rng.random_bytes(32)
        a = expand_uniform_poly(seed, base, n)
        e = RnsPoly.from_signed_array(base, rng.sample_error(n))
        s_ntt = self.keygen.secret_key().restricted_ntt(base, params.full_base)
        c0 = -(a.to_ntt() * s_ntt).from_ntt() + e + plaintext.poly
        return Ciphertext(params, [c0, a], scale=plaintext.scale, seed=bytes(seed))

    def encrypt_symmetric_many(self, values_list: Sequence,
                               rng: Optional[BlakePrng] = None) -> list:
        """Seed-compressed symmetric encryption of M vectors as one batch.

        PRNG schedule matches :meth:`BfvContext.encrypt_symmetric_many`
        (``batch-encrypt-symmetric`` → ``seed`` / ``e`` forks).
        """
        plaintexts = [v if isinstance(v, CkksPlaintext) else self.encode(v)
                      for v in values_list]
        m = len(plaintexts)
        if m == 0:
            return []
        self.counts["encrypt"] += m
        params = self.params
        n = params.poly_degree
        base = params.data_base
        rng = (self._prng.fork("batch-encrypt-symmetric")
               if rng is None else rng)
        seed_rng = rng.fork("seed")
        seeds = [seed_rng.random_bytes(32) for _ in range(m)]
        e_all = rng.fork("e").sample_error((m, n))
        s_ntt = self.keygen.secret_key().restricted_ntt(base, params.full_base)
        msg_all = np.stack([pt.poly.data for pt in plaintexts])
        out: list = []
        tile = batchcrypt.tile_size(base, n, parts=2)
        for start in range(0, m, tile):
            stop = min(start + tile, m)
            e = batchcrypt.signed_block(base, e_all[start:stop])
            a_block = np.stack([expand_uniform_poly(seed, base, n).data
                                for seed in seeds[start:stop]])
            a_ntt = batchcrypt.forward_block(base, n, a_block, raw=True)
            prod = batchcrypt.inverse_block(
                base, n, batchcrypt.dyadic_block_raw(base, a_ntt, s_ntt),
                raw=True)
            c0 = batchcrypt.add_blocks(
                base, batchcrypt.negate_block(base, prod), e)
            c0 = batchcrypt.add_blocks(base, c0, msg_all[start:stop])
            c0_polys = batchcrypt.split_polys(base, n, c0)
            a_polys = batchcrypt.split_polys(base, n, a_block)
            out.extend(
                Ciphertext(params, [p0, a], scale=pt.scale, seed=bytes(seed))
                for p0, a, pt, seed in zip(c0_polys, a_polys,
                                           plaintexts[start:stop],
                                           seeds[start:stop]))
        return out

    def _raw_decrypt_poly(self, ct: Ciphertext) -> RnsPoly:
        """``[c0 + c1 s (+ c2 s^2)]_q`` in coefficient form over the level base."""
        base = ct.level_base
        s_ntt = self.keygen.secret_key().restricted_ntt(base, self.params.full_base)
        acc = ct.components[0].from_ntt()
        s_power = s_ntt
        for comp in ct.components[1:]:
            acc = acc + (comp.to_ntt() * s_power).from_ntt()
            s_power = s_power * s_ntt
        return acc.from_ntt()

    def _plain_coeffs(self, base, block: np.ndarray) -> np.ndarray:
        """Centered message coefficients of an ``(m, k, n)`` block as floats.

        Uses the exact int64 sub-base CRT (:meth:`RnsBase.
        compose_centered_small`) — CKKS message coefficients are tiny
        relative to ``q``, so almost every coefficient is recovered without
        big integers; flagged ones take the exact path, with identical
        results.
        """
        values, unsafe = base.compose_centered_small(block)
        out = values.astype(np.float64)
        if unsafe.any():
            for mi, col in zip(*np.nonzero(unsafe)):
                out[mi, col] = float(
                    base.compose_centered(block[mi][:, [col]])[0])
        return out

    def decrypt(self, ct: Ciphertext) -> np.ndarray:
        """Decrypt to the (approximate) slot vector.

        Bigint-free: the centered coefficients come from the vectorized
        sub-base CRT rather than per-coefficient Python integers.
        """
        self.counts["decrypt"] += 1
        acc = self._raw_decrypt_poly(ct)
        coeffs = self._plain_coeffs(acc.base, acc.data[None])[0]
        return self.encoder.decode_rows(coeffs[None, :], ct.scale)[0]

    def _decrypt_bigint(self, ct: Ciphertext) -> np.ndarray:
        """Exact big-integer reference decrypt (pre-RNS-scaling code path).

        The correctness oracle for the vectorized path and the looped
        baseline of ``bench_client_crypto``; not ``counts``-charged.
        """
        acc = self._raw_decrypt_poly(ct)
        ints = acc.base.compose_centered(acc.data)
        coeffs = np.array([float(v) for v in ints])
        return self.encoder.decode_rows(coeffs[None, :], ct.scale)[0]

    def decrypt_many(self, cts: Sequence[Ciphertext]) -> list:
        """Decrypt M ciphertexts as stacked batches.

        Groups 2-component ciphertexts by level base into ``(M, k, n)``
        blocks (one stacked NTT pair, one vectorized CRT, one batched
        decode); odd ciphertexts fall back to :meth:`decrypt`.  Bit-identical
        to looped :meth:`decrypt` calls.
        """
        results: list = [None] * len(cts)
        groups = {}
        for i, ct in enumerate(cts):
            if len(ct) == 2:
                groups.setdefault(ct.level_base.moduli, []).append(i)
            else:
                results[i] = self.decrypt(ct)
        params = self.params
        n = params.poly_degree
        for indices in groups.values():
            base = cts[indices[0]].level_base
            s_ntt = self.keygen.secret_key().restricted_ntt(base, params.full_base)
            coeff_rows = []
            tile = batchcrypt.tile_size(base, n, parts=2)
            for start in range(0, len(indices), tile):
                chunk = indices[start:start + tile]
                c0 = batchcrypt.stack_components(
                    [cts[i].components[0] for i in chunk])
                c1 = batchcrypt.stack_components(
                    [cts[i].components[1] for i in chunk])
                prod = batchcrypt.inverse_block(
                    base, n,
                    batchcrypt.dyadic_block_raw(
                        base, batchcrypt.forward_block(base, n, c1, raw=True),
                        s_ntt),
                    raw=True)
                acc = batchcrypt.add_blocks(base, c0, prod)
                coeff_rows.append(self._plain_coeffs(base, acc))
            coeffs = np.concatenate(coeff_rows)
            scales = np.array([cts[i].scale for i in indices])
            slots = self.encoder.decode_rows(coeffs, scales)
            for row, i in enumerate(indices):
                results[i] = slots[row]
            self.counts["decrypt"] += len(indices)
        return results

    # ------------------------------------------------------------ evaluator
    def _check_aligned(self, a: Ciphertext, b: Ciphertext) -> None:
        if a.level_base != b.level_base:
            raise ValueError("align ciphertext levels before combining them")
        if not np.isclose(a.scale, b.scale, rtol=1e-9):
            raise ValueError(f"scale mismatch: {a.scale} vs {b.scale}")

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.counts["add"] += 1
        self._check_aligned(a, b)
        comps = [x + y for x, y in zip(a.components, b.components)]
        return Ciphertext(self.params, comps, scale=a.scale)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self.counts["add"] += 1
        self._check_aligned(a, b)
        comps = [x - y for x, y in zip(a.components, b.components)]
        return Ciphertext(self.params, comps, scale=a.scale)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext(self.params, [-c for c in a.components], scale=a.scale)

    def add_plain(self, ct: Ciphertext, plaintext: CkksPlaintext) -> Ciphertext:
        self.counts["add_plain"] += 1
        comps = [c.copy() for c in ct.components]
        comps[0] = comps[0] + plaintext.poly
        return Ciphertext(self.params, comps, scale=ct.scale)

    def multiply_plain(self, ct: Ciphertext, plaintext: CkksPlaintext) -> Ciphertext:
        self.counts["multiply_plain"] += 1
        m_ntt = plaintext.poly.to_ntt()
        comps = [(c.to_ntt() * m_ntt).from_ntt() for c in ct.components]
        return Ciphertext(self.params, comps, scale=ct.scale * plaintext.scale)

    def multiply(self, a: Ciphertext, b: Ciphertext,
                 relinearize: bool = True) -> Ciphertext:
        """Ciphertext-ciphertext multiply; scales multiply, rescale after."""
        self.counts["multiply"] += 1
        if a.level_base != b.level_base:
            raise ValueError("align ciphertext levels before multiplying")
        a0, a1 = (c.to_ntt() for c in a.components)
        b0, b1 = (c.to_ntt() for c in b.components)
        d0 = a0 * b0
        d1 = a0 * b1 + a1 * b0
        d2 = a1 * b1
        out = Ciphertext(self.params, [d0.from_ntt(), d1.from_ntt(), d2.from_ntt()],
                         scale=a.scale * b.scale)
        if relinearize:
            out = self.relinearize(out)
        return out

    def square(self, a: Ciphertext, relinearize: bool = True) -> Ciphertext:
        return self.multiply(a, a, relinearize=relinearize)

    def relinearize(self, ct: Ciphertext) -> Ciphertext:
        if len(ct) == 2:
            return ct
        if len(ct) != 3:
            raise ValueError("relinearize expects a 3-component ciphertext")
        self.counts["relinearize"] += 1
        u0, u1 = switch_key(ct.components[2].from_ntt(), self.relin_keys(), self.params)
        return Ciphertext(
            self.params,
            [ct.components[0].from_ntt() + u0, ct.components[1].from_ntt() + u1],
            scale=ct.scale,
        )

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Drop the last prime, dividing the scale by it (CKKS rescaling)."""
        self.counts["rescale"] += 1
        dropped = ct.level_base.moduli[-1]
        comps = [c.from_ntt().divide_and_round_by_last() for c in ct.components]
        return Ciphertext(self.params, comps, scale=ct.scale / dropped)

    def drop_modulus(self, ct: Ciphertext) -> Ciphertext:
        """Drop the last prime *without* changing the scale (level alignment)."""
        comps = []
        for c in ct.components:
            c = c.from_ntt()
            comps.append(RnsPoly(c.base.drop_last(), c.degree, c.data[:-1], is_ntt=False))
        return Ciphertext(self.params, comps, scale=ct.scale)

    def mod_switch_down(self, ct: Ciphertext) -> Ciphertext:
        """Counted scale-preserving limb drop (the planner's drop primitive).

        CKKS sheds a residue with :meth:`drop_modulus` — the scale is
        untouched, so decoded values are identical; only noise headroom and
        per-limb compute/bytes shrink.
        """
        if len(ct.level_base) < 2:
            raise ValueError("cannot drop the only remaining residue")
        self.counts["mod_switch"] += 1
        return self.drop_modulus(ct)

    def align(self, a: Ciphertext, b: Ciphertext):
        """Bring two ciphertexts to a common level for add/multiply."""
        while len(a.level_base) > len(b.level_base):
            a = self.drop_modulus(a)
        while len(b.level_base) > len(a.level_base):
            b = self.drop_modulus(b)
        return a, b

    def rotate(self, ct: Ciphertext, steps: int,
               galois_keys: Optional[GaloisKeys] = None) -> Ciphertext:
        """Rotate the slot vector left by *steps*."""
        self.counts["rotate"] += 1
        g = galois_element_for_step(steps, self.params.poly_degree)
        return self._apply_galois(ct, g, galois_keys)

    def conjugate(self, ct: Ciphertext,
                  galois_keys: Optional[GaloisKeys] = None) -> Ciphertext:
        self.counts["rotate"] += 1
        g = galois_element_for_conjugation(self.params.poly_degree)
        return self._apply_galois(ct, g, galois_keys)

    def _apply_galois(self, ct: Ciphertext, galois_elt: int,
                      galois_keys: Optional[GaloisKeys]) -> Ciphertext:
        if galois_elt == 1:
            return ct.copy()
        keys = galois_keys or self._galois
        if keys is None:
            raise ValueError("rotation requires Galois keys")
        self.counts["naive_decompose"] += 1
        # apply_automorphism is form-agnostic (NTT form permutes evaluations
        # in place); switch_key converts to coefficient form itself.
        c0 = ct.components[0].apply_automorphism(galois_elt).from_ntt()
        c1 = ct.components[1].apply_automorphism(galois_elt)
        u0, u1 = switch_key(c1, keys.key_for(galois_elt), self.params)
        return Ciphertext(self.params, [c0 + u0, u1], scale=ct.scale)

    # ------------------------------------------------- hoisted rotations
    def rotate_many(self, ct: Ciphertext, steps: Sequence[int],
                    galois_keys: Optional[GaloisKeys] = None,
                    include_conjugation: bool = False):
        """Rotate *ct* by every step in *steps*, sharing one hoisted
        key-switch decomposition; bit-exact with sequential :meth:`rotate`
        calls (see :mod:`repro.hecore.hoisting`).  With
        *include_conjugation* the conjugated ciphertext is appended."""
        return hoisting.rotate_many(self, ct, steps, galois_keys,
                                    include_conjugation=include_conjugation)

    def rotate_and_sum(self, ct: Ciphertext, width: int,
                       galois_keys: Optional[GaloisKeys] = None) -> Ciphertext:
        """Fused sum of the first *width* rotations of *ct* (power of two)."""
        return hoisting.rotate_and_sum(self, ct, width, galois_keys)
