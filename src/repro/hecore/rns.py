"""Residue Number System (RNS) bases and exact CRT conversions.

RLWE coefficient moduli are hundreds of bits wide; HE libraries represent
each coefficient as residues modulo a base of word-sized coprime moduli
(Table 2 of the paper: parameters ``k`` and ``{k}``).  Arithmetic stays in
vectorized int64 residue-land; only decryption, noise measurement, and exact
BFV multiplication compose back to Python big integers.
"""

from __future__ import annotations

import math
from functools import reduce
from typing import List, Sequence, Tuple

import numpy as np

from repro.hecore.modmath import mod_inv


class RnsBase:
    """An ordered base of pairwise-coprime word-sized moduli."""

    def __init__(self, moduli: Sequence[int]):
        moduli = [int(m) for m in moduli]
        if not moduli:
            raise ValueError("RNS base must contain at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("RNS moduli must be distinct")
        if any(m < 2 for m in moduli):
            raise ValueError("RNS moduli must exceed 1")
        for i, a in enumerate(moduli):
            for b in moduli[i + 1:]:
                if math.gcd(a, b) != 1:
                    raise ValueError(f"moduli {a} and {b} are not coprime")
        self.moduli: Tuple[int, ...] = tuple(moduli)
        self.modulus: int = reduce(lambda a, b: a * b, moduli, 1)
        #: ``(k, 1)`` int64 column of the moduli, broadcast against ``(k, n)``
        #: residue matrices by the vectorized fast paths.
        self.moduli_col: np.ndarray = np.array(self.moduli, dtype=np.int64).reshape(-1, 1)
        # Punctured products q_i = q / p_i and their inverses mod p_i,
        # needed for CRT composition and base conversion.
        self._punctured = [self.modulus // p for p in moduli]
        self._punctured_inv = [mod_inv(q_i % p, p) for q_i, p in zip(self._punctured, moduli)]
        self._punctured_inv_col = np.array(self._punctured_inv, dtype=np.int64).reshape(-1, 1)

    def __len__(self) -> int:
        return len(self.moduli)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RnsBase) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __repr__(self) -> str:
        return f"RnsBase({list(self.moduli)})"

    @property
    def bit_size(self) -> int:
        """Total bit width of the composed modulus."""
        return self.modulus.bit_length()

    def drop_last(self) -> "RnsBase":
        """The base with its final modulus removed (modulus switching)."""
        if len(self.moduli) < 2:
            raise ValueError("cannot drop the only modulus in a base")
        return RnsBase(self.moduli[:-1])

    def decompose(self, values: Sequence[int]) -> np.ndarray:
        """Integer vector → residue matrix of shape ``(k, len(values))``.

        Accepts arbitrarily large (and negative) Python integers.  Values
        already fitting int64 reduce in one vectorized ``np.mod`` against the
        moduli column; wider values take a pair-folded big-integer path (one
        Python-level reduction per *pair* of moduli, then word-sized ``np.mod``
        per member).
        """
        try:
            arr = np.asarray(values, dtype=np.int64)
        except (OverflowError, TypeError):
            arr = None
        if arr is not None:
            return np.mod(arr[None, :], self.moduli_col)
        big = [int(v) for v in values]
        k = len(self.moduli)
        out = np.empty((k, len(big)), dtype=np.int64)
        for i in range(0, k - 1, 2):
            pair = self.moduli[i] * self.moduli[i + 1]
            folded = np.array([v % pair for v in big], dtype=np.int64)
            np.mod(folded, self.moduli[i], out=out[i])
            np.mod(folded, self.moduli[i + 1], out=out[i + 1])
        if k % 2:
            p = self.moduli[-1]
            out[-1] = np.array([v % p for v in big], dtype=np.int64)
        return out

    def compose(self, residues: np.ndarray) -> List[int]:
        """Residue matrix ``(k, n)`` → canonical integers in ``[0, q)``.

        When the composed modulus fits the int64-exactness envelope the whole
        CRT sum runs vectorized (each term ``scaled_i * q_i < q < 2**62`` and
        partial sums stay below ``2q < 2**63``).  Wider bases pair-fold:
        ``scaled_i*q_i + scaled_j*q_j = Q_g * (scaled_i*p_j + scaled_j*p_i)``
        with ``Q_g = q/(p_i p_j)``, so the inner combination is one int64
        vector op and only one big-integer multiply per element per *pair*.
        """
        if residues.shape[0] != len(self.moduli):
            raise ValueError(
                f"residue matrix has {residues.shape[0]} rows, base has {len(self.moduli)}"
            )
        q = self.modulus
        n = residues.shape[1]
        scaled = np.mod(
            residues.astype(np.int64) * self._punctured_inv_col, self.moduli_col
        )
        if self.bit_size <= 62:
            acc = np.zeros(n, dtype=np.int64)
            for row, q_i in zip(scaled, self._punctured):
                acc += row * np.int64(q_i)
                np.mod(acc, np.int64(q), out=acc)
            return [int(v) for v in acc]
        k = len(self.moduli)
        acc = [0] * n
        for i in range(0, k - 1, 2):
            p_i, p_j = self.moduli[i], self.moduli[i + 1]
            group = q // (p_i * p_j)
            inner = scaled[i] * np.int64(p_j) + scaled[i + 1] * np.int64(p_i)
            for j in range(n):
                acc[j] += group * int(inner[j])
        if k % 2:
            q_last = self._punctured[-1]
            last = scaled[-1]
            for j in range(n):
                acc[j] += q_last * int(last[j])
        return [v % q for v in acc]

    def compose_centered(self, residues: np.ndarray) -> List[int]:
        """Like :meth:`compose` but mapped to the centered range (−q/2, q/2]."""
        q = self.modulus
        half = q // 2
        return [v - q if v > half else v for v in self.compose(residues)]


def scale_and_round(values: Sequence[int], numerator: int, denominator: int) -> List[int]:
    """Exact ``round(v * numerator / denominator)`` for big integers.

    Rounds half away from zero, matching SEAL's BFV scaling convention.
    """
    out = []
    for v in values:
        num = int(v) * numerator
        if num >= 0:
            out.append((2 * num + denominator) // (2 * denominator))
        else:
            out.append(-((-2 * num + denominator) // (2 * denominator)))
    return out


def centered_mod(value: int, modulus: int) -> int:
    """``value mod modulus`` mapped to (−modulus/2, modulus/2]."""
    r = int(value) % modulus
    return r - modulus if r > modulus // 2 else r
