"""Residue Number System (RNS) bases and exact CRT conversions.

RLWE coefficient moduli are hundreds of bits wide; HE libraries represent
each coefficient as residues modulo a base of word-sized coprime moduli
(Table 2 of the paper: parameters ``k`` and ``{k}``).  Arithmetic stays in
vectorized int64 residue-land; only decryption, noise measurement, and exact
BFV multiplication compose back to Python big integers.
"""

from __future__ import annotations

import math
from functools import reduce
from typing import List, Sequence, Tuple

import numpy as np

from repro.hecore.modmath import mod_inv, mod_mul


class RnsBase:
    """An ordered base of pairwise-coprime word-sized moduli."""

    def __init__(self, moduli: Sequence[int]):
        moduli = [int(m) for m in moduli]
        if not moduli:
            raise ValueError("RNS base must contain at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("RNS moduli must be distinct")
        if any(m < 2 for m in moduli):
            raise ValueError("RNS moduli must exceed 1")
        for i, a in enumerate(moduli):
            for b in moduli[i + 1:]:
                if math.gcd(a, b) != 1:
                    raise ValueError(f"moduli {a} and {b} are not coprime")
        self.moduli: Tuple[int, ...] = tuple(moduli)
        self.modulus: int = reduce(lambda a, b: a * b, moduli, 1)
        # Punctured products q_i = q / p_i and their inverses mod p_i,
        # needed for CRT composition and base conversion.
        self._punctured = [self.modulus // p for p in moduli]
        self._punctured_inv = [mod_inv(q_i % p, p) for q_i, p in zip(self._punctured, moduli)]

    def __len__(self) -> int:
        return len(self.moduli)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RnsBase) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __repr__(self) -> str:
        return f"RnsBase({list(self.moduli)})"

    @property
    def bit_size(self) -> int:
        """Total bit width of the composed modulus."""
        return self.modulus.bit_length()

    def drop_last(self) -> "RnsBase":
        """The base with its final modulus removed (modulus switching)."""
        if len(self.moduli) < 2:
            raise ValueError("cannot drop the only modulus in a base")
        return RnsBase(self.moduli[:-1])

    def decompose(self, values: Sequence[int]) -> np.ndarray:
        """Integer vector → residue matrix of shape ``(k, len(values))``.

        Accepts arbitrarily large (and negative) Python integers.
        """
        rows = []
        for p in self.moduli:
            rows.append(np.array([int(v) % p for v in values], dtype=np.int64))
        return np.stack(rows)

    def compose(self, residues: np.ndarray) -> List[int]:
        """Residue matrix ``(k, n)`` → canonical integers in ``[0, q)``."""
        if residues.shape[0] != len(self.moduli):
            raise ValueError(
                f"residue matrix has {residues.shape[0]} rows, base has {len(self.moduli)}"
            )
        q = self.modulus
        n = residues.shape[1]
        acc = [0] * n
        for row, q_i, inv_i, p in zip(
            residues, self._punctured, self._punctured_inv, self.moduli
        ):
            # term = [x]_p * (q/p) * ((q/p)^-1 mod p)
            scaled = mod_mul(row, np.int64(inv_i), p)
            for j in range(n):
                acc[j] = (acc[j] + int(scaled[j]) * q_i) % q
        return acc

    def compose_centered(self, residues: np.ndarray) -> List[int]:
        """Like :meth:`compose` but mapped to the centered range (−q/2, q/2]."""
        q = self.modulus
        half = q // 2
        return [v - q if v > half else v for v in self.compose(residues)]


def scale_and_round(values: Sequence[int], numerator: int, denominator: int) -> List[int]:
    """Exact ``round(v * numerator / denominator)`` for big integers.

    Rounds half away from zero, matching SEAL's BFV scaling convention.
    """
    out = []
    for v in values:
        num = int(v) * numerator
        if num >= 0:
            out.append((2 * num + denominator) // (2 * denominator))
        else:
            out.append(-((-2 * num + denominator) // (2 * denominator)))
    return out


def centered_mod(value: int, modulus: int) -> int:
    """``value mod modulus`` mapped to (−modulus/2, modulus/2]."""
    r = int(value) % modulus
    return r - modulus if r > modulus // 2 else r
