"""Residue Number System (RNS) bases and exact CRT conversions.

RLWE coefficient moduli are hundreds of bits wide; HE libraries represent
each coefficient as residues modulo a base of word-sized coprime moduli
(Table 2 of the paper: parameters ``k`` and ``{k}``).  Arithmetic stays in
vectorized int64 residue-land; only decryption, noise measurement, and exact
BFV multiplication compose back to Python big integers.
"""

from __future__ import annotations

import math
from functools import reduce
from typing import List, Sequence, Tuple

import numpy as np

from repro.hecore.modmath import mod_inv

#: Distance from the rounding boundary below which the floating-point
#: correction of :meth:`RnsBase.scale_and_round_mod` is not trusted and the
#: affected coefficients fall back to the exact big-integer path.  The float
#: error of the correction sum is bounded by ``~k^2 * 2**-53`` (a handful of
#: additions of values in [0, 1)), i.e. well under 1e-12 for any base this
#: repo uses; 1e-9 leaves three orders of magnitude of slack while making a
#: spurious fallback astronomically unlikely.
SCALE_ROUND_GUARD = 1e-9


class RnsBase:
    """An ordered base of pairwise-coprime word-sized moduli."""

    def __init__(self, moduli: Sequence[int]):
        moduli = [int(m) for m in moduli]
        if not moduli:
            raise ValueError("RNS base must contain at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("RNS moduli must be distinct")
        if any(m < 2 for m in moduli):
            raise ValueError("RNS moduli must exceed 1")
        for i, a in enumerate(moduli):
            for b in moduli[i + 1:]:
                if math.gcd(a, b) != 1:
                    raise ValueError(f"moduli {a} and {b} are not coprime")
        self.moduli: Tuple[int, ...] = tuple(moduli)
        self.modulus: int = reduce(lambda a, b: a * b, moduli, 1)
        #: ``(k, 1)`` int64 column of the moduli, broadcast against ``(k, n)``
        #: residue matrices by the vectorized fast paths.
        self.moduli_col: np.ndarray = np.array(self.moduli, dtype=np.int64).reshape(-1, 1)
        # Punctured products q_i = q / p_i and their inverses mod p_i,
        # needed for CRT composition and base conversion.
        self._punctured = [self.modulus // p for p in moduli]
        self._punctured_inv = [mod_inv(q_i % p, p) for q_i, p in zip(self._punctured, moduli)]
        self._punctured_inv_col = np.array(self._punctured_inv, dtype=np.int64).reshape(-1, 1)
        # Shoup quotients floor(c * 2**32 / p) for the punctured inverses:
        # for canonical x < p < 2**30 every product in the division-free
        # mul-mod stays int64-exact.  Wider moduli fall back to np.mod.
        if max(moduli).bit_length() <= 30:
            self._punctured_inv_shoup_col = np.array(
                [(c << 32) // p for c, p in zip(self._punctured_inv, moduli)],
                dtype=np.int64,
            ).reshape(-1, 1)
        else:
            self._punctured_inv_shoup_col = None
        #: Float reciprocals of the moduli: the fractional estimators multiply
        #: by these instead of dividing (same ~ulp accuracy, ~3x the speed).
        self._recip_moduli_col = 1.0 / self.moduli_col.astype(np.float64)

    def __len__(self) -> int:
        return len(self.moduli)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RnsBase) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __repr__(self) -> str:
        return f"RnsBase({list(self.moduli)})"

    @property
    def bit_size(self) -> int:
        """Total bit width of the composed modulus."""
        return self.modulus.bit_length()

    def drop_last(self) -> "RnsBase":
        """The base with its final modulus removed (modulus switching)."""
        if len(self.moduli) < 2:
            raise ValueError("cannot drop the only modulus in a base")
        return RnsBase(self.moduli[:-1])

    def decompose(self, values: Sequence[int]) -> np.ndarray:
        """Integer vector → residue matrix of shape ``(k, len(values))``.

        Accepts arbitrarily large (and negative) Python integers.  Values
        already fitting int64 reduce in one vectorized ``np.mod`` against the
        moduli column; wider values take a pair-folded big-integer path (one
        Python-level reduction per *pair* of moduli, then word-sized ``np.mod``
        per member).
        """
        try:
            arr = np.asarray(values, dtype=np.int64)
        except (OverflowError, TypeError):
            arr = None
        if arr is not None:
            return np.mod(arr[None, :], self.moduli_col)
        big = [int(v) for v in values]
        k = len(self.moduli)
        out = np.empty((k, len(big)), dtype=np.int64)
        for i in range(0, k - 1, 2):
            pair = self.moduli[i] * self.moduli[i + 1]
            folded = np.array([v % pair for v in big], dtype=np.int64)
            np.mod(folded, self.moduli[i], out=out[i])
            np.mod(folded, self.moduli[i + 1], out=out[i + 1])
        if k % 2:
            p = self.moduli[-1]
            out[-1] = np.array([v % p for v in big], dtype=np.int64)
        return out

    def compose(self, residues: np.ndarray) -> List[int]:
        """Residue matrix ``(k, n)`` → canonical integers in ``[0, q)``.

        When the composed modulus fits the int64-exactness envelope the whole
        CRT sum runs vectorized (each term ``scaled_i * q_i < q < 2**62`` and
        partial sums stay below ``2q < 2**63``).  Wider bases pair-fold:
        ``scaled_i*q_i + scaled_j*q_j = Q_g * (scaled_i*p_j + scaled_j*p_i)``
        with ``Q_g = q/(p_i p_j)``, so the inner combination is one int64
        vector op and only one big-integer multiply per element per *pair*.
        """
        if residues.shape[0] != len(self.moduli):
            raise ValueError(
                f"residue matrix has {residues.shape[0]} rows, base has {len(self.moduli)}"
            )
        q = self.modulus
        n = residues.shape[1]
        scaled = np.mod(
            residues.astype(np.int64) * self._punctured_inv_col, self.moduli_col
        )
        if self.bit_size <= 62:
            acc = np.zeros(n, dtype=np.int64)
            for row, q_i in zip(scaled, self._punctured):
                acc += row * np.int64(q_i)
                np.mod(acc, np.int64(q), out=acc)
            return [int(v) for v in acc]
        k = len(self.moduli)
        acc = [0] * n
        for i in range(0, k - 1, 2):
            p_i, p_j = self.moduli[i], self.moduli[i + 1]
            group = q // (p_i * p_j)
            inner = scaled[i] * np.int64(p_j) + scaled[i + 1] * np.int64(p_i)
            for j in range(n):
                acc[j] += group * int(inner[j])
        if k % 2:
            q_last = self._punctured[-1]
            last = scaled[-1]
            for j in range(n):
                acc[j] += q_last * int(last[j])
        return [v % q for v in acc]

    def compose_centered(self, residues: np.ndarray) -> List[int]:
        """Like :meth:`compose` but mapped to the centered range (−q/2, q/2]."""
        q = self.modulus
        half = q // 2
        return [v - q if v > half else v for v in self.compose(residues)]

    def fractional_positions(self, residues: np.ndarray) -> np.ndarray:
        """Floating-point estimate of ``x/q`` in ``[0, 1)`` per coefficient.

        For residues of shape ``(..., k, n)`` returns ``(..., n)`` floats.
        CRT gives ``x = sum_i [x_i * (q/p_i)^{-1} mod p_i] * q/p_i  (mod q)``,
        so ``x/q = frac(sum_i y_i / p_i)`` with ``y_i`` the bracketed terms.
        Each float division and the sum are accurate to ``~k * 2**-53``, good
        enough to locate a coefficient within the modulus up to a vanishing
        boundary band (callers guard that band and fall back to exact CRT).
        """
        y = self._y_residues(residues)
        f = (y * self._recip_moduli_col).sum(axis=-2)
        return f - np.floor(f)

    def _y_residues(self, residues: np.ndarray) -> np.ndarray:
        """``y_i = x_i * (q/p_i)^{-1} mod p_i`` for canonical residues.

        The CRT reconstruction coefficients shared by the float estimators
        and the RNS decrypt scaling.  For library-sized moduli (< 2**30) the
        mul-mod uses Shoup's precomputed quotient — ``q = (x * floor(c *
        2**32 / p)) >> 32``; ``x*c - q*p`` lands in ``[0, 2p)`` — plus one
        conditional subtract, replacing the division-based ``np.mod`` pass.
        Inputs must be canonical (``[0, p)`` rows, the :class:`RnsPoly`
        invariant); the result is bit-identical either way.
        """
        shoup = self._punctured_inv_shoup_col
        if shoup is None:
            return np.mod(residues * self._punctured_inv_col, self.moduli_col)
        q_est = (residues * shoup) >> 32
        q_est *= self.moduli_col
        y = residues * self._punctured_inv_col
        y -= q_est
        # Unsigned-minimum conditional subtract: y - p wraps above 2**63 for
        # y < p, so the elementwise minimum reduces [0, 2p) -> [0, p).
        yu = y.view(np.uint64)
        np.minimum(yu, yu - self.moduli_col.view(np.uint64), out=yu)
        return y

    def scale_and_round_mod(
        self,
        residues: np.ndarray,
        t: int,
        guard: float = SCALE_ROUND_GUARD,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized ``round(t * x / q) mod t`` without big integers.

        The SEAL-style RNS decrypt scaling: with ``y_i = x_i * (q/p_i)^{-1}
        mod p_i`` the exact identity ``t*x/q = sum_i t*y_i/p_i - t*v`` holds
        for some integer ``v`` (the CRT overflow), and ``t*v ≡ 0 (mod t)``
        drops out of the result.  Splitting ``t*y_i = quot_i*p_i + rem_i``
        keeps every product inside int64 (``y_i < p_i < 2**30`` and
        ``t < 2**31``), leaving only the fractional correction
        ``floor(sum_i rem_i/p_i + 1/2)`` to float arithmetic.

        Rounding is half-up, which on canonical (non-negative) ``x`` matches
        :func:`scale_and_round`'s half-away-from-zero.  Since ``q`` is odd
        (product of odd NTT primes), ``t*x/q`` is never exactly half-integral,
        so the rounded value is well defined; *guard* flags coefficients whose
        correction sum lands within the float-error band of a rounding
        boundary.

        Returns ``(out, unsafe)`` where ``out`` has shape ``(..., n)`` for
        ``(..., k, n)`` input and ``unsafe`` marks coefficients the caller
        must recompute via the exact big-integer path.  If ``t`` is too wide
        for the int64 envelope the whole call is flagged unsafe.
        """
        t = int(t)
        shape = residues.shape[:-2] + residues.shape[-1:]
        if t.bit_length() + max(self.moduli).bit_length() > 62:
            return (np.zeros(shape, dtype=np.int64),
                    np.ones(shape, dtype=bool))
        # _y_residues returns a fresh array, so the scaling below runs in
        # place on it — w = t*y is int64-exact inside the 62-bit envelope.
        w = self._y_residues(residues)
        w *= np.int64(t)
        if t.bit_length() + max(self.moduli).bit_length() <= 52:
            # w is float64-exact, so one reciprocal multiply estimates the
            # quotient to within ±1 and an exact int64 remainder check pins
            # it — an order of magnitude cheaper than int64 floor-division.
            # The ±1 fixups are masked in-place ops (no bool-arithmetic
            # temporaries); values are identical to exact floor division.
            quot = (w * self._recip_moduli_col).astype(np.int64)
            rem = w
            rem -= quot * self.moduli_col
            pcol = np.broadcast_to(self.moduli_col, rem.shape)
            over = rem >= pcol
            np.add(quot, 1, out=quot, where=over)
            np.subtract(rem, pcol, out=rem, where=over)
            np.less(rem, 0, out=over)
            np.subtract(quot, 1, out=quot, where=over)
            np.add(rem, pcol, out=rem, where=over)
        else:
            quot = w // self.moduli_col
            rem = w - quot * self.moduli_col
        int_part = np.mod(quot.sum(axis=-2), np.int64(t))
        shifted = (rem * self._recip_moduli_col).sum(axis=-2) + 0.5
        out = np.mod(int_part + np.floor(shifted).astype(np.int64), np.int64(t))
        unsafe = np.abs(shifted - np.round(shifted)) < guard
        return out, unsafe

    def _small_prefix(self) -> "RnsBase":
        """Largest prefix sub-base whose product fits the int64 envelope.

        Cached; used by :meth:`compose_centered_small` to recover small
        centered values exactly without big integers.
        """
        cached = getattr(self, "_small_prefix_base", None)
        if cached is not None:
            return cached
        product, count = 1, 0
        for p in self.moduli:
            if (product * p).bit_length() > 62:
                break
            product *= p
            count += 1
        sub = self if count == len(self.moduli) else RnsBase(self.moduli[:count])
        self._small_prefix_base = sub
        return sub

    def _compose_array62(self, residues: np.ndarray) -> np.ndarray:
        """Vectorized canonical CRT for bases with ``bit_size <= 62``.

        ``(..., k, n)`` residues → ``(..., n)`` int64 values in ``[0, q)``.
        Each term ``scaled_i * (q/p_i) < q < 2**62`` and partial sums stay
        below ``2q < 2**63``, so the accumulation is int64-exact.
        """
        if self.bit_size > 62:
            raise ValueError("base too wide for the vectorized int64 compose")
        scaled = np.mod(residues * self._punctured_inv_col, self.moduli_col)
        acc = np.zeros(residues.shape[:-2] + residues.shape[-1:], dtype=np.int64)
        for row, q_i in enumerate(self._punctured):
            acc += scaled[..., row, :] * np.int64(q_i)
            np.mod(acc, np.int64(self.modulus), out=acc)
        return acc

    def compose_centered_small(
        self, residues: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact centered CRT values for coefficients known to be small.

        A centered value ``x`` with ``|x| < P/2`` for ``P`` the product of a
        prefix sub-base is fully determined by its residues modulo that
        prefix, so it composes exactly in vectorized int64 arithmetic.  A
        float estimate of ``|x|`` (via :meth:`fractional_positions`) selects
        which coefficients qualify, with a 2x safety margin that dwarfs the
        estimate's error.

        Returns ``(values, unsafe)`` of shapes ``(..., n)``; ``values`` is
        int64 and only valid where ``unsafe`` is False — the caller resolves
        flagged coefficients via the exact big-integer path.
        """
        sub = self._small_prefix()
        vals = sub._compose_array62(residues[..., :len(sub), :])
        half = sub.modulus >> 1
        vals = np.where(vals > half, vals - np.int64(sub.modulus), vals)
        if sub is self or len(sub) == len(self.moduli):
            return vals, np.zeros(vals.shape, dtype=bool)
        f = self.fractional_positions(residues)
        magnitude = np.minimum(f, 1.0 - f) * float(self.modulus)
        unsafe = magnitude >= float(sub.modulus) / 4.0
        return vals, unsafe


def scale_and_round(values: Sequence[int], numerator: int, denominator: int) -> List[int]:
    """Exact ``round(v * numerator / denominator)`` for big integers.

    Rounds half away from zero, matching SEAL's BFV scaling convention.
    """
    out = []
    for v in values:
        num = int(v) * numerator
        if num >= 0:
            out.append((2 * num + denominator) // (2 * denominator))
        else:
            out.append(-((-2 * num + denominator) // (2 * denominator)))
    return out


def centered_mod(value: int, modulus: int) -> int:
    """``value mod modulus`` mapped to (−modulus/2, modulus/2]."""
    r = int(value) % modulus
    return r - modulus if r > modulus // 2 else r
