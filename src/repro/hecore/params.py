"""HE parameter sets: security, moduli, and ciphertext-size accounting.

Reproduces Table 2 (the parameters of an HE scheme), Table 3 (CHOCO's chosen
parameter sets A/B/C with their ciphertext sizes), and the SEAL-default
parameters used by the paper's baselines.

Two views of the coefficient modulus coexist:

* **Logical** bits (``logical_coeff_bits``) — the published ``{k}`` column.
  Sizes and accelerator accounting use the logical residue count ``k`` with
  8-byte words, exactly as the paper does: a fresh ciphertext is
  ``s * (k - 1) * N * 8`` bytes (the key prime never travels).
* **Computational** moduli — word-sized primes with the *same total bit
  width* as the logical data modulus, used by the functional scheme
  (DESIGN.md documents the 60-bit→30-bit limb substitution).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hecore.primes import generate_ntt_primes, is_prime
from repro.hecore.rns import RnsBase

#: Bytes per encrypted coefficient word (`w` in Table 2).
WORD_BYTES = 8

#: Maximum total coefficient-modulus bits for 128-bit security, per the
#: Homomorphic Encryption Standard (the table SEAL enforces).
MAX_COEFF_MODULUS_BITS_128 = {
    1024: 27,
    2048: 54,
    4096: 109,
    8192: 218,
    16384: 438,
    32768: 881,
}

#: SEAL's default coefficient modulus bit decompositions at 128-bit security,
#: used by the paper's software baselines ("SEAL's default parameters").
SEAL_DEFAULT_COEFF_BITS: Dict[int, Tuple[int, ...]] = {
    2048: (54,),
    4096: (36, 36, 37),
    8192: (43, 43, 44, 44, 44),
    16384: (48, 48, 48, 49, 49, 49, 49, 49, 49),
    32768: tuple([55] * 15 + [56]),
}

#: Width of the computational limbs substituted for SEAL's 60-bit limbs.
COMPUTE_LIMB_MAX_BITS = 30

#: Number of word-sized special primes whose product plays the role of
#: SEAL's single large key prime during key switching.
SPECIAL_PRIME_COUNT = 2


class SchemeType(enum.Enum):
    """The two vector HE schemes CHOCO targets."""

    BFV = "bfv"
    CKKS = "ckks"


def _split_bits(total: int, limb_max: int) -> List[int]:
    """Split *total* bits into near-equal limbs of at most *limb_max* bits."""
    count = max(1, math.ceil(total / limb_max))
    base = total // count
    remainder = total - base * count
    sizes = [base + 1 if i < remainder else base for i in range(count)]
    if min(sizes) < 4:
        raise ValueError(f"cannot split {total} bits into sane limbs")
    return sizes


def _generate_limb_primes(bit_sizes: Sequence[int], poly_degree: int) -> List[int]:
    """Distinct NTT-friendly primes matching the requested bit sizes."""
    primes: List[int] = []
    by_size: Dict[int, int] = {}
    for b in bit_sizes:
        by_size[b] = by_size.get(b, 0) + 1
    pool: Dict[int, List[int]] = {
        b: generate_ntt_primes(b, n, poly_degree) for b, n in by_size.items()
    }
    for b in bit_sizes:
        primes.append(pool[b].pop(0))
    return primes


def generate_primes_near(target: int, count: int, poly_degree: int,
                         exclude: Sequence[int] = ()) -> List[int]:
    """NTT-friendly primes as close as possible to *target* (CKKS rescaling)."""
    step = 2 * poly_degree
    start = target - ((target - 1) % step)
    primes: List[int] = []
    excluded = set(exclude)
    offset = 0
    while len(primes) < count:
        for candidate in (start + offset, start - offset) if offset else (start,):
            if candidate in excluded or candidate in primes:
                continue
            if 2 < candidate < (1 << 31) and is_prime(candidate):
                primes.append(candidate)
                if len(primes) == count:
                    break
        offset += step
        if offset > target:
            raise ValueError(f"could not find {count} primes near {target}")
    return primes


@dataclass(frozen=True)
class EncryptionParameters:
    """A complete, validated HE parameter selection.

    Instances are built through :meth:`create`, which derives the plaintext
    modulus, the computational RNS bases, and the CKKS scale.
    """

    scheme: SchemeType
    poly_degree: int
    logical_coeff_bits: Tuple[int, ...]
    plain_bits: Optional[int] = None           # BFV only (log2 t)
    scale_bits: Optional[int] = None           # CKKS only
    label: str = ""
    plain_modulus: int = field(default=0, compare=False)
    data_base: RnsBase = field(default=None, compare=False, repr=False)
    full_base: RnsBase = field(default=None, compare=False, repr=False)
    scale: float = field(default=0.0, compare=False)

    # ------------------------------------------------------------ factory
    @classmethod
    def create(
        cls,
        scheme: SchemeType,
        poly_degree: int,
        logical_coeff_bits: Sequence[int],
        plain_bits: Optional[int] = None,
        scale_bits: Optional[int] = None,
        label: str = "",
        enforce_security: bool = True,
        special_prime_count: int = SPECIAL_PRIME_COUNT,
    ) -> "EncryptionParameters":
        if poly_degree & (poly_degree - 1) or poly_degree < 8:
            raise ValueError(f"poly_degree {poly_degree} must be a power of two >= 8")
        logical = tuple(int(b) for b in logical_coeff_bits)
        if len(logical) < 2:
            raise ValueError("need at least one data prime and one key prime")
        total_bits = sum(logical)
        if enforce_security:
            limit = MAX_COEFF_MODULUS_BITS_128.get(poly_degree)
            if limit is None or total_bits > limit:
                raise ValueError(
                    f"log2(q)={total_bits} exceeds the 128-bit security limit "
                    f"{limit} for N={poly_degree}"
                )
        data_bits = sum(logical[:-1])

        if scheme is SchemeType.BFV:
            if plain_bits is None:
                raise ValueError("BFV requires plain_bits")
            plain_modulus = generate_ntt_primes(plain_bits, 1, poly_degree)[0]
            limb_sizes = _split_bits(data_bits, COMPUTE_LIMB_MAX_BITS)
            data_primes = _generate_limb_primes(limb_sizes, poly_degree)
            scale = 0.0
        elif scheme is SchemeType.CKKS:
            if scale_bits is None:
                scale_bits = 28
            plain_modulus = 0
            plain_bits = None
            scale = float(1 << scale_bits)
            base_prime_bits = min(COMPUTE_LIMB_MAX_BITS, data_bits)
            levels = max(1, round((data_bits - base_prime_bits) / scale_bits))
            base_prime = generate_ntt_primes(base_prime_bits, 1, poly_degree)[0]
            rescale = generate_primes_near(
                1 << scale_bits, levels, poly_degree, exclude=[base_prime]
            )
            data_primes = [base_prime] + rescale
        else:
            raise ValueError(f"unknown scheme {scheme}")

        special = generate_ntt_primes(COMPUTE_LIMB_MAX_BITS, special_prime_count + 4,
                                      poly_degree)
        special = [p for p in special if p not in data_primes][:special_prime_count]
        data_base = RnsBase(data_primes)
        full_base = RnsBase(data_primes + special)
        return cls(
            scheme=scheme,
            poly_degree=poly_degree,
            logical_coeff_bits=logical,
            plain_bits=plain_bits,
            scale_bits=scale_bits,
            label=label,
            plain_modulus=plain_modulus,
            data_base=data_base,
            full_base=full_base,
            scale=scale,
        )

    # --------------------------------------------------------- accounting
    @property
    def logical_residue_count(self) -> int:
        """`k` in Table 2: number of logical coprime moduli."""
        return len(self.logical_coeff_bits)

    @property
    def logical_data_residues(self) -> int:
        """Residues a ciphertext carries (the key prime is dropped): k − 1."""
        return self.logical_residue_count - 1

    @property
    def total_coeff_bits(self) -> int:
        """Published log2(q) including the key prime."""
        return sum(self.logical_coeff_bits)

    def ciphertext_bytes(self, components: int = 2) -> int:
        """Serialized fresh ciphertext size (Table 3, `Size (Bytes)` column)."""
        return components * self.logical_data_residues * self.poly_degree * WORD_BYTES

    def plaintext_bytes(self) -> int:
        """Size of one packed plaintext vector."""
        return self.poly_degree * WORD_BYTES

    @property
    def slot_count(self) -> int:
        """SIMD slots per ciphertext (N for BFV batching, N/2 for CKKS)."""
        if self.scheme is SchemeType.CKKS:
            return self.poly_degree // 2
        return self.poly_degree

    @property
    def special_primes(self) -> Tuple[int, ...]:
        return self.full_base.moduli[len(self.data_base):]

    def describe(self) -> str:
        """One-line summary in the paper's Table 3 format."""
        t = f"log2 t={self.plain_bits}" if self.scheme is SchemeType.BFV else "t=N/A"
        return (
            f"{self.label or 'params'}: {self.scheme.value.upper()} N={self.poly_degree} "
            f"log2 q={self.total_coeff_bits} {{k}}={list(self.logical_coeff_bits)} {t} "
            f"size={self.ciphertext_bytes()} B"
        )


def _make_preset(label, scheme, n, bits, plain_bits=None, scale_bits=None):
    return EncryptionParameters.create(
        scheme, n, bits, plain_bits=plain_bits, scale_bits=scale_bits, label=label
    )


#: Table 3, label A: BFV, N=8192, log2 q=175 {58,58,59}, log2 t=23, 262144 B.
PARAMETER_SET_A = _make_preset("A", SchemeType.BFV, 8192, (58, 58, 59), plain_bits=23)

#: Table 3, label B: BFV, N=4096, log2 q=109 {36,36,37}, log2 t=18, 131072 B.
PARAMETER_SET_B = _make_preset("B", SchemeType.BFV, 4096, (36, 36, 37), plain_bits=18)

#: Table 3, label C: CKKS, N=8192, log2 q=140 {60,60,60}, 262144 B.
PARAMETER_SET_C = _make_preset("C", SchemeType.CKKS, 8192, (60, 60, 60), scale_bits=28)


def seal_default_parameters(
    poly_degree: int, scheme: SchemeType = SchemeType.BFV, plain_bits: int = 20
) -> EncryptionParameters:
    """SEAL's default 128-bit parameters — the paper's baseline selection."""
    bits = SEAL_DEFAULT_COEFF_BITS.get(poly_degree)
    if bits is None:
        raise ValueError(f"no SEAL default for N={poly_degree}")
    if scheme is SchemeType.BFV:
        return EncryptionParameters.create(
            scheme, poly_degree, bits, plain_bits=plain_bits, label=f"SEAL-{poly_degree}"
        )
    return EncryptionParameters.create(
        scheme, poly_degree, bits, scale_bits=28, label=f"SEAL-{poly_degree}-ckks"
    )


def small_test_parameters(
    scheme: SchemeType = SchemeType.BFV,
    poly_degree: int = 1024,
    plain_bits: int = 16,
    data_bits: Tuple[int, ...] = (27,),
) -> EncryptionParameters:
    """Small, fast parameters for unit tests (NOT secure; N is tiny)."""
    bits = tuple(data_bits) + (30,)
    return EncryptionParameters.create(
        scheme,
        poly_degree,
        bits,
        plain_bits=plain_bits if scheme is SchemeType.BFV else None,
        scale_bits=24 if scheme is SchemeType.CKKS else None,
        label="test",
        enforce_security=False,
    )
