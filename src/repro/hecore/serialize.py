"""Binary serialization for ciphertexts and public keys.

The paper's communication costs are serialized-ciphertext bytes; this module
provides the actual wire format so byte counts are measurable, not just
modeled.  Two representations exist:

* **full** — every polynomial component, 8 bytes per (residue, coefficient);
* **seed-compressed** — for fresh symmetric ciphertexts, only ``c0`` plus
  the 32-byte seed of the uniform component (the receiver regenerates
  ``c1``), halving upload sizes.

Format (little-endian):

    magic "CHOC" | version u8 | scheme u8 | flags u8 | n_components u8
    poly_degree u32 | scale f64 | n_moduli u8 | moduli u64[n]
    [seed: 32 bytes, if flag SEEDED]
    component data: int64[n_moduli * poly_degree] per stored component
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

from repro.hecore.ciphertext import Ciphertext
from repro.hecore.keys import PublicKey, expand_uniform_poly
from repro.hecore.params import EncryptionParameters, SchemeType
from repro.hecore.polyring import RnsPoly
from repro.hecore.rns import RnsBase

MAGIC = b"CHOC"
VERSION = 1

_FLAG_SEEDED = 1
_FLAG_NTT = 2

_SCHEME_CODES = {SchemeType.BFV: 0, SchemeType.CKKS: 1}
_SCHEME_FROM_CODE = {v: k for k, v in _SCHEME_CODES.items()}

_HEADER = struct.Struct("<4sBBBBIdB")


def serialize_ciphertext(ct: Ciphertext, compress_seed: bool = True) -> bytes:
    """Serialize a ciphertext, seed-compressing when possible."""
    seeded = compress_seed and ct.seed is not None and len(ct.components) == 2
    flags = (_FLAG_SEEDED if seeded else 0) | (_FLAG_NTT if ct.is_ntt else 0)
    moduli = ct.level_base.moduli
    parts = [_HEADER.pack(
        MAGIC, VERSION, _SCHEME_CODES[ct.params.scheme], flags,
        len(ct.components), ct.params.poly_degree, float(ct.scale),
        len(moduli),
    )]
    parts.append(struct.pack(f"<{len(moduli)}Q", *moduli))
    if seeded:
        if len(ct.seed) != 32:
            raise ValueError("seed must be 32 bytes")
        parts.append(ct.seed)
        stored = ct.components[:1]
    else:
        stored = ct.components
    for comp in stored:
        parts.append(comp.data.astype("<i8").tobytes())
    return b"".join(parts)


def deserialize_ciphertext(blob: bytes,
                           params: EncryptionParameters) -> Ciphertext:
    """Reconstruct a ciphertext serialized by :func:`serialize_ciphertext`."""
    magic, version, scheme_code, flags, n_components, degree, scale, n_moduli = (
        _HEADER.unpack_from(blob, 0)
    )
    if magic != MAGIC:
        raise ValueError("not a CHOCO ciphertext blob")
    if version != VERSION:
        raise ValueError(f"unsupported version {version}")
    scheme = _SCHEME_FROM_CODE[scheme_code]
    if scheme is not params.scheme or degree != params.poly_degree:
        raise ValueError("blob does not match the supplied parameters")
    offset = _HEADER.size
    moduli = struct.unpack_from(f"<{n_moduli}Q", blob, offset)
    offset += 8 * n_moduli
    base = RnsBase(moduli)

    seed: Optional[bytes] = None
    if flags & _FLAG_SEEDED:
        seed = blob[offset: offset + 32]
        offset += 32
        stored_count = n_components - 1
    else:
        stored_count = n_components

    is_ntt = bool(flags & _FLAG_NTT)
    components = []
    row_bytes = 8 * n_moduli * degree
    for _ in range(stored_count):
        data = np.frombuffer(blob, dtype="<i8", count=n_moduli * degree,
                             offset=offset).reshape(n_moduli, degree)
        offset += row_bytes
        components.append(RnsPoly(base, degree, data.astype(np.int64),
                                  is_ntt=is_ntt))
    if offset != len(blob):
        raise ValueError("trailing bytes in ciphertext blob")

    if seed is not None:
        c1 = expand_uniform_poly(seed, base, degree)
        components.append(c1.to_ntt() if is_ntt else c1)
    return Ciphertext(params, components, scale=scale, seed=seed)


def serialize_public_key(pk: PublicKey) -> bytes:
    """Serialize a public key (both components over the full base, NTT)."""
    p0, p1 = pk.p0, pk.p1
    moduli = p0.base.moduli
    parts = [struct.pack("<4sBIB", MAGIC, VERSION, p0.degree, len(moduli))]
    parts.append(struct.pack(f"<{len(moduli)}Q", *moduli))
    parts.append(p0.data.astype("<i8").tobytes())
    parts.append(p1.data.astype("<i8").tobytes())
    return b"".join(parts)


def deserialize_public_key(blob: bytes) -> PublicKey:
    magic, version, degree, n_moduli = struct.unpack_from("<4sBIB", blob, 0)
    if magic != MAGIC or version != VERSION:
        raise ValueError("not a CHOCO public-key blob")
    offset = struct.calcsize("<4sBIB")
    moduli = struct.unpack_from(f"<{n_moduli}Q", blob, offset)
    offset += 8 * n_moduli
    base = RnsBase(moduli)
    polys = []
    for _ in range(2):
        data = np.frombuffer(blob, dtype="<i8", count=n_moduli * degree,
                             offset=offset).reshape(n_moduli, degree)
        offset += 8 * n_moduli * degree
        polys.append(RnsPoly(base, degree, data.astype(np.int64), is_ntt=True))
    return PublicKey(polys[0], polys[1])


def serialized_size(ct: Ciphertext, compress_seed: bool = True) -> int:
    """Exact wire size without materializing the blob."""
    seeded = compress_seed and ct.seed is not None and len(ct.components) == 2
    n_moduli = len(ct.level_base)
    header = _HEADER.size + 8 * n_moduli + (32 if seeded else 0)
    stored = 1 if seeded else len(ct.components)
    return header + stored * 8 * n_moduli * ct.params.poly_degree
