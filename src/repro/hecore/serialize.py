"""Binary serialization for ciphertexts, public keys, and evaluation keys.

The paper's communication costs are serialized-ciphertext bytes; this module
provides the actual wire format so byte counts are measurable, not just
modeled.  Two ciphertext representations exist:

* **full** — every polynomial component, 8 bytes per (residue, coefficient);
* **seed-compressed** — for fresh symmetric ciphertexts, only ``c0`` plus
  the 32-byte seed of the uniform component (the receiver regenerates
  ``c1``), halving upload sizes.

Ciphertext format (little-endian):

    magic "CHOC" | version u8 | scheme u8 | flags u8 | n_components u8
    poly_degree u32 | scale f64 | n_moduli u8 | moduli u64[n]
    [seed: 32 bytes, if flag SEEDED]
    component data: int64[n_moduli * poly_degree] per stored component

Evaluation keys (relinearization and Galois) serialize the full SEAL-style
digit decomposition over the data+special base; a real offload server needs
them on the wire once per key lifetime (the offline phase of
``docs/PROTOCOL.md``).

Every deserializer validates magic, version, declared counts, and the exact
blob length *before* touching numpy, and — when parameters are supplied —
checks the declared moduli against them.  Malformed input raises
:class:`ValueError`; it never crashes in low-level array code.
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

from repro.hecore.ciphertext import Ciphertext
from repro.hecore.keys import (
    GaloisKeys,
    KeySwitchKey,
    PublicKey,
    RelinKeys,
    expand_uniform_poly,
)
from repro.hecore.params import EncryptionParameters, SchemeType
from repro.hecore.polyring import RnsPoly
from repro.hecore.rns import RnsBase

MAGIC = b"CHOC"
VERSION = 1

_FLAG_SEEDED = 1
_FLAG_NTT = 2

_SCHEME_CODES = {SchemeType.BFV: 0, SchemeType.CKKS: 1}
_SCHEME_FROM_CODE = {v: k for k, v in _SCHEME_CODES.items()}

_HEADER = struct.Struct("<4sBBBBIdB")

#: Ciphertexts carry at most three components (pre-relinearization product).
_MAX_COMPONENTS = 3

# Key blobs: magic, version, kind, poly_degree, n_moduli.
_KEY_HEADER = struct.Struct("<4sBBIB")
_KIND_PUBLIC = 1
_KIND_RELIN = 2
_KIND_GALOIS = 3


def serialize_ciphertext(ct: Ciphertext, compress_seed: bool = True) -> bytes:
    """Serialize a ciphertext, seed-compressing when possible."""
    seeded = compress_seed and ct.seed is not None and len(ct.components) == 2
    flags = (_FLAG_SEEDED if seeded else 0) | (_FLAG_NTT if ct.is_ntt else 0)
    moduli = ct.level_base.moduli
    parts = [_HEADER.pack(
        MAGIC, VERSION, _SCHEME_CODES[ct.params.scheme], flags,
        len(ct.components), ct.params.poly_degree, float(ct.scale),
        len(moduli),
    )]
    parts.append(struct.pack(f"<{len(moduli)}Q", *moduli))
    if seeded:
        if len(ct.seed) != 32:
            raise ValueError("seed must be 32 bytes")
        parts.append(ct.seed)
        stored = ct.components[:1]
    else:
        stored = ct.components
    for comp in stored:
        parts.append(comp.data.astype("<i8").tobytes())
    return b"".join(parts)


def deserialize_ciphertext(blob: bytes,
                           params: EncryptionParameters) -> Ciphertext:
    """Reconstruct a ciphertext serialized by :func:`serialize_ciphertext`.

    Validation is strict: the blob's magic, version, scheme, degree,
    component count, moduli (which must be a prefix of the parameter set's
    data base — ciphertexts only shed residues from the top), and its exact
    length are all checked before any array is built.
    """
    if len(blob) < _HEADER.size:
        raise ValueError("ciphertext blob shorter than its header")
    magic, version, scheme_code, flags, n_components, degree, scale, n_moduli = (
        _HEADER.unpack_from(blob, 0)
    )
    if magic != MAGIC:
        raise ValueError("not a CHOCO ciphertext blob")
    if version != VERSION:
        raise ValueError(f"unsupported version {version}")
    scheme = _SCHEME_FROM_CODE.get(scheme_code)
    if scheme is None:
        raise ValueError(f"unknown scheme code {scheme_code}")
    if scheme is not params.scheme or degree != params.poly_degree:
        raise ValueError("blob does not match the supplied parameters")
    if not 1 <= n_components <= _MAX_COMPONENTS:
        raise ValueError(f"implausible component count {n_components}")
    data_moduli = params.data_base.moduli
    if not 1 <= n_moduli <= len(data_moduli):
        raise ValueError(f"implausible modulus count {n_moduli}")

    seeded = bool(flags & _FLAG_SEEDED)
    if seeded and n_components != 2:
        raise ValueError("seed compression applies only to 2-component "
                         "ciphertexts")
    stored_count = n_components - 1 if seeded else n_components

    offset = _HEADER.size
    expected = (offset + 8 * n_moduli + (32 if seeded else 0)
                + stored_count * 8 * n_moduli * degree)
    if len(blob) != expected:
        raise ValueError(
            f"ciphertext blob is {len(blob)} bytes, expected {expected} "
            f"(truncated or trailing bytes)"
        )
    moduli = struct.unpack_from(f"<{n_moduli}Q", blob, offset)
    offset += 8 * n_moduli
    if moduli != data_moduli[:n_moduli]:
        raise ValueError("blob moduli do not match the supplied parameters")
    base = RnsBase(moduli)

    seed: Optional[bytes] = None
    if seeded:
        seed = blob[offset: offset + 32]
        offset += 32

    is_ntt = bool(flags & _FLAG_NTT)
    components = []
    row_bytes = 8 * n_moduli * degree
    for _ in range(stored_count):
        data = np.frombuffer(blob, dtype="<i8", count=n_moduli * degree,
                             offset=offset).reshape(n_moduli, degree)
        offset += row_bytes
        components.append(RnsPoly(base, degree, data.astype(np.int64),
                                  is_ntt=is_ntt))

    if seed is not None:
        c1 = expand_uniform_poly(seed, base, degree)
        components.append(c1.to_ntt() if is_ntt else c1)
    return Ciphertext(params, components, scale=scale, seed=seed)


# ---------------------------------------------------------------------------
# Public keys
# ---------------------------------------------------------------------------

def serialize_public_key(pk: PublicKey) -> bytes:
    """Serialize a public key (both components over the full base, NTT)."""
    p0, p1 = pk.p0, pk.p1
    moduli = p0.base.moduli
    parts = [_KEY_HEADER.pack(MAGIC, VERSION, _KIND_PUBLIC, p0.degree,
                              len(moduli))]
    parts.append(struct.pack(f"<{len(moduli)}Q", *moduli))
    parts.append(p0.data.astype("<i8").tobytes())
    parts.append(p1.data.astype("<i8").tobytes())
    return b"".join(parts)


def _read_key_header(blob: bytes, kind: int, what: str):
    """Validate a key blob's fixed header; returns (degree, n_moduli)."""
    if len(blob) < _KEY_HEADER.size:
        raise ValueError(f"{what} blob shorter than its header")
    magic, version, blob_kind, degree, n_moduli = _KEY_HEADER.unpack_from(blob, 0)
    if magic != MAGIC or version != VERSION:
        raise ValueError(f"not a CHOCO {what} blob")
    if blob_kind != kind:
        raise ValueError(f"blob is not a {what} (kind {blob_kind})")
    if n_moduli < 1:
        raise ValueError("key blob declares no moduli")
    return degree, n_moduli


def _read_moduli(blob: bytes, offset: int, n_moduli: int):
    if offset + 8 * n_moduli > len(blob):
        raise ValueError("key blob truncated inside its modulus list")
    moduli = struct.unpack_from(f"<{n_moduli}Q", blob, offset)
    return moduli, offset + 8 * n_moduli


def deserialize_public_key(blob: bytes,
                           params: Optional[EncryptionParameters] = None,
                           ) -> PublicKey:
    """Reconstruct a public key, validating it against *params* if given.

    A public key lives over the full (data + special) base; when *params*
    are supplied the blob's degree and moduli must match them exactly —
    the same contract :func:`deserialize_ciphertext` enforces.
    """
    degree, n_moduli = _read_key_header(blob, _KIND_PUBLIC, "public-key")
    moduli, offset = _read_moduli(blob, _KEY_HEADER.size, n_moduli)
    if params is not None:
        if degree != params.poly_degree:
            raise ValueError("public-key degree does not match the supplied "
                             "parameters")
        if moduli != params.full_base.moduli:
            raise ValueError("public-key moduli do not match the supplied "
                             "parameters")
    row_bytes = 8 * n_moduli * degree
    if len(blob) != offset + 2 * row_bytes:
        raise ValueError("public-key blob has a truncated or oversized body")
    base = RnsBase(moduli)
    polys = []
    for _ in range(2):
        data = np.frombuffer(blob, dtype="<i8", count=n_moduli * degree,
                             offset=offset).reshape(n_moduli, degree)
        offset += row_bytes
        polys.append(RnsPoly(base, degree, data.astype(np.int64), is_ntt=True))
    return PublicKey(polys[0], polys[1])


# ---------------------------------------------------------------------------
# Evaluation keys (relinearization / Galois)
# ---------------------------------------------------------------------------

def _pack_ksk(ksk: KeySwitchKey) -> bytes:
    parts = [struct.pack("<B", len(ksk.digits))]
    for k0, k1 in ksk.digits:
        parts.append(k0.data.astype("<i8").tobytes())
        parts.append(k1.data.astype("<i8").tobytes())
    return b"".join(parts)


def _unpack_ksk(blob: bytes, offset: int, base: RnsBase, degree: int,
                expected_digits: int) -> "tuple[KeySwitchKey, int]":
    if offset + 1 > len(blob):
        raise ValueError("key blob truncated before a digit count")
    (n_digits,) = struct.unpack_from("<B", blob, offset)
    offset += 1
    if n_digits != expected_digits:
        raise ValueError(
            f"key-switching key has {n_digits} digits, parameters require "
            f"{expected_digits}"
        )
    n_moduli = len(base)
    row_bytes = 8 * n_moduli * degree
    if offset + 2 * n_digits * row_bytes > len(blob):
        raise ValueError("key blob truncated inside its digit data")
    # Deserialize straight into the stacked cache layout: one contiguous
    # (digits, 2, k, n) block whose slices back the per-digit RnsPolys as
    # views.  The full-level stacked_digits() restriction — what every key
    # switch at the top level (and every hoisted rotation) asks for — is
    # then the block itself, so deserialized keys skip the re-layout copy
    # entirely.
    store = np.frombuffer(
        blob, dtype="<i8", count=2 * n_digits * n_moduli * degree,
        offset=offset,
    ).reshape(n_digits, 2, n_moduli, degree).astype(np.int64)
    offset += 2 * n_digits * row_bytes
    digits = [
        (RnsPoly(base, degree, store[d, 0], is_ntt=True),
         RnsPoly(base, degree, store[d, 1], is_ntt=True))
        for d in range(n_digits)
    ]
    ksk = KeySwitchKey(digits)
    ksk._stacked[(tuple(range(n_moduli)), n_digits)] = store
    return ksk, offset


def _key_preamble(kind: int, params_like: RnsPoly) -> "list[bytes]":
    moduli = params_like.base.moduli
    return [
        _KEY_HEADER.pack(MAGIC, VERSION, kind, params_like.degree, len(moduli)),
        struct.pack(f"<{len(moduli)}Q", *moduli),
    ]


def serialize_relin_key(rk: RelinKeys) -> bytes:
    """Serialize a relinearization key (all digits over the full base)."""
    parts = _key_preamble(_KIND_RELIN, rk.digits[0][0])
    parts.append(_pack_ksk(rk))
    return b"".join(parts)


def _validate_key_base(moduli, degree: int, params: EncryptionParameters,
                       what: str) -> RnsBase:
    if degree != params.poly_degree:
        raise ValueError(f"{what} degree does not match the supplied "
                         f"parameters")
    if moduli != params.full_base.moduli:
        raise ValueError(f"{what} moduli do not match the supplied parameters")
    return params.full_base


def deserialize_relin_key(blob: bytes,
                          params: EncryptionParameters) -> RelinKeys:
    degree, n_moduli = _read_key_header(blob, _KIND_RELIN, "relinearization-key")
    moduli, offset = _read_moduli(blob, _KEY_HEADER.size, n_moduli)
    base = _validate_key_base(moduli, degree, params, "relinearization-key")
    ksk, offset = _unpack_ksk(blob, offset, base, degree,
                              len(params.data_base))
    if offset != len(blob):
        raise ValueError("trailing bytes in relinearization-key blob")
    return RelinKeys(ksk.digits)


def serialize_galois_keys(gk: GaloisKeys) -> bytes:
    """Serialize a Galois key set: ``(galois_elt, key)`` pairs."""
    if not gk.keys:
        raise ValueError("cannot serialize an empty Galois key set")
    sample = next(iter(gk.keys.values())).digits[0][0]
    parts = _key_preamble(_KIND_GALOIS, sample)
    parts.append(struct.pack("<H", len(gk.keys)))
    for elt in sorted(gk.keys):
        parts.append(struct.pack("<I", elt))
        parts.append(_pack_ksk(gk.keys[elt]))
    return b"".join(parts)


def deserialize_galois_keys(blob: bytes,
                            params: EncryptionParameters) -> GaloisKeys:
    degree, n_moduli = _read_key_header(blob, _KIND_GALOIS, "Galois-key")
    moduli, offset = _read_moduli(blob, _KEY_HEADER.size, n_moduli)
    base = _validate_key_base(moduli, degree, params, "Galois-key")
    if offset + 2 > len(blob):
        raise ValueError("Galois-key blob truncated before its key count")
    (n_keys,) = struct.unpack_from("<H", blob, offset)
    offset += 2
    if n_keys < 1:
        raise ValueError("Galois-key blob declares no keys")
    keys = {}
    for _ in range(n_keys):
        if offset + 4 > len(blob):
            raise ValueError("Galois-key blob truncated before an element id")
        (elt,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        if elt < 3 or elt >= 2 * degree or elt % 2 == 0:
            raise ValueError(f"invalid Galois element {elt}")
        if elt in keys:
            raise ValueError(f"duplicate Galois element {elt}")
        keys[elt], offset = _unpack_ksk(blob, offset, base, degree,
                                        len(params.data_base))
    if offset != len(blob):
        raise ValueError("trailing bytes in Galois-key blob")
    return GaloisKeys(keys)


# ---------------------------------------------------------------------------
# Parameter specs (for rebuilding contexts in other processes)
# ---------------------------------------------------------------------------

#: Parameter-spec blobs: magic, version, scheme, poly_degree, plain_bits
#: (-1 when absent), scale_bits (-1 when absent), n_logical, n_special.
_PARAMS_MAGIC = b"CHOP"
_PARAMS_HEADER = struct.Struct("<4sBBIhhBB")


def serialize_params(params: EncryptionParameters) -> bytes:
    """Serialize the *spec* of a parameter set, not its derived material.

    :meth:`EncryptionParameters.create` derives the plaintext modulus, the
    RNS bases, and the CKKS scale deterministically from the spec, so a
    worker process that re-runs ``create`` on the deserialized spec gets
    bit-identical moduli — the fleet runtime ships this blob instead of
    pickling live parameter objects (or, worse, live contexts).
    """
    label = params.label.encode("utf-8")
    if len(label) > 0xFFFF:
        raise ValueError("parameter label exceeds 64 KiB")
    logical = params.logical_coeff_bits
    if len(logical) > 0xFF:
        raise ValueError("too many logical moduli to serialize")
    parts = [_PARAMS_HEADER.pack(
        _PARAMS_MAGIC, VERSION, _SCHEME_CODES[params.scheme],
        params.poly_degree,
        -1 if params.plain_bits is None else params.plain_bits,
        -1 if params.scale_bits is None else params.scale_bits,
        len(logical), len(params.special_primes),
    )]
    parts.append(struct.pack(f"<{len(logical)}H", *logical))
    parts.append(struct.pack("<H", len(label)))
    parts.append(label)
    return b"".join(parts)


def deserialize_params(blob: bytes) -> EncryptionParameters:
    """Rebuild a parameter set from a :func:`serialize_params` spec blob."""
    if len(blob) < _PARAMS_HEADER.size:
        raise ValueError("parameter blob shorter than its header")
    (magic, version, scheme_code, poly_degree, plain_bits, scale_bits,
     n_logical, n_special) = _PARAMS_HEADER.unpack_from(blob)
    if magic != _PARAMS_MAGIC:
        raise ValueError("not a CHOCO parameter blob (bad magic)")
    if version != VERSION:
        raise ValueError(f"unsupported parameter blob version {version}")
    scheme = _SCHEME_FROM_CODE.get(scheme_code)
    if scheme is None:
        raise ValueError(f"unknown scheme code {scheme_code}")
    offset = _PARAMS_HEADER.size
    need = 2 * n_logical + 2
    if len(blob) < offset + need:
        raise ValueError("parameter blob truncated")
    logical = struct.unpack_from(f"<{n_logical}H", blob, offset)
    offset += 2 * n_logical
    (label_len,) = struct.unpack_from("<H", blob, offset)
    offset += 2
    if len(blob) != offset + label_len:
        raise ValueError("parameter blob length mismatch")
    try:
        label = blob[offset:].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ValueError("invalid UTF-8 in parameter label") from exc
    # enforce_security=False: the derivation is identical either way, and
    # deliberately-small test parameter sets must round-trip too.
    return EncryptionParameters.create(
        scheme, poly_degree, logical,
        plain_bits=None if plain_bits < 0 else plain_bits,
        scale_bits=None if scale_bits < 0 else scale_bits,
        label=label, enforce_security=False,
        special_prime_count=n_special)


# ---------------------------------------------------------------------------
# Size accounting
# ---------------------------------------------------------------------------

def serialized_size(ct: Ciphertext, compress_seed: bool = True) -> int:
    """Exact wire size without materializing the blob."""
    seeded = compress_seed and ct.seed is not None and len(ct.components) == 2
    n_moduli = len(ct.level_base)
    header = _HEADER.size + 8 * n_moduli + (32 if seeded else 0)
    stored = 1 if seeded else len(ct.components)
    return header + stored * 8 * n_moduli * ct.params.poly_degree
