"""Plaintext containers for the BFV and CKKS schemes."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hecore.polyring import RnsPoly


class Plaintext:
    """A BFV plaintext: a polynomial with coefficients modulo ``t``.

    Produced by :class:`repro.hecore.bfv.BatchEncoder`; the coefficient
    vector is *not* the slot vector — encoding applies the slot-to-
    coefficient transform so that HE operations act element-wise on slots.
    """

    __slots__ = ("coeffs", "modulus")

    def __init__(self, coeffs: np.ndarray, modulus: int):
        self.coeffs = coeffs.astype(np.int64)
        self.modulus = int(modulus)

    def copy(self) -> "Plaintext":
        return Plaintext(self.coeffs.copy(), self.modulus)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Plaintext)
            and self.modulus == other.modulus
            and np.array_equal(self.coeffs, other.coeffs)
        )


class CkksPlaintext:
    """A CKKS plaintext: a scaled integer polynomial over an RNS base."""

    __slots__ = ("poly", "scale")

    def __init__(self, poly: RnsPoly, scale: float):
        self.poly = poly
        self.scale = float(scale)

    def copy(self) -> "CkksPlaintext":
        return CkksPlaintext(self.poly.copy(), self.scale)
