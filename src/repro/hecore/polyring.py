"""Polynomials in ``R_q = Z_q[x]/(x^N + 1)`` in RNS representation.

An :class:`RnsPoly` stores one residue row per modulus of its base, each row
holding the ``N`` coefficients (or NTT evaluations) modulo that prime.  This
is the object every HE operation in Table 1 of the paper manipulates, and the
memory layout (``k`` independent residue "layers") is exactly the parallelism
the CHOCO-TACO accelerator exploits.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hecore import ntt
from repro.hecore.modmath import center, mod_inv
from repro.hecore.primes import generate_ntt_primes
from repro.hecore.rns import RnsBase


class RnsPoly:
    """A polynomial over an RNS base, optionally in NTT form."""

    # _raw_tables caches this poly's residues permuted into raw butterfly
    # order (plus Shoup quotients) for the batch dyadic kernels; it is only
    # populated for long-lived, never-mutated key material (see
    # :func:`repro.hecore.batchcrypt.raw_tables`).
    __slots__ = ("base", "degree", "data", "is_ntt", "_raw_tables")

    def __init__(self, base: RnsBase, degree: int, data: np.ndarray, is_ntt: bool = False):
        if data.shape != (len(base), degree):
            raise ValueError(f"data shape {data.shape} != ({len(base)}, {degree})")
        self.base = base
        self.degree = degree
        self.data = data.astype(np.int64, copy=False)
        self.is_ntt = is_ntt
        self._raw_tables = None

    # ------------------------------------------------------------------ ctor
    @classmethod
    def zero(cls, base: RnsBase, degree: int, is_ntt: bool = False) -> "RnsPoly":
        return cls(base, degree, np.zeros((len(base), degree), dtype=np.int64), is_ntt)

    @classmethod
    def from_int_coeffs(cls, base: RnsBase, coeffs: Sequence[int], degree: int) -> "RnsPoly":
        """Build from (possibly big, possibly negative) integer coefficients."""
        if len(coeffs) != degree:
            raise ValueError(f"expected {degree} coefficients, got {len(coeffs)}")
        return cls(base, degree, base.decompose(coeffs), is_ntt=False)

    @classmethod
    def from_signed_array(cls, base: RnsBase, values: np.ndarray) -> "RnsPoly":
        """Build from a small signed int64 vector (e.g. error polynomials)."""
        data = np.mod(values.astype(np.int64)[None, :], base.moduli_col)
        return cls(base, len(values), data, is_ntt=False)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.base, self.degree, self.data.copy(), self.is_ntt)

    def _stack_plan(self) -> ntt.NttStackPlan:
        return ntt.get_stack_plan(self.degree, self.base.moduli)

    # ------------------------------------------------------------- arithmetic
    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.base != other.base or self.degree != other.degree:
            raise ValueError("polynomials live in different rings")
        if self.is_ntt != other.is_ntt:
            raise ValueError("polynomials are in different representations")

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        # Rows are canonical [0, p), so one conditional subtract replaces the
        # per-row division-based np.mod.
        total = self.data + other.data
        pcol = self.base.moduli_col
        out = np.where(total >= pcol, total - pcol, total)
        return RnsPoly(self.base, self.degree, out, self.is_ntt)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        diff = self.data - other.data
        pcol = self.base.moduli_col
        out = np.where(diff < 0, diff + pcol, diff)
        return RnsPoly(self.base, self.degree, out, self.is_ntt)

    def __neg__(self) -> "RnsPoly":
        out = np.where(self.data == 0, 0, self.base.moduli_col - self.data)
        return RnsPoly(self.base, self.degree, out, self.is_ntt)

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Ring product.  Uses dyadic products in NTT form, else NTT round-trips."""
        self._check_compatible(other)
        plan = self._stack_plan()
        if self.is_ntt:
            out = plan.dyadic_multiply(self.data, other.data)
            return RnsPoly(self.base, self.degree, out, is_ntt=True)
        out = plan.negacyclic_multiply(self.data, other.data)
        return RnsPoly(self.base, self.degree, out, is_ntt=False)

    def scalar_multiply(self, scalar: int) -> "RnsPoly":
        """Multiply every coefficient by a (possibly big) integer scalar."""
        scalar = int(scalar)
        scol = np.array(
            [scalar % p for p in self.base.moduli], dtype=np.int64
        ).reshape(-1, 1)
        out = np.mod(self.data * scol, self.base.moduli_col)
        return RnsPoly(self.base, self.degree, out, self.is_ntt)

    # ---------------------------------------------------------- representation
    def to_ntt(self) -> "RnsPoly":
        if self.is_ntt:
            return self
        out = self._stack_plan().forward(self.data)
        return RnsPoly(self.base, self.degree, out, is_ntt=True)

    def from_ntt(self) -> "RnsPoly":
        if not self.is_ntt:
            return self
        out = self._stack_plan().inverse(self.data)
        return RnsPoly(self.base, self.degree, out, is_ntt=False)

    # ------------------------------------------------------------- structure
    def apply_automorphism(self, galois_elt: int) -> "RnsPoly":
        """Apply ``x -> x^g`` for odd *g*, in either representation.

        This is the Galois automorphism behind HE slot rotation (Table 1's
        "Ciphertext Rotate" uses it followed by key switching).  In
        coefficient form it scatters coefficients with a sign fixup for the
        ``x^n = -1`` wraparound.  In NTT (evaluation) form it is a pure
        permutation: position ``j`` holds the evaluation at ``psi**(2j+1)``,
        and ``a(x^g)`` evaluated there equals ``a`` at ``psi**((2j+1)g)`` —
        another odd power — so no INTT/NTT round trip is needed.
        """
        n = self.degree
        g = galois_elt % (2 * n)
        if g % 2 == 0:
            raise ValueError(f"Galois element {galois_elt} must be odd")
        if self.is_ntt:
            sources = ((2 * np.arange(n, dtype=np.int64) + 1) * g) % (2 * n)
            out = self.data[:, (sources - 1) >> 1]
            return RnsPoly(self.base, self.degree, out, is_ntt=True)
        pcol = self.base.moduli_col
        indices = (np.arange(n, dtype=np.int64) * g) % (2 * n)
        negate = indices >= n
        targets = np.where(negate, indices - n, indices)
        negated = np.where(self.data == 0, 0, pcol - self.data)
        signed = np.where(negate[None, :], negated, self.data)
        out = np.empty_like(self.data)
        out[:, targets] = signed
        return RnsPoly(self.base, self.degree, out, is_ntt=False)

    def divide_and_round_by_last(self) -> "RnsPoly":
        """Exact modulus switch: drop the base's last prime, scaling by 1/P.

        Computes ``round(x / P)`` (up to ±1 rounding slack, as in SEAL) using
        only word arithmetic: subtract the centered residue mod P, then
        multiply by ``P^{-1}`` modulo each remaining prime.  This is the
        "Mod Switching" module of the CHOCO-TACO pipeline (Figure 5) and the
        only step that couples RNS residues.
        """
        if self.is_ntt:
            raise ValueError("modulus switching requires coefficient form")
        last = self.base.moduli[-1]
        target = self.base.drop_last()
        tcol = target.moduli_col
        remainder = center(self.data[-1], last)
        inv_last_col = np.array(
            [mod_inv(last % p, p) for p in target.moduli], dtype=np.int64
        ).reshape(-1, 1)
        diff = self.data[:-1] - np.mod(remainder[None, :], tcol)
        diff = np.where(diff < 0, diff + tcol, diff)
        out = np.mod(diff * inv_last_col, tcol)
        return RnsPoly(target, self.degree, out, is_ntt=False)

    def switch_base(self, target: RnsBase) -> "RnsPoly":
        """Re-express this polynomial's rows over *target* without scaling.

        Only valid when the coefficient values are small enough (or when an
        approximate lift is acceptable, as in key-switch digit extension).
        """
        ints = self.base.compose_centered(self.data)
        return RnsPoly.from_int_coeffs(target, ints, self.degree)

    def to_int_coeffs(self, centered: bool = True) -> List[int]:
        """CRT-compose the residues back to Python integers."""
        poly = self.from_ntt()
        if centered:
            return poly.base.compose_centered(poly.data)
        return poly.base.compose(poly.data)

    def infinity_norm(self) -> int:
        """Max absolute centered coefficient (used for noise measurement).

        For a single-modulus base the residues *are* the coefficients, so the
        centered maximum comes straight off the int64 row with no CRT
        composition.
        """
        poly = self.from_ntt()
        if len(poly.base) == 1:
            centered = center(poly.data[0], poly.base.moduli[0])
            return int(np.abs(centered).max(initial=0))
        return max((abs(c) for c in poly.base.compose_centered(poly.data)), default=0)


# --------------------------------------------------------------------------
# Exact integer negacyclic multiplication via auxiliary CRT bases.
# Used by BFV ciphertext-ciphertext multiplication, where the tensor product
# must be computed over Z before scaling by t/q.
# --------------------------------------------------------------------------

_AUX_BASE_CACHE: Dict[Tuple[int, int], RnsBase] = {}


def aux_base_for(degree: int, bound_bits: int) -> RnsBase:
    """An RNS base of NTT-friendly primes whose product exceeds 2**bound_bits."""
    count = bound_bits // 28 + 2
    key = (degree, count)
    base = _AUX_BASE_CACHE.get(key)
    if base is None:
        base = RnsBase(generate_ntt_primes(29, count, degree))
        _AUX_BASE_CACHE[key] = base
    return base


def exact_negacyclic_multiply(
    a: Sequence[int], b: Sequence[int], degree: int, coeff_bound_bits: int
) -> List[int]:
    """Exact product of integer polynomials in ``Z[x]/(x^N + 1)``.

    *coeff_bound_bits* bounds ``log2`` of the largest absolute result
    coefficient; the function picks an auxiliary CRT base large enough to
    recover the product exactly.
    """
    base = aux_base_for(degree, coeff_bound_bits + 1)
    pa = RnsPoly.from_int_coeffs(base, list(a), degree)
    pb = RnsPoly.from_int_coeffs(base, list(b), degree)
    return (pa * pb).to_int_coeffs(centered=True)
