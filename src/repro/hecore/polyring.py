"""Polynomials in ``R_q = Z_q[x]/(x^N + 1)`` in RNS representation.

An :class:`RnsPoly` stores one residue row per modulus of its base, each row
holding the ``N`` coefficients (or NTT evaluations) modulo that prime.  This
is the object every HE operation in Table 1 of the paper manipulates, and the
memory layout (``k`` independent residue "layers") is exactly the parallelism
the CHOCO-TACO accelerator exploits.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hecore import ntt
from repro.hecore.modmath import center, mod_add, mod_inv, mod_mul, mod_neg, mod_sub
from repro.hecore.primes import generate_ntt_primes
from repro.hecore.rns import RnsBase


class RnsPoly:
    """A polynomial over an RNS base, optionally in NTT form."""

    __slots__ = ("base", "degree", "data", "is_ntt")

    def __init__(self, base: RnsBase, degree: int, data: np.ndarray, is_ntt: bool = False):
        if data.shape != (len(base), degree):
            raise ValueError(f"data shape {data.shape} != ({len(base)}, {degree})")
        self.base = base
        self.degree = degree
        self.data = data.astype(np.int64, copy=False)
        self.is_ntt = is_ntt

    # ------------------------------------------------------------------ ctor
    @classmethod
    def zero(cls, base: RnsBase, degree: int, is_ntt: bool = False) -> "RnsPoly":
        return cls(base, degree, np.zeros((len(base), degree), dtype=np.int64), is_ntt)

    @classmethod
    def from_int_coeffs(cls, base: RnsBase, coeffs: Sequence[int], degree: int) -> "RnsPoly":
        """Build from (possibly big, possibly negative) integer coefficients."""
        if len(coeffs) != degree:
            raise ValueError(f"expected {degree} coefficients, got {len(coeffs)}")
        return cls(base, degree, base.decompose(coeffs), is_ntt=False)

    @classmethod
    def from_signed_array(cls, base: RnsBase, values: np.ndarray) -> "RnsPoly":
        """Build from a small signed int64 vector (e.g. error polynomials)."""
        rows = [np.mod(values.astype(np.int64), p) for p in base.moduli]
        return cls(base, len(values), np.stack(rows), is_ntt=False)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.base, self.degree, self.data.copy(), self.is_ntt)

    # ------------------------------------------------------------- arithmetic
    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.base != other.base or self.degree != other.degree:
            raise ValueError("polynomials live in different rings")
        if self.is_ntt != other.is_ntt:
            raise ValueError("polynomials are in different representations")

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = np.empty_like(self.data)
        for i, p in enumerate(self.base.moduli):
            out[i] = mod_add(self.data[i], other.data[i], p)
        return RnsPoly(self.base, self.degree, out, self.is_ntt)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = np.empty_like(self.data)
        for i, p in enumerate(self.base.moduli):
            out[i] = mod_sub(self.data[i], other.data[i], p)
        return RnsPoly(self.base, self.degree, out, self.is_ntt)

    def __neg__(self) -> "RnsPoly":
        out = np.empty_like(self.data)
        for i, p in enumerate(self.base.moduli):
            out[i] = mod_neg(self.data[i], p)
        return RnsPoly(self.base, self.degree, out, self.is_ntt)

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Ring product.  Uses dyadic products in NTT form, else NTT round-trips."""
        self._check_compatible(other)
        out = np.empty_like(self.data)
        if self.is_ntt:
            for i, p in enumerate(self.base.moduli):
                out[i] = mod_mul(self.data[i], other.data[i], p)
            return RnsPoly(self.base, self.degree, out, is_ntt=True)
        for i, p in enumerate(self.base.moduli):
            plan = ntt.get_plan(self.degree, p)
            out[i] = plan.negacyclic_multiply(self.data[i], other.data[i])
        return RnsPoly(self.base, self.degree, out, is_ntt=False)

    def scalar_multiply(self, scalar: int) -> "RnsPoly":
        """Multiply every coefficient by a (possibly big) integer scalar."""
        out = np.empty_like(self.data)
        for i, p in enumerate(self.base.moduli):
            out[i] = mod_mul(self.data[i], np.int64(int(scalar) % p), p)
        return RnsPoly(self.base, self.degree, out, self.is_ntt)

    # ---------------------------------------------------------- representation
    def to_ntt(self) -> "RnsPoly":
        if self.is_ntt:
            return self
        out = np.empty_like(self.data)
        for i, p in enumerate(self.base.moduli):
            out[i] = ntt.get_plan(self.degree, p).forward(self.data[i])
        return RnsPoly(self.base, self.degree, out, is_ntt=True)

    def from_ntt(self) -> "RnsPoly":
        if not self.is_ntt:
            return self
        out = np.empty_like(self.data)
        for i, p in enumerate(self.base.moduli):
            out[i] = ntt.get_plan(self.degree, p).inverse(self.data[i])
        return RnsPoly(self.base, self.degree, out, is_ntt=False)

    # ------------------------------------------------------------- structure
    def apply_automorphism(self, galois_elt: int) -> "RnsPoly":
        """Apply ``x -> x^g`` for odd *g* (coefficient form only).

        This is the Galois automorphism behind HE slot rotation (Table 1's
        "Ciphertext Rotate" uses it followed by key switching).
        """
        if self.is_ntt:
            raise ValueError("apply automorphisms in coefficient form")
        n = self.degree
        g = galois_elt % (2 * n)
        if g % 2 == 0:
            raise ValueError(f"Galois element {galois_elt} must be odd")
        indices = (np.arange(n, dtype=np.int64) * g) % (2 * n)
        negate = indices >= n
        targets = np.where(negate, indices - n, indices)
        out = np.empty_like(self.data)
        for i, p in enumerate(self.base.moduli):
            signed = np.where(negate, np.mod(-self.data[i], p), self.data[i])
            row = np.zeros(n, dtype=np.int64)
            row[targets] = signed
            out[i] = row
        return RnsPoly(self.base, self.degree, out, is_ntt=False)

    def divide_and_round_by_last(self) -> "RnsPoly":
        """Exact modulus switch: drop the base's last prime, scaling by 1/P.

        Computes ``round(x / P)`` (up to ±1 rounding slack, as in SEAL) using
        only word arithmetic: subtract the centered residue mod P, then
        multiply by ``P^{-1}`` modulo each remaining prime.  This is the
        "Mod Switching" module of the CHOCO-TACO pipeline (Figure 5) and the
        only step that couples RNS residues.
        """
        if self.is_ntt:
            raise ValueError("modulus switching requires coefficient form")
        last = self.base.moduli[-1]
        target = self.base.drop_last()
        remainder = center(self.data[-1], last)
        out = np.empty((len(target), self.degree), dtype=np.int64)
        for i, p in enumerate(target.moduli):
            inv_last = mod_inv(last % p, p)
            diff = mod_sub(self.data[i], np.mod(remainder, p), p)
            out[i] = mod_mul(diff, np.int64(inv_last), p)
        return RnsPoly(target, self.degree, out, is_ntt=False)

    def switch_base(self, target: RnsBase) -> "RnsPoly":
        """Re-express this polynomial's rows over *target* without scaling.

        Only valid when the coefficient values are small enough (or when an
        approximate lift is acceptable, as in key-switch digit extension).
        """
        ints = self.base.compose_centered(self.data)
        return RnsPoly.from_int_coeffs(target, ints, self.degree)

    def to_int_coeffs(self, centered: bool = True) -> List[int]:
        """CRT-compose the residues back to Python integers."""
        poly = self.from_ntt()
        if centered:
            return poly.base.compose_centered(poly.data)
        return poly.base.compose(poly.data)

    def infinity_norm(self) -> int:
        """Max absolute centered coefficient (used for noise measurement)."""
        return max((abs(c) for c in self.to_int_coeffs(centered=True)), default=0)


# --------------------------------------------------------------------------
# Exact integer negacyclic multiplication via auxiliary CRT bases.
# Used by BFV ciphertext-ciphertext multiplication, where the tensor product
# must be computed over Z before scaling by t/q.
# --------------------------------------------------------------------------

_AUX_BASE_CACHE: Dict[Tuple[int, int], RnsBase] = {}


def _aux_base(degree: int, bound_bits: int) -> RnsBase:
    """An RNS base of NTT-friendly primes whose product exceeds 2**bound_bits."""
    count = bound_bits // 28 + 2
    key = (degree, count)
    base = _AUX_BASE_CACHE.get(key)
    if base is None:
        base = RnsBase(generate_ntt_primes(29, count, degree))
        _AUX_BASE_CACHE[key] = base
    return base


def exact_negacyclic_multiply(
    a: Sequence[int], b: Sequence[int], degree: int, coeff_bound_bits: int
) -> List[int]:
    """Exact product of integer polynomials in ``Z[x]/(x^N + 1)``.

    *coeff_bound_bits* bounds ``log2`` of the largest absolute result
    coefficient; the function picks an auxiliary CRT base large enough to
    recover the product exactly.
    """
    base = _aux_base(degree, coeff_bound_bits + 1)
    pa = RnsPoly.from_int_coeffs(base, list(a), degree)
    pb = RnsPoly.from_int_coeffs(base, list(b), degree)
    return (pa * pb).to_int_coeffs(centered=True)
