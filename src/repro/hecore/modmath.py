"""Vectorized modular arithmetic over word-sized primes.

All computational moduli in this library are below 2**31 so that a product of
two residues fits exactly in a signed 64-bit integer.  This mirrors SEAL's
word-sized RNS limbs (SEAL uses up to 60-bit limbs on native 128-bit
arithmetic, which numpy lacks); DESIGN.md documents the substitution.  The
*total* modulus width, which is what determines noise budgets and ciphertext
sizes, is preserved by using more limbs.
"""

from __future__ import annotations

import numpy as np

#: Largest permitted computational modulus.  ``MAX_MODULUS_BITS``-bit residues
#: guarantee that ``a * b`` for ``a, b < 2**31`` stays below ``2**62`` and is
#: exact in int64.
MAX_MODULUS_BITS = 31


def check_modulus(p: int) -> int:
    """Validate that *p* can be used as a computational modulus."""
    if not 1 < p < (1 << MAX_MODULUS_BITS):
        raise ValueError(f"modulus {p} outside supported range (2, 2**{MAX_MODULUS_BITS})")
    return p


def mod_add(a: np.ndarray, b: np.ndarray, p: int) -> np.ndarray:
    """Element-wise ``(a + b) mod p`` for residue arrays."""
    return np.mod(np.add(a, b, dtype=np.int64), p)


def mod_sub(a: np.ndarray, b: np.ndarray, p: int) -> np.ndarray:
    """Element-wise ``(a - b) mod p`` for residue arrays."""
    return np.mod(np.subtract(a, b, dtype=np.int64), p)


def mod_neg(a: np.ndarray, p: int) -> np.ndarray:
    """Element-wise ``(-a) mod p``."""
    return np.mod(np.negative(a.astype(np.int64)), p)


def mod_mul(a: np.ndarray, b: np.ndarray, p: int) -> np.ndarray:
    """Element-wise ``(a * b) mod p``.

    Exact because residues are below ``2**31`` (see :data:`MAX_MODULUS_BITS`).
    """
    return np.mod(np.multiply(a, b, dtype=np.int64), p)


def mod_pow(base: int, exponent: int, p: int) -> int:
    """Scalar modular exponentiation."""
    return pow(int(base), int(exponent), int(p))


def mod_inv(a: int, p: int) -> int:
    """Scalar modular inverse of *a* modulo prime *p*."""
    a = int(a) % p
    if a == 0:
        raise ZeroDivisionError(f"0 has no inverse modulo {p}")
    return pow(a, p - 2, p)


def mod_inv_array(a: np.ndarray, p: int) -> np.ndarray:
    """Element-wise modular inverse modulo prime *p*.

    Montgomery batch inversion: one scalar inverse plus O(n log n) vectorized
    modular multiplies.  Running prefix and suffix products are built with
    log-depth (Hillis–Steele) scans, the combined product is inverted once
    with Fermat's little theorem, and each element's inverse is recovered as
    ``prefix[i-1] * suffix[i+1] * total**-1``.  All intermediate products
    stay below ``2**62`` because residues are below ``2**31``.
    """
    flat = np.mod(a.astype(np.int64).ravel(), p)
    n = flat.size
    if n == 0:
        return np.empty(a.shape, dtype=np.int64)
    if bool((flat == 0).any()):
        raise ZeroDivisionError(f"0 has no inverse modulo {p}")
    prefix = flat.copy()
    suffix = flat.copy()
    shift = 1
    while shift < n:
        # The right-hand sides are evaluated into fresh arrays before the
        # assignment, so the overlapping in-place update is well-defined.
        prefix[shift:] = (prefix[shift:] * prefix[:-shift]) % p
        suffix[:-shift] = (suffix[:-shift] * suffix[shift:]) % p
        shift <<= 1
    total_inv = mod_inv(int(prefix[-1]), p)
    left = np.empty_like(flat)
    left[0] = 1
    left[1:] = prefix[:-1]
    right = np.empty_like(flat)
    right[-1] = 1
    right[:-1] = suffix[1:]
    out = ((left * right) % p) * np.int64(total_inv) % p
    return out.reshape(a.shape)


def center(a: np.ndarray, p: int) -> np.ndarray:
    """Map residues in ``[0, p)`` to the centered range ``(-p/2, p/2]``."""
    a = np.mod(a.astype(np.int64), p)
    return np.where(a > p // 2, a - p, a)


def uncenter(a: np.ndarray, p: int) -> np.ndarray:
    """Map centered values back to canonical residues in ``[0, p)``."""
    return np.mod(a.astype(np.int64), p)


def is_power_of_two(n: int) -> bool:
    """True when *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def bit_length(n: int) -> int:
    """Bit length of a non-negative integer (0 has bit length 0)."""
    return int(n).bit_length()
