"""Scheme-generic evaluator conveniences built on the context APIs.

Server-only encrypted systems approximate non-linear functions with
polynomials (§2.1: complete-HE DNNs "approximate activations with linear
functions") — :func:`polyval` is that primitive.  CHOCO's client-aided
model avoids it for activations, but polynomial evaluation remains useful
for encrypted analytics, and implementing it exercises the multiply /
rescale / level-alignment machinery end to end.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.hecore.ciphertext import Ciphertext
from repro.hecore.params import SchemeType


def add_many(ctx, cts: Sequence[Ciphertext]) -> Ciphertext:
    """Balanced-tree sum of ciphertexts (keeps noise growth logarithmic)."""
    if not cts:
        raise ValueError("nothing to add")
    level = list(cts)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            a, b = level[i], level[i + 1]
            if ctx.params.scheme is SchemeType.CKKS:
                a, b = ctx.align(a, b)
            nxt.append(ctx.add(a, b))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def multiply_many(ctx, cts: Sequence[Ciphertext]) -> Ciphertext:
    """Balanced-tree product (multiplicative depth ceil(log2(n)))."""
    if not cts:
        raise ValueError("nothing to multiply")
    level = list(cts)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            a, b = level[i], level[i + 1]
            if ctx.params.scheme is SchemeType.CKKS:
                a, b = ctx.align(a, b)
                nxt.append(ctx.rescale(ctx.multiply(a, b)))
            else:
                nxt.append(ctx.multiply(a, b))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def polyval(ctx, ct: Ciphertext, coefficients: Sequence[float]) -> Ciphertext:
    """Evaluate ``c[0] + c[1] x + ... + c[d] x^d`` at an encrypted ``x``.

    Horner's scheme: depth equals the polynomial degree.  Coefficients are
    plaintext (integers for BFV, reals for CKKS).
    """
    coefficients = list(coefficients)
    if not coefficients:
        raise ValueError("need at least one coefficient")
    if len(coefficients) == 1:
        raise ValueError("a constant polynomial needs no ciphertext")

    is_ckks = ctx.params.scheme is SchemeType.CKKS
    slots = ctx.params.slot_count

    def encode_const(value, like_ct):
        vec = np.full(slots if not is_ckks else slots, value)
        if is_ckks:
            return ctx.encode(vec.astype(float), scale=like_ct.scale,
                              base=like_ct.level_base)
        return ctx.encode(vec.astype(np.int64))

    # acc = c_d * x  (+ c_{d-1}); then repeatedly acc = acc*x + c_i.
    acc = _scale_by_const(ctx, ct, coefficients[-1], is_ckks)
    for coeff in reversed(coefficients[1:-1]):
        if coeff:
            acc = ctx.add_plain(acc, encode_const(coeff, acc))
        x_aligned = ct
        if is_ckks:
            acc, x_aligned = ctx.align(acc, ct)
            acc = ctx.rescale(ctx.multiply(acc, x_aligned))
        else:
            acc = ctx.multiply(acc, x_aligned)
    if coefficients[0]:
        acc = ctx.add_plain(acc, encode_const(coefficients[0], acc))
    return acc


def _scale_by_const(ctx, ct, value, is_ckks):
    slots = ctx.params.slot_count
    if is_ckks:
        pt = ctx.encode(np.full(slots, float(value)), base=ct.level_base)
        return ctx.rescale(ctx.multiply_plain(ct, pt))
    pt = ctx.encode(np.full(slots, int(value), dtype=np.int64))
    return ctx.multiply_plain(ct, pt)
