"""The CHOCO-TACO accelerator model: latency, energy, area, power (§4.2–4.6).

:class:`AcceleratorConfig` captures the per-module parallelism knobs the
design space sweeps (Figure 7); :class:`AcceleratorModel` evaluates one
configuration at one ``(N, k)`` parameter point, following the encryption
pipeline of Figure 5 / §4.3 and the decryption path of §4.6.

Residue *layers* are replicated per RNS prime, so latency is largely
independent of ``k`` while energy and area scale with it — the source of
the accelerator's scaling advantage over software (Figure 8).

Absolute calibration: the published operating point (the Figure 6
configuration) costs 19.3 mm², encrypts in 0.66 ms within a 200 mW power
envelope, and consumes 0.1228 mJ per encryption at (8192, 3).  The
``_TIME/_ENERGY/_AREA_CALIBRATION`` constants below scale the structural
model onto those anchors; all *relative* behaviour (across configurations
and across (N, k)) comes from the structure itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict

from repro.accel import memory
from repro.accel.blocks import (
    BUTTERFLY_PE,
    ENCODE_PE,
    HASH_PE,
    MODADD_PE,
    MODMUL_PE,
    MODSWITCH_PE,
    FunctionalBlock,
)

#: Accelerator clock (§4.4: access latency of the energy-optimized SRAMs
#: limits the clock to 100 MHz).
CLOCK_HZ = 100e6

# Calibration to the published operating point (see module docstring).
# Solved numerically so the Figure 6 configuration at (8192, 3) costs
# 0.660 ms / 0.1228 mJ / 19.30 mm^2 (and, emergent: 0.646 ms decryption
# against the paper's 0.65 ms).
_TIME_CALIBRATION = 1.4587569622491379
_ENERGY_CALIBRATION = 5.127117291351555
_AREA_CALIBRATION = 2.4864136176107134

#: Fixed pipeline fill / drain / control overhead per operation, cycles.
_FIXED_OVERHEAD_CYCLES = 600.0


@dataclass(frozen=True)
class AcceleratorConfig:
    """Per-module parallelism: processing elements per functional block."""

    prng_lanes: int = 8        # hash output bytes per cycle
    ntt_pes: int = 4           # butterflies per cycle (NTT block)
    intt_pes: int = 8          # butterflies per cycle (INTT block)
    dyadic_pes: int = 4        # modmuls per cycle (dyadic product block)
    add_pes: int = 4           # modadds per cycle (poly add blocks)
    modswitch_pes: int = 4     # modswitch ops per cycle
    encode_pes: int = 4        # encode/decode ops per cycle

    def as_dict(self) -> Dict[str, int]:
        return {
            "prng_lanes": self.prng_lanes,
            "ntt_pes": self.ntt_pes,
            "intt_pes": self.intt_pes,
            "dyadic_pes": self.dyadic_pes,
            "add_pes": self.add_pes,
            "modswitch_pes": self.modswitch_pes,
            "encode_pes": self.encode_pes,
        }


#: The configuration Figure 6 depicts and §4.4 selects.
CHOCO_TACO_CONFIG = AcceleratorConfig()


@dataclass(frozen=True)
class OperationCost:
    """Cost of one accelerator operation at a given (N, k)."""

    cycles: float
    energy_j: float

    @property
    def time_s(self) -> float:
        return self.cycles / CLOCK_HZ


class AcceleratorModel:
    """Evaluate one accelerator configuration at one (N, k) point."""

    def __init__(self, config: AcceleratorConfig = CHOCO_TACO_CONFIG,
                 poly_degree: int = 8192, residues: int = 3):
        if poly_degree & (poly_degree - 1):
            raise ValueError("poly_degree must be a power of two")
        if residues < 1:
            raise ValueError("need at least one residue")
        self.config = config
        self.n = poly_degree
        self.k = residues
        self._blocks = self._build_blocks()
        self._srams = self._build_srams()

    # -------------------------------------------------------------- structure
    def _build_blocks(self) -> Dict[str, FunctionalBlock]:
        c = self.config
        return {
            "prng": FunctionalBlock(HASH_PE, c.prng_lanes),
            "ntt": FunctionalBlock(BUTTERFLY_PE, c.ntt_pes),
            "intt": FunctionalBlock(BUTTERFLY_PE, c.intt_pes),
            "dyadic": FunctionalBlock(MODMUL_PE, c.dyadic_pes),
            "add": FunctionalBlock(MODADD_PE, c.add_pes),
            "modswitch": FunctionalBlock(MODSWITCH_PE, c.modswitch_pes),
            "encode": FunctionalBlock(ENCODE_PE, c.encode_pes),
        }

    def _build_srams(self):
        n = self.n
        per_layer = (
            [memory.working_buffer(n)] * 2          # NTT + INTT working buffers
            + [memory.twiddle_rom(n)] * 2           # forward + inverse twiddles
            + [memory.streaming_buffer()] * 6       # sub-1 kB FIFOs (§4.2)
        )
        shared = [
            memory.working_buffer(n),               # encode/decode working buffer
            memory.twiddle_rom(n),                  # encode twiddles
            memory.SramMacro(4096),                 # context / key staging
            memory.streaming_buffer(),              # RNG distribution buffer
        ]
        return {"per_layer": per_layer, "shared": shared}

    # ------------------------------------------------------------ geometry
    @property
    def butterflies(self) -> float:
        return (self.n / 2) * math.log2(self.n)

    @property
    def _banking_factor(self) -> float:
        """SRAM banking overhead: feeding p butterflies per cycle needs
        ~2p-ported (banked) working buffers, costing area and leakage."""
        ports = (self.config.ntt_pes + self.config.intt_pes) / 2.0
        return 1.0 + 0.06 * ports

    @property
    def area_mm2(self) -> float:
        blocks = self._blocks
        layer_area = sum(
            blocks[name].area_mm2
            for name in ("ntt", "intt", "dyadic", "add", "modswitch")
        ) + self._banking_factor * sum(
            m.area_mm2 for m in self._srams["per_layer"]
        )
        shared_area = (
            blocks["prng"].area_mm2
            + blocks["encode"].area_mm2
            + sum(m.area_mm2 for m in self._srams["shared"])
        )
        return _AREA_CALIBRATION * (self.k * layer_area + shared_area)

    def area_breakdown_mm2(self) -> Dict[str, float]:
        """Calibrated area by component class (the 'SRAM dominates' story)."""
        blocks = self._blocks
        pe_layer = sum(
            blocks[name].area_mm2
            for name in ("ntt", "intt", "dyadic", "add", "modswitch")
        )
        sram_layer = self._banking_factor * sum(
            m.area_mm2 for m in self._srams["per_layer"])
        return {
            "layer_pes": _AREA_CALIBRATION * self.k * pe_layer,
            "layer_sram": _AREA_CALIBRATION * self.k * sram_layer,
            "prng": _AREA_CALIBRATION * blocks["prng"].area_mm2,
            "encode": _AREA_CALIBRATION * blocks["encode"].area_mm2,
            "shared_sram": _AREA_CALIBRATION * sum(
                m.area_mm2 for m in self._srams["shared"]),
        }

    @property
    def leakage_w(self) -> float:
        blocks = self._blocks
        layer = sum(
            blocks[name].leakage_w()
            for name in ("ntt", "intt", "dyadic", "add", "modswitch")
        ) + self._banking_factor * sum(
            m.leakage_w for m in self._srams["per_layer"]
        )
        shared = (
            blocks["prng"].leakage_w()
            + blocks["encode"].leakage_w()
            + sum(m.leakage_w for m in self._srams["shared"])
        )
        return _AREA_CALIBRATION * (self.k * layer + shared)

    # ------------------------------------------------------------- latency
    def encrypt_stage_cycles(self) -> Dict[str, float]:
        """Per-stage critical-path cycles of the Figure 5 pipeline.

        Keys follow §4.3's walk-through: sample u, NTT(u), then per
        ciphertext component (dyadic product, INTT, error add, modulus
        switch — the two components serialize on the shared modules), the
        message-encode excess that fails to hide under the c1 pass, and the
        final message addition.
        """
        c = self.config
        n, b = self.n, self.butterflies
        t_sample_u = n / c.prng_lanes                 # 1 B per ternary sample
        t_ntt_u = b / c.ntt_pes
        t_dyadic = n / c.dyadic_pes
        t_intt = b / c.intt_pes
        t_err_gen = 8.0 * n / c.prng_lanes            # 8 B per normal sample
        t_err = max(0.0, t_err_gen - (t_dyadic + t_intt)) + n / c.add_pes
        # Modulus switching: each residue layer corrects with the (shared,
        # broadcast) key-prime residue, so layers pipeline — only a small
        # serial hand-off per extra residue (§4.2).
        t_modswitch = n / c.modswitch_pes + 50.0 * max(0, self.k - 1)
        per_component = t_dyadic + t_intt + t_err + t_modswitch
        t_encode = (b + n) / c.encode_pes
        return {
            "sample_u": t_sample_u,
            "ntt_u": t_ntt_u,
            "dyadic": 2 * t_dyadic,
            "intt": 2 * t_intt,
            "error": 2 * t_err,
            "modswitch": 2 * t_modswitch,
            "encode_excess": max(0.0, t_encode - per_component),
            "final_add": n / c.add_pes,
            "overhead": _FIXED_OVERHEAD_CYCLES,
        }

    def _encrypt_cycles(self) -> float:
        return _TIME_CALIBRATION * sum(self.encrypt_stage_cycles().values())

    def _decrypt_cycles(self) -> float:
        c = self.config
        n, b = self.n, self.butterflies
        data_k = max(1, self.k - 1)
        t_ntt_c1 = b / c.ntt_pes
        t_dyadic = n / c.dyadic_pes
        t_intt = b / c.intt_pes
        t_add = n / c.add_pes
        t_base_conv = n * data_k / c.modswitch_pes    # couples residues
        t_error_correct = n / c.add_pes
        t_decode = (b + n) / c.encode_pes
        total = (
            t_ntt_c1 + t_dyadic + t_intt + t_add
            + t_base_conv + t_error_correct + t_decode + _FIXED_OVERHEAD_CYCLES
        )
        return _TIME_CALIBRATION * total

    # -------------------------------------------------------------- energy
    def _encrypt_dynamic_energy(self) -> float:
        blocks = self._blocks
        n, b, k = self.n, self.butterflies, self.k
        e = 0.0
        e += blocks["prng"].energy_j(17 * n)              # u (N B) + e1,e2 (16N B)
        e += blocks["ntt"].energy_j(b * k)                # NTT(u) per layer
        e += blocks["dyadic"].energy_j(2 * n * k)         # c0 and c1 dyadic
        e += blocks["intt"].energy_j(2 * b * k)
        e += blocks["add"].energy_j(3 * n * k)            # e1, e2, final message add
        e += blocks["modswitch"].energy_j(2 * n * max(1, k - 1))
        e += blocks["encode"].energy_j(b + 2 * n * max(1, k - 1))
        e += self._sram_energy(transforms=1 * k + 2 * k + 1)   # NTT(u)/layer, 2 INTT/layer, encode
        return _ENERGY_CALIBRATION * e

    def _decrypt_dynamic_energy(self) -> float:
        blocks = self._blocks
        n, b = self.n, self.butterflies
        data_k = max(1, self.k - 1)
        e = 0.0
        e += blocks["ntt"].energy_j(b * data_k)
        e += blocks["dyadic"].energy_j(n * data_k)
        e += blocks["intt"].energy_j(b * data_k)
        e += blocks["add"].energy_j(2 * n * data_k)
        e += blocks["modswitch"].energy_j(n * data_k)
        e += blocks["encode"].energy_j(b + n)
        e += self._sram_energy(transforms=2 * data_k + 1)
        return _ENERGY_CALIBRATION * e

    def _sram_energy(self, transforms: float) -> float:
        """Working-buffer traffic: ~4 words (32 B) move per butterfly."""
        buffer = memory.working_buffer(self.n)
        traffic_bytes = transforms * self.butterflies * 32
        stream = memory.streaming_buffer()
        streamed = 8 * self.n * 8 * self.k           # FIFO crossings
        return (buffer.access_energy_for_bytes(traffic_bytes)
                + stream.access_energy_for_bytes(streamed))

    # ----------------------------------------------------------- public API
    def encrypt_cost(self) -> OperationCost:
        cycles = self._encrypt_cycles()
        energy = self._encrypt_dynamic_energy() + self.leakage_w * cycles / CLOCK_HZ
        return OperationCost(cycles=cycles, energy_j=energy)

    def decrypt_cost(self) -> OperationCost:
        cycles = self._decrypt_cycles()
        energy = self._decrypt_dynamic_energy() + self.leakage_w * cycles / CLOCK_HZ
        return OperationCost(cycles=cycles, energy_j=energy)

    def batch_overhead_cycles(self) -> float:
        """Calibrated fixed cycles a batched schedule amortizes per op.

        Each invocation of the crypto pipeline pays ``_FIXED_OVERHEAD_CYCLES``
        of drain/configuration latency (a stage of both
        :meth:`encrypt_stage_cycles` and ``_decrypt_cycles``).  Back-to-back
        operations in one stacked batch keep the pipeline primed, so only the
        first op of a batch pays it.
        """
        return _TIME_CALIBRATION * _FIXED_OVERHEAD_CYCLES

    def _batched_cost(self, one: OperationCost, batch: int) -> OperationCost:
        if batch <= 0:
            return OperationCost(cycles=0.0, energy_j=0.0)
        saved = (batch - 1) * self.batch_overhead_cycles()
        cycles = batch * one.cycles - saved
        energy = batch * one.energy_j - self.leakage_w * saved / CLOCK_HZ
        return OperationCost(cycles=cycles, energy_j=energy)

    def encrypt_many_cost(self, batch: int) -> OperationCost:
        """Cost of *batch* encryptions issued as one stacked batch."""
        return self._batched_cost(self.encrypt_cost(), batch)

    def decrypt_many_cost(self, batch: int) -> OperationCost:
        """Cost of *batch* decryptions issued as one stacked batch."""
        return self._batched_cost(self.decrypt_cost(), batch)

    @property
    def average_power_w(self) -> float:
        """Average power while encrypting (the Figure 7 power axis)."""
        cost = self.encrypt_cost()
        return cost.energy_j / cost.time_s

    def at_parameters(self, poly_degree: int, residues: int) -> "AcceleratorModel":
        """The same configuration re-instantiated at another (N, k) (§4.5).

        Working buffers grow with N and layers are added for larger k;
        streaming buffers and per-layer pipelines are unchanged.
        """
        return AcceleratorModel(self.config, poly_degree, residues)
