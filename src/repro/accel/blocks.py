"""Processing elements and functional blocks (§4.2).

Each module of Figure 6 contains functional blocks; each block contains
pipelined processing elements (PEs) that handle one coefficient per cycle.
Per-PE area and energy constants are for a generic 45 nm node (the paper
synthesizes RTL with Cadence Genus at 45 nm); absolute calibration to the
published operating point happens in :mod:`repro.accel.design`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PeKind:
    """A processing-element type: its 45 nm area and per-operation energy."""

    name: str
    area_mm2: float
    energy_pj: float


#: Modular multiplier (Montgomery/Barrett, word-sized) — the big PE.
MODMUL_PE = PeKind("modmul", area_mm2=0.015, energy_pj=18.0)

#: Modular adder/subtractor.
MODADD_PE = PeKind("modadd", area_mm2=0.0022, energy_pj=2.2)

#: NTT/INTT butterfly: one modmul plus two modadds, tightly coupled.
BUTTERFLY_PE = PeKind("butterfly", area_mm2=0.020, energy_pj=23.0)

#: One lane of the Blake cryptographic hash (per output byte).
HASH_PE = PeKind("hash-lane", area_mm2=0.045, energy_pj=9.5)

#: Modulus-switching PE: modmul plus correction add (couples residues).
MODSWITCH_PE = PeKind("modswitch", area_mm2=0.018, energy_pj=21.0)

#: Encode/decode PE: plain-modulus arithmetic and slot reordering.
ENCODE_PE = PeKind("encode", area_mm2=0.010, energy_pj=12.0)


@dataclass(frozen=True)
class FunctionalBlock:
    """*count* replicated PEs of one kind, fully pipelined.

    Throughput is ``count`` operations per cycle; a fixed pipeline fill
    latency is charged once per invocation.
    """

    kind: PeKind
    count: int
    pipeline_depth: int = 8

    def cycles(self, operations: float) -> float:
        """Cycles to stream *operations* through this block."""
        if operations <= 0:
            return 0.0
        return operations / self.count + self.pipeline_depth

    def energy_j(self, operations: float) -> float:
        return operations * self.kind.energy_pj * 1e-12

    @property
    def area_mm2(self) -> float:
        return self.count * self.kind.area_mm2

    def leakage_w(self) -> float:
        # PE leakage at 45 nm: ~6% of a 100 MHz switching budget.
        return self.count * self.kind.energy_pj * 1e-12 * 100e6 * 0.06
