"""Destiny-like SRAM cost model (§4.2, §4.4).

The paper models memories with Destiny, using aggressive wire technology
optimized for read energy with 8-word 64-byte accesses, at a 45 nm node.
This module provides the same three outputs — area, per-access energy, and
leakage power — as smooth functions of capacity, with constants in the
range Destiny reports for 45 nm SRAM.  Access latency limits the clock,
which is why the design runs at 100 MHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Bytes moved per SRAM access (8 words of 8 bytes).
ACCESS_BYTES = 64

# 45 nm SRAM constants (per Destiny-class modeling):
_AREA_MM2_PER_KB = 0.0052          # ~0.65 mm^2 per Mbit
_AREA_OVERHEAD_MM2 = 0.0008        # decoder/sense-amp floor per macro
_ENERGY_PJ_PER_ACCESS_BASE = 5.0   # small-macro 64 B read
_ENERGY_PJ_PER_ACCESS_SLOPE = 0.55  # growth with sqrt(capacity in KB)
_LEAKAGE_UW_PER_KB = 9.0


@dataclass(frozen=True)
class SramMacro:
    """One SRAM buffer: working buffer, twiddle ROM, or streaming FIFO."""

    capacity_bytes: int

    @property
    def capacity_kb(self) -> float:
        return self.capacity_bytes / 1024.0

    @property
    def area_mm2(self) -> float:
        return _AREA_OVERHEAD_MM2 + _AREA_MM2_PER_KB * self.capacity_kb

    @property
    def access_energy_j(self) -> float:
        """Joules per 64-byte access."""
        pj = (_ENERGY_PJ_PER_ACCESS_BASE
              + _ENERGY_PJ_PER_ACCESS_SLOPE * math.sqrt(max(self.capacity_kb, 0.015625)))
        return pj * 1e-12

    @property
    def leakage_w(self) -> float:
        return _LEAKAGE_UW_PER_KB * self.capacity_kb * 1e-6

    def access_energy_for_bytes(self, num_bytes: float) -> float:
        """Energy to stream *num_bytes* through this macro."""
        return (num_bytes / ACCESS_BYTES) * self.access_energy_j


def working_buffer(poly_degree: int) -> SramMacro:
    """An NTT/INTT working buffer sized for one full residue polynomial.

    "NTT and INTT algorithmically operate on a full polynomial, requiring
    their SRAM to match the full polynomial size, e.g., 64 kB with N = 8192."
    """
    return SramMacro(capacity_bytes=poly_degree * 8)


def streaming_buffer() -> SramMacro:
    """A sub-1 kB streaming FIFO (the empirically optimal size, §4.2)."""
    return SramMacro(capacity_bytes=512)


def twiddle_rom(poly_degree: int) -> SramMacro:
    """Twiddle-factor storage for one residue's NTT plan."""
    return SramMacro(capacity_bytes=poly_degree * 8)
