"""CKKS support on the BFV accelerator datapath (§4.7).

The BFV hardware of Figure 6 supports CKKS with an extra datapath: the same
modules run in a different order.  Profiling shows 95% of CKKS
encode+encrypt time and 56% of decode+decrypt time map onto the existing
hardware (the remainder is complex-conjugate processing left in software);
supported portions are assumed to speed up proportionally to BFV.

Published anchors: encode+encrypt drops 310 ms → 18 ms (≈17×) and
decode+decrypt 37 ms → 16 ms (≈2.3×) on the IMX6 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.client_device import (
    SW_CKKS_DEC_DECODE_S,
    SW_CKKS_ENC_ENCODE_S,
    Imx6SoftwareClient,
)

#: Fraction of CKKS encode+encrypt covered by the BFV datapath (§4.7).
CKKS_ENCRYPT_COVERAGE = 0.95

#: Fraction of CKKS decode+decrypt covered by the BFV datapath (§4.7).
CKKS_DECRYPT_COVERAGE = 0.56

#: Speedup applied to the covered portion, proportional to BFV acceleration.
_COVERED_SPEEDUP = 120.0


@dataclass(frozen=True)
class CkksAcceleration:
    """Hardware-assisted CKKS client costs at parameter set C."""

    client: Imx6SoftwareClient = Imx6SoftwareClient()

    def encrypt_encode_time(self, poly_degree: int = 8192, residues: int = 3) -> float:
        sw = self.client.ckks_encrypt_time(poly_degree, residues)
        return ((1 - CKKS_ENCRYPT_COVERAGE) * sw
                + CKKS_ENCRYPT_COVERAGE * sw / _COVERED_SPEEDUP)

    def decrypt_decode_time(self, poly_degree: int = 8192, residues: int = 3) -> float:
        sw = self.client.ckks_decrypt_time(poly_degree, residues)
        return ((1 - CKKS_DECRYPT_COVERAGE) * sw
                + CKKS_DECRYPT_COVERAGE * sw / _COVERED_SPEEDUP)

    def encrypt_speedup(self) -> float:
        return SW_CKKS_ENC_ENCODE_S / self.encrypt_encode_time()

    def decrypt_speedup(self) -> float:
        return SW_CKKS_DEC_DECODE_S / self.decrypt_decode_time()
