"""Design-space exploration of the accelerator (§4.4, Figure 7).

Sweeps per-module parallelism over 32,000 configurations (the paper sweeps
31,340), evaluating power, area, energy, and encryption time for each, then
applies the paper's operating-point rule: limit power to 200 mW and choose
the smallest design whose run time is within 1% of the optimum.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.accel.design import AcceleratorConfig, AcceleratorModel

#: The §4.4 power envelope, watts.
POWER_LIMIT_W = 0.200

#: Runtime slack for the operating-point rule.
TIME_SLACK = 0.01

#: Default sweep grid: 4*5*5*5*4*4*4 = 32,000 configurations.
DEFAULT_GRID = {
    "prng_lanes": (1, 2, 4, 8),
    "ntt_pes": (1, 2, 4, 8, 16),
    "intt_pes": (1, 2, 4, 8, 16),
    "dyadic_pes": (1, 2, 4, 8, 16),
    "add_pes": (1, 2, 4, 8),
    "modswitch_pes": (1, 2, 4, 8),
    "encode_pes": (1, 2, 4, 8),
}


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    config: AcceleratorConfig
    time_s: float
    energy_j: float
    area_mm2: float
    power_w: float

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance in (time, power, area)."""
        no_worse = (
            self.time_s <= other.time_s
            and self.power_w <= other.power_w
            and self.area_mm2 <= other.area_mm2
        )
        better = (
            self.time_s < other.time_s
            or self.power_w < other.power_w
            or self.area_mm2 < other.area_mm2
        )
        return no_worse and better


def iter_configs(grid=None) -> Iterable[AcceleratorConfig]:
    """Every configuration in the sweep grid."""
    grid = dict(DEFAULT_GRID if grid is None else grid)
    keys = list(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield AcceleratorConfig(**dict(zip(keys, combo)))


def evaluate(config: AcceleratorConfig, poly_degree: int = 8192,
             residues: int = 3) -> DesignPoint:
    """Power/area/energy/time of one configuration (one Figure 7 dot)."""
    model = AcceleratorModel(config, poly_degree, residues)
    cost = model.encrypt_cost()
    return DesignPoint(
        config=config,
        time_s=cost.time_s,
        energy_j=cost.energy_j,
        area_mm2=model.area_mm2,
        power_w=cost.energy_j / cost.time_s,
    )


def explore_design_space(grid=None, poly_degree: int = 8192,
                         residues: int = 3) -> List[DesignPoint]:
    """Evaluate the full sweep (Figure 7's point cloud)."""
    return [evaluate(cfg, poly_degree, residues) for cfg in iter_configs(grid)]


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated points in (time, power, area)."""
    frontier = []
    for p in points:
        if not any(q.dominates(p) for q in points if q is not p):
            frontier.append(p)
    return frontier


def select_operating_point(points: Sequence[DesignPoint],
                           power_limit_w: float = POWER_LIMIT_W,
                           time_slack: float = TIME_SLACK) -> DesignPoint:
    """Apply the §4.4 rule: power cap, near-optimal time, smallest area."""
    feasible = [p for p in points if p.power_w <= power_limit_w]
    if not feasible:
        raise ValueError(f"no design meets the {power_limit_w * 1e3:.0f} mW cap")
    best_time = min(p.time_s for p in feasible)
    near_optimal = [p for p in feasible if p.time_s <= best_time * (1 + time_slack)]
    return min(near_optimal, key=lambda p: p.area_mm2)
