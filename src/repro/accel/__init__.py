"""CHOCO-TACO: the client-side HE encryption/decryption accelerator (§4).

A structural simulator in the spirit of the paper's "custom simulation
infrastructure": modules (PRNG, polynomial multiply, polynomial add, modulus
switching, encode/decode) contain functional blocks built from pipelined
processing elements; SRAM buffers follow a Destiny-like cost model; the
design is clocked at 100 MHz and replicated across RNS residue layers.

* :mod:`repro.accel.design` — latency/energy/area/power for encrypt/decrypt.
* :mod:`repro.accel.dse` — the 31k-configuration design-space sweep (Fig. 7).
* :mod:`repro.accel.hwassist` — HEAX/FPGA partial-acceleration models (Fig. 2).
* :mod:`repro.accel.ckks_support` — the §4.7 CKKS coverage model.
"""

from repro.accel.design import AcceleratorConfig, AcceleratorModel, CHOCO_TACO_CONFIG
from repro.accel.dse import explore_design_space, select_operating_point

__all__ = [
    "AcceleratorConfig",
    "AcceleratorModel",
    "CHOCO_TACO_CONFIG",
    "explore_design_space",
    "select_operating_point",
]
