"""Partial hardware assistance models: HEAX and encryption FPGAs (§2.2).

Prior accelerators (HEAX [59], the BFV encryption FPGA [46], HEAWS [70])
speed up polynomial multiplication and the NTT — but software profiling
shows those account for only ~60% of SEAL's encryption/decryption time.
Figure 2 computes the *best-case* client speedup by scaling the supported
portion of the software runtime by each design's reported speedup; the
remaining 40% runs at software speed and dominates (Amdahl).  CHOCO-TACO's
motivation is exactly this gap.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fraction of SEAL encryption/decryption time spent in NTT + polynomial
#: multiplication (software profiling, §2.2).
NTT_POLYMULT_FRACTION = 0.60


@dataclass(frozen=True)
class PartialAccelerator:
    """Amdahl model of an accelerator that covers only NTT/poly-multiply."""

    name: str
    supported_fraction: float
    reported_speedup: float

    def accelerated_time(self, software_time_s: float) -> float:
        """Best-case client time with this accelerator attached."""
        covered = self.supported_fraction * software_time_s / self.reported_speedup
        uncovered = (1.0 - self.supported_fraction) * software_time_s
        return covered + uncovered

    def effective_speedup(self) -> float:
        return 1.0 / (
            (1.0 - self.supported_fraction)
            + self.supported_fraction / self.reported_speedup
        )


#: HEAX [59]: FPGA NTT/dyadic engines.  The reported-speedup value makes the
#: effective client speedup ~2.27x, consistent with the paper's published
#: ratios (123.27x vs software and 54.3x vs HEAX for CHOCO-TACO).
HEAX = PartialAccelerator("HEAX", NTT_POLYMULT_FRACTION, reported_speedup=15.0)

#: The BFV encryption/decryption FPGA of Mert et al. [46].
ENCRYPTION_FPGA = PartialAccelerator("FPGA", NTT_POLYMULT_FRACTION, reported_speedup=8.0)
