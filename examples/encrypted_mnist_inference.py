#!/usr/bin/env python
"""Client-aided encrypted DNN inference, functionally, end to end.

A resource-constrained "client" classifies a synthetic digit image without
ever revealing it to the "server": every linear layer runs under BFV on the
server; the client decrypts intermediate results, applies ReLU/pooling/
requantization in plaintext (refreshing the noise budget), re-encrypts, and
uploads — the protocol of Figure 3.

The demo network is sized to fit fast parameters; the full Table 5 networks
are priced with the same machinery in benchmarks/bench_table5_networks.py.

Run:  python examples/encrypted_mnist_inference.py
"""

import numpy as np

from repro.apps.dnn import (
    quantize_network_for_encryption,
    run_encrypted_inference,
    run_reference_inference,
)
from repro.core.protocol import ClientAidedSession
from repro.hecore.bfv import BfvContext
from repro.hecore.params import SchemeType, small_test_parameters
from repro.nn.layers import (
    ConvLayer,
    FcLayer,
    FlattenLayer,
    MaxPoolLayer,
    Network,
    ReluLayer,
)


def make_digit(rng, kind):
    """A synthetic 10x10 'digit': vertical bar (1) or ring (0)."""
    img = np.zeros((1, 10, 10), dtype=np.int64)
    if kind == 1:
        img[0, 1:9, 4:6] = 3
    else:
        img[0, 2:8, 2:8] = 3
        img[0, 4:6, 4:6] = 0
    noise = rng.integers(0, 2, img.shape)
    return np.clip(img + noise, 0, 3)


def mini_lenet():
    return Network("mini-lenet", (1, 10, 10), [
        ConvLayer(1, 3, 3, padding="same"),
        ReluLayer(),
        MaxPoolLayer(),
        FlattenLayer(),
        FcLayer(75, 2),
    ])


def main():
    rng = np.random.default_rng(7)
    params = small_test_parameters(SchemeType.BFV, poly_degree=2048,
                                   plain_bits=17, data_bits=(30, 30, 30))
    ctx = BfvContext(params, seed=42)
    net = quantize_network_for_encryption(mini_lenet(), bits=3)

    print("classifying 6 synthetic digits under encryption...\n")
    agree = 0
    for i in range(6):
        kind = i % 2
        image = make_digit(rng, kind)
        session = ClientAidedSession(ctx)
        logits, ledger = run_encrypted_inference(ctx, net, image, bits=3,
                                                 session=session)
        reference = run_reference_inference(net, image, bits=3)
        match = np.array_equal(logits, reference)
        agree += match
        print(f"image {i} (class {kind}): encrypted logits {logits.tolist()} "
              f"-> argmax {int(np.argmax(logits))} | matches plaintext: {match}")
        if i == 0:
            print(f"    protocol: {ledger.client_encrypt_ops} enc, "
                  f"{ledger.client_decrypt_ops} dec, "
                  f"{ledger.total_bytes / 1e3:.0f} kB moved, "
                  f"{ledger.rounds} rounds")

    print(f"\nencrypted == plaintext on {agree}/6 images")
    assert agree == 6


if __name__ == "__main__":
    main()
