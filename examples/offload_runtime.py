#!/usr/bin/env python
"""Serve encrypted KNN over the offload runtime — loopback TCP and the
simulated radio.

Starts an :class:`OffloadServer` on an ephemeral loopback port, connects an
:class:`OffloadClient`, provisions an encrypted point database, and
classifies queries with every server-side step crossing the wire as real
CHOF frames.  Then repeats one classification over a
:class:`SimulatedLink`, showing the analytical Bluetooth cost model
(§5.2's byte/round accounting) driven by the exact same protocol traffic.

Run:  python examples/offload_runtime.py
"""

import asyncio

import numpy as np

from repro.apps.knn import KnnOffloadService, RemoteKnn
from repro.core.protocol import CostLedger
from repro.hecore.ckks import CkksContext
from repro.hecore.params import SchemeType, small_test_parameters
from repro.platforms.radio import BluetoothLink
from repro.runtime import OffloadClient, OffloadServer, SimulatedLink


async def main():
    params = small_test_parameters(SchemeType.CKKS, poly_degree=1024,
                                   data_bits=(30, 24, 24))
    rng = np.random.default_rng(7)
    points = rng.normal(size=(16, 4))
    labels = rng.integers(0, 3, size=16)

    # ------------------------------------------------------- loopback TCP
    server = OffloadServer(params, verbose=False)
    KnnOffloadService.install(server)
    host, port = await server.start()
    print(f"offload server listening on {host}:{port}")

    ctx = CkksContext(params, seed=2024)
    client = await OffloadClient(params, host, port).connect()
    print(f"session {client.session_id} established "
          f"(queue limit {client.server_queue_limit})")

    knn = RemoteKnn(client, ctx, k=3, variant="collapsed")
    await knn.add_points(points, labels)
    print(f"provisioned {knn.size} encrypted points")

    for i in range(3):
        query = rng.normal(size=4)
        result = await knn.classify(query)
        truth = np.sum((points - query) ** 2, axis=1)
        print(f"query {i}: label {result.label}, nearest "
              f"{result.neighbor_indices.tolist()}, max distance error "
              f"{np.max(np.abs(result.distances - truth)):.2e}")

    stats = server.metrics.get(client.session_id).snapshot()
    print(f"server saw {stats['requests']} requests, "
          f"{stats['bytes_up']} B up / {stats['bytes_down']} B down, "
          f"p50 latency {stats['latency_p50_ms']:.1f} ms")
    await client.close()
    await server.stop()

    # ------------------------------------------------- simulated Bluetooth
    ledger = CostLedger()
    client_end, server_end = SimulatedLink.pair(ledger=ledger,
                                               radio=BluetoothLink())
    sim_server = OffloadServer(params)
    KnnOffloadService.install(sim_server)
    serve_task = asyncio.ensure_future(sim_server.serve_transport(server_end))

    ctx2 = CkksContext(params, seed=2024)
    sim_client = await OffloadClient(params,
                                     transport=client_end).connect()
    sim_knn = RemoteKnn(sim_client, ctx2, k=3, variant="collapsed",
                        symmetric=False)
    await sim_knn.add_points(points, labels)
    result = await sim_knn.classify(rng.normal(size=4))
    print(f"\nsimulated link: label {result.label}; ledger charged "
          f"{ledger.bytes_up} B up / {ledger.bytes_down} B down over "
          f"{ledger.rounds} round(s)")
    print(f"Bluetooth session time {client_end.link_time_s() * 1e3:.1f} ms, "
          f"radio energy {client_end.link_energy_j() * 1e3:.2f} mJ")
    await sim_client.close()
    await sim_server.stop()
    serve_task.cancel()


if __name__ == "__main__":
    asyncio.run(main())
