#!/usr/bin/env python
"""Should YOUR network offload?  The §5.8 designer analysis.

The paper closes its evaluation with a design rule: compare each layer's
computation (MACs) to the communication its ciphertexts cost (MB); layers
above the platform's MACs-per-byte break-even save client energy when
offloaded under CHOCO, layers below should stay local.

This example runs the analysis for all four Table 5 networks and for a
custom network you might be sketching.

Run:  python examples/workload_advisor.py
"""

from repro.apps.advisor import WorkloadAdvisor
from repro.nn.layers import ConvLayer, FcLayer, FlattenLayer, MaxPoolLayer, Network, ReluLayer
from repro.nn.models import NETWORK_BUILDERS


def custom_candidate() -> Network:
    """A network someone might be designing: deep but narrow."""
    return Network("Custom", (3, 32, 32), [
        ConvLayer(3, 32, 3, padding="same"), ReluLayer(), MaxPoolLayer(),
        ConvLayer(32, 64, 3, padding="same"), ReluLayer(), MaxPoolLayer(),
        ConvLayer(64, 128, 3, padding="same"), ReluLayer(), MaxPoolLayer(),
        FlattenLayer(), FcLayer(128 * 16, 10),
    ])


def main():
    advisor = WorkloadAdvisor()
    print("Offload-vs-local energy verdicts (Bluetooth, CHOCO-TACO client):\n")
    for name, build in NETWORK_BUILDERS.items():
        advice = advisor.analyze(build())
        verdict = "OFFLOAD" if advice.offload_network else "local"
        print(f"  {name:8s} {advice.total_macs / 1e6:8.1f}M MACs  "
              f"{advice.total_comm_bytes / 1e6:6.2f} MB  "
              f"local/offload energy = {advice.energy_ratio:5.2f}x  -> {verdict}")

    print("\nper-layer detail for a custom candidate network:\n")
    print(advisor.render(advisor.analyze(custom_candidate())))


if __name__ == "__main__":
    main()
