#!/usr/bin/env python
"""Explore the CHOCO-TACO hardware design space (§4.4, Figure 7).

Sweeps 32,000 accelerator configurations, prints the Pareto frontier in
(time, power, area), applies the paper's operating-point rule, and shows how
the chosen design scales across HE parameter settings (Figure 8).

Run:  python examples/accelerator_dse.py
"""

from repro.accel.design import AcceleratorModel, CHOCO_TACO_CONFIG
from repro.accel.dse import (
    explore_design_space,
    pareto_frontier,
    select_operating_point,
)
from repro.platforms.client_device import Imx6SoftwareClient


def main():
    print("sweeping the design space (32,000 configurations)...")
    points = explore_design_space()
    selected = select_operating_point(points)

    sample = sorted(points, key=lambda p: p.time_s)[:: len(points) // 300]
    frontier = sorted(pareto_frontier(sample), key=lambda p: p.time_s)
    print(f"\nPareto frontier (sampled, {len(frontier)} points):")
    print(f"{'time (ms)':>10s} {'power (mW)':>11s} {'area (mm^2)':>12s}")
    for p in frontier[:12]:
        print(f"{p.time_s * 1e3:10.3f} {p.power_w * 1e3:11.0f} {p.area_mm2:12.1f}")

    print("\noperating point (power <= 200 mW, time within 1%, min area):")
    print(f"  {selected.config.as_dict()}")
    print(f"  {selected.time_s * 1e3:.3f} ms | {selected.energy_j * 1e3:.4f} mJ | "
          f"{selected.area_mm2:.1f} mm^2 | {selected.power_w * 1e3:.0f} mW")
    print("  published: 0.66 ms | 0.1228 mJ | 19.3 mm^2 | <= 200 mW")

    print("\nscaling the Figure 6 design across (N, k)   [Figure 8]:")
    client = Imx6SoftwareClient()
    print(f"{'(N,k)':>12s} {'TACO':>10s} {'software':>10s} {'speedup':>8s}")
    for n, k in [(4096, 3), (8192, 3), (8192, 5), (16384, 9), (32768, 16)]:
        hw = AcceleratorModel(CHOCO_TACO_CONFIG, n, k).encrypt_cost()
        if client.can_hold_parameters(n, k):
            sw = client.encrypt_time(n, k)
            tail = f"{sw * 1e3:8.0f}ms {sw / hw.time_s:7.0f}x"
        else:
            tail = f"{'OOM':>10s} {'-':>8s}"
        print(f"{f'({n},{k})':>12s} {hw.time_s * 1e3:8.2f}ms {tail}")


if __name__ == "__main__":
    main()
